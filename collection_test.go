package twinsearch

import (
	"errors"
	"math"
	"strings"
	"testing"

	"twinsearch/internal/datasets"
)

func collectionFixture(t *testing.T) ([][]float64, *Collection) {
	t.Helper()
	set := [][]float64{
		datasets.EEGN(101, 4000),
		datasets.EEGN(102, 5000),
		datasets.EEGN(103, 3000),
	}
	c, err := OpenCollection(set, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	return set, c
}

func TestCollectionSearchAcrossMembers(t *testing.T) {
	set, c := collectionFixture(t)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Query sampled from member 1 must find itself in member 1.
	q := append([]float64(nil), set[1][2000:2100]...)
	ms, err := c.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Series == 1 && m.Start == 2000 {
			found = true
		}
	}
	if !found {
		t.Fatal("self match missing from collection results")
	}
	// Results must agree with per-member searches.
	total := 0
	for i := 0; i < c.Len(); i++ {
		per, err := c.Engine(i).Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		total += len(per)
	}
	if total != len(ms) {
		t.Fatalf("collection %d vs per-member sum %d", len(ms), total)
	}
	// Canonical order.
	for i := 1; i < len(ms); i++ {
		a, b := ms[i-1], ms[i]
		if a.Series > b.Series || (a.Series == b.Series && a.Start >= b.Start) {
			t.Fatal("results not in (series, start) order")
		}
	}
}

func TestCollectionTopK(t *testing.T) {
	set, c := collectionFixture(t)
	q := append([]float64(nil), set[2][500:600]...)
	top, err := c.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d", len(top))
	}
	if top[0].Series != 2 || top[0].Start != 500 || top[0].Dist != 0 {
		t.Fatalf("nearest must be the source window: %+v", top[0])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Dist < top[i-1].Dist {
			t.Fatal("top-k not sorted by distance")
		}
	}
	if ms, err := c.SearchTopK(q, 0); err != nil || ms != nil {
		t.Fatal("k=0 should return nothing")
	}
}

func TestCollectionBatch(t *testing.T) {
	set, c := collectionFixture(t)
	queries := [][]float64{
		append([]float64(nil), set[0][100:200]...),
		append([]float64(nil), set[1][700:800]...),
	}
	res, err := c.SearchBatch(queries, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d result sets", len(res))
	}
	for qi, ms := range res {
		want, err := c.Search(queries[qi], 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != len(want) {
			t.Fatalf("query %d: batch %d vs direct %d", qi, len(ms), len(want))
		}
	}
	// Error propagation: a malformed query surfaces with member and
	// query context, and no partial result set is returned.
	out, err := c.SearchBatch([][]float64{queries[0], {1, 2}}, 0.3, 1)
	if err == nil {
		t.Fatal("short query must fail")
	}
	if out != nil {
		t.Fatal("failed batch must not return partial results")
	}
	if !strings.Contains(err.Error(), "member 0") || !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("error %q lacks member/query context", err)
	}
	// A NaN threshold is rejected per query, not silently matched
	// against everything (the NaN validation regression).
	if _, err := c.SearchBatch(queries, math.NaN(), 1); err == nil {
		t.Fatal("NaN threshold must fail")
	}
}

// TestCollectionSharded lifts the sharded engine into collections: the
// option applies per member and answers match the unsharded collection.
func TestCollectionSharded(t *testing.T) {
	set := [][]float64{
		datasets.EEGN(101, 4000),
		datasets.EEGN(102, 5000),
	}
	plain, err := OpenCollection(set, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := OpenCollection(set, Options{L: 100, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sharded.Len(); i++ {
		if sharded.Engine(i).Shards() != 3 {
			t.Fatalf("member %d has %d shards", i, sharded.Engine(i).Shards())
		}
	}
	q := append([]float64(nil), set[1][2000:2100]...)
	want, err := plain.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded collection: %d vs %d matches", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	wantK, err := plain.SearchTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := sharded.SearchTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantK {
		if gotK[i] != wantK[i] {
			t.Fatalf("top-k %d: %+v vs %+v", i, gotK[i], wantK[i])
		}
	}
}

func TestCollectionErrors(t *testing.T) {
	if _, err := OpenCollection(nil, Options{L: 10}); err == nil {
		t.Fatal("empty collection must fail")
	}
	if _, err := OpenCollection([][]float64{datasets.RandomWalk(1, 50)}, Options{L: 100}); err == nil {
		t.Fatal("short member must fail")
	}
	_, c := collectionFixture(t)
	if _, err := c.Search([]float64{1}, 0.1); err == nil {
		t.Fatal("bad query must fail")
	}
	if _, err := c.SearchTopK([]float64{1}, 3); err == nil {
		t.Fatal("bad top-k query must fail")
	}
}

// Regression for a closedguard finding: Collection's search methods
// reached into member engines with no closed check, so a search racing
// Close failed with whatever error the first half-closed member
// produced. They must fail up front with ErrClosed.
func TestCollectionClosed(t *testing.T) {
	set, c := collectionFixture(t)
	q := set[0][:100]
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(q, 0.5); !errors.Is(err, ErrClosed) {
		t.Errorf("Search after Close: %v, want ErrClosed", err)
	}
	if _, err := c.SearchTopK(q, 3); !errors.Is(err, ErrClosed) {
		t.Errorf("SearchTopK after Close: %v, want ErrClosed", err)
	}
	if _, err := c.SearchBatch([][]float64{q}, 0.5, 2); !errors.Is(err, ErrClosed) {
		t.Errorf("SearchBatch after Close: %v, want ErrClosed", err)
	}
}
