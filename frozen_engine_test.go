package twinsearch

import (
	"bytes"
	"testing"

	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// TestOpenSavedPointerStreamBackCompat feeds OpenSaved the legacy
// single-index pointer stream (TSIX) that older versions of SaveIndex
// wrote; it must load (frozen on the way in) and answer exactly like a
// freshly built engine, and re-saving must emit the current frozen
// format.
func TestOpenSavedPointerStreamBackCompat(t *testing.T) {
	data := datasets.RandomWalk(61, 1300)
	const l = 42
	ext := series.NewExtractor(data, series.NormGlobal)
	ix, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := ix.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}

	eng, err := OpenSaved(data, bytes.NewReader(legacy.Bytes()), Options{L: l})
	if err != nil {
		t.Fatalf("legacy TSIX stream rejected: %v", err)
	}
	fresh, err := Open(data, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), data[200:200+l]...)
	want, err := fresh.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("legacy-loaded engine: %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("match %d differs: %v vs %v", i, got[i], want[i])
		}
	}

	// Re-saving writes the frozen format now.
	var resaved bytes.Buffer
	if err := eng.SaveIndex(&resaved); err != nil {
		t.Fatal(err)
	}
	if string(resaved.Bytes()[:4]) != core.FrozenMagic {
		t.Fatalf("re-save wrote magic %q, want %q", resaved.Bytes()[:4], core.FrozenMagic)
	}
	if _, err := OpenSaved(data, bytes.NewReader(resaved.Bytes()), Options{L: l}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePartitionByMean checks the Options knob end to end:
// identical answers to an unsharded engine and the scheme surviving a
// save/reload cycle (mean-routed insertion is covered at the shard
// layer).
func TestEnginePartitionByMean(t *testing.T) {
	data := datasets.RandomWalk(62, 1600)
	const l = 40
	ref, err := Open(data, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(data, Options{L: l, Shards: 3, PartitionByMean: true})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.PartitionByMean() || eng.Shards() != 3 {
		t.Fatalf("engine reports shards=%d mean=%v", eng.Shards(), eng.PartitionByMean())
	}
	if ref.PartitionByMean() {
		t.Fatal("unsharded engine claims mean partitioning")
	}
	q := append([]float64(nil), data[700:700+l]...)
	for _, eps := range []float64{0.1, 0.6} {
		want, err := ref.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("eps=%g: %d matches, want %d", eps, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("eps=%g match %d differs", eps, i)
			}
		}
	}
	wantK, err := ref.SearchTopK(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := eng.SearchTopK(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantK {
		if wantK[i] != gotK[i] {
			t.Fatalf("top-k %d differs: %v vs %v", i, gotK[i], wantK[i])
		}
	}

	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSaved(data, bytes.NewReader(buf.Bytes()), Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	if !re.PartitionByMean() || re.Shards() != 3 {
		t.Fatalf("reloaded engine reports shards=%d mean=%v", re.Shards(), re.PartitionByMean())
	}
	got, err := re.Search(q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Search(q, 0.6)
	if len(got) != len(want) {
		t.Fatalf("reloaded: %d matches, want %d", len(got), len(want))
	}
}
