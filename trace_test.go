package twinsearch

// Trace-path guarantees: the disabled path is allocation-free (the
// engine's observability hooks must cost production queries nothing),
// and a forced trace changes nothing about the answer — traced and
// untraced runs of every search path are byte-identical.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/obs"
)

// traceBenchEngine builds the smallest engine whose SearchStatsCtx hot
// path runs without allocating: raw values (NormNone skips the
// transform copy when uncached), no caches, no sharding, tracing off.
// The query sits far outside the indexed value range, so the MBTS bound
// prunes at the root and the answer is empty — the path's only
// remaining allocation (the result slice) never happens, making a
// strict 0 allocs/op assertion possible.
func traceBenchEngine(tb testing.TB) (*Engine, []float64) {
	tb.Helper()
	ts := datasets.RandomWalk(3, 600)
	eng, err := Open(ts, Options{L: 100, Norm: NormNone, NormSet: true})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { eng.Close() })
	q := make([]float64, 100)
	for i := range q {
		q[i] = ts[i] + 1e6
	}
	return eng, q
}

// TestSearchStatsCtxNoAllocs pins the disabled-trace contract exactly:
// with tracing off, a stats query allocates nothing beyond its result
// slice — with a root-pruned query, nothing at all.
func TestSearchStatsCtxNoAllocs(t *testing.T) {
	eng, q := traceBenchEngine(t)
	ctx := context.Background()
	// Warm once so any lazily-initialized state is paid for.
	if _, _, err := eng.SearchStatsCtx(ctx, q, 0.1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := eng.SearchStatsCtx(ctx, q, 0.1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("SearchStatsCtx with tracing off: %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkTraceDisabled is the enforced form of the "disabled path is
// free" claim: run with -benchmem, it must report 0 B/op beyond the
// result slice. CI's bench smoke executes it.
func BenchmarkTraceDisabled(b *testing.B) {
	eng, q := traceBenchEngine(b)
	ctx := context.Background()
	if _, _, err := eng.SearchStatsCtx(ctx, q, 0.1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.SearchStatsCtx(ctx, q, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceForced prices a full per-query span tree against the
// BenchmarkTraceDisabled baseline.
func BenchmarkTraceForced(b *testing.B) {
	eng, q := traceBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench")
		ctx := obs.WithSpan(context.Background(), tr.Root)
		if _, _, err := eng.SearchStatsCtx(ctx, q, 0.1); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// TestTracedAnswersUnchanged is the differential guarantee: forcing a
// trace must not perturb any search path's answer. Runs on a sharded
// engine so the traced fan-out (per-shard spans, merge span) is
// exercised, across every public Ctx search path.
func TestTracedAnswersUnchanged(t *testing.T) {
	ts := datasets.RandomWalk(7, 4000)
	eng, err := Open(ts, Options{L: 100, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := append([]float64(nil), ts[500:600]...)
	eps := 0.4

	traced := func() context.Context {
		tr := obs.NewTrace("diff")
		return obs.WithSpan(context.Background(), tr.Root)
	}
	plain := context.Background()

	check := func(name string, run func(ctx context.Context) (interface{}, error)) {
		t.Helper()
		want, err := run(plain)
		if err != nil {
			t.Fatalf("%s untraced: %v", name, err)
		}
		got, err := run(traced())
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: traced answer differs from untraced", name)
		}
	}

	check("Search", func(ctx context.Context) (interface{}, error) {
		return eng.SearchCtx(ctx, q, eps)
	})
	check("SearchStats", func(ctx context.Context) (interface{}, error) {
		ms, st, err := eng.SearchStatsCtx(ctx, q, eps)
		return struct {
			Ms []Match
			St interface{}
		}{ms, st}, err
	})
	check("SearchTopK", func(ctx context.Context) (interface{}, error) {
		return eng.SearchTopKCtx(ctx, q, 5)
	})
	check("SearchShorter", func(ctx context.Context) (interface{}, error) {
		return eng.SearchShorterCtx(ctx, q[:60], eps)
	})
	check("SearchApprox", func(ctx context.Context) (interface{}, error) {
		return eng.SearchApproxCtx(ctx, q, eps, 8)
	})
}

// TestForcedTraceShape asserts the span tree a forced local query
// produces actually contains the layers the trace claims to cover.
func TestForcedTraceShape(t *testing.T) {
	ts := datasets.RandomWalk(9, 4000)
	eng, err := Open(ts, Options{L: 100, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := append([]float64(nil), ts[500:600]...)

	tr := obs.NewTrace("q")
	ctx := obs.WithSpan(context.Background(), tr.Root)
	if _, _, err := eng.SearchStatsCtx(ctx, q, 0.4); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	names := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	for _, want := range []string{"validate", "traverse", "merge"} {
		if names[want] == 0 {
			t.Fatalf("forced trace missing %q span; got %v", want, names)
		}
	}
	if names["shard[0]"] == 0 || names["shard[2]"] == 0 {
		t.Fatalf("forced trace missing per-shard spans; got %v", names)
	}
}

// TestSamplerOwnedTrace checks 1-in-N sampling produces engine-owned
// traces that feed the trace counter without any caller involvement.
func TestSamplerOwnedTrace(t *testing.T) {
	ts := datasets.RandomWalk(11, 900)
	eng, err := Open(ts, Options{L: 100, TraceSample: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := append([]float64(nil), ts[:100]...)
	for i := 0; i < 8; i++ {
		if _, err := eng.SearchCtx(context.Background(), q, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	count := -1.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if n, ok := strings.CutPrefix(line, "twinsearch_traces_total "); ok {
			if _, err := fmt.Sscanf(n, "%g", &count); err != nil {
				t.Fatalf("bad trace counter line %q: %v", line, err)
			}
		}
	}
	// 8 queries at 1-in-2 sampling: exactly 4 engine-owned traces.
	if count != 4 {
		t.Fatalf("twinsearch_traces_total = %g after 8 queries sampled 1-in-2, want 4", count)
	}
}
