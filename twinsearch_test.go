package twinsearch

import (
	"math"
	"path/filepath"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/store"
)

var allMethods = []Method{MethodTSIndex, MethodISAX, MethodKVIndex, MethodSweepline}

func TestOpenValidation(t *testing.T) {
	data := datasets.RandomWalk(1, 500)
	if _, err := Open(data, Options{}); err == nil {
		t.Fatal("missing L must fail")
	}
	if _, err := Open(data[:10], Options{L: 100}); err == nil {
		t.Fatal("short series must fail")
	}
	if _, err := Open(data, Options{L: 100, Method: Method(42)}); err == nil {
		t.Fatal("unknown method must fail")
	}
	if _, err := Open(data, Options{L: 100, Method: MethodKVIndex, Norm: NormPerSubsequence, NormSet: true}); err == nil {
		t.Fatal("KV-Index under per-subsequence norm must fail")
	}
}

func TestDefaultNormalization(t *testing.T) {
	eng, err := Open(datasets.RandomWalk(1, 500), Options{L: 50})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Norm() != NormGlobal {
		t.Fatalf("default norm = %v, want NormGlobal", eng.Norm())
	}
	engRaw, err := Open(datasets.RandomWalk(1, 500), Options{L: 50, NormSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if engRaw.Norm() != NormNone {
		t.Fatalf("NormSet norm = %v, want NormNone", engRaw.Norm())
	}
}

func TestAllMethodsAgree(t *testing.T) {
	ts := datasets.EEGN(3, 8000)
	q := append([]float64(nil), ts[2000:2100]...)
	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		var golden []Match
		for _, m := range allMethods {
			if m == MethodKVIndex && norm == NormPerSubsequence {
				continue
			}
			eng, err := Open(ts, Options{L: 100, Method: m, Norm: norm, NormSet: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, norm, err)
			}
			ms, err := eng.Search(q, 0.4)
			if err != nil {
				t.Fatalf("%v/%v: %v", m, norm, err)
			}
			if golden == nil || m == MethodSweepline {
				if golden == nil {
					golden = ms
					continue
				}
			}
			if len(ms) != len(golden) {
				t.Fatalf("%v/%v: %d matches, golden %d", m, norm, len(ms), len(golden))
			}
			for i := range golden {
				if ms[i].Start != golden[i].Start {
					t.Fatalf("%v/%v: mismatch at rank %d", m, norm, i)
				}
			}
		}
	}
}

func TestSearchErrors(t *testing.T) {
	eng, err := Open(datasets.RandomWalk(1, 1000), Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(make([]float64, 50), 0.1); err == nil {
		t.Fatal("wrong query length must fail")
	}
	if _, err := eng.Search(make([]float64, 100), -1); err == nil {
		t.Fatal("negative eps must fail")
	}
	if _, err := eng.Search(make([]float64, 100), math.NaN()); err == nil {
		t.Fatal("NaN eps must fail")
	}
	q := make([]float64, 100)
	q[40] = math.NaN()
	if _, err := eng.Search(q, 0.1); err == nil {
		t.Fatal("NaN query must fail")
	}
	q[40] = math.Inf(1)
	if _, err := eng.Search(q, 0.1); err == nil {
		t.Fatal("Inf query must fail")
	}
	if _, err := eng.SearchPrepared(make([]float64, 99), 0.1); err == nil {
		t.Fatal("wrong prepared length must fail")
	}
}

func TestOpenRejectsNonFiniteData(t *testing.T) {
	data := datasets.RandomWalk(2, 500)
	data[123] = math.NaN()
	if _, err := Open(data, Options{L: 50}); err == nil {
		t.Fatal("NaN data must fail")
	}
	data[123] = math.Inf(-1)
	if _, err := Open(data, Options{L: 50}); err == nil {
		t.Fatal("Inf data must fail")
	}
}

func TestTopK(t *testing.T) {
	ts := datasets.InsectN(5, 5000)
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), ts[700:800]...)
	top, err := eng.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d", len(top))
	}
	if top[0].Start != 700 || top[0].Dist != 0 {
		t.Fatalf("nearest must be the source window: %+v", top[0])
	}
	swp, _ := Open(ts, Options{L: 100, Method: MethodSweepline})
	if _, err := swp.SearchTopK(q, 5); err != ErrTopKUnsupported {
		t.Fatalf("err = %v, want ErrTopKUnsupported", err)
	}
	if _, err := eng.SearchTopK(make([]float64, 3), 5); err == nil {
		t.Fatal("wrong top-k query length must fail")
	}
}

func TestBulkLoadOption(t *testing.T) {
	ts := datasets.RandomWalk(7, 4000)
	q := append([]float64(nil), ts[1000:1100]...)
	a, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(ts, Options{L: 100, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := a.Search(q, 0.3)
	mb, _ := b.Search(q, 0.3)
	if len(ma) != len(mb) {
		t.Fatalf("bulk vs insert result mismatch: %d vs %d", len(ma), len(mb))
	}
}

func TestAccessorsAndMemory(t *testing.T) {
	ts := datasets.RandomWalk(9, 2000)
	for _, m := range allMethods {
		eng, err := Open(ts, Options{L: 100, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Method() != m || eng.L() != 100 || eng.SeriesLen() != 2000 {
			t.Fatalf("%v: accessor mismatch", m)
		}
		if eng.NumSubsequences() != 1901 {
			t.Fatalf("%v: NumSubsequences = %d", m, eng.NumSubsequences())
		}
		if m == MethodSweepline {
			if eng.MemoryBytes() != 0 {
				t.Fatalf("sweepline has no index memory")
			}
		} else if eng.MemoryBytes() <= 0 {
			t.Fatalf("%v: MemoryBytes = %d", m, eng.MemoryBytes())
		}
		sub, err := eng.Subsequence(5)
		if err != nil || len(sub) != 100 {
			t.Fatalf("%v: Subsequence: %v", m, err)
		}
		if _, err := eng.Subsequence(-1); err == nil {
			t.Fatalf("%v: negative position must fail", m)
		}
		if _, err := eng.Subsequence(1999); err == nil {
			t.Fatalf("%v: overflowing position must fail", m)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodTSIndex.String() != "TS-Index" || MethodISAX.String() != "iSAX" ||
		MethodKVIndex.String() != "KV-Index" || MethodSweepline.String() != "Sweepline" {
		t.Fatal("method names changed")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("fallback name changed")
	}
}

func TestOpenFile(t *testing.T) {
	ts := datasets.RandomWalk(11, 1500)
	path := filepath.Join(t.TempDir(), "series.f64")
	if err := store.WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenFile(path, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), ts[300:400]...)
	ms, err := eng.Search(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Start == 300 {
			found = true
		}
	}
	if !found {
		t.Fatal("self match missing after file round trip")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.f64"), Options{L: 10}); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestPrepareQueryRoundTrip(t *testing.T) {
	ts := datasets.RandomWalk(13, 1000)
	eng, _ := Open(ts, Options{L: 50})
	raw := append([]float64(nil), ts[100:150]...)
	prepared := eng.PrepareQuery(raw)
	a, _ := eng.Search(raw, 0.25)
	b, _ := eng.SearchPrepared(prepared, 0.25)
	if len(a) != len(b) {
		t.Fatalf("prepared search disagrees: %d vs %d", len(a), len(b))
	}
}
