package twinsearch

// Engine-level coverage of the distributed tier and lifecycle guards:
// Options.Topology with in-process ("local") entries — the coordinator
// shape with zero network — plus use-after-Close and prefetch warmup.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twinsearch/internal/datasets"
)

// writeTopology saves a sharded index and a topology file whose entries
// all resolve in-process, returning the topology path.
func writeTopology(t *testing.T, data []float64, l, shards, nodes int) string {
	t.Helper()
	dir := t.TempDir()
	eng, err := Open(data, Options{L: l, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, "idx.tsidx")
	if err := eng.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	type nodeDoc struct {
		Name   string `json:"name"`
		Addr   string `json:"addr"`
		Shards []int  `json:"shards"`
	}
	doc := struct {
		Index string    `json:"index"`
		Nodes []nodeDoc `json:"nodes"`
	}{Index: "idx.tsidx"}
	for i := 0; i < nodes; i++ {
		var run []int
		for s := i * shards / nodes; s < (i+1)*shards/nodes; s++ {
			run = append(run, s)
		}
		doc.Nodes = append(doc.Nodes, nodeDoc{Name: "n" + string(rune('0'+i)), Addr: "local", Shards: run})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterEngineLocal drives a topology-backed engine through the
// public API and checks parity with a plain local engine.
func TestClusterEngineLocal(t *testing.T) {
	data := datasets.EEGN(61, 3000)
	const l = 100
	topo := writeTopology(t, data, l, 4, 2)

	local, err := Open(data, Options{L: l, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(data, Options{L: l, Topology: topo, MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if eng.Cluster() == nil || eng.Shards() != 4 {
		t.Fatalf("cluster engine reports %d shards, cluster=%v", eng.Shards(), eng.Cluster())
	}
	if eng.MappedBytes() == 0 {
		t.Fatal("local topology entries with MMap should map the index")
	}

	q := data[500:600]
	want, err := local.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("cluster engine: %d matches, local %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("match %d: %+v vs %+v", i, got[i], want[i])
		}
	}

	wantK, _ := local.SearchTopK(q, 5)
	gotK, err := eng.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantK {
		if wantK[i] != gotK[i] {
			t.Fatalf("topk %d: %+v vs %+v", i, gotK[i], wantK[i])
		}
	}

	wantS, _ := local.SearchShorter(q[:50], 0.3)
	gotS, err := eng.SearchShorter(q[:50], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantS) != len(gotS) {
		t.Fatalf("shorter: %d vs %d", len(gotS), len(wantS))
	}

	// Approximate with a saturating budget is the exact answer.
	gotA, err := eng.SearchApprox(q, 0.3, 2*eng.NumSubsequences())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != len(want) {
		t.Fatalf("approx: %d vs %d", len(gotA), len(want))
	}

	// Batch rides the same coordinator.
	batch := eng.SearchBatch([][]float64{q, data[0:100], {1, 2}}, 0.3, 0)
	if batch[0].Err != nil || len(batch[0].Matches) != len(want) {
		t.Fatalf("batch[0] = %+v", batch[0])
	}
	if batch[2].Err == nil {
		t.Fatal("batch[2]: short query accepted")
	}

	// Read-only surface.
	if err := eng.Append(1, 2, 3); err == nil {
		t.Fatal("Append on a cluster engine succeeded")
	}
	if err := eng.SaveIndex(os.NewFile(0, "")); err == nil {
		t.Fatal("SaveIndex on a cluster engine succeeded")
	}
}

// TestUseAfterClose proves the lifecycle guard: once Close runs, every
// search, batch, append, and save fails with ErrClosed instead of
// faulting on the unmapped region — on a genuinely mmap-backed engine.
func TestUseAfterClose(t *testing.T) {
	data := datasets.RandomWalk(67, 2500)
	const l = 64
	src, err := Open(data, Options{L: l, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.tsidx")
	if err := src.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenSavedFile(data, path, Options{L: l, MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.MappedBytes() == 0 {
		t.Skip("mmap unavailable on this platform; guard covered elsewhere")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	q := data[100 : 100+l]
	if _, err := eng.Search(q, 0.3); err != ErrClosed {
		t.Fatalf("Search after Close: %v", err)
	}
	if _, err := eng.SearchPrepared(q, 0.3); err != ErrClosed {
		t.Fatalf("SearchPrepared after Close: %v", err)
	}
	if _, err := eng.SearchTopK(q, 3); err != ErrClosed {
		t.Fatalf("SearchTopK after Close: %v", err)
	}
	if _, err := eng.SearchShorter(q[:10], 0.3); err != ErrClosed {
		t.Fatalf("SearchShorter after Close: %v", err)
	}
	if _, err := eng.SearchApprox(q, 0.3, 4); err != ErrClosed {
		t.Fatalf("SearchApprox after Close: %v", err)
	}
	if err := eng.Append(1, 2, 3); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := eng.SaveIndex(nil); err != ErrClosed {
		t.Fatalf("SaveIndex after Close: %v", err)
	}
	for _, r := range eng.SearchBatch([][]float64{q, q}, 0.3, 0) {
		if r.Err != ErrClosed {
			t.Fatalf("SearchBatch[%d] after Close: %v", r.Query, r.Err)
		}
	}
}

// TestConcurrentDoubleClose races Close against itself (run under
// -race): both calls must return nil and the engine must end closed.
func TestConcurrentDoubleClose(t *testing.T) {
	data := datasets.RandomWalk(71, 1500)
	const l = 50
	src, err := Open(data, Options{L: l, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.tsidx")
	if err := src.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenSavedFile(data, path, Options{L: l, MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, err := eng.Search(data[:l], 0.3); err != ErrClosed {
		t.Fatalf("post-close search: %v", err)
	}
}

// TestPrefetchOpen exercises Options.Prefetch on a mapped open: the
// warmed engine must answer identically to a cold one.
func TestPrefetchOpen(t *testing.T) {
	data := datasets.EEGN(73, 2600)
	const l = 80
	src, err := Open(data, Options{L: l, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.tsidx")
	if err := src.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	warm, err := OpenSavedFile(data, path, Options{L: l, MMap: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	q := data[300 : 300+l]
	want, err := src.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("prefetched engine diverged: %d vs %d matches", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("match %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
