package twinsearch

// Differential tests for the sharded TS-Index path: Options.Shards must
// never change an answer, only the concurrency of producing it.

import (
	"bytes"
	"math"
	"runtime"
	"sync"
	"testing"

	"twinsearch/internal/datasets"
)

func assertSameMatches(t *testing.T, ctx string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestShardedEngineParity checks Search, SearchTopK, SearchShorter and
// SearchBatch return byte-identical results with and without sharding,
// across every normalization mode and both build styles.
func TestShardedEngineParity(t *testing.T) {
	ts := datasets.EEGN(41, 12000)
	queries := datasets.Queries(ts, 13, 6, 100)
	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		single, err := Open(ts, Options{L: 100, Norm: norm, NormSet: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, bulk := range []bool{false, true} {
			for _, shards := range []int{2, 5} {
				sharded, err := Open(ts, Options{L: 100, Norm: norm, NormSet: true, Shards: shards, BulkLoad: bulk})
				if err != nil {
					t.Fatal(err)
				}
				if sharded.Shards() != shards {
					t.Fatalf("Shards() = %d, want %d", sharded.Shards(), shards)
				}
				for _, q := range queries {
					for _, eps := range []float64{0.05, 0.3, 0.8} {
						want, err := single.Search(q, eps)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sharded.Search(q, eps)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMatches(t, "Search", got, want)
					}
					for _, k := range []int{1, 7, 50} {
						want, err := single.SearchTopK(q, k)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sharded.SearchTopK(q, k)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMatches(t, "SearchTopK", got, want)
					}
					if norm != NormPerSubsequence {
						want, err := single.SearchShorter(q[:40], 0.3)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sharded.SearchShorter(q[:40], 0.3)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMatches(t, "SearchShorter", got, want)
					}
				}
				wantBatch := single.SearchBatch(queries, 0.4, 0)
				gotBatch := sharded.SearchBatch(queries, 0.4, 0)
				for i := range wantBatch {
					if gotBatch[i].Err != nil || wantBatch[i].Err != nil {
						t.Fatalf("batch query %d errored: %v / %v", i, gotBatch[i].Err, wantBatch[i].Err)
					}
					assertSameMatches(t, "SearchBatch", gotBatch[i].Matches, wantBatch[i].Matches)
				}
			}
		}
	}
}

// TestShardedAutoAndValidation covers the Shards knob's edge values.
func TestShardedAutoAndValidation(t *testing.T) {
	ts := datasets.RandomWalk(3, 4000)

	auto, err := Open(ts, Options{L: 100, Shards: -1})
	if err != nil {
		t.Fatal(err)
	}
	wantShards := runtime.GOMAXPROCS(0)
	if w := auto.NumSubsequences(); wantShards > w {
		wantShards = w
	}
	if wantShards > 1 && auto.Shards() != wantShards {
		t.Fatalf("auto sharding built %d shards, want %d", auto.Shards(), wantShards)
	}

	// Shards: 1 and 0 both keep the single-index path.
	for _, s := range []int{0, 1} {
		eng, err := Open(ts, Options{L: 100, Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Shards() != 1 {
			t.Fatalf("Shards=%d built %d partitions", s, eng.Shards())
		}
	}

	// Sharding is a TS-Index feature; other methods must reject it.
	for _, m := range []Method{MethodSweepline, MethodKVIndex, MethodISAX} {
		if _, err := Open(ts, Options{L: 100, Method: m, Shards: 4}); err == nil {
			t.Fatalf("method %v accepted Options.Shards", m)
		}
	}
}

// TestShardedPersistence round-trips a sharded engine through
// SaveIndex/OpenSaved and checks the format is self-describing: a
// sharded stream reopens sharded even when the options don't ask for
// shards, and vice versa.
func TestShardedPersistence(t *testing.T) {
	ts := datasets.EEGN(51, 9000)
	sharded, err := Open(ts, Options{L: 100, Shards: 3, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := sharded.SaveIndex(&blob); err != nil {
		t.Fatal(err)
	}

	// Reopen with no Shards in the options: stream wins.
	re, err := OpenSaved(ts, bytes.NewReader(blob.Bytes()), Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 3 {
		t.Fatalf("reloaded engine has %d shards, want 3", re.Shards())
	}
	q := append([]float64(nil), ts[4000:4100]...)
	want, _ := sharded.Search(q, 0.3)
	got, _ := re.Search(q, 0.3)
	assertSameMatches(t, "reloaded sharded search", got, want)
	wantK, _ := sharded.SearchTopK(q, 5)
	gotK, _ := re.SearchTopK(q, 5)
	assertSameMatches(t, "reloaded sharded top-k", gotK, wantK)

	// A single-index stream still reopens unsharded.
	single, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	blob.Reset()
	if err := single.SaveIndex(&blob); err != nil {
		t.Fatal(err)
	}
	re, err = OpenSaved(ts, &blob, Options{L: 100, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 1 {
		t.Fatalf("single-index stream reopened with %d shards", re.Shards())
	}

	// Wrong L against a sharded stream is caught.
	blob.Reset()
	if err := sharded.SaveIndex(&blob); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSaved(ts, &blob, Options{L: 60}); err == nil {
		t.Fatal("want L mismatch error for sharded stream")
	}
}

// TestShardedAppend streams values into a sharded engine and compares
// against a fresh sharded build and an unsharded engine.
func TestShardedAppend(t *testing.T) {
	full := datasets.EEGN(61, 6000)
	grown, err := Open(append([]float64(nil), full[:4500]...), Options{L: 100, Norm: NormNone, NormSet: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for at := 4500; at < len(full); {
		end := at + 1 + (at % 321)
		if end > len(full) {
			end = len(full)
		}
		if err := grown.Append(full[at:end]...); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	single, err := Open(full, Options{L: 100, Norm: NormNone, NormSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumSubsequences() != single.NumSubsequences() {
		t.Fatalf("%d vs %d windows", grown.NumSubsequences(), single.NumSubsequences())
	}
	for _, p := range []int{100, 4450, 5900} {
		q := append([]float64(nil), full[p:p+100]...)
		want, _ := single.Search(q, 0.4)
		got, _ := grown.Search(q, 0.4)
		assertSameMatches(t, "post-append search", got, want)
	}
}

// TestShardedConcurrentUse runs concurrent sharded builds and searches;
// under -race this guards the whole fan-out stack through the public
// API.
func TestShardedConcurrentUse(t *testing.T) {
	ts := datasets.InsectN(71, 15000)
	queries := datasets.Queries(ts, 5, 8, 100)

	var wg sync.WaitGroup
	engines := make([]*Engine, 3)
	errs := make([]error, 3)
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engines[i], errs[i] = Open(ts, Options{L: 100, Shards: 4, BulkLoad: i%2 == 0})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	want, err := engines[0].Search(queries[0], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := engines[g%len(engines)]
			for _, q := range queries {
				if _, err := eng.Search(q, 0.4); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.SearchTopK(q, 5); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got, err := engines[1].Search(queries[0], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "concurrent sharded search", got, want)
}

// TestSearchPreparedRejectsBadEps is the regression test for the
// NaN-threshold validation hole: SearchPrepared used to perform no eps
// validation at all, so eps = NaN sailed through (NaN < 0 is false) and
// made every window a "match" via poisoned early-abandoning.
func TestSearchPreparedRejectsBadEps(t *testing.T) {
	ts := datasets.RandomWalk(7, 2000)
	for _, m := range allMethods {
		eng, err := Open(ts, Options{L: 50, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		q := eng.PrepareQuery(ts[100:150])
		if _, err := eng.SearchPrepared(q, math.NaN()); err == nil {
			t.Fatalf("%v: SearchPrepared accepted NaN threshold", m)
		}
		if _, err := eng.SearchPrepared(q, -0.5); err == nil {
			t.Fatalf("%v: SearchPrepared accepted negative threshold", m)
		}
		if _, err := eng.SearchPrepared(q, 0.3); err != nil {
			t.Fatalf("%v: valid threshold rejected: %v", m, err)
		}
	}
}

// TestSearchShorterRejectsNaNEps: SearchShorter checked only eps < 0,
// which NaN passes; SearchApprox checked nothing at all.
func TestSearchShorterRejectsNaNEps(t *testing.T) {
	ts := datasets.RandomWalk(9, 2000)
	for _, shards := range []int{0, 3} {
		eng, err := Open(ts, Options{L: 50, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.SearchShorter(ts[10:40], math.NaN()); err == nil {
			t.Fatalf("shards=%d: SearchShorter accepted NaN threshold", shards)
		}
		if _, err := eng.SearchApprox(ts[10:60], math.NaN(), 2); err == nil {
			t.Fatalf("shards=%d: SearchApprox accepted NaN threshold", shards)
		}
		if _, err := eng.SearchApprox(ts[10:60], -0.5, 2); err == nil {
			t.Fatalf("shards=%d: SearchApprox accepted negative threshold", shards)
		}
	}
}

// TestSearchApproxRejectsNonPositiveBudget is the regression test for
// the leaf-budget validation hole: leafBudget ≤ 0 used to slip through
// to the tree walk (which silently clamped it to 1) instead of being
// rejected like every other invalid argument.
func TestSearchApproxRejectsNonPositiveBudget(t *testing.T) {
	ts := datasets.RandomWalk(11, 2000)
	for _, shards := range []int{0, 3} {
		eng, err := Open(ts, Options{L: 50, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		q := ts[100:150]
		for _, budget := range []int{0, -1, -100} {
			if _, err := eng.SearchApprox(q, 0.3, budget); err == nil {
				t.Fatalf("shards=%d: SearchApprox accepted leaf budget %d", shards, budget)
			}
		}
		if _, err := eng.SearchApprox(q, 0.3, 1); err != nil {
			t.Fatalf("shards=%d: minimal valid budget rejected: %v", shards, err)
		}
	}
}

// TestWorkersOptionParity pins the Workers knob: the executor width is
// reported faithfully and never changes an answer, for every
// normalization mode.
func TestWorkersOptionParity(t *testing.T) {
	ts := datasets.EEGN(43, 9000)
	queries := datasets.Queries(ts, 17, 4, 100)
	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		single, err := Open(ts, Options{L: 100, Norm: norm, NormSet: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 6} {
			eng, err := Open(ts, Options{L: 100, Norm: norm, NormSet: true, Shards: 4, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", eng.Workers(), workers)
			}
			for _, q := range queries {
				want, err := single.Search(q, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Search(q, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, "Search", got, want)
				wantK, _ := single.SearchTopK(q, 9)
				gotK, _ := eng.SearchTopK(q, 9)
				assertSameMatches(t, "SearchTopK", gotK, wantK)
			}
			wantBatch := single.SearchBatch(queries, 0.4, 0)
			gotBatch := eng.SearchBatch(queries, 0.4, 0)
			for i := range wantBatch {
				assertSameMatches(t, "SearchBatch", gotBatch[i].Matches, wantBatch[i].Matches)
			}
		}
	}
	// Workers resolves like GOMAXPROCS when unset.
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS", eng.Workers())
	}
}

// TestSearchBatchMixedValidity checks the fused batch path keeps
// per-query error isolation: invalid queries carry their own errors
// while the rest of the batch completes.
func TestSearchBatchMixedValidity(t *testing.T) {
	ts := datasets.EEGN(47, 8000)
	for _, shards := range []int{0, 4} {
		eng, err := Open(ts, Options{L: 100, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		good := append([]float64(nil), ts[3000:3100]...)
		batch := [][]float64{
			good,
			make([]float64, 10),             // wrong length
			append([]float64(nil), good...), // fine
			{math.NaN()},                    // wrong length AND non-finite
		}
		out := eng.SearchBatch(batch, 0.3, 0)
		if len(out) != 4 {
			t.Fatalf("shards=%d: %d results", shards, len(out))
		}
		for i, r := range out {
			if r.Query != i {
				t.Fatalf("shards=%d: result %d labeled query %d", shards, i, r.Query)
			}
		}
		if out[1].Err == nil || out[3].Err == nil {
			t.Fatalf("shards=%d: invalid queries must carry errors", shards)
		}
		if out[0].Err != nil || out[2].Err != nil {
			t.Fatalf("shards=%d: valid queries errored: %v %v", shards, out[0].Err, out[2].Err)
		}
		want, err := eng.Search(good, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "batch result 0", out[0].Matches, want)
		assertSameMatches(t, "batch result 2", out[2].Matches, want)
	}
}

// TestSearchBatchHugeParallelism: an absurd parallelism value must be
// capped to the workload size, not allocate a pool of that width.
func TestSearchBatchHugeParallelism(t *testing.T) {
	ts := datasets.RandomWalk(13, 3000)
	eng, err := Open(ts, Options{L: 50, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := datasets.Queries(ts, 5, 3, 50)
	out := eng.SearchBatch(queries, 0.3, 1<<30)
	if len(out) != len(queries) {
		t.Fatalf("%d results for %d queries", len(out), len(queries))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want, _ := eng.Search(queries[i], 0.3)
		assertSameMatches(t, "huge parallelism batch", r.Matches, want)
	}
}
