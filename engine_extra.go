package twinsearch

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/qcache"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// ErrPersistUnsupported is returned by SaveIndex for methods other than
// TS-Index.
var ErrPersistUnsupported = errors.New("twinsearch: index persistence requires MethodTSIndex")

// SaveIndex serializes a built TS-Index so a later process can reopen it
// against the same series without paying construction again (see
// OpenSaved). Only MethodTSIndex engines support it. Both sharded and
// single-index engines write their frozen arenas — the flat arrays go
// to disk as-is, so loading is a few sequential reads per shard;
// OpenSaved also accepts the pointer-tree formats older versions wrote.
func (e *Engine) SaveIndex(w io.Writer) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return ErrPersistUnsupported
	}
	if e.cl != nil {
		return errors.New("twinsearch: a cluster-backed engine serves an already-saved index; save from the process that built it")
	}
	if e.sh != nil {
		_, err := e.sh.WriteTo(w)
		return err
	}
	_, err := e.tsFrozen().WriteTo(w)
	return err
}

// SaveIndexFile is SaveIndex to a file path, via a temp file in the
// same directory renamed over the target. The rename makes the save
// atomic (a crash never leaves a half-written index) and — critically
// for engines opened with Options.MMap — never truncates the inode the
// engine's own arenas may be mapped from: saving over the file you
// mapped reads the old inode and atomically swaps in the new one.
func (e *Engine) SaveIndexFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("twinsearch: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := e.SaveIndex(f); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; give the index the permissions os.Create
	// used to (other processes mapping the shared copy need read).
	if err := f.Chmod(0o644); err != nil {
		return fail(fmt.Errorf("twinsearch: %w", err))
	}
	// Flush to stable storage before the rename commits the name: a
	// crash must never atomically install an unwritten file.
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("twinsearch: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("twinsearch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("twinsearch: %w", err)
	}
	return nil
}

// OpenSaved reconstructs a TS-Index engine from a stream produced by
// SaveIndex. data must be the same series the index was built over, and
// opt must request MethodTSIndex with the same L and normalization; the
// stream's recorded parameters are authoritative and validated. The
// stream format decides whether the engine comes back sharded — a
// sharded save reopens sharded (with its saved partition) regardless of
// opt.Shards, and a single-index save reopens unsharded. All four
// magics are sniffed: the frozen formats load their flat arrays
// directly; the pointer-tree formats older versions wrote are frozen
// after loading.
func OpenSaved(data []float64, r io.Reader, opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if opt.Method != MethodTSIndex {
		return nil, ErrPersistUnsupported
	}
	e := newEngine(data, opt)

	br := bufio.NewReader(r)
	magic, err := br.Peek(len(shard.Magic))
	if err != nil {
		return nil, fmt.Errorf("twinsearch: reading saved index: %w", err)
	}
	savedL := 0
	switch string(magic) {
	case shard.Magic:
		sh, err := shard.Load(br, e.ext, e.ex)
		if err != nil {
			return nil, err
		}
		e.sh, savedL = sh, sh.L()
	case core.FrozenMagic:
		fz, err := core.LoadFrozen(br, e.ext)
		if err != nil {
			return nil, err
		}
		e.fz, savedL = fz, fz.L()
	default:
		ix, err := core.Load(br, e.ext)
		if err != nil {
			return nil, err
		}
		e.fz, savedL = ix.Freeze(), ix.L()
	}
	if savedL != opt.L {
		return nil, fmt.Errorf("twinsearch: saved index has L=%d, options request L=%d", savedL, opt.L)
	}
	return e, nil
}

// OpenSavedFile is OpenSaved from a file path. With Options.MMap it is
// the zero-copy open: the file is memory-mapped, the header validated,
// and every arena array pointed directly at the mapping — O(header)
// allocation however large the index, demand paging instead of an
// up-front read, and one physical copy shared across processes.
// Streams that predate the aligned formats (TSIX, TSFZ v1, TSSH v1/v2)
// and platforms without mmap fall back to the copy loader
// transparently; answers are byte-identical either way. Call
// Engine.Close when done — mapped engines hold the region until then.
func OpenSavedFile(data []float64, path string, opt Options) (*Engine, error) {
	if opt.MMap {
		eng, err := openSavedMapped(data, path, opt)
		if err == nil || !errors.Is(err, errNotMappable) {
			return eng, err
		}
		// Legacy stream or platform: the copy path serves it.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("twinsearch: %w", err)
	}
	defer f.Close()
	return OpenSaved(data, f, opt)
}

// errNotMappable marks saved indexes the zero-copy path cannot serve
// (pre-alignment formats, big-endian hosts, platforms without mmap);
// OpenSavedFile falls back to the copy loader for them.
var errNotMappable = errors.New("twinsearch: saved index cannot be mapped in place")

// openSavedMapped is the Options.MMap half of OpenSavedFile.
func openSavedMapped(data []float64, path string, opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if opt.Method != MethodTSIndex {
		return nil, ErrPersistUnsupported
	}
	if !arena.MapSupported() || !arena.LittleEndianHost() {
		return nil, errNotMappable
	}
	ar, err := arena.Map(path)
	if err != nil {
		// Runtime mapping failures (FUSE/network mounts without mmap,
		// mapping limits) fall back to the copy loader like the
		// compile-time checks above: the copy path either serves the
		// file or reports the real problem (e.g. file not found).
		return nil, fmt.Errorf("%w: %v", errNotMappable, err)
	}
	eng, err := engineFromArena(data, ar, opt)
	if err != nil {
		ar.Close()
		return nil, err
	}
	if opt.Prefetch {
		// Warm the mapping before the first query pays the page-fault
		// tail: advise the kernel, then touch a bounded prefix.
		ar.Prefetch(0)
	}
	return eng, nil
}

// engineFromArena builds an engine whose index arrays are views into
// ar. On success the engine owns ar (released by Engine.Close); on
// error the caller still owns it.
func engineFromArena(data []float64, ar *arena.Arena, opt Options) (*Engine, error) {
	buf := ar.Bytes()
	if len(buf) < 6 {
		return nil, fmt.Errorf("twinsearch: saved index truncated (%d bytes)", len(buf))
	}
	magic, version := string(buf[:4]), binary.LittleEndian.Uint16(buf[4:])
	e := newEngine(data, opt)
	savedL := 0
	switch {
	case magic == shard.Magic && version == shard.PersistVersion:
		sh, err := shard.OpenArena(ar, e.ext, e.ex)
		if err != nil {
			return nil, err
		}
		e.sh, savedL = sh, sh.L()
	case magic == core.FrozenMagic && version == core.FrozenVersion:
		fz, _, err := core.FrozenFromArena(ar, 0, e.ext)
		if err != nil {
			return nil, err
		}
		e.fz, savedL = fz, fz.L()
	case magic == shard.Magic || magic == core.FrozenMagic || magic == core.IndexMagic:
		return nil, errNotMappable // recognized, but a pre-alignment version
	default:
		return nil, fmt.Errorf("twinsearch: saved index has unknown magic %q", buf[:4])
	}
	if savedL != opt.L {
		return nil, fmt.Errorf("twinsearch: saved index has L=%d, options request L=%d", savedL, opt.L)
	}
	e.ar = ar
	return e, nil
}

// SearchShorter answers a twin query whose length is at most L using
// the existing TS-Index (no rebuild): node bounds are truncated to the
// query length — sound by the paper's closure property, see
// core.SearchPrefix — and the few trailing windows that exist only at
// the shorter length are scanned directly. Exact. Requires
// MethodTSIndex and a normalization other than NormPerSubsequence.
func (e *Engine) SearchShorter(q []float64, eps float64) ([]Match, error) {
	return e.SearchShorterCtx(context.Background(), q, eps)
}

// SearchShorterCtx is SearchShorter honoring cancellation (see
// SearchCtx) — the serving tier routes admitted prefix queries through
// it so queued work dies with the request.
func (e *Engine) SearchShorterCtx(ctx context.Context, q []float64, eps float64) ([]Match, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return nil, errors.New("twinsearch: SearchShorter requires MethodTSIndex")
	}
	// NaN slips past a plain eps < 0 check (NaN < 0 is false) and would
	// poison the early-abandoning comparisons; validate like Search.
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	ctx, qo := e.beginQuery(ctx, qpPrefix)
	r, err := e.searchCached(ctx, qcache.PathPrefix, q, eps, 0, func() (qcache.Result, error) {
		ms, err := e.searchShorterPreparedCtx(ctx, e.ext.TransformQuery(q), eps)
		return qcache.Result{Matches: ms}, err
	})
	e.endQuery(qo, err)
	return r.Matches, err
}

// searchShorterPreparedCtx dispatches a transformed prefix query to the
// engine's TS-Index backing.
func (e *Engine) searchShorterPreparedCtx(ctx context.Context, tq []float64, eps float64) ([]Match, error) {
	if e.cl != nil {
		return e.cl.SearchPrefix(ctx, tq, eps)
	}
	if e.sh != nil {
		return e.sh.SearchPrefixCtx(ctx, tq, eps)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.tsFrozen().SearchPrefix(tq, eps)
}

// SearchApprox probes at most leafBudget nearest leaves and returns a
// (possibly incomplete) subset of the twins, in microseconds. On a
// sharded engine the budget is one shared atomic allowance drawn by
// every shard's traversal, so it flows to whichever shards hold the
// nearest leaves. Requires MethodTSIndex and a positive leafBudget;
// Search is the exact counterpart.
func (e *Engine) SearchApprox(q []float64, eps float64, leafBudget int) ([]Match, error) {
	return e.SearchApproxCtx(context.Background(), q, eps, leafBudget)
}

// SearchApproxCtx is SearchApprox honoring cancellation (see
// SearchCtx) — the serving tier routes admitted approximate queries
// through it so queued work dies with the request. Note that on a
// sharded engine the probed subset is scheduling-dependent, so a cached
// answer reproduces one valid traversal, not necessarily the one a
// fresh call would take.
func (e *Engine) SearchApproxCtx(ctx context.Context, q []float64, eps float64, leafBudget int) ([]Match, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return nil, errors.New("twinsearch: SearchApprox requires MethodTSIndex")
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	if leafBudget <= 0 {
		return nil, fmt.Errorf("twinsearch: leaf budget %d; SearchApprox needs a positive number of leaf probes", leafBudget)
	}
	ctx, qo := e.beginQuery(ctx, qpApprox)
	tq, err := e.validateQueryCtx(ctx, q, eps)
	if err != nil {
		e.endQuery(qo, err)
		return nil, err
	}
	r, err := e.searchCached(ctx, qcache.PathApprox, q, eps, float64(leafBudget), func() (qcache.Result, error) {
		ms, err := e.searchApproxPreparedCtx(ctx, tq, eps, leafBudget)
		return qcache.Result{Matches: ms}, err
	})
	e.endQuery(qo, err)
	return r.Matches, err
}

// searchApproxPreparedCtx dispatches a transformed approximate query to
// the engine's TS-Index backing.
func (e *Engine) searchApproxPreparedCtx(ctx context.Context, tq []float64, eps float64, leafBudget int) ([]Match, error) {
	if e.cl != nil {
		ms, _, err := e.cl.SearchApprox(ctx, tq, eps, leafBudget)
		return ms, err
	}
	if e.sh != nil {
		ms, _, err := e.sh.SearchApproxCtx(ctx, tq, eps, leafBudget)
		return ms, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ms, _ := e.tsFrozen().SearchApprox(tq, eps, leafBudget)
	return ms, nil
}

// Append ingests new trailing values into the engine's series and
// indexes every window the growth completes — streaming support, an
// extension beyond the paper's static setting. Requires MethodTSIndex
// (the only index with incremental insertion). Under NormGlobal the
// appended values are normalized with the frozen original (mean, σ);
// see series.Extractor.Append. Do not call concurrently with searches.
// Under raw/per-subsequence modes the engine extends the slice passed
// to Open (reallocating when its capacity is exhausted); callers must
// not retain independent views past its original length.
//
// Searches run over the frozen arena, so insertion works on the
// mutable pointer tree (thawed from the arena on the first Append and
// kept resident — a streaming engine holds both forms). The arena is
// not recompiled here: Append only marks it stale, and the next search
// re-freezes once, so appending value by value costs the insertions
// alone however the appends are batched.
func (e *Engine) Append(values ...float64) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return errors.New("twinsearch: Append requires MethodTSIndex")
	}
	if e.cl != nil {
		return errors.New("twinsearch: a cluster-backed engine is read-only; append at the process that owns the index")
	}
	if len(values) == 0 {
		return nil
	}
	oldLen := e.ext.Len()
	e.ext.Append(values...)
	// Windows [oldLen-L+1, newLen-L] are newly complete.
	first := oldLen - e.opt.L + 1
	if first < 0 {
		first = 0
	}
	if e.sh == nil && e.ts == nil {
		e.ts = e.tsFrozen().Thaw()
	}
	for p := first; p+e.opt.L <= e.ext.Len(); p++ {
		if e.sh != nil {
			e.sh.Insert(p)
		} else {
			e.ts.Insert(p)
		}
	}
	if e.sh == nil {
		e.fzDirty.Store(true)
	}
	// The index content changed: bump the epoch before returning so no
	// consumer that observed the Append can build a result-cache key an
	// older answer satisfies (the server's /append handler relies on the
	// bump landing before its response is written).
	e.epoch.Add(1)
	return nil
}

type BatchResult struct {
	Query   int
	Matches []Match
	Err     error
}

// SearchBatch answers many queries concurrently over one engine —
// searches are read-only, so they parallelize perfectly (the direction
// ParIS/MESSI take iSAX, applied here at the workload level). On
// TS-Index engines the whole batch runs as one executor group of
// (shard, subtree) work units, and each unit traverses its subtree
// ONCE for the entire batch: a frame of the descent is (node, active
// query set), so every node's bounds stream through the distance
// kernels once per unit instead of once per query (see
// core.Frozen.SearchStatsBatchFrom). Validation and query
// transformation happen once per query, up front. Results arrive
// indexed by query position, identical to len(queries) calls to
// Search. parallelism ≤ 0 uses the engine's executor (see
// Options.Workers); a positive value caps the batch to a dedicated
// pool of exactly that many workers.
func (e *Engine) SearchBatch(queries [][]float64, eps float64, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if e.closed.Load() {
		for i := range out {
			out[i] = BatchResult{Query: i, Err: ErrClosed}
		}
		return out
	}
	if e.cl != nil {
		// Cluster fan-out is network-bound: plain per-query goroutines,
		// each fanning across the nodes with its own timeouts. (A batch
		// RPC that ships the whole query set to each node in one round
		// trip is the noted follow-on.)
		var wg sync.WaitGroup
		for i, q := range queries {
			tq, err := e.validateQuery(q, eps)
			if err != nil {
				out[i] = BatchResult{Query: i, Err: err}
				continue
			}
			wg.Add(1)
			//tsvet:ignore cluster fan-out is network-bound, not executor work
			go func(i int, tq []float64) {
				defer wg.Done()
				ms, err := e.cl.Search(context.Background(), tq, eps)
				out[i] = BatchResult{Query: i, Matches: ms, Err: err}
			}(i, tq)
		}
		wg.Wait()
		return out
	}
	ex := e.ex
	if parallelism > 0 {
		// More workers than queries would idle (each query's units can
		// already spread over the pool); the cap also keeps exec.New's
		// per-worker state proportional to real work.
		if parallelism > len(queries) {
			parallelism = len(queries)
		}
		ex = exec.New(parallelism)
	}

	// Validate up front; the batch traversals see valid queries only.
	valid := make([]int, 0, len(queries))
	tqs := make([][]float64, 0, len(queries))
	for i, q := range queries {
		tq, err := e.validateQuery(q, eps)
		if err != nil {
			out[i] = BatchResult{Query: i, Err: err}
			continue
		}
		valid = append(valid, i)
		tqs = append(tqs, tq)
	}
	if len(valid) == 0 {
		return out
	}

	g := ex.NewGroup()
	switch {
	case e.sh != nil:
		p := e.sh.QueueSearchBatch(g, tqs, eps)
		g.Wait()
		ms, _ := p.Resolve()
		for bi, i := range valid {
			out[i] = BatchResult{Query: i, Matches: ms[bi]}
		}
	case e.opt.Method == MethodTSIndex:
		// Unsharded arena: fan the batch over frontier subtrees so the
		// units spread across the pool like the sharded path's do.
		fz := e.tsFrozen()
		res := e.batchUnits(g, ex, fz, tqs, eps)
		g.Wait()
		for bi, i := range valid {
			var n int
			for _, unit := range res {
				n += len(unit[bi])
			}
			ms := make([]Match, 0, n)
			for _, unit := range res {
				ms = append(ms, unit[bi]...)
			}
			series.SortMatches(ms)
			out[i] = BatchResult{Query: i, Matches: ms}
		}
	default:
		// The scan methods have no tree to batch over; per-query tasks.
		for bi, i := range valid {
			tq := tqs[bi]
			g.Go(func(*exec.Ctx) {
				ms, err := e.searchPreparedCtx(context.Background(), tq, eps)
				out[i] = BatchResult{Query: i, Matches: ms, Err: err}
			})
		}
		g.Wait()
	}
	return out
}

// batchUnits enqueues one batch range-search task per frontier subtree
// of fz into g and returns the per-unit result table ([unit][query],
// batch traversal order). The frontier target mirrors the shard
// layer's over-provisioning so stealing can even out skewed subtrees.
func (e *Engine) batchUnits(g *exec.Group, ex *exec.Executor, fz *core.Frozen, tqs [][]float64, eps float64) [][][]series.Match {
	w := ex.Workers()
	units := fz.Frontier(4 * w)
	res := make([][][]series.Match, len(units))
	for j, u := range units {
		g.Go(func(*exec.Ctx) {
			res[j], _ = fz.SearchStatsBatchFrom(u, tqs, eps)
		})
	}
	return res
}

// SearchTopKBatch answers many top-k queries over one engine with a
// single batched fan-out: each (shard, subtree) work unit descends
// once for the whole batch, every query keeps its own cross-unit
// pruning bound, and candidate windows are extracted once per leaf for
// all queries alive there. Results arrive indexed by query position,
// identical to len(queries) calls to SearchTopK. Requires
// MethodTSIndex, like SearchTopK.
func (e *Engine) SearchTopKBatch(queries [][]float64, k int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if e.closed.Load() {
		for i := range out {
			out[i] = BatchResult{Query: i, Err: ErrClosed}
		}
		return out
	}
	if e.opt.Method != MethodTSIndex {
		for i := range out {
			out[i] = BatchResult{Query: i, Err: ErrTopKUnsupported}
		}
		return out
	}
	if e.cl != nil {
		// Network-bound, like SearchBatch's cluster path.
		var wg sync.WaitGroup
		for i, q := range queries {
			if len(q) != e.opt.L {
				out[i] = BatchResult{Query: i, Err: fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)}
				continue
			}
			wg.Add(1)
			//tsvet:ignore cluster fan-out is network-bound, not executor work
			go func(i int, tq []float64) {
				defer wg.Done()
				ms, err := e.cl.SearchTopK(context.Background(), tq, k)
				out[i] = BatchResult{Query: i, Matches: ms, Err: err}
			}(i, e.ext.TransformQuery(q))
		}
		wg.Wait()
		return out
	}

	valid := make([]int, 0, len(queries))
	tqs := make([][]float64, 0, len(queries))
	for i, q := range queries {
		if len(q) != e.opt.L {
			out[i] = BatchResult{Query: i, Err: fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)}
			continue
		}
		valid = append(valid, i)
		tqs = append(tqs, e.ext.TransformQuery(q))
	}
	if len(valid) == 0 {
		return out
	}

	var ms [][]Match
	if e.sh != nil {
		ms = e.sh.SearchTopKBatch(tqs, k)
	} else {
		// Parity target is the unsharded SearchTopK — a single
		// traversal — so the batch form is one descent from the root.
		ms = e.tsFrozen().SearchTopKBatch(tqs, k)
	}
	for bi, i := range valid {
		out[i] = BatchResult{Query: i, Matches: ms[bi]}
	}
	return out
}
