package twinsearch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// ErrPersistUnsupported is returned by SaveIndex for methods other than
// TS-Index.
var ErrPersistUnsupported = errors.New("twinsearch: index persistence requires MethodTSIndex")

// SaveIndex serializes a built TS-Index so a later process can reopen it
// against the same series without paying construction again (see
// OpenSaved). Only MethodTSIndex engines support it. Both sharded and
// single-index engines write their frozen arenas — the flat arrays go
// to disk as-is, so loading is a few sequential reads per shard;
// OpenSaved also accepts the pointer-tree formats older versions wrote.
func (e *Engine) SaveIndex(w io.Writer) error {
	if e.opt.Method != MethodTSIndex {
		return ErrPersistUnsupported
	}
	if e.sh != nil {
		_, err := e.sh.WriteTo(w)
		return err
	}
	_, err := e.tsFrozen().WriteTo(w)
	return err
}

// SaveIndexFile is SaveIndex to a file path.
func (e *Engine) SaveIndexFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("twinsearch: %w", err)
	}
	if err := e.SaveIndex(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenSaved reconstructs a TS-Index engine from a stream produced by
// SaveIndex. data must be the same series the index was built over, and
// opt must request MethodTSIndex with the same L and normalization; the
// stream's recorded parameters are authoritative and validated. The
// stream format decides whether the engine comes back sharded — a
// sharded save reopens sharded (with its saved partition) regardless of
// opt.Shards, and a single-index save reopens unsharded. All four
// magics are sniffed: the frozen formats load their flat arrays
// directly; the pointer-tree formats older versions wrote are frozen
// after loading.
func OpenSaved(data []float64, r io.Reader, opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if opt.Method != MethodTSIndex {
		return nil, ErrPersistUnsupported
	}
	e := &Engine{opt: opt, ext: series.NewExtractor(data, opt.Norm), ex: exec.New(opt.Workers)}

	br := bufio.NewReader(r)
	magic, err := br.Peek(len(shard.Magic))
	if err != nil {
		return nil, fmt.Errorf("twinsearch: reading saved index: %w", err)
	}
	savedL := 0
	switch string(magic) {
	case shard.Magic:
		sh, err := shard.Load(br, e.ext, e.ex)
		if err != nil {
			return nil, err
		}
		e.sh, savedL = sh, sh.L()
	case core.FrozenMagic:
		fz, err := core.LoadFrozen(br, e.ext)
		if err != nil {
			return nil, err
		}
		e.fz, savedL = fz, fz.L()
	default:
		ix, err := core.Load(br, e.ext)
		if err != nil {
			return nil, err
		}
		e.fz, savedL = ix.Freeze(), ix.L()
	}
	if savedL != opt.L {
		return nil, fmt.Errorf("twinsearch: saved index has L=%d, options request L=%d", savedL, opt.L)
	}
	return e, nil
}

// OpenSavedFile is OpenSaved from a file path.
func OpenSavedFile(data []float64, path string, opt Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("twinsearch: %w", err)
	}
	defer f.Close()
	return OpenSaved(data, f, opt)
}

// SearchShorter answers a twin query whose length is at most L using
// the existing TS-Index (no rebuild): node bounds are truncated to the
// query length — sound by the paper's closure property, see
// core.SearchPrefix — and the few trailing windows that exist only at
// the shorter length are scanned directly. Exact. Requires
// MethodTSIndex and a normalization other than NormPerSubsequence.
func (e *Engine) SearchShorter(q []float64, eps float64) ([]Match, error) {
	if e.opt.Method != MethodTSIndex {
		return nil, errors.New("twinsearch: SearchShorter requires MethodTSIndex")
	}
	// NaN slips past a plain eps < 0 check (NaN < 0 is false) and would
	// poison the early-abandoning comparisons; validate like Search.
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	if e.sh != nil {
		return e.sh.SearchPrefix(e.ext.TransformQuery(q), eps)
	}
	return e.tsFrozen().SearchPrefix(e.ext.TransformQuery(q), eps)
}

// SearchApprox probes at most leafBudget nearest leaves and returns a
// (possibly incomplete) subset of the twins, in microseconds. On a
// sharded engine the budget is one shared atomic allowance drawn by
// every shard's traversal, so it flows to whichever shards hold the
// nearest leaves. Requires MethodTSIndex and a positive leafBudget;
// Search is the exact counterpart.
func (e *Engine) SearchApprox(q []float64, eps float64, leafBudget int) ([]Match, error) {
	if e.opt.Method != MethodTSIndex {
		return nil, errors.New("twinsearch: SearchApprox requires MethodTSIndex")
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	if leafBudget <= 0 {
		return nil, fmt.Errorf("twinsearch: leaf budget %d; SearchApprox needs a positive number of leaf probes", leafBudget)
	}
	if len(q) != e.opt.L {
		return nil, fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)
	}
	if e.sh != nil {
		ms, _ := e.sh.SearchApprox(e.ext.TransformQuery(q), eps, leafBudget)
		return ms, nil
	}
	ms, _ := e.tsFrozen().SearchApprox(e.ext.TransformQuery(q), eps, leafBudget)
	return ms, nil
}

// Append ingests new trailing values into the engine's series and
// indexes every window the growth completes — streaming support, an
// extension beyond the paper's static setting. Requires MethodTSIndex
// (the only index with incremental insertion). Under NormGlobal the
// appended values are normalized with the frozen original (mean, σ);
// see series.Extractor.Append. Do not call concurrently with searches.
// Under raw/per-subsequence modes the engine extends the slice passed
// to Open (reallocating when its capacity is exhausted); callers must
// not retain independent views past its original length.
//
// Searches run over the frozen arena, so insertion works on the
// mutable pointer tree (thawed from the arena on the first Append and
// kept resident — a streaming engine holds both forms). The arena is
// not recompiled here: Append only marks it stale, and the next search
// re-freezes once, so appending value by value costs the insertions
// alone however the appends are batched.
func (e *Engine) Append(values ...float64) error {
	if e.opt.Method != MethodTSIndex {
		return errors.New("twinsearch: Append requires MethodTSIndex")
	}
	if len(values) == 0 {
		return nil
	}
	oldLen := e.ext.Len()
	e.ext.Append(values...)
	// Windows [oldLen-L+1, newLen-L] are newly complete.
	first := oldLen - e.opt.L + 1
	if first < 0 {
		first = 0
	}
	if e.sh == nil && e.ts == nil {
		e.ts = e.tsFrozen().Thaw()
	}
	for p := first; p+e.opt.L <= e.ext.Len(); p++ {
		if e.sh != nil {
			e.sh.Insert(p)
		} else {
			e.ts.Insert(p)
		}
	}
	if e.sh == nil {
		e.fzDirty.Store(true)
	}
	return nil
}

type BatchResult struct {
	Query   int
	Matches []Match
	Err     error
}

// SearchBatch answers many queries concurrently over one engine —
// searches are read-only, so they parallelize perfectly (the direction
// ParIS/MESSI take iSAX, applied here at the workload level). The whole
// batch runs as one executor group: on a sharded engine every
// (query, shard, subtree) work unit is a peer in the same worker pool,
// so there is no query pool nested above a shard pool and no idle
// workers while one slow query's hot shard finishes. Validation and
// query transformation happen once per query, up front; the work units
// share the transformed query. Results arrive indexed by query
// position. parallelism ≤ 0 uses the engine's executor (see
// Options.Workers); a positive value caps the batch to a dedicated
// pool of exactly that many workers.
func (e *Engine) SearchBatch(queries [][]float64, eps float64, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	ex := e.ex
	if parallelism > 0 {
		// More workers than queries would idle (each query's units can
		// already spread over the pool); the cap also keeps exec.New's
		// per-worker state proportional to real work.
		if parallelism > len(queries) {
			parallelism = len(queries)
		}
		ex = exec.New(parallelism)
	}
	g := ex.NewGroup()
	type pending struct {
		i int
		p *shard.PendingSearch
	}
	var pendings []pending
	for i, q := range queries {
		tq, err := e.validateQuery(q, eps)
		if err != nil {
			out[i] = BatchResult{Query: i, Err: err}
			continue
		}
		if e.sh != nil {
			pendings = append(pendings, pending{i, e.sh.QueueSearch(g, tq, eps)})
			continue
		}
		g.Go(func(*exec.Ctx) {
			out[i] = BatchResult{Query: i, Matches: e.searchPrepared(tq, eps)}
		})
	}
	g.Wait()
	for _, pd := range pendings {
		ms, _ := pd.p.Resolve()
		out[pd.i] = BatchResult{Query: pd.i, Matches: ms}
	}
	return out
}
