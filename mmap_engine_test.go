package twinsearch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// savedStreams produces one saved-index stream per historical format
// over the same series, oldest first: TSIX (v0 pointer tree), TSFZ v1,
// TSSH v1 (pointer shards), TSSH v2 (TSFZ v1 shards), and the current
// TSFZ v2 / TSSH v3 the engine writes today.
func savedStreams(t *testing.T, data []float64, l int) map[string][]byte {
	t.Helper()
	ext := series.NewExtractor(data, series.NormGlobal)
	ix, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	count := series.NumSubsequences(len(data), l)
	bounds := []int{0, count / 2, count}
	shardTrees := make([]*core.Index, len(bounds)-1)
	for i := range shardTrees {
		if shardTrees[i], err = core.BuildRange(ext, core.Config{L: l}, bounds[i], bounds[i+1]); err != nil {
			t.Fatal(err)
		}
	}

	streams := map[string][]byte{}
	write := func(name string, fn func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		streams[name] = buf.Bytes()
	}
	write("TSIX", func(w *bytes.Buffer) error { _, err := ix.WriteTo(w); return err })
	write("TSFZ v1", func(w *bytes.Buffer) error { _, err := ix.Freeze().WriteLegacyV1(w); return err })
	write("TSSH v1", func(w *bytes.Buffer) error {
		bw := bufio.NewWriter(w)
		bw.WriteString("TSSH")
		binary.Write(bw, binary.LittleEndian, uint16(1))
		binary.Write(bw, binary.LittleEndian, uint32(len(shardTrees)))
		for _, b := range bounds {
			binary.Write(bw, binary.LittleEndian, uint64(b))
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for _, sx := range shardTrees {
			if _, err := sx.WriteTo(w); err != nil {
				return err
			}
		}
		return nil
	})
	write("TSSH v2", func(w *bytes.Buffer) error {
		bw := bufio.NewWriter(w)
		bw.WriteString("TSSH")
		binary.Write(bw, binary.LittleEndian, uint16(2))
		bw.WriteByte(0) // contiguous partition
		binary.Write(bw, binary.LittleEndian, uint32(len(shardTrees)))
		for _, b := range bounds {
			binary.Write(bw, binary.LittleEndian, uint64(b))
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for _, sx := range shardTrees {
			if _, err := sx.Freeze().WriteLegacyV1(w); err != nil {
				return err
			}
		}
		return nil
	})

	single, err := Open(data, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	write("TSFZ v2", func(w *bytes.Buffer) error { return single.SaveIndex(w) })
	sharded, err := Open(data, Options{L: l, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	write("TSSH v3", func(w *bytes.Buffer) error { return sharded.SaveIndex(w) })
	return streams
}

// checkEngineParity requires got to answer exactly like want on every
// engine search path.
func checkEngineParity(t *testing.T, label string, want, got *Engine, q []float64, eps float64) {
	t.Helper()
	type path struct {
		name string
		run  func(e *Engine) ([]Match, error)
	}
	budget := want.NumSubsequences() // exhaustive: approx is deterministic
	paths := []path{
		{"Search", func(e *Engine) ([]Match, error) { return e.Search(q, eps) }},
		{"SearchTopK", func(e *Engine) ([]Match, error) { return e.SearchTopK(q, 8) }},
		{"SearchShorter", func(e *Engine) ([]Match, error) { return e.SearchShorter(q[:len(q)/2], eps) }},
		{"SearchApprox", func(e *Engine) ([]Match, error) { return e.SearchApprox(q, eps, budget) }},
		{"SearchBatch", func(e *Engine) ([]Match, error) {
			rs := e.SearchBatch([][]float64{q}, eps, 0)
			return rs[0].Matches, rs[0].Err
		}},
	}
	for _, p := range paths {
		w, werr := p.run(want)
		g, gerr := p.run(got)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s/%s: errors diverged: %v vs %v", label, p.name, werr, gerr)
		}
		if len(w) != len(g) {
			t.Fatalf("%s/%s: %d vs %d matches", label, p.name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s/%s: match %d differs: %v vs %v", label, p.name, i, g[i], w[i])
			}
		}
	}
}

// TestSavedFormatMatrix opens every historical stream format through
// both entry points — OpenSaved (copy) and OpenSavedFile with
// Options.MMap (zero-copy where the format allows, transparent
// fallback where it doesn't) — and requires byte-identical answers to
// a freshly built engine on all five search paths.
func TestSavedFormatMatrix(t *testing.T) {
	data := datasets.RandomWalk(83, 1700)
	const l = 44
	fresh, err := Open(data, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), data[500:500+l]...)
	dir := t.TempDir()

	for name, stream := range savedStreams(t, data, l) {
		t.Run(name, func(t *testing.T) {
			viaCopy, err := OpenSaved(data, bytes.NewReader(stream), Options{L: l})
			if err != nil {
				t.Fatalf("OpenSaved: %v", err)
			}
			checkEngineParity(t, name+"/copy", fresh, viaCopy, q, 0.5)

			path := filepath.Join(dir, name+".tsidx")
			if err := os.WriteFile(path, stream, 0o644); err != nil {
				t.Fatal(err)
			}
			viaMMap, err := OpenSavedFile(data, path, Options{L: l, MMap: true})
			if err != nil {
				t.Fatalf("OpenSavedFile(MMap): %v", err)
			}
			defer viaMMap.Close()
			mappable := name == "TSFZ v2" || name == "TSSH v3"
			if arena.MapSupported() && arena.LittleEndianHost() {
				if mappable && viaMMap.MappedBytes() == 0 {
					t.Errorf("%s: MMap open of a mappable format reports no mapped bytes", name)
				}
				if !mappable && viaMMap.MappedBytes() != 0 {
					t.Errorf("%s: MMap open of a legacy format reports %d mapped bytes", name, viaMMap.MappedBytes())
				}
			}
			if viaMMap.MemoryBytes() != viaMMap.HeapBytes()+viaMMap.MappedBytes() {
				t.Errorf("%s: MemoryBytes %d != HeapBytes %d + MappedBytes %d",
					name, viaMMap.MemoryBytes(), viaMMap.HeapBytes(), viaMMap.MappedBytes())
			}
			checkEngineParity(t, name+"/mmap", fresh, viaMMap, q, 0.5)
		})
	}
}

// TestMMapEngineAppendAndClose exercises the mutation path on a mapped
// engine: Append must copy-on-thaw (never write through the mapping),
// the refrozen shard must migrate to the heap, and Close must release
// cleanly and stay idempotent.
func TestMMapEngineAppendAndClose(t *testing.T) {
	if !arena.MapSupported() || !arena.LittleEndianHost() {
		t.Skip("zero-copy open unsupported on this platform")
	}
	data := datasets.RandomWalk(84, 1500)
	const l = 36
	built, err := Open(data, Options{L: l, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.tssh")
	if err := built.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The engine must not alias the slice the caller handed it once
	// appends grow the series; give it a private copy.
	eng, err := OpenSavedFile(append([]float64(nil), data...), path, Options{L: l, Shards: 3, MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	mappedBefore := eng.MappedBytes()
	if mappedBefore == 0 {
		t.Fatal("mapped engine reports no mapped bytes")
	}
	q := append([]float64(nil), data[100:100+l]...)
	want, err := eng.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Append a copy of the query window's values: the new trailing
	// window becomes a guaranteed twin.
	if err := eng.Append(q...); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 {
		t.Fatalf("post-append search found %d twins, want %d", len(got), len(want)+1)
	}
	if got[len(got)-1].Start != eng.SeriesLen()-l {
		t.Fatalf("appended twin missing: last match at %d, want %d", got[len(got)-1].Start, eng.SeriesLen()-l)
	}
	if eng.MappedBytes() >= mappedBefore {
		t.Fatalf("append did not migrate the mutated shard off the mapping (%d >= %d)", eng.MappedBytes(), mappedBefore)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("append wrote through the mapped index file")
	}

	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSaveOverMappedFile re-saves a mapped engine over the very file
// it is mapped from: SaveIndexFile's temp-and-rename must read the old
// inode (no truncation under the mapping, no SIGBUS) and leave a valid
// index behind.
func TestSaveOverMappedFile(t *testing.T) {
	if !arena.MapSupported() || !arena.LittleEndianHost() {
		t.Skip("zero-copy open unsupported on this platform")
	}
	data := datasets.RandomWalk(86, 1400)
	const l = 36
	built, err := Open(data, Options{L: l, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.tssh")
	if err := built.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenSavedFile(append([]float64(nil), data...), path, Options{L: l, MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := append([]float64(nil), data[200:200+l]...)
	want, err := eng.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the engine, then save over its own backing file.
	if err := eng.Append(q...); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndexFile(path); err != nil {
		t.Fatalf("re-save over the mapped file: %v", err)
	}
	// The mapped engine keeps answering from the old inode...
	got, err := eng.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 {
		t.Fatalf("post-save search found %d twins, want %d", len(got), len(want)+1)
	}
	// ...and the new file reopens as a valid index including the append.
	re, err := OpenSavedFile(append(append([]float64(nil), data...), q...), path, Options{L: l, MMap: true})
	if err != nil {
		t.Fatalf("reopening the re-saved index: %v", err)
	}
	defer re.Close()
	ms, err := re.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(want)+1 {
		t.Fatalf("re-saved index has %d twins, want %d", len(ms), len(want)+1)
	}
}

// BenchmarkColdOpen measures bringing a saved sharded index back to
// life, copy versus mmap. The interesting columns are ns/op and B/op:
// the copy open decodes and allocates the whole arena, the mmap open
// allocates O(header) for the index and lets the first queries fault
// pages in. Both variants share an O(series) floor — the engine's
// extractor z-normalizes the raw series into a fresh slice — so the
// index-side contrast is (B/op − seriesBytes): O(arena) for copy,
// O(header) for mmap (the harness FigureColdOpen isolates it exactly).
func BenchmarkColdOpen(b *testing.B) {
	data := datasets.RandomWalk(85, 200_000)
	const l = 100
	eng, err := Open(data, Options{L: l, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "index.tssh")
	if err := eng.SaveIndexFile(path); err != nil {
		b.Fatal(err)
	}
	q := append([]float64(nil), data[1000:1000+l]...)

	for _, variant := range []struct {
		name  string
		mmap  bool
		query bool
	}{
		{"copy/open", false, false},
		{"mmap/open", true, false},
		{"copy/open+query", false, true},
		{"mmap/open+query", true, true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				re, err := OpenSavedFile(data, path, Options{L: l, MMap: variant.mmap})
				if err != nil {
					b.Fatal(err)
				}
				if variant.query {
					if _, err := re.Search(q, 0.3); err != nil {
						b.Fatal(err)
					}
				}
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ExampleOptions_mMap documents the zero-copy serving pattern.
func ExampleOptions_mMap() {
	data := datasets.RandomWalk(1, 2000)
	eng, _ := Open(data, Options{L: 50, Shards: 2})
	path := filepath.Join(os.TempDir(), "twins-example.tssh")
	_ = eng.SaveIndexFile(path)
	defer os.Remove(path)

	// A second process (or a restart) serves the same index without
	// re-reading it: open is a map + header validation.
	served, _ := OpenSavedFile(data, path, Options{L: 50, MMap: true})
	defer served.Close()
	ms, _ := served.Search(data[100:150], 0.5)
	fmt.Println(len(ms) > 0)
	// Output: true
}
