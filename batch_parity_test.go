package twinsearch

// Batch/per-query parity: SearchBatch and SearchTopKBatch must be
// byte-identical (Start and the exact Dist bit pattern, order included)
// to per-query Search/SearchTopK on every engine search path — the
// unsharded frozen arena, contiguous and mean-partitioned shards at two
// shard counts, an mmap-opened saved index, and a local-topology
// cluster engine — under every normalization mode. Run under -race this
// also exercises the batch fan-out's concurrent unit writes.

import (
	"fmt"
	"math"
	"os"
	"testing"

	"twinsearch/internal/datasets"
)

func matchListsEq(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start ||
			math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// parityEngines opens one engine per search path over the same data and
// normalization; every engine must answer every query identically.
func parityEngines(t *testing.T, ts []float64, l int, norm NormMode) map[string]*Engine {
	return parityEnginesMod(t, ts, l, norm, nil)
}

// parityEnginesMod is parityEngines with an Options hook applied to
// every engine — the serving-cache differential tests use it to open
// the same path set with the caches enabled.
func parityEnginesMod(t *testing.T, ts []float64, l int, norm NormMode, mod func(*Options)) map[string]*Engine {
	t.Helper()
	open := func(o Options) *Engine {
		t.Helper()
		if mod != nil {
			mod(&o)
		}
		eng, err := Open(ts, o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}
	engines := map[string]*Engine{
		"unsharded": open(Options{L: l, Norm: norm, NormSet: true}),
		"sharded3":  open(Options{L: l, Norm: norm, NormSet: true, Shards: 3}),
		"sharded5":  open(Options{L: l, Norm: norm, NormSet: true, Shards: 5}),
		"byMean3":   open(Options{L: l, Norm: norm, NormSet: true, Shards: 3, PartitionByMean: true}),
	}

	// mmap-opened saved index (unsharded arena through the byte-backed
	// open path — a different boundsUpper/boundsLower backing).
	dir := t.TempDir()
	src := engines["unsharded"]
	idx := dir + "/parity.tsix"
	if err := src.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	mmOpt := Options{L: l, Norm: norm, NormSet: true, MMap: true}
	if mod != nil {
		mod(&mmOpt)
	}
	mm, err := OpenSavedFile(ts, idx, mmOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	engines["mmap"] = mm

	// Local-topology cluster: sharded save fanned over two in-process
	// nodes — the coordinator path with zero network.
	shardedSrc, err := Open(ts, Options{L: l, Norm: norm, NormSet: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	topo := writeTopologyFor(t, shardedSrc, 4, 2)
	clOpt := Options{L: l, Norm: norm, NormSet: true, Topology: topo, MMap: true}
	if mod != nil {
		mod(&clOpt)
	}
	cl, err := Open(ts, clOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	engines["cluster"] = cl
	return engines
}

func TestSearchBatchParity(t *testing.T) {
	ts := datasets.InsectN(23, 6000)
	const l = 64
	queries := datasets.Queries(ts, 29, 6, l)
	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		t.Run(fmt.Sprint(norm), func(t *testing.T) {
			for name, eng := range parityEngines(t, ts, l, norm) {
				for _, eps := range []float64{0.15, 0.6} {
					want := make([][]Match, len(queries))
					for i, q := range queries {
						ms, err := eng.Search(q, eps)
						if err != nil {
							t.Fatalf("%s: Search: %v", name, err)
						}
						want[i] = ms
					}
					for _, par := range []int{0, 2} {
						got := eng.SearchBatch(queries, eps, par)
						for i, r := range got {
							if r.Err != nil || r.Query != i {
								t.Fatalf("%s eps=%v par=%d query %d: %+v", name, eps, par, i, r)
							}
							if !matchListsEq(r.Matches, want[i]) {
								t.Fatalf("%s eps=%v par=%d query %d: batch %d matches, per-query %d",
									name, eps, par, i, len(r.Matches), len(want[i]))
							}
						}
					}
				}
			}
		})
	}
}

func TestSearchTopKBatchParity(t *testing.T) {
	ts := datasets.EEGN(31, 6000)
	const l = 64
	queries := datasets.Queries(ts, 37, 5, l)
	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		t.Run(fmt.Sprint(norm), func(t *testing.T) {
			for name, eng := range parityEngines(t, ts, l, norm) {
				for _, k := range []int{1, 9} {
					for i, q := range queries {
						want, err := eng.SearchTopK(q, k)
						if err != nil {
							t.Fatalf("%s: SearchTopK: %v", name, err)
						}
						got := eng.SearchTopKBatch(queries, k)
						if got[i].Err != nil || got[i].Query != i {
							t.Fatalf("%s k=%d query %d: %+v", name, k, i, got[i])
						}
						if !matchListsEq(got[i].Matches, want) {
							t.Fatalf("%s k=%d query %d: batch top-k differs from per-query", name, k, i)
						}
					}
				}
			}
		})
	}
}

// TestSearchTopKBatchErrors pins the batch top-k error contract:
// closed engines, unsupported methods, and per-query validation all
// surface per entry without disturbing valid neighbors.
func TestSearchTopKBatchErrors(t *testing.T) {
	ts := datasets.RandomWalk(41, 3000)
	eng, err := Open(ts, Options{L: 50})
	if err != nil {
		t.Fatal(err)
	}
	good := append([]float64(nil), ts[100:150]...)
	out := eng.SearchTopKBatch([][]float64{good, make([]float64, 7)}, 3)
	if out[0].Err != nil || len(out[0].Matches) != 3 {
		t.Fatalf("valid query alongside invalid one: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("short query must carry its error")
	}
	if out := eng.SearchTopKBatch(nil, 3); len(out) != 0 {
		t.Fatal("empty batch must be empty")
	}

	sweep, err := Open(ts, Options{L: 50, Method: MethodSweepline})
	if err != nil {
		t.Fatal(err)
	}
	if out := sweep.SearchTopKBatch([][]float64{good}, 3); out[0].Err == nil {
		t.Fatal("non-TS-Index engine must report ErrTopKUnsupported")
	}

	eng.Close()
	if out := eng.SearchTopKBatch([][]float64{good}, 3); out[0].Err != ErrClosed {
		t.Fatalf("closed engine returned %v", out[0].Err)
	}
}

// writeTopologyFor saves eng (already sharded) and a topology whose
// entries all resolve in-process — writeTopology generalized to any
// prebuilt engine so parity tests control the normalization mode.
func writeTopologyFor(t *testing.T, eng *Engine, shards, nodes int) string {
	t.Helper()
	dir := t.TempDir()
	idx := dir + "/idx.tsidx"
	if err := eng.SaveIndexFile(idx); err != nil {
		t.Fatal(err)
	}
	doc := fmt.Sprintf(`{"index": "idx.tsidx", "nodes": [`)
	for i := 0; i < nodes; i++ {
		if i > 0 {
			doc += ","
		}
		run := ""
		for s := i * shards / nodes; s < (i+1)*shards/nodes; s++ {
			if run != "" {
				run += ","
			}
			run += fmt.Sprint(s)
		}
		doc += fmt.Sprintf(`{"name": "n%d", "addr": "local", "shards": [%s]}`, i, run)
	}
	doc += "]}"
	path := dir + "/topo.json"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
