package twinsearch

import (
	"bytes"
	"path/filepath"
	"testing"

	"twinsearch/internal/datasets"
)

func TestSaveOpenSavedRoundTrip(t *testing.T) {
	ts := datasets.EEGN(21, 8000)
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	got, err := OpenSaved(ts, &buf, Options{L: 100})
	if err != nil {
		t.Fatalf("OpenSaved: %v", err)
	}
	q := append([]float64(nil), ts[2000:2100]...)
	a, _ := eng.Search(q, 0.3)
	b, _ := got.Search(q, 0.3)
	if len(a) != len(b) {
		t.Fatalf("reloaded engine disagrees: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start {
			t.Fatalf("result %d differs", i)
		}
	}
	// Top-k works on the reloaded engine too.
	top, err := got.SearchTopK(q, 3)
	if err != nil || len(top) != 3 || top[0].Start != 2000 {
		t.Fatalf("top-k on reloaded engine: %v %v", top, err)
	}
}

func TestSaveIndexFileRoundTrip(t *testing.T) {
	ts := datasets.RandomWalk(5, 3000)
	eng, err := Open(ts, Options{L: 50, Norm: NormPerSubsequence, NormSet: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.tsix")
	if err := eng.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSavedFile(ts, path, Options{L: 50, Norm: NormPerSubsequence, NormSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSubsequences() != eng.NumSubsequences() {
		t.Fatal("window count differs after reload")
	}
}

func TestSaveErrors(t *testing.T) {
	ts := datasets.RandomWalk(1, 1000)
	sw, _ := Open(ts, Options{L: 50, Method: MethodSweepline})
	var buf bytes.Buffer
	if err := sw.SaveIndex(&buf); err != ErrPersistUnsupported {
		t.Fatalf("err = %v, want ErrPersistUnsupported", err)
	}
	if _, err := OpenSaved(ts, &buf, Options{L: 50, Method: MethodISAX}); err != ErrPersistUnsupported {
		t.Fatalf("err = %v, want ErrPersistUnsupported", err)
	}
	eng, _ := Open(ts, Options{L: 50})
	buf.Reset()
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong L in options.
	if _, err := OpenSaved(ts, &buf, Options{L: 60}); err == nil {
		t.Fatal("want L mismatch error")
	}
	if _, err := OpenSavedFile(ts, filepath.Join(t.TempDir(), "missing"), Options{L: 50}); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestAppendStreaming(t *testing.T) {
	full := datasets.EEGN(77, 6000)
	for _, norm := range []NormMode{NormNone, NormPerSubsequence} {
		grown, err := Open(append([]float64(nil), full[:4000]...), Options{L: 100, Norm: norm, NormSet: true})
		if err != nil {
			t.Fatal(err)
		}
		// Stream the rest in uneven chunks.
		for at := 4000; at < len(full); {
			end := at + 1 + (at % 700)
			if end > len(full) {
				end = len(full)
			}
			if err := grown.Append(full[at:end]...); err != nil {
				t.Fatal(err)
			}
			at = end
		}
		fresh, err := Open(full, Options{L: 100, Norm: norm, NormSet: true})
		if err != nil {
			t.Fatal(err)
		}
		if grown.NumSubsequences() != fresh.NumSubsequences() {
			t.Fatalf("norm=%v: %d vs %d windows", norm, grown.NumSubsequences(), fresh.NumSubsequences())
		}
		// Queries over old and new regions agree with a fresh build.
		for _, p := range []int{500, 3950, 5800} {
			q := append([]float64(nil), full[p:p+100]...)
			a, _ := grown.Search(q, 0.4)
			b, _ := fresh.Search(q, 0.4)
			if len(a) != len(b) {
				t.Fatalf("norm=%v p=%d: %d vs %d results", norm, p, len(a), len(b))
			}
			for i := range a {
				if a[i].Start != b[i].Start {
					t.Fatalf("norm=%v p=%d: result %d differs", norm, p, i)
				}
			}
		}
	}
}

func TestAppendGlobalFrozenBasis(t *testing.T) {
	// Under NormGlobal the appended region is normalized with the frozen
	// basis, so results must match a sweepline over the SAME extractor —
	// not necessarily a fresh rebuild (whose basis would shift).
	full := datasets.RandomWalk(78, 3000)
	eng, err := Open(append([]float64(nil), full[:2500]...), Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Append(full[2500:]...); err != nil {
		t.Fatal(err)
	}
	if eng.SeriesLen() != 3000 {
		t.Fatalf("SeriesLen = %d", eng.SeriesLen())
	}
	q := append([]float64(nil), full[2700:2800]...)
	ms, err := eng.Search(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Start == 2700 {
			found = true
		}
	}
	if !found {
		t.Fatal("query over appended region must find itself")
	}
}

func TestAppendErrorsAndNoop(t *testing.T) {
	ts := datasets.RandomWalk(1, 1000)
	sw, _ := Open(ts, Options{L: 50, Method: MethodSweepline})
	if err := sw.Append(1, 2, 3); err == nil {
		t.Fatal("Append on sweepline must fail")
	}
	eng, _ := Open(ts, Options{L: 50})
	if err := eng.Append(); err != nil {
		t.Fatalf("empty append should be a no-op: %v", err)
	}
}

func TestSearchShorterAndApprox(t *testing.T) {
	ts := datasets.EEGN(31, 10000)
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	qFull := append([]float64(nil), ts[4000:4100]...)
	qShort := qFull[:40]

	short, err := eng.SearchShorter(qShort, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	swp, _ := Open(ts, Options{L: 40, Method: MethodSweepline})
	want, _ := swp.Search(qShort, 0.3)
	if len(short) != len(want) {
		t.Fatalf("SearchShorter: %d vs sweepline %d", len(short), len(want))
	}

	approx, err := eng.SearchApprox(qFull, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := eng.Search(qFull, 0.3)
	exactSet := map[int]bool{}
	for _, m := range exact {
		exactSet[m.Start] = true
	}
	for _, m := range approx {
		if !exactSet[m.Start] {
			t.Fatalf("approx hit %d not in exact set", m.Start)
		}
	}

	// Unsupported combinations.
	if _, err := swp.SearchShorter(qShort, 0.3); err == nil {
		t.Fatal("SearchShorter on sweepline must fail")
	}
	if _, err := swp.SearchApprox(qShort, 0.3, 2); err == nil {
		t.Fatal("SearchApprox on sweepline must fail")
	}
	if _, err := eng.SearchShorter(qShort, -1); err == nil {
		t.Fatal("negative eps must fail")
	}
	if _, err := eng.SearchApprox(qShort, 0.3, 2); err == nil {
		t.Fatal("short query to SearchApprox must fail")
	}
}

func TestSearchBatch(t *testing.T) {
	ts := datasets.InsectN(9, 15000)
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	queries := datasets.Queries(ts, 3, 20, 100)
	want := make([][]Match, len(queries))
	for i, q := range queries {
		want[i], _ = eng.Search(q, 0.5)
	}
	for _, par := range []int{0, 1, 4, 100} {
		got := eng.SearchBatch(queries, 0.5, par)
		if len(got) != len(queries) {
			t.Fatalf("par=%d: %d results", par, len(got))
		}
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("par=%d query %d: %v", par, i, r.Err)
			}
			if r.Query != i || len(r.Matches) != len(want[i]) {
				t.Fatalf("par=%d query %d: mismatch", par, i)
			}
		}
	}
	if out := eng.SearchBatch(nil, 0.5, 4); len(out) != 0 {
		t.Fatal("empty batch should return empty results")
	}
	// Errors propagate per query.
	bad := [][]float64{make([]float64, 10)}
	if out := eng.SearchBatch(bad, 0.5, 2); out[0].Err == nil {
		t.Fatal("bad query should carry its error")
	}
}
