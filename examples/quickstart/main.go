// Quickstart: build a TS-Index over a synthetic series, run a threshold
// twin query and a top-k query, and print what came back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"twinsearch"
	"twinsearch/gen"
)

func main() {
	// A noisy periodic signal: every period is a near-twin of every
	// other, so even tight thresholds return a family of matches.
	data := gen.Sine(42, 20_000, 500, 2.0, 0.05)

	// Index all subsequences of length 200. The default configuration is
	// the paper's: TS-Index with node capacities 10/30, global
	// z-normalization.
	eng, err := twinsearch.Open(data, twinsearch.Options{L: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d subsequences of length %d (%s, %s)\n",
		eng.NumSubsequences(), eng.L(), eng.Method(), eng.Norm())

	// Threshold query: all windows within Chebyshev distance 0.2 of the
	// window starting at 3000. Queries are expressed in raw values; the
	// engine normalizes consistently.
	query := data[3000:3200]
	matches, err := eng.Search(query, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d twins at eps=0.2 — the signal period is 500, so matches recur every period:\n", len(matches))
	for i, m := range matches {
		if i == 8 {
			fmt.Printf("  … %d more\n", len(matches)-8)
			break
		}
		fmt.Printf("  start=%d (offset %+d periods)\n", m.Start, (m.Start-3000)/500)
	}

	// Top-k query: the 5 nearest windows with exact distances.
	top, err := eng.SearchTopK(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 nearest windows (Chebyshev):")
	for _, m := range top {
		fmt.Printf("  start=%-6d dist=%.4f\n", m.Start, m.Dist)
	}
}
