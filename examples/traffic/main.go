// Similar traffic-pattern search: the paper's road-network use case
// (§1).
//
// A loop detector counts vehicles in 5-minute bins; a day is 288 bins.
// The program synthesizes three months of counts with weekday/weekend
// profiles, incidents, and demand noise, then uses twin subsequence
// search to answer an operator question: "which historical days evolved,
// bin for bin, like last Tuesday?" — useful for picking a control plan
// that worked before.
//
// Chebyshev distance encodes the operational requirement directly: a
// candidate day may never deviate by more than ε anywhere in the day —
// one unnoticed incident spike disqualifies it, no matter how good the
// rest of the fit is.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"twinsearch"
)

const (
	binsPerDay = 288
	days       = 92
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	data := make([]float64, 0, days*binsPerDay)
	kinds := make([]string, days)

	for d := 0; d < days; d++ {
		weekend := d%7 >= 5
		kind := "weekday"
		if weekend {
			kind = "weekend"
		}
		// Daily demand level varies ±15%.
		demand := 1 + 0.15*rng.NormFloat64()
		incident := rng.Float64() < 0.18 // ~1 in 5 days has an incident
		incidentAt := 90 + rng.Intn(140) // during the active part of the day
		if incident {
			kind += "+incident"
		}
		kinds[d] = kind
		for b := 0; b < binsPerDay; b++ {
			v := profile(b, weekend) * demand
			if incident && b >= incidentAt && b < incidentAt+18 {
				// Queue discharge: flow collapses for ~90 minutes.
				v *= 0.35
			}
			v += 6 * rng.NormFloat64() // per-bin demand noise
			data = append(data, math.Max(v, 0))
		}
	}

	// Per-subsequence normalization compares the *shape* of each day,
	// discounting the absolute demand level — two days with the same
	// rush-hour structure match even if one carried 10% more traffic.
	eng, err := twinsearch.Open(data, twinsearch.Options{
		L:    binsPerDay,
		Norm: twinsearch.NormPerSubsequence,
	})
	if err != nil {
		log.Fatal(err)
	}

	queryDay := 23 // a Tuesday
	fmt.Printf("query: day %d (%s)\n\n", queryDay, kinds[queryDay])
	query := data[queryDay*binsPerDay : (queryDay+1)*binsPerDay]

	matches, err := eng.Search(query, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	// Keep only day-aligned matches: the engine indexes every offset,
	// but the operator compares whole days.
	fmt.Println("historical days with the same bin-for-bin profile (eps=0.6, shape-normalized):")
	foundDays := 0
	for _, m := range matches {
		if m.Start%binsPerDay != 0 {
			continue
		}
		d := m.Start / binsPerDay
		if d == queryDay {
			continue
		}
		fmt.Printf("  day %-3d %s\n", d, kinds[d])
		foundDays++
	}
	fmt.Printf("→ %d matching days out of %d\n\n", foundDays, days-1)

	// Contrast: the same query against a day with an incident never
	// matches, because the 90-minute flow collapse exceeds ε on its own.
	top, err := eng.SearchTopK(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest whole-day-or-offset windows with exact distances:")
	for _, m := range top {
		fmt.Printf("  start bin %-6d (day %d, offset %d) dist=%.3f\n",
			m.Start, m.Start/binsPerDay, m.Start%binsPerDay, m.Dist)
	}
}

// profile is the deterministic demand curve: morning and evening peaks
// on weekdays, one broad midday hump on weekends (vehicles per 5 min).
func profile(b int, weekend bool) float64 {
	t := float64(b) / float64(binsPerDay) * 24 // hour of day
	if weekend {
		return 40 + 140*gauss(t, 14, 4.5)
	}
	return 30 + 230*gauss(t, 8.2, 1.1) + 200*gauss(t, 17.6, 1.4) + 60*gauss(t, 13, 3)
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-d * d / 2)
}
