// Co-evolving sensor analysis: pair/bundle discovery plus twin search
// on a fleet of temperature sensors.
//
// A building has 8 temperature sensors. Some share a duct (they move
// together all day), and a thermostat fault makes two unrelated rooms
// track each other for one afternoon. The program:
//
//  1. discovers which sensors moved together, where and for how long
//     (local pairs and bundles, the paper's §2 precursor problem);
//
//  2. takes the fault window on one sensor as a query and twin-searches
//     the whole fleet for other rooms that showed the same excursion
//     (the paper's contribution, lifted to a collection).
//
//     go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"twinsearch"
	"twinsearch/internal/bundles"
)

const (
	sensors    = 8
	samplesDay = 1440 // one per minute
	days       = 3
	n          = samplesDay * days
)

func main() {
	rng := rand.New(rand.NewSource(4))
	set := make([][]float64, sensors)

	// Sensors 0-2 share the supply duct: one driving signal plus small
	// local noise. Sensors 3-7 are independent rooms.
	duct := make([]float64, n)
	for t := range duct {
		duct[t] = 21 + 2.5*math.Sin(2*math.Pi*float64(t%samplesDay)/samplesDay-math.Pi/2)
	}
	for i := range set {
		set[i] = make([]float64, n)
		base := duct
		offset := 0.0
		if i >= 3 {
			base = make([]float64, n)
			phase := rng.Float64() * 2 * math.Pi
			amp := 1.5 + rng.Float64()*2
			for t := range base {
				base[t] = 19 + float64(i)*0.8 + amp*math.Sin(2*math.Pi*float64(t%samplesDay)/samplesDay+phase)
			}
		} else {
			offset = float64(i) * 0.08
		}
		for t := range set[i] {
			set[i][t] = base[t] + offset + rng.NormFloat64()*0.05
		}
	}
	// The fault: for 3 hours on day 2, sensors 4 and 6 spike identically
	// (a stuck shared damper).
	faultStart := samplesDay + 14*60
	for t := faultStart; t < faultStart+180; t++ {
		bump := 4 * math.Sin(math.Pi*float64(t-faultStart)/180)
		set[4][t] += bump
		set[6][t] += bump + rng.NormFloat64()*0.03
	}

	// --- 1. who moves together? ---
	bs, err := bundles.Bundles(set, bundles.Config{Eps: 0.6, MinLen: 120, MinGroup: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-movement bundles (ε=0.6°C for ≥2h):")
	for _, b := range bs {
		fmt.Printf("  sensors %v together during [%s, %s) — %.1f h\n",
			b.Members, clock(b.Start), clock(b.End), float64(b.End-b.Start)/60)
	}

	// --- 2. who else showed the fault excursion? ---
	const l = 180
	coll, err := twinsearch.OpenCollection(set, twinsearch.Options{
		L:    l,
		Norm: twinsearch.NormPerSubsequence, // shape, not absolute °C
	})
	if err != nil {
		log.Fatal(err)
	}
	query := set[4][faultStart : faultStart+l]
	matches, err := coll.Search(query, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	hits := map[int]bool{}
	for _, m := range matches {
		if m.Series != 4 && abs(m.Start-faultStart) < l/2 {
			hits[m.Series] = true
		}
	}
	fmt.Printf("\ntwin search for sensor 4's fault window (%s, shape-normalized):\n", clock(faultStart))
	for s := range hits {
		fmt.Printf("  sensor %d shows the same excursion at the same time\n", s)
	}
	if len(hits) == 0 {
		fmt.Println("  no other sensor matched")
	}
}

func clock(t int) string {
	day := t / samplesDay
	m := t % samplesDay
	return fmt.Sprintf("day%d %02d:%02d", day+1, m/60, m%60)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
