// EEG irregular-pattern search: the paper's motivating medical use case
// (§1) and its introductory experiment.
//
// The program synthesizes an hour-like EEG recording containing sporadic
// spike-wave events, picks one spike as the query, and shows:
//
//  1. Chebyshev twin search finds the other occurrences of the same
//     discharge pattern — and only those;
//
//  2. Euclidean range search at the no-false-negative threshold ε·√ℓ
//     (the only threshold guaranteeing it misses no twin) drowns the
//     same answer in orders of magnitude more weak matches, because a
//     window can be Euclidean-close while missing the spike entirely
//     (paper Fig. 1).
//
//     go run ./examples/eeg
package main

import (
	"fmt"
	"log"
	"math"

	"twinsearch"
	"twinsearch/gen"
)

func main() {
	const (
		n   = 400_000 // ~13 minutes at 500 Hz
		l   = 100     // 200 ms window, the paper's query length
		eps = 0.35    // Chebyshev threshold in z-normalized units
	)
	data := gen.EEG(7, n)

	// Locate a strong spike to use as the query: the sharpest excursion
	// from the local baseline.
	q := findSpike(data, l)
	fmt.Printf("query: the spike-wave event at [%d, %d)\n", q, q+l)

	eng, err := twinsearch.Open(data, twinsearch.Options{L: l})
	if err != nil {
		log.Fatal(err)
	}
	query := data[q : q+l]

	twins, err := eng.Search(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChebyshev twins at eps=%.2f: %d windows\n", eps, len(twins))
	clusters := clusterStarts(twins, l)
	fmt.Printf("  … forming %d distinct events: ", len(clusters))
	for i, c := range clusters {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("t≈%d", c)
		if i == 9 {
			fmt.Print(", …")
			break
		}
	}
	fmt.Println()

	// The paper's intro comparison: Euclidean search at ε·√ℓ — the
	// smallest Euclidean threshold that cannot miss any Chebyshev twin.
	euc := euclideanRange(eng, data, query, eps, l)
	fmt.Printf("\nEuclidean range at eps*sqrt(l)=%.2f: %d windows (%.0fx the twin set)\n",
		eps*math.Sqrt(l), euc, float64(euc)/float64(max(len(twins), 1)))
	fmt.Println("\nThe inflation is the paper's Figure 1 in numbers: a window can put")
	fmt.Println("its entire error budget on a few timestamps — e.g. lack the spike —")
	fmt.Println("and still pass the Euclidean test, but never the Chebyshev one.")
}

// findSpike returns the start of the window centred on the largest
// |second difference| — a crude but effective spike detector.
func findSpike(data []float64, l int) int {
	best, bestAt := 0.0, l
	for i := l; i < len(data)-l; i++ {
		d := math.Abs(data[i+1] - 2*data[i] + data[i-1])
		if d > best {
			best, bestAt = d, i
		}
	}
	start := bestAt - l/2
	if start < 0 {
		start = 0
	}
	return start
}

// clusterStarts merges overlapping match windows into distinct events.
func clusterStarts(ms []twinsearch.Match, l int) []int {
	var out []int
	last := -2 * l
	for _, m := range ms {
		if m.Start-last > l/2 {
			out = append(out, m.Start)
		}
		last = m.Start
	}
	return out
}

// euclideanRange counts windows within Euclidean distance eps·√l of the
// query, in the engine's normalized space, by direct scan over a
// locally z-normalized copy of the series (the engine's NormGlobal
// transform).
func euclideanRange(eng *twinsearch.Engine, data, query []float64, eps float64, l int) int {
	var sum, sum2 float64
	for _, v := range data {
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(len(data))
	std := math.Sqrt(sum2/float64(len(data)) - mean*mean)
	norm := make([]float64, len(data))
	for i, v := range data {
		norm[i] = (v - mean) / std
	}

	limit := eps * eps * float64(l) // squared threshold
	qn := eng.PrepareQuery(query)
	count := 0
	for p := 0; p+l <= len(norm); p++ {
		var s float64
		w := norm[p : p+l]
		for i := range qn {
			d := qn[i] - w[i]
			s += d * d
			if s > limit {
				break
			}
		}
		if s <= limit {
			count++
		}
	}
	return count
}
