package arena

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildRegion lays out 4 int32s at offset 0 and 3 float64s at offset 16
// (8-byte aligned) in one little-endian buffer.
func buildRegion(t *testing.T) ([]byte, []int32, []float64) {
	t.Helper()
	ints := []int32{1, -2, 3, math.MaxInt32}
	floats := []float64{0.5, -1e300, math.Pi}
	buf := make([]byte, 16+8*len(floats))
	for i, v := range ints {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	for i, v := range floats {
		binary.LittleEndian.PutUint64(buf[16+i*8:], math.Float64bits(v))
	}
	return buf, ints, floats
}

func checkViews(t *testing.T, a *Arena, ints []int32, floats []float64) {
	t.Helper()
	gotI, err := a.Int32s(0, len(ints))
	if err != nil {
		t.Fatalf("Int32s: %v", err)
	}
	for i, v := range ints {
		if gotI[i] != v {
			t.Fatalf("int32 %d: got %d, want %d", i, gotI[i], v)
		}
	}
	gotF, err := a.Float64s(16, len(floats))
	if err != nil {
		t.Fatalf("Float64s: %v", err)
	}
	for i, v := range floats {
		if gotF[i] != v {
			t.Fatalf("float64 %d: got %g, want %g", i, gotF[i], v)
		}
	}
}

func TestHeapViews(t *testing.T) {
	buf, ints, floats := buildRegion(t)
	a := FromBytes(buf)
	if a.Mapped() || a.MappedBytes() != 0 {
		t.Fatal("heap arena claims to be mapped")
	}
	checkViews(t, a, ints, floats)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMappedViews(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	buf, ints, floats := buildRegion(t)
	path := filepath.Join(t.TempDir(), "region.bin")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Map(path)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !a.Mapped() || a.MappedBytes() != len(buf) || a.Len() != len(buf) {
		t.Fatalf("mapped arena reports mapped=%v bytes=%d, want %d", a.Mapped(), a.MappedBytes(), len(buf))
	}
	checkViews(t, a, ints, floats)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMapEmptyFile(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Map(path)
	if err != nil {
		t.Fatalf("Map(empty): %v", err)
	}
	if a.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", a.Len())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestViewErrors(t *testing.T) {
	buf, _, _ := buildRegion(t)
	a := FromBytes(buf)
	cases := []struct {
		name string
		call func() error
	}{
		{"negative offset", func() error { _, err := a.Int32s(-4, 1); return err }},
		{"negative count", func() error { _, err := a.Int32s(0, -1); return err }},
		{"past end", func() error { _, err := a.Int32s(int64(len(buf)), 1); return err }},
		{"overrun", func() error { _, err := a.Float64s(16, 4); return err }},
		{"overflow", func() error { _, err := a.Float64s(8, math.MaxInt64/4); return err }},
		{"misaligned int32", func() error { _, err := a.Int32s(2, 1); return err }},
		{"misaligned float64", func() error { _, err := a.Float64s(4, 1); return err }},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// Empty views are fine anywhere in range, even at the very end.
	if v, err := a.Int32s(int64(len(buf)), 0); err != nil || v != nil {
		t.Fatalf("empty view: %v, %v", v, err)
	}
}

func TestMapMissingFile(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	if _, err := Map(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("Map of a missing file succeeded")
	}
}
