//go:build linux || darwin || freebsd || netbsd || openbsd

package arena

import (
	"fmt"
	"os"
	"syscall"
)

// MapSupported reports whether Map can produce a file-backed Arena on
// this platform (query it to decide between the zero-copy and copy open
// paths without paying a failed syscall).
func MapSupported() bool { return true }

// Map maps the file at path read-only in its entirety. The returned
// Arena owns the mapping; Close unmaps it. An empty file maps to an
// empty (heap) arena — mmap of length 0 is an error on every platform,
// and there is nothing to share anyway.
func Map(path string) (*Arena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("arena: map: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("arena: map: %w", err)
	}
	size := info.Size()
	if size == 0 {
		return &Arena{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("arena: map: %s is %d bytes, beyond this platform's address space", path, size)
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("arena: mmap %s: %w", path, err)
	}
	return &Arena{buf: buf, mapped: true}, nil
}

func munmap(buf []byte) error {
	if err := syscall.Munmap(buf); err != nil {
		return fmt.Errorf("arena: munmap: %w", err)
	}
	return nil
}
