package arena

// DefaultTouchLimit bounds Prefetch's sequential touch pass: enough to
// pull a typical index's hot prefix through the page cache quickly,
// small enough that warming a huge mapping cannot stall an open for
// long. Callers wanting a full warm pass the region length instead.
const DefaultTouchLimit = 64 << 20

// Prefetch warms a mapped region against the page-fault tail that
// follows a zero-copy open: it advises the kernel the whole region will
// be needed (madvise(MADV_WILLNEED) where available — a hint, applied
// best-effort) and then touches one byte per page sequentially, up to
// limit bytes (≤ 0 selects DefaultTouchLimit), forcing that prefix
// resident immediately. Heap-backed arenas are already resident, so
// only the (cheap) touch runs. Returns the number of bytes spanned by
// the touch pass.
func (a *Arena) Prefetch(limit int) int {
	if len(a.buf) == 0 {
		return 0
	}
	if a.mapped {
		advise(a.buf)
	}
	if limit <= 0 {
		limit = DefaultTouchLimit
	}
	if limit > len(a.buf) {
		limit = len(a.buf)
	}
	const page = 4096
	var sink byte
	for off := 0; off < limit; off += page {
		sink ^= a.buf[off]
	}
	touchSink = sink // defeat dead-load elimination
	return limit
}

// touchSink keeps the touch loop's loads observable.
var touchSink byte
