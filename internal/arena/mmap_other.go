//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package arena

import "fmt"

// MapSupported reports that this platform has no Map implementation;
// callers fall back to the decoding copy loaders.
func MapSupported() bool { return false }

// Map is unavailable on this platform.
func Map(path string) (*Arena, error) {
	return nil, fmt.Errorf("arena: memory-mapped opening is not supported on this platform")
}

func munmap(buf []byte) error { return nil }
