//go:build linux || darwin || freebsd

package arena

import "syscall"

// advise hints the kernel the whole mapped region will be needed soon,
// so readahead can batch the page-ins the touch pass (and the queries
// after it) would otherwise fault one by one. Best effort: madvise
// failing (e.g. on unusual mappings) only loses the hint.
func advise(buf []byte) {
	_ = syscall.Madvise(buf, syscall.MADV_WILLNEED)
}
