// Package arena owns the byte regions that back frozen index arenas.
//
// A frozen TS-Index is a handful of flat arrays ([]int32 structure,
// []float64 bounds). Before this package those arrays were always
// heap-allocated Go slices filled by decoding a stream; an Arena
// decouples the arrays from their storage: it holds one []byte — a heap
// buffer or an mmap'd file region — and hands out typed slice views
// into it by safe reinterpretation (bounds- and alignment-checked, no
// copying). Storage owns the bytes; the engine reinterprets them.
//
// Views alias the arena's memory. They stay valid until Close, which
// unmaps a mapped region; reading a view after Close faults, so owners
// (the Engine) must not release an arena while traversals can still
// run. Writing through a view is forbidden — mapped regions are mapped
// read-only and the kernel enforces it.
//
// Reinterpretation assumes the bytes are little-endian, which is the
// byte order of every twinsearch stream format. On a big-endian host
// the views would transpose every value, so View construction fails
// there (LittleEndianHost) and callers fall back to the decoding copy
// loaders, which are byte-order independent.
package arena

import (
	"fmt"
	"unsafe"
)

// Arena is one contiguous byte region, heap- or file-backed.
type Arena struct {
	buf    []byte
	mapped bool
	closed bool
}

// FromBytes wraps a heap buffer in an Arena without copying. The caller
// must not modify b afterwards.
func FromBytes(b []byte) *Arena { return &Arena{buf: b} }

// Bytes returns the backing region. Callers must not modify it.
func (a *Arena) Bytes() []byte { return a.buf }

// Len returns the region size in bytes.
func (a *Arena) Len() int { return len(a.buf) }

// Mapped reports whether the region is an mmap'd file rather than heap
// memory.
func (a *Arena) Mapped() bool { return a.mapped }

// MappedBytes returns the file-mapped footprint: the region size when
// mapped, 0 for heap buffers.
func (a *Arena) MappedBytes() int {
	if a.mapped {
		return len(a.buf)
	}
	return 0
}

// Close releases the region: mapped regions are unmapped (after which
// every view into them is invalid), heap regions are simply dropped.
// Close is idempotent.
func (a *Arena) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	buf := a.buf
	a.buf = nil
	if a.mapped {
		return munmap(buf)
	}
	return nil
}

// Align8 rounds n up to the next multiple of 8 — the alignment every
// stream format's sections keep so float64 views can point straight
// into a mapped region. The container (TSSH) and segment (TSFZ) layers
// share this one definition; their padding must round identically.
func Align8(n int64) int64 { return (n + 7) &^ 7 }

// LittleEndianHost reports whether the host stores integers
// little-endian — the precondition for reinterpreting the stream
// formats' bytes in place.
func LittleEndianHost() bool {
	x := uint16(1)
	//tsvet:ignore probes a 2-byte local on the stack, nothing to bounds-check
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// view validates one typed window of the region: off and n must be
// non-negative, off+n*width must lie within the region without
// overflowing, and the start address must be aligned for the element
// type (mmap regions are page-aligned, so an aligned offset suffices;
// heap buffers are checked against the actual address).
func (a *Arena) view(off int64, n, width int, kind string) (unsafe.Pointer, error) {
	if !LittleEndianHost() {
		return nil, fmt.Errorf("arena: big-endian host cannot reinterpret little-endian streams in place")
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("arena: negative %s view (off=%d, n=%d)", kind, off, n)
	}
	need := int64(n) * int64(width)
	if need/int64(width) != int64(n) || off > int64(len(a.buf)) || need > int64(len(a.buf))-off {
		return nil, fmt.Errorf("arena: %s view [%d, %d+%d×%d) outside %d-byte region", kind, off, off, n, width, len(a.buf))
	}
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&a.buf[off])
	if uintptr(p)%uintptr(width) != 0 {
		return nil, fmt.Errorf("arena: %s view at offset %d is not %d-byte aligned", kind, off, width)
	}
	return p, nil
}

// Int32s returns the n little-endian int32 values starting at byte
// offset off as a view into the region.
func (a *Arena) Int32s(off int64, n int) ([]int32, error) {
	p, err := a.view(off, n, 4, "int32")
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	return unsafe.Slice((*int32)(p), n), nil
}

// Float64s returns the n little-endian float64 values starting at byte
// offset off as a view into the region.
func (a *Arena) Float64s(off int64, n int) ([]float64, error) {
	p, err := a.view(off, n, 8, "float64")
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	return unsafe.Slice((*float64)(p), n), nil
}
