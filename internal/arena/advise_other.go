//go:build !linux && !darwin && !freebsd

package arena

// advise is a no-op where madvise is unavailable; Prefetch's touch pass
// still warms the region, one fault at a time.
func advise([]byte) {}
