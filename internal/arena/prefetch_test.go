package arena

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestPrefetchHeap checks the touch pass is bounded and harmless on a
// heap region.
func TestPrefetchHeap(t *testing.T) {
	buf := make([]byte, 3*4096+17)
	for i := range buf {
		buf[i] = byte(i)
	}
	want := append([]byte(nil), buf...)
	a := FromBytes(buf)
	if got := a.Prefetch(0); got != len(buf) {
		t.Fatalf("Prefetch(0) touched %d bytes, want %d", got, len(buf))
	}
	if got := a.Prefetch(4096); got != 4096 {
		t.Fatalf("Prefetch(4096) touched %d bytes", got)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("Prefetch modified the region")
	}
	if FromBytes(nil).Prefetch(0) != 0 {
		t.Fatal("empty arena touched bytes")
	}
}

// TestPrefetchMapped runs the madvise + touch path over a real mapping.
func TestPrefetchMapped(t *testing.T) {
	if !MapSupported() {
		t.Skip("no mmap on this platform")
	}
	path := filepath.Join(t.TempDir(), "region")
	data := make([]byte, 2*4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := a.Prefetch(0); got != len(data) {
		t.Fatalf("Prefetch touched %d bytes, want %d", got, len(data))
	}
	if !bytes.Equal(a.Bytes(), data) {
		t.Fatal("mapped region corrupted after prefetch")
	}
}
