package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"twinsearch"
	"twinsearch/internal/datasets"
)

func newTestServer(t *testing.T) (*httptest.Server, []float64) {
	t.Helper()
	ts := datasets.EEGN(81, 5000)
	eng, err := twinsearch.Open(ts, twinsearch.Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(eng))
	t.Cleanup(srv.Close)
	return srv, ts
}

// newMethodServer starts a server over an engine with the given method.
func newMethodServer(t *testing.T, method string) string {
	t.Helper()
	ts := datasets.RandomWalk(82, 2000)
	opt := twinsearch.Options{L: 100}
	if method == "sweepline" {
		opt.Method = twinsearch.MethodSweepline
	}
	eng, err := twinsearch.Open(ts, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(eng))
	t.Cleanup(srv.Close)
	return srv.URL
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["method"] != "TS-Index" {
		t.Fatalf("body = %v", body)
	}
	if body["windows"].(float64) != 4901 {
		t.Fatalf("windows = %v", body["windows"])
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, raw := postJSON(t, srv.URL+"/search", map[string]interface{}{
		"query": ts[1000:1100], "eps": 0.3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var body struct {
		Count   int `json:"count"`
		Matches []struct {
			Start int `json:"start"`
		} `json:"matches"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Count < 1 {
		t.Fatal("self match missing")
	}
	found := false
	for _, m := range body.Matches {
		if m.Start == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatal("start=1000 missing from matches")
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, _ := postJSON(t, srv.URL+"/search", map[string]interface{}{
		"query": []float64{1, 2}, "eps": 0.3,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short query: status %d", resp.StatusCode)
	}
	// Wrong HTTP method.
	getResp, err := http.Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search: status %d", getResp.StatusCode)
	}
	// Malformed JSON.
	malResp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	malResp.Body.Close()
	if malResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", malResp.StatusCode)
	}
}

func TestTopKEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, raw := postJSON(t, srv.URL+"/topk", map[string]interface{}{
		"query": ts[2000:2100], "k": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var body struct {
		Count   int `json:"count"`
		Matches []struct {
			Start int      `json:"start"`
			Dist  *float64 `json:"dist"`
		} `json:"matches"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 3 {
		t.Fatalf("count = %d", body.Count)
	}
	if body.Matches[0].Start != 2000 || body.Matches[0].Dist == nil || *body.Matches[0].Dist != 0 {
		t.Fatalf("nearest = %+v", body.Matches[0])
	}
}

func TestAppendEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	more := datasets.EEGN(99, 300)
	resp, raw := postJSON(t, srv.URL+"/append", map[string]interface{}{"values": more})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var body map[string]int
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body["series_len"] != len(ts)+300 {
		t.Fatalf("series_len = %d", body["series_len"])
	}
}

func TestSubsequenceEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/subsequence?start=42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Start  int       `json:"start"`
		Values []float64 `json:"values"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Start != 42 || len(body.Values) != 100 {
		t.Fatalf("body = %d values at %d", len(body.Values), body.Start)
	}
	bad, err := http.Get(srv.URL + "/subsequence?start=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad start: status %d", bad.StatusCode)
	}
}

func TestConcurrentSearchAndAppend(t *testing.T) {
	srv, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, _ := postJSON(t, srv.URL+"/search", map[string]interface{}{
					"query": ts[1000:1100], "eps": 0.3,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, _ := postJSON(t, srv.URL+"/append", map[string]interface{}{
				"values": []float64{1, 2, 3, 4, 5},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("append status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}

// TestShardedServer serves a sharded engine and checks the health
// report names the partition and search answers match an unsharded
// server's.
func TestShardedServer(t *testing.T) {
	ts := datasets.EEGN(81, 5000)
	single, err := twinsearch.Open(ts, twinsearch.Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := twinsearch.Open(ts, twinsearch.Options{L: 100, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srvSingle := httptest.NewServer(New(single))
	t.Cleanup(srvSingle.Close)
	srvSharded := httptest.NewServer(New(sharded))
	t.Cleanup(srvSharded.Close)

	resp, err := http.Get(srvSharded.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["shards"].(float64) != 4 {
		t.Fatalf("healthz shards = %v, want 4", health["shards"])
	}
	if w, ok := health["workers"].(float64); !ok || int(w) != sharded.Workers() {
		t.Fatalf("healthz workers = %v, want %d", health["workers"], sharded.Workers())
	}
	// The memory split: heap + mapped must cover the total, and a
	// heap-built engine maps nothing.
	heap, _ := health["heap_bytes"].(float64)
	mapped, ok := health["mapped_bytes"].(float64)
	if !ok || mapped != 0 {
		t.Fatalf("healthz mapped_bytes = %v, want 0 for a built engine", health["mapped_bytes"])
	}
	if total, _ := health["memory_bytes"].(float64); total != heap+mapped {
		t.Fatalf("healthz memory_bytes %v != heap %v + mapped %v", total, heap, mapped)
	}

	for _, path := range []string{"/search", "/topk"} {
		req := map[string]interface{}{"query": ts[1000:1100]}
		if path == "/search" {
			req["eps"] = 0.3
		} else {
			req["k"] = 5
		}
		respA, rawA := postJSON(t, srvSingle.URL+path, req)
		respB, rawB := postJSON(t, srvSharded.URL+path, req)
		if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d / %d", path, respA.StatusCode, respB.StatusCode)
		}
		if !bytes.Equal(rawA, rawB) {
			t.Fatalf("%s: sharded response differs:\n%s\nvs\n%s", path, rawB, rawA)
		}
	}

	resp2, _ := postJSON(t, srvSharded.URL+"/append", map[string]interface{}{
		"values": []float64{1, 2, 3},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("append on sharded engine: status %d", resp2.StatusCode)
	}
}
