package server

// Serving-tier tests: the /stats observability surface, the
// append↔cache epoch contract as an HTTP client sees it, and the
// admission-control shed and drain behavior.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"twinsearch"
	"twinsearch/internal/datasets"
)

// statsBody mirrors the /stats JSON for decoding in tests.
type statsBody struct {
	Epoch uint64 `json:"epoch"`
	Plan  struct {
		Enabled bool   `json:"enabled"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"plan_cache"`
	Result struct {
		Enabled bool   `json:"enabled"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"result_cache"`
	Admission admissionStats `json:"admission"`
	Draining  bool           `json:"draining"`
}

func getStats(t *testing.T, url string) statsBody {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: status %d", resp.StatusCode)
	}
	var st statsBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// newCachedServer starts a server over a cache-enabled engine.
func newCachedServer(t *testing.T, cfg Config) (*httptest.Server, []float64) {
	t.Helper()
	ts := datasets.EEGN(83, 5000)
	eng, err := twinsearch.Open(ts, twinsearch.Options{
		L: 100, PlanCache: -1, ResultCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWithConfig(eng, cfg))
	t.Cleanup(srv.Close)
	return srv, ts
}

// TestServingSmoke is the CI smoke sequence end to end: a repeated
// query hits the result cache, /stats shows it, and an /append bumps
// the epoch so the next repeat misses again.
func TestServingSmoke(t *testing.T) {
	srv, ts := newCachedServer(t, Config{})
	req := map[string]interface{}{"query": ts[:100], "eps": 0.5}

	if resp, _ := postJSON(t, srv.URL+"/search", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first search: status %d", resp.StatusCode)
	}
	st := getStats(t, srv.URL)
	if !st.Result.Enabled || st.Result.Misses != 1 || st.Result.Hits != 0 {
		t.Fatalf("after first search: %+v", st.Result)
	}
	epoch0 := st.Epoch

	resp, first := postJSON(t, srv.URL+"/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat search: status %d", resp.StatusCode)
	}
	st = getStats(t, srv.URL)
	if st.Result.Hits != 1 {
		t.Fatalf("repeat search did not hit the cache: %+v", st.Result)
	}

	// Append: the response already carries the bumped epoch, so any
	// client that has seen it is guaranteed fresh answers.
	aresp, abody := postJSON(t, srv.URL+"/append", map[string]interface{}{"values": ts[:100]})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", aresp.StatusCode, abody)
	}
	var ares struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(abody, &ares); err != nil {
		t.Fatal(err)
	}
	if ares.Epoch <= epoch0 {
		t.Fatalf("append response epoch %d not past pre-append %d", ares.Epoch, epoch0)
	}

	resp, second := postJSON(t, srv.URL+"/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-append search: status %d", resp.StatusCode)
	}
	st = getStats(t, srv.URL)
	if st.Result.Misses != 2 || st.Result.Hits != 1 {
		t.Fatalf("post-append search served a stale cached result: %+v", st.Result)
	}
	if st.Epoch != ares.Epoch {
		t.Fatalf("/stats epoch %d != append response epoch %d", st.Epoch, ares.Epoch)
	}
	// The appended block duplicates the query window, so the fresh
	// answer must strictly grow — a byte-equal response here would mean
	// the pre-append answer leaked across the epoch.
	if bytes.Equal(first, second) {
		t.Fatal("post-append response identical to pre-append response")
	}
}

// TestAdmissionShedsWith429 fills the in-flight slots and the queue by
// hand, then proves the next request sheds with 429 + Retry-After
// while /stats still answers and counts it.
func TestAdmissionShedsWith429(t *testing.T) {
	srv, ts := newCachedServer(t, Config{MaxInflight: 1, MaxQueue: 0, RetryAfter: 3 * time.Second})
	h := srv.Config.Handler.(*Handler)

	// Occupy the only in-flight slot; MaxQueue 0 means the next
	// arrival must shed immediately.
	if err := h.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer h.adm.release()

	resp, _ := postJSON(t, srv.URL+"/search", map[string]interface{}{"query": ts[:100], "eps": 0.5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	st := getStats(t, srv.URL)
	if st.Admission.Shed != 1 || !st.Admission.Enabled || st.Admission.MaxInflight != 1 {
		t.Fatalf("admission stats after shed: %+v", st.Admission)
	}
}

// TestAdmissionQueueReleases proves a queued request proceeds once the
// slot frees, and that a queued request's cancelled context answers
// 503, not 429.
func TestAdmissionQueueReleases(t *testing.T) {
	a := newAdmission(Config{MaxInflight: 1, MaxQueue: 1})
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		err := a.acquire(context.Background())
		if err == nil {
			a.release()
		}
		done <- err
	}()
	// The waiter is queued; a third arrival overflows MaxQueue and sheds.
	for a.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); err != errOverloaded {
		t.Fatalf("overflow arrival: got %v, want errOverloaded", err)
	}
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("queued request after release: %v", err)
	}

	// A queued request whose context dies gets its ctx error back.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := a.acquire(ctx); err != context.Canceled {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	a.release()
}

// TestDrainKeepsStatsOpen: draining answers 503 on queries without
// consuming admission capacity, while /healthz and /stats stay open.
func TestDrainKeepsStatsOpen(t *testing.T) {
	srv, ts := newCachedServer(t, Config{MaxInflight: 1, MaxQueue: 0})
	h := srv.Config.Handler.(*Handler)
	h.BeginDrain()

	resp, _ := postJSON(t, srv.URL+"/search", map[string]interface{}{"query": ts[:100], "eps": 0.5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining search: status %d, want 503", resp.StatusCode)
	}
	st := getStats(t, srv.URL)
	if !st.Draining {
		t.Fatal("/stats does not report draining")
	}
	if st.Admission.Shed != 0 || st.Admission.QueueDepth != 0 {
		t.Fatalf("drain consumed admission capacity: %+v", st.Admission)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz: status %d", hresp.StatusCode)
	}
}

// TestServingConcurrentClients hammers the cached server from many
// goroutines with interleaved appends; the handler's RW-mutex plus the
// epoch-keyed cache must keep every response internally consistent and
// the counters must add up. Run with -race this is the serving tier's
// stale-read detector.
func TestServingConcurrentClients(t *testing.T) {
	srv, ts := newCachedServer(t, Config{MaxInflight: 8, MaxQueue: 64})
	const readers, reads, appends = 6, 25, 5
	req := map[string]interface{}{"query": ts[:100], "eps": 0.5}

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				resp, body := postJSON(t, srv.URL+"/search", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search: status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			resp, body := postJSON(t, srv.URL+"/append", map[string]interface{}{"values": ts[100*i : 100*(i+1)]})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("append: status %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()

	st := getStats(t, srv.URL)
	if got := st.Result.Hits + st.Result.Misses; got != readers*reads {
		t.Fatalf("cache counters inconsistent: %d hits + %d misses != %d searches",
			st.Result.Hits, st.Result.Misses, readers*reads)
	}
	// At least one append landed between two reads of the same query,
	// so the cache must have both hit and missed.
	if st.Result.Hits == 0 || st.Result.Misses == 0 {
		t.Fatalf("hammer did not exercise both cache outcomes: %+v", st.Result)
	}
}
