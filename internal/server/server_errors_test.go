package server

import (
	"bytes"
	"net/http"
	"testing"
)

func TestTopKEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	// Wrong method.
	resp, err := http.Get(srv.URL + "/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /topk: status %d", resp.StatusCode)
	}
	// Malformed body.
	mal, err := http.Post(srv.URL+"/topk", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	mal.Body.Close()
	if mal.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed /topk: status %d", mal.StatusCode)
	}
	// Bad query length.
	bad, _ := postJSON(t, srv.URL+"/topk", map[string]interface{}{"query": []float64{1}, "k": 2})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("short query /topk: status %d", bad.StatusCode)
	}
}

func TestAppendEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/append")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /append: status %d", resp.StatusCode)
	}
	mal, err := http.Post(srv.URL+"/append", "application/json", bytes.NewReader([]byte("nope")))
	if err != nil {
		t.Fatal(err)
	}
	mal.Body.Close()
	if mal.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed /append: status %d", mal.StatusCode)
	}
}

func TestSubsequenceOutOfRange(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/subsequence?start=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range start: status %d", resp.StatusCode)
	}
}

func TestAppendRejectedForNonTSIndex(t *testing.T) {
	// A sweepline-backed handler: /append must surface the engine error.
	srv := newMethodServer(t, "sweepline")
	resp, _ := postJSON(t, srv+"/append", map[string]interface{}{"values": []float64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("append on sweepline: status %d", resp.StatusCode)
	}
}
