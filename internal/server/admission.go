package server

// Admission control for the query endpoints: a counting semaphore of
// in-flight searches plus a bounded wait queue in front of it. Under
// overload the server sheds with 429 + Retry-After instead of stacking
// unbounded goroutines on the executor — tail latency stays bounded
// and the client gets an actionable signal. Queued requests hold no
// engine resources and die with their context, so a disconnecting
// client frees its slot immediately. Draining (BeginDrain) is checked
// before admission: a draining server answers 503 without consuming
// queue capacity.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Config tunes the serving tier of a Handler. The zero value disables
// admission control entirely (New's behavior: every request runs).
type Config struct {
	// MaxInflight caps concurrently executing queries (/search, /topk).
	// 0 disables admission control.
	MaxInflight int
	// MaxQueue is how many requests may wait for an in-flight slot
	// beyond MaxInflight before the server sheds with 429. 0 means no
	// waiting: every request past MaxInflight sheds immediately.
	MaxQueue int
	// RetryAfter is the hint written in the Retry-After header of shed
	// responses. 0 selects one second.
	RetryAfter time.Duration
}

// errOverloaded is the body of a shed response.
var errOverloaded = errors.New("server overloaded: admission queue full; retry later")

// admission is the runtime state behind Config: sem holds one token
// per executing query, queued counts waiters, shed counts 429s.
type admission struct {
	sem        chan struct{} // nil = admission control off
	maxQueue   int
	retryAfter time.Duration

	queued atomic.Int64
	shed   atomic.Uint64
}

func newAdmission(cfg Config) *admission {
	a := &admission{maxQueue: cfg.MaxQueue, retryAfter: cfg.RetryAfter}
	if a.retryAfter <= 0 {
		a.retryAfter = time.Second
	}
	if cfg.MaxInflight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return a
}

// acquire admits the request (nil), sheds it (errOverloaded), or gives
// up because the caller's context ended while waiting (its ctx.Err()).
// Every nil return must be paired with a release.
func (a *admission) acquire(ctx context.Context) error {
	if a.sem == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	// All in-flight slots busy: join the bounded queue. The counter is
	// claim-then-check so concurrent arrivals cannot overshoot the cap.
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.shed.Add(1)
		return errOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a.sem == nil {
		return
	}
	<-a.sem
}

// admissionStats is the /stats view of the admission state.
type admissionStats struct {
	Enabled     bool   `json:"enabled"`
	MaxInflight int    `json:"max_inflight,omitempty"`
	MaxQueue    int    `json:"max_queue,omitempty"`
	Inflight    int    `json:"inflight"`
	QueueDepth  int64  `json:"queue_depth"`
	Shed        uint64 `json:"shed"`
}

func (a *admission) snapshot() admissionStats {
	st := admissionStats{
		MaxQueue:   a.maxQueue,
		QueueDepth: a.queued.Load(),
		Shed:       a.shed.Load(),
	}
	if a.sem != nil {
		st.Enabled = true
		st.MaxInflight = cap(a.sem)
		st.Inflight = len(a.sem)
	}
	return st
}
