package server

// The serving tier's observability surface: ?trace=1 returns the span
// tree in the response envelope, /metrics speaks valid Prometheus text
// format, /debug/slowlog serves the ring buffer, and /healthz reports
// the runtime facts (kernel, GOMAXPROCS, uptime) — all drain-exempt
// where the issue demands it.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"twinsearch"
	"twinsearch/internal/datasets"
	"twinsearch/internal/obs"
)

func newObsServer(t *testing.T) (*httptest.Server, *Handler, []float64) {
	t.Helper()
	ts := datasets.EEGN(83, 5000)
	eng, err := twinsearch.Open(ts, twinsearch.Options{
		L: 100, Shards: 2, SlowLogSize: 16, SlowLogThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { eng.Close() })
	return srv, h, ts
}

func TestForcedTraceEnvelope(t *testing.T) {
	srv, _, ts := newObsServer(t)
	body := map[string]interface{}{"query": ts[:100], "eps": 0.3}

	// Untraced: no trace in the envelope.
	resp, raw := postJSON(t, srv.URL+"/search", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %s: %s", resp.Status, raw)
	}
	var plain struct {
		Count int       `json:"count"`
		Trace *obs.Span `json:"trace"`
	}
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}

	// ?trace=1: span tree present, same answer, expected shape.
	resp, raw = postJSON(t, srv.URL+"/search?trace=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced search: %s: %s", resp.Status, raw)
	}
	var traced struct {
		Count int       `json:"count"`
		Trace *obs.Span `json:"trace"`
	}
	if err := json.Unmarshal(raw, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatalf("?trace=1 response has no trace: %s", raw)
	}
	if traced.Count != plain.Count {
		t.Fatalf("traced count %d != untraced %d", traced.Count, plain.Count)
	}
	names := map[string]bool{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(traced.Trace)
	for _, want := range []string{"http /search", "admission", "validate", "traverse", "merge"} {
		if !names[want] {
			t.Fatalf("trace envelope missing %q span (got %v)", want, names)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, h, ts := newObsServer(t)
	// Generate some traffic so counters and histograms have samples.
	for i := 0; i < 3; i++ {
		postJSON(t, srv.URL+"/search", map[string]interface{}{"query": ts[:100], "eps": 0.3})
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"twinsearch_queries_total{path=\"search\"} 3",
		"twinsearch_query_seconds_count{path=\"search\"} 3",
		"twinsearch_admission_inflight 0",
		"twinsearch_draining 0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want+"\n")) {
			t.Fatalf("/metrics missing %q:\n%s", want, buf.String())
		}
	}

	// Drain-exempt: still served, alongside /debug/slowlog and /healthz.
	h.BeginDrain()
	for _, path := range []string{"/metrics", "/debug/slowlog", "/healthz", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while draining: %s", path, resp.Status)
		}
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	srv, _, ts := newObsServer(t)
	// Nanosecond threshold: every query is "slow".
	postJSON(t, srv.URL+"/search", map[string]interface{}{"query": ts[:100], "eps": 0.3})
	resp, err := http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Entries []obs.SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) == 0 {
		t.Fatal("slowlog empty after an above-threshold query")
	}
	e := out.Entries[0]
	if e.Path != "search" || e.DurationMs < 0 {
		t.Fatalf("bad slowlog entry: %+v", e)
	}
	// Sampled/slow-logged queries carry their trace only when one was
	// recorded; with tracing off the entry still logs path + duration.
}

func TestHealthzRuntimeInfo(t *testing.T) {
	srv, _, _ := newObsServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	kern, _ := body["kernel"].(string)
	if kern == "" {
		t.Fatalf("healthz has no kernel: %v", body)
	}
	if v, ok := body["gomaxprocs"].(float64); !ok || v < 1 {
		t.Fatalf("healthz gomaxprocs = %v", body["gomaxprocs"])
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Fatalf("healthz uptime_seconds = %v", body["uptime_seconds"])
	}
}
