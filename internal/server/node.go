package server

// The shard RPC endpoints of a cluster node — tsserve's node role
// serves these. The handler implementation lives in internal/cluster
// (cluster.NodeRPC) so the client and server halves of the wire
// protocol share one package and cannot drift; this is the serving
// surface:
//
//	GET  /healthz       → cluster.NodeHealth (role "node", assignment)
//	POST /shard/search  → cluster.SearchRequest → SearchResponse (+stats)
//	POST /shard/topk    → cluster.TopKRequest   → SearchResponse
//	POST /shard/prefix  → cluster.SearchRequest → SearchResponse (tree only)
//	POST /shard/approx  → cluster.ApproxRequest → SearchResponse (+stats)
//
// Like the engine handler, a NodeHandler supports BeginDrain: during
// graceful shutdown new queries get 503 while /healthz keeps answering.

import "twinsearch/internal/cluster"

// NodeHandler serves one cluster node's shard RPC.
type NodeHandler = cluster.NodeRPC

// NewNode wraps a cluster node in its RPC handler.
func NewNode(n *cluster.Node) *NodeHandler { return cluster.NewNodeRPC(n) }
