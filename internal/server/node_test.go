package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"twinsearch"
	"twinsearch/internal/cluster"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// newNodeServer saves a 4-shard index and serves shards 0-1 from a
// node, returning the server URL, the node, and the extractor.
func newNodeServer(t *testing.T) (string, *cluster.Node, *series.Extractor) {
	t.Helper()
	data := datasets.RandomWalk(91, 2000)
	ext := series.NewExtractor(data, series.NormGlobal)
	ix, err := shard.Build(ext, shard.Config{Config: core.Config{L: 50}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.tsidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	topo := &cluster.Topology{Index: path, Nodes: []cluster.NodeSpec{
		{Name: "n0", Addr: "http://unused", Shards: []int{0, 1}},
	}}
	n, err := cluster.OpenNode(topo, "n0", ext, cluster.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	nodeHandlers[t.Name()] = NewNode(n)
	srv := httptest.NewServer(nodeHandlers[t.Name()])
	t.Cleanup(srv.Close)
	return srv.URL, n, ext
}

// nodeHandlers hands each test its handler so drain can be triggered.
var nodeHandlers = map[string]*NodeHandler{}

func TestNodeHealth(t *testing.T) {
	url, n, _ := newNodeServer(t)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h cluster.NodeHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "node" || h.Name != "n0" || h.TotalShards != 4 {
		t.Fatalf("health = %+v", h)
	}
	if len(h.Shards) != 2 || h.Shards[0] != 0 || h.Shards[1] != 1 {
		t.Fatalf("shard_ids = %v", h.Shards)
	}
	if h.Windows != n.Sub.Windows() || h.L != 50 {
		t.Fatalf("windows/l = %d/%d", h.Windows, h.L)
	}
}

// TestNodeShardEndpoints round-trips every RPC against the subset's
// in-process answers — the wire encoding must be lossless.
func TestNodeShardEndpoints(t *testing.T) {
	url, n, ext := newNodeServer(t)
	ctx := context.Background()
	q := ext.ExtractCopy(700, 50)

	post := func(path string, body interface{}) cluster.SearchResponse {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var out cluster.SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	want, wantSt, err := n.Sub.SearchStats(ctx, q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	got := post("/shard/search", cluster.SearchRequest{Query: q, Eps: 0.4})
	if len(got.Matches) != len(want) || got.Stats == nil || *got.Stats != wantSt {
		t.Fatalf("search: %d matches, stats %+v; want %d, %+v", len(got.Matches), got.Stats, len(want), wantSt)
	}
	for i, m := range want {
		if got.Matches[i].Start != m.Start {
			t.Fatalf("search match %d = %+v, want %+v", i, got.Matches[i], m)
		}
	}

	wantK, err := n.Sub.SearchTopK(ctx, q, 5, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	gotK := post("/shard/topk", cluster.TopKRequest{Query: q, K: 5})
	if len(gotK.Matches) != len(wantK) {
		t.Fatalf("topk: %d matches, want %d", len(gotK.Matches), len(wantK))
	}
	for i, m := range wantK {
		if gotK.Matches[i].Start != m.Start || gotK.Matches[i].Dist != m.Dist {
			t.Fatalf("topk match %d = %+v, want %+v", i, gotK.Matches[i], m)
		}
	}

	// A seeded bound must only prune, never add.
	bound := wantK[len(wantK)-1].Dist
	gotB := post("/shard/topk", cluster.TopKRequest{Query: q, K: 5, Bound: &bound})
	if len(gotB.Matches) != len(wantK) {
		t.Fatalf("bounded topk: %d matches, want %d", len(gotB.Matches), len(wantK))
	}

	wantP, err := n.Sub.SearchPrefixTree(ctx, q[:25], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gotP := post("/shard/prefix", cluster.SearchRequest{Query: q[:25], Eps: 0.3})
	if len(gotP.Matches) != len(wantP) {
		t.Fatalf("prefix: %d matches, want %d", len(gotP.Matches), len(wantP))
	}

	wantA, _, err := n.Sub.SearchApprox(ctx, q, 0.4, 2*n.Sub.Windows())
	if err != nil {
		t.Fatal(err)
	}
	gotA := post("/shard/approx", cluster.ApproxRequest{Query: q, Eps: 0.4, LeafBudget: 2 * n.Sub.Windows()})
	if len(gotA.Matches) != len(wantA) {
		t.Fatalf("approx: %d matches, want %d", len(gotA.Matches), len(wantA))
	}
}

func TestNodeShardEndpointErrors(t *testing.T) {
	url, _, _ := newNodeServer(t)
	// Wrong method.
	resp, err := http.Get(url + "/shard/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /shard/search: %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err = http.Post(url+"/shard/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	// Wrong query length.
	raw, _ := json.Marshal(cluster.SearchRequest{Query: []float64{1, 2}, Eps: 0.3})
	resp, err = http.Post(url+"/shard/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short query: %d", resp.StatusCode)
	}
	// Non-positive approx budget.
	raw, _ = json.Marshal(cluster.ApproxRequest{Query: make([]float64, 50), Eps: 0.3, LeafBudget: 0})
	resp, err = http.Post(url+"/shard/approx", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero budget: %d", resp.StatusCode)
	}
}

// TestDrain checks both handler kinds: once draining, queries get 503
// while /healthz stays up and reports it.
func TestDrain(t *testing.T) {
	// Standalone engine handler.
	ts := datasets.EEGN(81, 3000)
	eng, err := twinsearch.Open(ts, twinsearch.Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	var health map[string]interface{}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["role"] != "standalone" || health["status"] != "ok" {
		t.Fatalf("pre-drain healthz = %v", health)
	}

	h.BeginDrain()
	raw, _ := json.Marshal(map[string]interface{}{"query": ts[0:100], "eps": 0.3})
	resp, err = http.Post(srv.URL+"/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining search: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "draining" {
		t.Fatalf("draining healthz = %d %v", resp.StatusCode, health["status"])
	}

	// Node handler: same contract for the shard RPC.
	url, _, ext := newNodeServer(t)
	nodeHandlers[t.Name()].BeginDrain()
	q := ext.ExtractCopy(0, 50)
	raw, _ = json.Marshal(cluster.SearchRequest{Query: q, Eps: 0.3})
	resp, err = http.Post(url+"/shard/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard/search: %d, want 503", resp.StatusCode)
	}
	var nh cluster.NodeHealth
	nresp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(nresp.Body).Decode(&nh); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK || nh.Status != "draining" {
		t.Fatalf("draining node healthz = %d %q", nresp.StatusCode, nh.Status)
	}
}
