// Package server exposes a loaded twin-search engine over HTTP with a
// small JSON API — the shape in which a monitoring or exploration
// service would actually consume the index:
//
//	GET  /healthz               → {"status":"ok", ...engine info}
//	GET  /stats                 → serving-tier counters (caches, admission, epoch)
//	POST /search                → {"query":[...], "eps":0.3}
//	POST /topk                  → {"query":[...], "k":5}
//	POST /append                → {"values":[...]}   (TS-Index only)
//	GET  /subsequence?start=N   → the indexed window, normalized
//
// Search runs concurrently (the underlying engines are read-safe);
// Append is serialized against searches by the handler's RW-mutex.
// With Config.MaxInflight set, the query endpoints run behind
// admission control: a bounded queue in front of the executor fan-out,
// shedding with 429 + Retry-After past the limit (see admission.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twinsearch"
	"twinsearch/internal/mbts/kernel"
	"twinsearch/internal/obs"
)

// Handler is an http.Handler serving one engine.
type Handler struct {
	mu    sync.RWMutex
	eng   *twinsearch.Engine
	mux   *http.ServeMux
	adm   *admission
	drain atomic.Bool
	start time.Time
}

// New wraps an engine with no admission control (every request runs);
// see NewWithConfig.
func New(eng *twinsearch.Engine) *Handler {
	return NewWithConfig(eng, Config{})
}

// NewWithConfig wraps an engine with the given serving-tier config.
func NewWithConfig(eng *twinsearch.Engine, cfg Config) *Handler {
	h := &Handler{eng: eng, mux: http.NewServeMux(), adm: newAdmission(cfg), start: time.Now()}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/debug/slowlog", h.slowlog)
	h.mux.HandleFunc("/search", h.search)
	h.mux.HandleFunc("/topk", h.topk)
	h.mux.HandleFunc("/append", h.append)
	h.mux.HandleFunc("/subsequence", h.subsequence)
	// The serving tier owns admission and drain state, so their gauges
	// register here rather than in the engine; scrape-time funcs mean
	// the registry always reports the live values.
	reg := eng.Metrics()
	reg.GaugeFunc("twinsearch_admission_inflight", func() float64 {
		return float64(h.adm.snapshot().Inflight)
	})
	reg.GaugeFunc("twinsearch_admission_queue_depth", func() float64 {
		return float64(h.adm.snapshot().QueueDepth)
	})
	reg.CounterFunc("twinsearch_admission_shed_total", func() float64 {
		return float64(h.adm.snapshot().Shed)
	})
	reg.GaugeFunc("twinsearch_draining", func() float64 {
		if h.drain.Load() {
			return 1
		}
		return 0
	})
	return h
}

// BeginDrain makes every subsequent query answer 503 while /healthz
// keeps working: call it when graceful shutdown starts, so in-flight
// requests finish, load balancers see the drain, and no new query can
// race Engine.Close's unmap.
func (h *Handler) BeginDrain() { h.drain.Store(true) }

// drainExempt lists the observability endpoints that keep answering
// while the server drains — operators read them precisely when the
// server is unhappy.
func drainExempt(path string) bool {
	switch path {
	case "/healthz", "/stats", "/metrics", "/debug/slowlog":
		return true
	}
	return false
}

// ServeHTTP implements http.Handler. Drain is checked before
// admission: a draining server answers 503 without consuming queue
// capacity, and only the observability endpoints stay open.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.drain.Load() && !drainExempt(r.URL.Path) {
		writeErr(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	h.mux.ServeHTTP(w, r)
}

// admit runs the request through admission control, writing the shed
// or cancellation response itself when the request may not proceed.
// On true the caller must defer h.adm.release().
func (h *Handler) admit(w http.ResponseWriter, r *http.Request) bool {
	err := h.adm.acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int((h.adm.retryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, err)
	default:
		// The client's context ended while queued; it is gone, but
		// finish the exchange coherently.
		writeErr(w, http.StatusServiceUnavailable, err)
	}
	return false
}

var errDraining = errors.New("server is draining for shutdown")

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	status := "ok"
	if h.drain.Load() {
		status = "draining"
	}
	role := "standalone"
	body := map[string]interface{}{
		"status":     status,
		"method":     h.eng.Method().String(),
		"norm":       h.eng.Norm().String(),
		"l":          h.eng.L(),
		"series_len": h.eng.SeriesLen(),
		"windows":    h.eng.NumSubsequences(),
		// memory_bytes is the whole index footprint; heap_bytes and
		// mapped_bytes split it into pages this process pays for
		// exclusively versus pages served from an mmap'd saved index
		// (shared across processes, reclaimable by the kernel).
		"memory_bytes": h.eng.MemoryBytes(),
		"heap_bytes":   h.eng.HeapBytes(),
		"mapped_bytes": h.eng.MappedBytes(),
		"shards":       h.eng.Shards(),
		// How sharded partitions own the position space: "mean" packs
		// look-alike windows per shard (tighter bounds, k-way merge),
		// "range" is the contiguous default.
		"partition": partitionName(h.eng.PartitionByMean()),
		// The engine's query executor is shared by every request this
		// server handles — sharded fan-out units, batch work, and
		// approximate probes all schedule onto these workers.
		"workers": h.eng.Workers(),
		// The index mutation counter result-cache keys embed; consumers
		// caching answers can invalidate on "epoch changed". /stats has
		// the full serving-tier counter set.
		"epoch": h.eng.Epoch(),
		// Which distance-kernel implementation dispatch selected at
		// startup (scalar, portable, or avx2) — the first thing to check
		// when two machines disagree on throughput.
		"kernel":         kernel.Active(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"uptime_seconds": int64(time.Since(h.start).Seconds()),
	}
	cl := h.eng.Cluster()
	h.mu.RUnlock()
	if cl != nil {
		// Coordinator engines report the cluster view: which node owns
		// which shards and each node's cached liveness — maintained by
		// the background membership sweep, never probed inline, so this
		// endpoint answers in microseconds however many peers exist.
		// Each row's checked_at says how fresh its fact is.
		role = "coordinator"
		body["nodes"] = cl.Health()
		body["replicas"] = cl.Replicas()
	}
	body["role"] = role
	writeJSON(w, http.StatusOK, body)
}

func partitionName(byMean bool) string {
	if byMean {
		return "mean"
	}
	return "range"
}

// stats serves the serving-tier observability snapshot: cache
// hit/miss/eviction counters, admission queue depth and shed count,
// and the index epoch. Drain-exempt like /healthz — operators read it
// precisely while the server is unhappy.
func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	ss := h.eng.ServingStats()
	h.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":        ss.Epoch,
		"plan_cache":   ss.Plan,
		"result_cache": ss.Result,
		"admission":    h.adm.snapshot(),
		"draining":     h.drain.Load(),
	})
}

// metrics serves the engine's registry in Prometheus text exposition
// format. Drain-exempt.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.eng.Metrics().WritePrometheus(w)
}

// slowlog serves the slow-query ring buffer, newest first, each entry
// carrying the query's full span tree. Drain-exempt. Empty (or
// disabled: -slowlog-size 0) logs answer {"entries":[]}.
func (h *Handler) slowlog(w http.ResponseWriter, r *http.Request) {
	entries := h.eng.SlowLog().Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"entries": entries})
}

// traceWanted reports whether the request forces a trace (?trace=1).
func traceWanted(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

type searchRequest struct {
	Query []float64 `json:"query"`
	Eps   float64   `json:"eps"`
}

type matchBody struct {
	Start int      `json:"start"`
	Dist  *float64 `json:"dist,omitempty"` // only when computed
}

type searchResponse struct {
	Count   int         `json:"count"`
	Matches []matchBody `json:"matches"`
	// Trace is the query's span tree, present only when the request
	// forced one with ?trace=1. On cluster topologies it is the stitched
	// cross-node tree: coordinator spans with each node's subtree
	// grafted under the replica attempt that won.
	Trace *obs.Span `json:"trace,omitempty"`
}

func toBody(ms []twinsearch.Match) searchResponse {
	out := searchResponse{Count: len(ms), Matches: make([]matchBody, len(ms))}
	for i, m := range ms {
		out.Matches[i] = matchBody{Start: m.Start}
		if m.Dist >= 0 {
			d := m.Dist
			out.Matches[i].Dist = &d
		}
	}
	return out
}

func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// A forced trace (?trace=1) is created before admission so the time
	// spent queued shows up as an "admission" span.
	ctx := r.Context()
	var tr *obs.Trace
	if traceWanted(r) {
		tr = obs.NewTrace("http /search")
		ctx = obs.WithSpan(ctx, tr.Root)
	}
	var asp *obs.Span
	if tr != nil {
		asp = tr.Root.StartChild("admission")
	}
	ok := h.admit(w, r)
	asp.End()
	if !ok {
		return
	}
	defer h.adm.release()
	// r.Context() flows into the fan-out: a client that disconnects (or
	// a proxy that times out) cancels the remaining work units instead
	// of burning executor time on an unwanted answer.
	h.mu.RLock()
	ms, err := h.eng.SearchCtx(ctx, req.Query, req.Eps)
	h.mu.RUnlock()
	if err != nil {
		writeErr(w, searchStatus(err), err)
		return
	}
	body := toBody(ms)
	if tr != nil {
		tr.Finish()
		body.Trace = tr.Root
	}
	writeJSON(w, http.StatusOK, body)
}

// searchStatus maps engine errors to HTTP: context endings and
// unreachable cluster nodes are the service's unavailability (503),
// everything else is the client's request being refused (400).
func searchStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, twinsearch.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

type topkRequest struct {
	Query []float64 `json:"query"`
	K     int       `json:"k"`
}

func (h *Handler) topk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ctx := r.Context()
	var tr *obs.Trace
	if traceWanted(r) {
		tr = obs.NewTrace("http /topk")
		ctx = obs.WithSpan(ctx, tr.Root)
	}
	var asp *obs.Span
	if tr != nil {
		asp = tr.Root.StartChild("admission")
	}
	ok := h.admit(w, r)
	asp.End()
	if !ok {
		return
	}
	defer h.adm.release()
	h.mu.RLock()
	ms, err := h.eng.SearchTopKCtx(ctx, req.Query, req.K)
	h.mu.RUnlock()
	if err != nil {
		writeErr(w, searchStatus(err), err)
		return
	}
	body := toBody(ms)
	if tr != nil {
		tr.Finish()
		body.Trace = tr.Root
	}
	writeJSON(w, http.StatusOK, body)
}

type appendRequest struct {
	Values []float64 `json:"values"`
}

func (h *Handler) append(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Append bumps the engine's epoch before returning, and the epoch is
	// read under the same write lock — by the time any client sees this
	// response, no pre-append cached result can be served (its key
	// embeds the old epoch).
	h.mu.Lock()
	err := h.eng.Append(req.Values...)
	n := h.eng.SeriesLen()
	epoch := h.eng.Epoch()
	h.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"series_len": n, "epoch": epoch})
}

func (h *Handler) subsequence(w http.ResponseWriter, r *http.Request) {
	start, err := strconv.Atoi(r.URL.Query().Get("start"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad start: %w", err))
		return
	}
	h.mu.RLock()
	sub, err := h.eng.Subsequence(start)
	h.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"start": start, "values": sub})
}
