// Package plot renders time series and twin-search results as ASCII
// charts for terminal inspection — the quickest way to eyeball what a
// query matched without leaving the CLI.
//
// Rendering downsamples the series into one column per character cell,
// drawing the min..max envelope of the samples each column covers, so
// spikes survive downsampling (the detail twin search cares about).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Config controls chart geometry.
type Config struct {
	Width  int // columns (default 100)
	Height int // rows (default 16)
}

func (c *Config) fill() {
	if c.Width <= 0 {
		c.Width = 100
	}
	if c.Height <= 0 {
		c.Height = 16
	}
}

// Series renders t as an envelope chart.
func Series(t []float64, cfg Config) string {
	return Matches(t, nil, 0, cfg)
}

// Matches renders t with the windows [p, p+l) for every p in starts
// highlighted. Highlighted columns use '█' for the envelope; plain
// columns use '│' (single cell) or '┃' spans.
func Matches(t []float64, starts []int, l int, cfg Config) string {
	cfg.fill()
	n := len(t)
	if n == 0 {
		return "(empty series)\n"
	}
	w, h := cfg.Width, cfg.Height

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	trueLo, trueHi := lo, hi
	if hi == lo {
		hi = lo + 1 // avoid division by zero; footer keeps real values
	}

	// Column membership of matches.
	hot := make([]bool, w)
	for _, p := range starts {
		c0 := p * w / n
		c1 := (p + l - 1) * w / n
		for c := c0; c <= c1 && c < w; c++ {
			if c >= 0 {
				hot[c] = true
			}
		}
	}

	// Per-column envelope.
	colLo := make([]int, w) // row indices, 0 = top
	colHi := make([]int, w)
	for c := 0; c < w; c++ {
		s0 := c * n / w
		s1 := (c + 1) * n / w
		if s1 <= s0 {
			s1 = s0 + 1
		}
		if s1 > n {
			s1 = n
		}
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range t[s0:s1] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		// Value → row (inverted: row 0 is the top of the chart).
		toRow := func(v float64) int {
			r := int(math.Round((hi - v) / (hi - lo) * float64(h-1)))
			if r < 0 {
				r = 0
			}
			if r >= h {
				r = h - 1
			}
			return r
		}
		colLo[c] = toRow(mx) // top row of the span
		colHi[c] = toRow(mn) // bottom row of the span
	}

	var sb strings.Builder
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			inSpan := r >= colLo[c] && r <= colHi[c]
			switch {
			case inSpan && hot[c]:
				sb.WriteRune('█')
			case inSpan:
				sb.WriteRune('┃')
			default:
				sb.WriteRune(' ')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "min=%.4g max=%.4g n=%d", trueLo, trueHi, n)
	if len(starts) > 0 {
		fmt.Fprintf(&sb, " matches=%d (l=%d, shaded)", len(starts), l)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Sparkline renders t as a single-row sparkline using eighth-block
// characters, useful for match previews.
func Sparkline(t []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	n := len(t)
	if n == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if width > n {
		width = n
	}
	var sb strings.Builder
	for c := 0; c < width; c++ {
		s0 := c * n / width
		s1 := (c + 1) * n / width
		if s1 <= s0 {
			s1 = s0 + 1
		}
		var sum float64
		for _, v := range t[s0:s1] {
			sum += v
		}
		mean := sum / float64(s1-s0)
		idx := int((mean - lo) / (hi - lo) * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
