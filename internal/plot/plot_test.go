package plot

import (
	"strings"
	"testing"

	"twinsearch/internal/datasets"
)

func TestSeriesGeometry(t *testing.T) {
	ts := datasets.Sine(1, 1000, 100, 1, 0)
	out := Series(ts, Config{Width: 80, Height: 12})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // 12 chart rows + footer
		t.Fatalf("got %d lines", len(lines))
	}
	for i := 0; i < 12; i++ {
		if n := len([]rune(lines[i])); n != 80 {
			t.Fatalf("row %d has %d cells", i, n)
		}
	}
	if !strings.Contains(lines[12], "n=1000") {
		t.Fatalf("footer missing: %q", lines[12])
	}
	// A full-range sine must touch top and bottom rows.
	if !strings.Contains(lines[0], "┃") || !strings.Contains(lines[11], "┃") {
		t.Fatal("sine should span the full chart height")
	}
}

func TestSeriesDefaultsAndEmpty(t *testing.T) {
	if out := Series(nil, Config{}); !strings.Contains(out, "empty") {
		t.Fatalf("empty series output: %q", out)
	}
	out := Series([]float64{1, 2, 3}, Config{})
	if len(strings.Split(out, "\n")) < 17 {
		t.Fatal("default height not applied")
	}
}

func TestSeriesConstant(t *testing.T) {
	out := Series([]float64{5, 5, 5, 5}, Config{Width: 10, Height: 5})
	if !strings.Contains(out, "min=5 max=5") {
		t.Fatalf("constant footer: %q", out)
	}
}

func TestMatchesHighlight(t *testing.T) {
	ts := datasets.Sine(2, 1000, 100, 1, 0)
	out := Matches(ts, []int{500}, 100, Config{Width: 100, Height: 10})
	if !strings.Contains(out, "█") {
		t.Fatal("match window should be shaded")
	}
	if !strings.Contains(out, "matches=1") {
		t.Fatal("footer should count matches")
	}
	// Shading must cover roughly columns 50..60 and not column 10.
	lines := strings.Split(out, "\n")
	for _, line := range lines[:10] {
		runes := []rune(line)
		if len(runes) == 100 && runes[10] == '█' {
			t.Fatal("shading leaked outside the match window")
		}
	}
}

func TestMatchesEdgeWindows(t *testing.T) {
	ts := datasets.RandomWalk(3, 200)
	// Matches at the extreme ends must not panic or leak out of range.
	out := Matches(ts, []int{0, 150}, 50, Config{Width: 40, Height: 8})
	if !strings.Contains(out, "matches=2") {
		t.Fatal("both matches should be recorded")
	}
}

func TestSparkline(t *testing.T) {
	ts := datasets.Sine(4, 400, 100, 1, 0)
	s := Sparkline(ts, 40)
	if got := len([]rune(s)); got != 40 {
		t.Fatalf("sparkline width %d", got)
	}
	// Column means smooth the extremes; require a wide block spread
	// rather than the absolute endpoints.
	distinct := map[rune]bool{}
	for _, r := range s {
		distinct[r] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("sparkline should span several block levels: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should give empty sparkline")
	}
	if got := len([]rune(Sparkline([]float64{1, 2}, 10))); got != 2 {
		t.Fatalf("width must clamp to n, got %d", got)
	}
	if got := len([]rune(Sparkline(ts, 0))); got != 60 {
		t.Fatalf("default width, got %d", got)
	}
}
