// Package mbts implements Minimum Bounding Time Series
// [Chatzigeorgakidis et al. 2017], the bounding structure at the heart of
// the TS-Index: a pair of sequences (upper, lower) enclosing a set of
// equal-length time series pointwise (paper Definition 2), together with
// the two Chebyshev-flavoured distances the index needs —
// sequence-to-MBTS (Eq. 2, used for descent and for the Lemma 1 pruning
// test) and MBTS-to-MBTS (Eq. 3, used when splitting internal nodes).
package mbts

import (
	"fmt"
	"unsafe"

	"twinsearch/internal/mbts/kernel"
)

// MBTS bounds a set of sequences of equal length l: Lower[i] ≤ S[i] ≤
// Upper[i] for every enclosed S and every timestamp i.
type MBTS struct {
	Upper []float64
	Lower []float64
}

// New returns an empty MBTS of length l: Upper at -∞-like sentinel is
// avoided by construction — an MBTS is always seeded from a first
// sequence via FromSequence or Enclose, so New pre-allocates only.
func New(l int) *MBTS {
	return &MBTS{Upper: make([]float64, l), Lower: make([]float64, l)}
}

// FromSequence returns the tightest MBTS around a single sequence: both
// bounds equal the sequence.
func FromSequence(s []float64) *MBTS {
	b := New(len(s))
	copy(b.Upper, s)
	copy(b.Lower, s)
	return b
}

// Enclose returns the tightest MBTS around a non-empty set of sequences
// (Definition 2 / Eq. 1).
func Enclose(set ...[]float64) (*MBTS, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("mbts: Enclose needs at least one sequence")
	}
	b := FromSequence(set[0])
	for _, s := range set[1:] {
		if len(s) != b.Len() {
			return nil, fmt.Errorf("mbts: mixed lengths %d and %d", b.Len(), len(s))
		}
		b.ExpandToSequence(s)
	}
	return b, nil
}

// Len returns the number of timestamps the MBTS spans.
func (b *MBTS) Len() int { return len(b.Upper) }

// Clone deep-copies the MBTS.
func (b *MBTS) Clone() *MBTS {
	c := New(b.Len())
	copy(c.Upper, b.Upper)
	copy(c.Lower, b.Lower)
	return c
}

// CopyFrom overwrites b's bounds with src's.
func (b *MBTS) CopyFrom(src *MBTS) {
	copy(b.Upper, src.Upper)
	copy(b.Lower, src.Lower)
}

// SetTo resets the MBTS to bound exactly the single sequence s.
func (b *MBTS) SetTo(s []float64) {
	copy(b.Upper, s)
	copy(b.Lower, s)
}

// ExpandToSequence grows the bounds just enough to enclose s.
func (b *MBTS) ExpandToSequence(s []float64) {
	for i, v := range s {
		if v > b.Upper[i] {
			b.Upper[i] = v
		}
		if v < b.Lower[i] {
			b.Lower[i] = v
		}
	}
}

// ExpandToMBTS grows the bounds just enough to enclose another MBTS.
func (b *MBTS) ExpandToMBTS(o *MBTS) {
	for i := range b.Upper {
		if o.Upper[i] > b.Upper[i] {
			b.Upper[i] = o.Upper[i]
		}
		if o.Lower[i] < b.Lower[i] {
			b.Lower[i] = o.Lower[i]
		}
	}
}

// ContainsSequence reports whether s lies within the bounds at every
// timestamp.
func (b *MBTS) ContainsSequence(s []float64) bool {
	for i, v := range s {
		if v > b.Upper[i] || v < b.Lower[i] {
			return false
		}
	}
	return true
}

// ContainsMBTS reports whether o lies entirely within b.
func (b *MBTS) ContainsMBTS(o *MBTS) bool {
	for i := range b.Upper {
		if o.Upper[i] > b.Upper[i] || o.Lower[i] < b.Lower[i] {
			return false
		}
	}
	return true
}

// DistSequence is the paper's Eq. 2: the Chebyshev-style distance from a
// sequence to the MBTS — the largest pointwise excursion of s outside
// the band, 0 when s is enclosed.
func (b *MBTS) DistSequence(s []float64) float64 {
	return DistFlat(b.Upper, b.Lower, s)
}

// DistSequenceAbandon computes Eq. 2 but abandons and returns
// (0, false) as soon as the running maximum exceeds limit — the early
// abandoning used both during query pruning (Lemma 1 check against ε)
// and during descent (against the best distance so far). When the
// distance is ≤ limit it returns (dist, true).
func (b *MBTS) DistSequenceAbandon(s []float64, limit float64) (float64, bool) {
	return DistAbandonFlat(b.Upper, b.Lower, s, limit)
}

// DistFlat is Eq. 2 over raw bound slices, without an MBTS wrapper —
// the kernel the frozen index arena (core.Frozen) streams over its
// packed Upper/Lower backing arrays. upper and lower must have at least
// len(s) entries. The computation is dispatched through
// internal/mbts/kernel (branch-free portable or AVX2, selected at init;
// see that package for the exact NaN/result contract — all forms are
// bit-identical).
func DistFlat(upper, lower, s []float64) float64 {
	return kernel.DistFlat(upper, lower, s)
}

// DistAbandonFlat is DistSequenceAbandon over raw bound slices (see
// DistFlat): it returns (0, false) as soon as the running maximum
// exceeds limit, and (dist, true) when the distance is ≤ limit.
func DistAbandonFlat(upper, lower, s []float64, limit float64) (float64, bool) {
	return kernel.DistAbandonFlat(upper, lower, s, limit)
}

// DistMBTS is the paper's Eq. 3: the separation between two MBTS — the
// largest pointwise gap between the bands, 0 when they overlap at every
// timestamp.
func (b *MBTS) DistMBTS(o *MBTS) float64 {
	return kernel.DistMBTS(b.Upper, b.Lower, o.Upper, o.Lower)
}

// Width returns the total band width Σ_i (Upper[i] − Lower[i]), the
// measure TS-Index minimizes when assigning entries during node splits
// (DESIGN.md §5: the R*-tree "enlargement" analogue for MBTS).
func (b *MBTS) Width() float64 {
	return kernel.Width(b.Upper, b.Lower)
}

// WidthIncreaseSequence returns how much Width would grow if s were
// enclosed, without modifying b.
func (b *MBTS) WidthIncreaseSequence(s []float64) float64 {
	return kernel.WidthIncreaseSequence(b.Upper, b.Lower, s)
}

// WidthIncreaseMBTS returns how much Width would grow if o were
// enclosed, without modifying b.
func (b *MBTS) WidthIncreaseMBTS(o *MBTS) float64 {
	return kernel.WidthIncreaseMBTS(b.Upper, b.Lower, o.Upper, o.Lower)
}

// Sizes of the MBTS footprint components, derived from the compiler
// rather than hardcoded so the accounting tracks the real layout (a
// slice header is three words, not two — the hardcoded "16" this
// replaced undercounted every header by a word).
const (
	structBytes  = int(unsafe.Sizeof(MBTS{}))     // the two slice headers
	elementBytes = int(unsafe.Sizeof(float64(0))) // one bound sample
)

// MemoryBytes reports the heap bytes held by the MBTS bounds, for the
// index memory-footprint accounting in Fig. 8a: the struct (its two
// slice headers) plus the backing arrays.
func (b *MBTS) MemoryBytes() int {
	return structBytes + elementBytes*(len(b.Upper)+len(b.Lower))
}
