package mbts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twinsearch/internal/series"
)

func randSeqs(seed int64, count, l int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		s := make([]float64, l)
		for j := range s {
			s[j] = rng.NormFloat64() * 3
		}
		out[i] = s
	}
	return out
}

func TestEnclose(t *testing.T) {
	set := [][]float64{
		{1, 5, 2},
		{3, 1, 2},
		{2, 3, 9},
	}
	b, err := Enclose(set...)
	if err != nil {
		t.Fatal(err)
	}
	wantU := []float64{3, 5, 9}
	wantL := []float64{1, 1, 2}
	for i := range wantU {
		if b.Upper[i] != wantU[i] || b.Lower[i] != wantL[i] {
			t.Fatalf("bounds = %v / %v", b.Upper, b.Lower)
		}
	}
}

func TestEncloseErrors(t *testing.T) {
	if _, err := Enclose(); err == nil {
		t.Fatal("empty Enclose must error")
	}
	if _, err := Enclose([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mixed lengths must error")
	}
}

func TestFromSequenceTight(t *testing.T) {
	s := []float64{1, -2, 3}
	b := FromSequence(s)
	if !b.ContainsSequence(s) {
		t.Fatal("must contain its seed")
	}
	if b.Width() != 0 {
		t.Fatalf("singleton width = %v", b.Width())
	}
	if b.DistSequence(s) != 0 {
		t.Fatal("distance to seed must be 0")
	}
}

func TestContainment(t *testing.T) {
	set := randSeqs(1, 10, 20)
	b, _ := Enclose(set...)
	for i, s := range set {
		if !b.ContainsSequence(s) {
			t.Fatalf("sequence %d escaped its MBTS", i)
		}
		if d := b.DistSequence(s); d != 0 {
			t.Fatalf("enclosed sequence %d at distance %v", i, d)
		}
	}
}

func TestDistSequence(t *testing.T) {
	b, _ := Enclose([]float64{0, 0}, []float64{1, 1})
	if d := b.DistSequence([]float64{2, 0.5}); d != 1 {
		t.Fatalf("dist above = %v, want 1", d)
	}
	if d := b.DistSequence([]float64{-3, 0.5}); d != 3 {
		t.Fatalf("dist below = %v, want 3", d)
	}
	if d := b.DistSequence([]float64{2, -4}); d != 4 {
		t.Fatalf("max rule = %v, want 4", d)
	}
}

func TestDistSequenceAbandon(t *testing.T) {
	b, _ := Enclose([]float64{0, 0, 0})
	s := []float64{0.5, 2, 0.1}
	if d, ok := b.DistSequenceAbandon(s, 3); !ok || d != 2 {
		t.Fatalf("got %v, %v", d, ok)
	}
	if _, ok := b.DistSequenceAbandon(s, 1.5); ok {
		t.Fatal("should abandon when exceeding limit")
	}
	if d, ok := b.DistSequenceAbandon(s, 2); !ok || d != 2 {
		t.Fatalf("limit is inclusive: got %v, %v", d, ok)
	}
}

func TestDistMBTS(t *testing.T) {
	b1, _ := Enclose([]float64{0, 0}, []float64{1, 1})
	b2, _ := Enclose([]float64{3, 0.5}, []float64{4, 0.8})
	// Timestamp 0: gap 3-1 = 2; timestamp 1: overlap → 0.
	if d := b1.DistMBTS(b2); d != 2 {
		t.Fatalf("DistMBTS = %v, want 2", d)
	}
	if d := b2.DistMBTS(b1); d != 2 {
		t.Fatalf("DistMBTS not symmetric: %v", d)
	}
	if d := b1.DistMBTS(b1); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestExpandToMBTSAndContains(t *testing.T) {
	b1, _ := Enclose([]float64{0, 0}, []float64{1, 1})
	b2, _ := Enclose([]float64{-1, 2})
	b1.ExpandToMBTS(b2)
	if !b1.ContainsMBTS(b2) {
		t.Fatal("expansion must enclose")
	}
	if b1.Lower[0] != -1 || b1.Upper[1] != 2 {
		t.Fatalf("bounds after expand = %v / %v", b1.Upper, b1.Lower)
	}
}

func TestWidthIncrease(t *testing.T) {
	b, _ := Enclose([]float64{0, 0}, []float64{1, 1})
	s := []float64{2, -1}
	inc := b.WidthIncreaseSequence(s)
	if inc != 2 { // +1 above at t0, +1 below at t1
		t.Fatalf("WidthIncreaseSequence = %v, want 2", inc)
	}
	before := b.Width()
	b.ExpandToSequence(s)
	if got := b.Width() - before; got != inc {
		t.Fatalf("actual increase %v != predicted %v", got, inc)
	}

	o, _ := Enclose([]float64{-2, 0.5}, []float64{3, 0.6})
	b2, _ := Enclose([]float64{0, 0}, []float64{1, 1})
	incM := b2.WidthIncreaseMBTS(o)
	beforeM := b2.Width()
	b2.ExpandToMBTS(o)
	if got := b2.Width() - beforeM; got != incM {
		t.Fatalf("MBTS increase %v != predicted %v", got, incM)
	}
}

func TestCloneSetCopy(t *testing.T) {
	b, _ := Enclose([]float64{1, 2}, []float64{3, 0})
	c := b.Clone()
	c.Upper[0] = 99
	if b.Upper[0] == 99 {
		t.Fatal("Clone must not share storage")
	}
	d := New(2)
	d.CopyFrom(b)
	if d.Upper[0] != b.Upper[0] || d.Lower[1] != b.Lower[1] {
		t.Fatal("CopyFrom mismatch")
	}
	d.SetTo([]float64{5, 5})
	if d.Upper[0] != 5 || d.Lower[0] != 5 {
		t.Fatal("SetTo mismatch")
	}
}

func TestMemoryBytes(t *testing.T) {
	b := New(100)
	if b.MemoryBytes() <= 1600 {
		t.Fatalf("MemoryBytes = %d, expected > 1600 for l=100", b.MemoryBytes())
	}
}

// Property — Lemma 1 (the TS-Index pruning guarantee): for any query Q
// and any sequence S enclosed by MBTS B, d(Q, B) ≤ d∞(Q, S). Hence if
// d(Q, B) > ε no enclosed sequence can be a twin.
func TestLemma1LowerBound(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		for _, v := range raw {
			if v > 1e100 || v < -1e100 {
				return true
			}
		}
		l := len(raw) / 3
		q, s1, s2 := raw[:l], raw[l:2*l], raw[2*l:3*l]
		b, _ := Enclose(s1, s2)
		dq := b.DistSequence(q)
		return dq <= series.Chebyshev(q, s1)+1e-9 && dq <= series.Chebyshev(q, s2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistMBTS lower-bounds the Chebyshev distance between any two
// members of the respective MBTS (the soundness requirement for using
// Eq. 3 during internal-node splits).
func TestDistMBTSLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		l := 2 + rng.Intn(30)
		setA := randSeqs(int64(iter)*2+1, 3, l)
		setB := randSeqs(int64(iter)*2+2, 3, l)
		a, _ := Enclose(setA...)
		b, _ := Enclose(setB...)
		d := a.DistMBTS(b)
		for _, s1 := range setA {
			for _, s2 := range setB {
				if d > series.Chebyshev(s1, s2)+1e-9 {
					t.Fatalf("iter %d: Eq.3 distance %v exceeds member distance %v", iter, d, series.Chebyshev(s1, s2))
				}
			}
		}
	}
}

// Property: DistSequenceAbandon agrees with DistSequence for any limit.
func TestAbandonAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 500; iter++ {
		l := 1 + rng.Intn(40)
		set := randSeqs(int64(iter)+100, 4, l)
		b, _ := Enclose(set[:3]...)
		q := set[3]
		full := b.DistSequence(q)
		limit := rng.Float64() * 10
		d, ok := b.DistSequenceAbandon(q, limit)
		if full <= limit {
			if !ok || d != full {
				t.Fatalf("iter %d: abandon disagrees (full=%v limit=%v got %v,%v)", iter, full, limit, d, ok)
			}
		} else if ok {
			t.Fatalf("iter %d: should abandon (full=%v limit=%v)", iter, full, limit)
		}
	}
}
