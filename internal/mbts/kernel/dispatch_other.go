//go:build !amd64

package kernel

// Non-amd64 builds have no assembly kernels yet (an ARM NEON port is
// the noted follow-on); dispatch settles on the portable branch-free
// form.
var hasAVX2 = false

func avx2Impl() Impl { return portableImpl }
