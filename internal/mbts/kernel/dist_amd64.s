// AVX2 Eq. 2 kernel and the CPUID/XGETBV feature probes.
//
// Lane recipe (4 float64 per step), mirroring portable.go's excursion:
//
//	above  = v GT_OQ u            (ordered: false on NaN, like Go >)
//	below  = v LT_OQ l
//	d      = (v-u) & above  |  (l-v) & (below &^ above)
//	acc    = VMAXPD(acc, d)
//
// The masked d lanes are never NaN and never -0 (see the package NaN
// contract), so VMAXPD's NaN/zero asymmetries are unobservable and the
// accumulated maxima equal the sequential scalar maximum bit-for-bit.
// Every 16 steps (64 lanes) the accumulator is compared against the
// broadcast limit; any lane above it abandons the scan.

#include "textflag.h"

// func distKernelAVX2(upper, lower, s *float64, n int, limit float64) (m float64, abandoned bool)
TEXT ·distKernelAVX2(SB), NOSPLIT, $0-49
	MOVQ upper+0(FP), SI
	MOVQ lower+8(FP), DI
	MOVQ s+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $2, CX                  // CX = 4-lane steps (n is a multiple of 4)
	VXORPD Y0, Y0, Y0            // Y0 = running maxima, +0 seeded
	VBROADCASTSD limit+32(FP), Y7

blockstart:
	TESTQ CX, CX
	JZ    done
	MOVQ  CX, R9                 // R9 = steps this block = min(CX, 16)
	CMPQ  R9, $16
	JBE   consume
	MOVQ  $16, R9

consume:
	SUBQ R9, CX

step:
	VMOVUPD (DX), Y1             // v
	VMOVUPD (SI), Y2             // u
	VMOVUPD (DI), Y3             // l
	VSUBPD  Y2, Y1, Y4           // Y4 = v - u
	VSUBPD  Y1, Y3, Y5           // Y5 = l - v
	VCMPPD  $0x1E, Y2, Y1, Y6    // Y6 = v GT_OQ u
	VCMPPD  $0x11, Y3, Y1, Y8    // Y8 = v LT_OQ l
	VANDPD  Y6, Y4, Y4           // keep v-u on "above" lanes
	VANDNPD Y8, Y6, Y8           // Y8 = below &^ above
	VANDPD  Y8, Y5, Y5           // keep l-v on "below only" lanes
	VORPD   Y5, Y4, Y4           // Y4 = d
	VMAXPD  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, DX
	DECQ    R9
	JNZ     step

	// Block boundary: abandon when any accumulated maximum exceeds the
	// limit. GT_OQ is false on NaN and against +Inf, so those limits
	// never abandon — the contract's degenerate cases.
	VCMPPD    $0x1E, Y7, Y0, Y9
	VMOVMSKPD Y9, AX
	TESTQ     AX, AX
	JNZ       abandon
	JMP       blockstart

done:
	// Horizontal max of the 4 accumulator slots.
	VEXTRACTF128 $1, Y0, X1
	VMAXPD       X1, X0, X0
	VSHUFPD      $1, X0, X0, X1
	VMAXSD       X1, X0, X0
	VZEROUPPER
	MOVSD X0, m+40(FP)
	MOVB  $0, abandoned+48(FP)
	RET

abandon:
	VZEROUPPER
	MOVQ $0, m+40(FP)
	MOVB $1, abandoned+48(FP)
	RET

// func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
