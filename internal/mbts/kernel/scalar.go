package kernel

// The original branchy kernels, verbatim from internal/mbts as shipped
// since PR 1 — kept as the differential oracle: the portable and
// assembly forms must reproduce these bit-for-bit on every input
// (TestKernelDifferential, FuzzDistKernels). They are also the fallback
// of last resort via TWINSEARCH_KERNEL=scalar.

func distFlatScalar(upper, lower, s []float64) float64 {
	var max float64
	for i, v := range s {
		var d float64
		if v > upper[i] {
			d = v - upper[i]
		} else if v < lower[i] {
			d = lower[i] - v
		}
		if d > max {
			max = d
		}
	}
	return max
}

func distAbandonFlatScalar(upper, lower, s []float64, limit float64) (float64, bool) {
	var max float64
	for i, v := range s {
		var d float64
		if v > upper[i] {
			d = v - upper[i]
		} else if v < lower[i] {
			d = lower[i] - v
		}
		if d > max {
			if d > limit {
				return 0, false
			}
			max = d
		}
	}
	return max, true
}

func distMBTSScalar(bUpper, bLower, oUpper, oLower []float64) float64 {
	var max float64
	for i := range bUpper {
		var d float64
		if bLower[i] > oUpper[i] {
			d = bLower[i] - oUpper[i]
		} else if bUpper[i] < oLower[i] {
			d = oLower[i] - bUpper[i]
		}
		if d > max {
			max = d
		}
	}
	return max
}

func widthScalar(upper, lower []float64) float64 {
	var sum float64
	for i := range upper {
		sum += upper[i] - lower[i]
	}
	return sum
}

func widthIncreaseSequenceScalar(upper, lower, s []float64) float64 {
	var inc float64
	for i, v := range s {
		if v > upper[i] {
			inc += v - upper[i]
		} else if v < lower[i] {
			inc += lower[i] - v
		}
	}
	return inc
}

func widthIncreaseMBTSScalar(bUpper, bLower, oUpper, oLower []float64) float64 {
	var inc float64
	for i := range bUpper {
		if oUpper[i] > bUpper[i] {
			inc += oUpper[i] - bUpper[i]
		}
		if oLower[i] < bLower[i] {
			inc += bLower[i] - oLower[i]
		}
	}
	return inc
}
