package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// trialData builds one adversarial input: mostly sane bounds around
// N(0,1) with occasional inverted bounds and NaN/±Inf lanes — every
// degenerate case the package NaN contract covers.
func trialData(rng *rand.Rand, n int) (u, l, s []float64) {
	u, l, s = make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		if a < b {
			a, b = b, a
		}
		if rng.Intn(20) == 0 {
			a, b = b, a // inverted bounds
		}
		u[i], l[i] = a, b
		s[i] = rng.NormFloat64() * 1.5
		if rng.Intn(30) == 0 {
			switch rng.Intn(3) {
			case 0:
				s[i] = math.NaN()
			case 1:
				u[i] = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				l[i] = math.NaN()
			}
		}
	}
	return
}

func trialLimit(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return math.Inf(1)
	case 1:
		return math.NaN()
	case 2:
		return -rng.Float64() // negative limits act as zero
	default:
		return rng.Float64() * 4
	}
}

// bitsEq is bit-pattern equality — stricter than ==, it distinguishes
// +0 from −0 and treats equal NaN patterns as equal.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestKernelDifferential bit-compares every registered implementation
// against the scalar oracle on every entry point, over thousands of
// adversarial inputs (NaN/Inf lanes, inverted bounds, degenerate
// limits, lengths spanning the unrolled body and its tail).
func TestKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	impls := Impls()
	if impls[0].Name != "scalar" {
		t.Fatalf("Impls()[0] = %q, want the scalar oracle first", impls[0].Name)
	}
	for trial := 0; trial < 4000; trial++ {
		n := rng.Intn(200)
		u, l, s := trialData(rng, n)
		ou, ol, _ := trialData(rng, n)
		limit := trialLimit(rng)

		wantFlat := distFlatScalar(u, l, s)
		wantAb, wantOK := distAbandonFlatScalar(u, l, s, limit)
		wantMBTS := distMBTSScalar(u, l, ou, ol)
		wantW := widthScalar(u, l)
		wantWIS := widthIncreaseSequenceScalar(u, l, s)
		wantWIM := widthIncreaseMBTSScalar(u, l, ou, ol)

		for _, im := range impls {
			if got := im.DistFlat(u, l, s); !bitsEq(got, wantFlat) {
				t.Fatalf("trial %d: %s DistFlat = %v (%x), scalar %v (%x)",
					trial, im.Name, got, math.Float64bits(got), wantFlat, math.Float64bits(wantFlat))
			}
			if got, ok := im.DistAbandonFlat(u, l, s, limit); !bitsEq(got, wantAb) || ok != wantOK {
				t.Fatalf("trial %d: %s DistAbandonFlat = (%v, %v), scalar (%v, %v), limit %v",
					trial, im.Name, got, ok, wantAb, wantOK, limit)
			}
			if got := im.DistMBTS(u, l, ou, ol); !bitsEq(got, wantMBTS) {
				t.Fatalf("trial %d: %s DistMBTS = %v, scalar %v", trial, im.Name, got, wantMBTS)
			}
			if got := im.Width(u, l); !bitsEq(got, wantW) {
				t.Fatalf("trial %d: %s Width = %v, scalar %v", trial, im.Name, got, wantW)
			}
			if got := im.WidthIncreaseSequence(u, l, s); !bitsEq(got, wantWIS) {
				t.Fatalf("trial %d: %s WidthIncreaseSequence = %v, scalar %v", trial, im.Name, got, wantWIS)
			}
			if got := im.WidthIncreaseMBTS(u, l, ou, ol); !bitsEq(got, wantWIM) {
				t.Fatalf("trial %d: %s WidthIncreaseMBTS = %v, scalar %v", trial, im.Name, got, wantWIM)
			}
		}
	}
}

// TestKernelNaNContract pins the documented degenerate-lane semantics
// with hand-built cases (not just differentially): NaN lanes contribute
// +0, inverted bounds let "above" win, NaN/+Inf limits never abandon.
func TestKernelNaNContract(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	for _, im := range Impls() {
		// A NaN anywhere in a lane contributes nothing.
		if d := im.DistFlat([]float64{nan}, []float64{-1}, []float64{5}); d != 0 {
			t.Fatalf("%s: NaN upper lane contributed %v", im.Name, d)
		}
		if d := im.DistFlat([]float64{1}, []float64{nan}, []float64{-5}); d != 0 {
			t.Fatalf("%s: NaN lower lane contributed %v", im.Name, d)
		}
		if d := im.DistFlat([]float64{1}, []float64{-1}, []float64{nan}); d != 0 {
			t.Fatalf("%s: NaN value lane contributed %v", im.Name, d)
		}
		// Inverted bounds: v inside (l, u) reversed satisfies both
		// comparisons; the "above" branch must win, as in the scalar
		// else-if chain. u=-1, l=1, v=0: above excursion v-u = 1,
		// below would be l-v = 1 too — make them distinct.
		if d := im.DistFlat([]float64{-1}, []float64{2}, []float64{0}); d != 1 {
			t.Fatalf("%s: inverted bounds gave %v, want the above excursion 1", im.Name, d)
		}
		// NaN and +Inf limits never abandon.
		u, l, s := []float64{0}, []float64{0}, []float64{100}
		if d, ok := im.DistAbandonFlat(u, l, s, nan); !ok || d != 100 {
			t.Fatalf("%s: NaN limit abandoned (%v, %v)", im.Name, d, ok)
		}
		if d, ok := im.DistAbandonFlat(u, l, s, inf); !ok || d != 100 {
			t.Fatalf("%s: +Inf limit abandoned (%v, %v)", im.Name, d, ok)
		}
		// The result is never −0.
		if d := im.DistFlat([]float64{1}, []float64{-1}, []float64{0}); math.Signbit(d) {
			t.Fatalf("%s: produced -0", im.Name)
		}
		// Empty input.
		if d := im.DistFlat(nil, nil, nil); d != 0 {
			t.Fatalf("%s: empty input gave %v", im.Name, d)
		}
		if d, ok := im.DistAbandonFlat(nil, nil, nil, 0); !ok || d != 0 {
			t.Fatalf("%s: empty abandoning input gave (%v, %v)", im.Name, d, ok)
		}
	}
}

// TestKernelAbandonSchedule checks the blocked/late abandoning forms
// agree with the per-lane scalar form on inputs engineered so the
// running maximum crosses the limit at every possible block offset.
func TestKernelAbandonSchedule(t *testing.T) {
	n := 3*laneBlock + 7
	for cross := 0; cross < n; cross += 13 {
		u, l, s := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := range s {
			s[i] = 0.5 // small excursion everywhere (u=l=0)
		}
		s[cross] = 10 // crosses limit=1 at lane `cross`
		want, wantOK := distAbandonFlatScalar(u, l, s, 1)
		for _, im := range Impls() {
			if got, ok := im.DistAbandonFlat(u, l, s, 1); !bitsEq(got, want) || ok != wantOK {
				t.Fatalf("%s: crossing at %d gave (%v, %v), scalar (%v, %v)",
					im.Name, cross, got, ok, want, wantOK)
			}
		}
	}
}

// TestBatchKernels checks the batch entry points are exactly B
// single-query calls against the active implementation.
func TestBatchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, b = 96, 5
	u, l, _ := trialData(rng, n)
	qs := make([][]float64, b)
	limits := make([]float64, b)
	for i := range qs {
		_, _, qs[i] = trialData(rng, n)
		limits[i] = trialLimit(rng)
	}
	dists := make([]float64, b)
	DistFlatBatch(u, l, qs, dists)
	for i, q := range qs {
		if want := DistFlat(u, l, q); !bitsEq(dists[i], want) {
			t.Fatalf("DistFlatBatch[%d] = %v, single call %v", i, dists[i], want)
		}
	}
	oks := make([]bool, b)
	DistAbandonFlatBatch(u, l, qs, limits, dists, oks)
	for i, q := range qs {
		want, wantOK := DistAbandonFlat(u, l, q, limits[i])
		if !bitsEq(dists[i], want) || oks[i] != wantOK {
			t.Fatalf("DistAbandonFlatBatch[%d] = (%v, %v), single call (%v, %v)",
				i, dists[i], oks[i], want, wantOK)
		}
	}
}

// TestKernelSelection pins the dispatch rules: explicit forcing wins,
// unknown values fall back to the fastest supported form, and the
// selected name is always a registered implementation.
func TestKernelSelection(t *testing.T) {
	if got := selectImpl("scalar").Name; got != "scalar" {
		t.Fatalf("force scalar selected %q", got)
	}
	if got := selectImpl("portable").Name; got != "portable" {
		t.Fatalf("force portable selected %q", got)
	}
	fastest := "portable"
	if hasAVX2 {
		fastest = "avx2"
	}
	for _, force := range []string{"", "bogus", "avx2"} {
		want := fastest
		if force == "avx2" && !hasAVX2 {
			want = "portable" // forcing an unsupported form falls back
		}
		if got := selectImpl(force).Name; got != want {
			t.Fatalf("force %q selected %q, want %q", force, got, want)
		}
	}
	names := map[string]bool{}
	for _, im := range Impls() {
		names[im.Name] = true
	}
	if !names[Active()] {
		t.Fatalf("Active() = %q, not a registered implementation", Active())
	}
}

var sinkF float64

// benchDist runs f over 64 distinct node-bound pairs round-robin — a
// search descent evaluates the same query against a DIFFERENT node's
// bounds on every call, so the benchmark must not let the branch
// predictor memorize one fixed lane sequence (replaying a single input
// flatters the branchy scalar by ~4x; rotating inputs is the honest
// workload for pruning kernels).
func benchDist(b *testing.B, f func(u, l, s []float64) float64) {
	const nodes, n = 64, 1024
	rng := rand.New(rand.NewSource(7))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 1.5
	}
	us, ls := make([][]float64, nodes), make([][]float64, nodes)
	for k := range us {
		u, l := make([]float64, n), make([]float64, n)
		for i := range u {
			a, c := rng.NormFloat64(), rng.NormFloat64()
			if a < c {
				a, c = c, a
			}
			u[i], l[i] = a, c
		}
		us[k], ls[k] = u, l
	}
	b.SetBytes(3 * 8 * n)
	k := 0
	for b.Loop() {
		sinkF = f(us[k], ls[k], s)
		k = (k + 1) & (nodes - 1)
	}
}

// BenchmarkDistKernel compares the Eq. 2 forms per lane. The scalar
// sub-benchmark is the pre-kernel baseline (the branchy loop shipped in
// internal/mbts); portable and avx2 are the dispatchable forms.
func BenchmarkDistKernel(b *testing.B) {
	b.Run("scalar", func(b *testing.B) { benchDist(b, distFlatScalar) })
	b.Run("portable", func(b *testing.B) { benchDist(b, distFlatPortable) })
	b.Run("avx2", func(b *testing.B) {
		if !hasAVX2 {
			b.Skip("avx2 not supported on this host")
		}
		benchDist(b, avx2Impl().DistFlat)
	})
	b.Run("active", func(b *testing.B) { benchDist(b, DistFlat) })
}

// BenchmarkDistKernelAbandon is the abandoning pair under a limit that
// never fires (the descent's common case: most nodes survive).
func BenchmarkDistKernelAbandon(b *testing.B) {
	abandon := func(f func(u, l, s []float64, limit float64) (float64, bool)) func(u, l, s []float64) float64 {
		return func(u, l, s []float64) float64 {
			m, _ := f(u, l, s, math.Inf(1))
			return m
		}
	}
	b.Run("scalar", func(b *testing.B) { benchDist(b, abandon(distAbandonFlatScalar)) })
	b.Run("portable", func(b *testing.B) { benchDist(b, abandon(distAbandonFlatPortable)) })
	b.Run("avx2", func(b *testing.B) {
		if !hasAVX2 {
			b.Skip("avx2 not supported on this host")
		}
		benchDist(b, abandon(avx2Impl().DistAbandonFlat))
	})
}
