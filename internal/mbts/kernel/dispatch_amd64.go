//go:build amd64

package kernel

import "math"

// Runtime CPU-feature detection for the AVX2 kernels. The queries go
// straight to CPUID/XGETBV (implemented in dist_amd64.s) — the runtime
// keeps its own answers in an unexported package, and the project bakes
// in no third-party cpu package — and follow the full protocol: the CPU
// must report AVX2 (leaf 7), the instruction set must be usable (leaf 1
// AVX + OSXSAVE), and the OS must have enabled XMM+YMM state saving
// (XCR0 bits 1–2), or the vector registers would be corrupted across
// context switches.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// avx2Impl vectorizes the query-time hot pair (DistFlat,
// DistAbandonFlat) — every descent, Lemma 1 test, and top-k bound
// funnels through them — and shares the portable forms for the
// build-time split heuristics, which are bit-identical by construction.
func avx2Impl() Impl {
	return Impl{
		Name:                  "avx2",
		DistFlat:              distFlatAVX2,
		DistAbandonFlat:       distAbandonFlatAVX2,
		DistMBTS:              distMBTSPortable,
		Width:                 widthPortable,
		WidthIncreaseSequence: widthIncreaseSequencePortable,
		WidthIncreaseMBTS:     widthIncreaseMBTSPortable,
	}
}

// distKernelAVX2 is the one assembly kernel: the Eq. 2 running maximum
// over n lanes (n a positive multiple of 4), 4 lanes per instruction,
// with the accumulated maxima checked against limit every 64 lanes.
// It returns abandoned=true as soon as a block check fires (m is then
// meaningless); otherwise m is the exact maximum over the n lanes —
// bit-identical to the portable form because no lane value is ever NaN
// or −0, making VMAXPD's asymmetries unobservable. A +Inf limit turns
// the block checks off, which is how distFlatAVX2 reuses the kernel.
//
//go:noescape
func distKernelAVX2(upper, lower, s *float64, n int, limit float64) (m float64, abandoned bool)

// cpuidAsm executes CPUID with EAX=op, ECX=sub.
func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

func distFlatAVX2(upper, lower, s []float64) float64 {
	n := len(s)
	upper, lower = upper[:n], lower[:n]
	n4 := n &^ 3
	var m float64
	if n4 > 0 {
		m, _ = distKernelAVX2(&upper[0], &lower[0], &s[0], n4, math.Inf(1))
	}
	for i := n4; i < n; i++ { // tail lanes, branch-free scalar
		m = maxSelect(m, excursion(upper[i], lower[i], s[i]))
	}
	return m
}

func distAbandonFlatAVX2(upper, lower, s []float64, limit float64) (float64, bool) {
	n := len(s)
	upper, lower = upper[:n], lower[:n]
	if limit < 0 {
		limit = 0 // see distAbandonFlatPortable: negative limits act as zero
	}
	n4 := n &^ 3
	var m float64
	if n4 > 0 {
		var abandoned bool
		m, abandoned = distKernelAVX2(&upper[0], &lower[0], &s[0], n4, limit)
		if abandoned {
			return 0, false
		}
	}
	for i := n4; i < n; i++ {
		m = maxSelect(m, excursion(upper[i], lower[i], s[i]))
	}
	// The final check decides abandonment for maxima reached between
	// block boundaries and in the tail; monotonicity makes the late
	// check equivalent to the scalar form's per-lane one.
	if m > limit {
		return 0, false
	}
	return m, true
}
