package kernel

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDistKernels feeds raw bytes as (upper, lower, s, limit) lanes —
// any bit pattern, including NaN payloads, ±Inf, subnormals, and −0 —
// and requires every registered implementation to agree bit-for-bit
// with the scalar oracle on all four flat entry points. This is the
// executable form of the package NaN contract: no input, however
// degenerate, may make the dispatchable forms diverge.
func FuzzDistKernels(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	nan := math.NaN()
	inf := math.Inf(1)
	// Seeds: plain lanes, NaN in each operand, ±Inf bounds, inverted
	// bounds, −0 crossings, degenerate limits, and a >64-lane input so
	// the blocked abandoning path runs more than one block.
	f.Add(mk(1, -1, 0, 0.5), 1)
	f.Add(mk(1, 2, -1, 0, 5, -5, 0.25), 2)
	f.Add(mk(nan, -1, 5, 0.1), 1)
	f.Add(mk(1, nan, -5, 0.1), 1)
	f.Add(mk(1, -1, nan, 0.1), 1)
	f.Add(mk(inf, -inf, 3, 0.1), 1)
	f.Add(mk(-1, 2, 0, 0.5), 1) // inverted bounds
	f.Add(mk(0, math.Copysign(0, -1), math.Copysign(0, -1), 0.5), 1)
	f.Add(mk(1, -1, 100, nan), 1) // NaN limit
	f.Add(mk(1, -1, 100, inf), 1) // +Inf limit
	long := make([]float64, 3*70+1)
	for i := range long {
		long[i] = float64(i%7) - 3
	}
	f.Add(mk(long...), 70)

	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 0 || n > 256 {
			return
		}
		need := 8 * (3*n + 1)
		if len(raw) < need {
			return
		}
		at := func(i int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		u := make([]float64, n)
		l := make([]float64, n)
		s := make([]float64, n)
		for i := 0; i < n; i++ {
			u[i], l[i], s[i] = at(i), at(n+i), at(2*n+i)
		}
		limit := at(3 * n)

		wantFlat := distFlatScalar(u, l, s)
		wantAb, wantOK := distAbandonFlatScalar(u, l, s, limit)
		wantW := widthScalar(u, l)
		wantWIS := widthIncreaseSequenceScalar(u, l, s)
		for _, im := range Impls() {
			if got := im.DistFlat(u, l, s); math.Float64bits(got) != math.Float64bits(wantFlat) {
				t.Fatalf("%s DistFlat = %x, scalar %x (u=%v l=%v s=%v)",
					im.Name, math.Float64bits(got), math.Float64bits(wantFlat), u, l, s)
			}
			got, ok := im.DistAbandonFlat(u, l, s, limit)
			if math.Float64bits(got) != math.Float64bits(wantAb) || ok != wantOK {
				t.Fatalf("%s DistAbandonFlat = (%x, %v), scalar (%x, %v) limit=%v (u=%v l=%v s=%v)",
					im.Name, math.Float64bits(got), ok, math.Float64bits(wantAb), wantOK, limit, u, l, s)
			}
			if got := im.Width(u, l); math.Float64bits(got) != math.Float64bits(wantW) {
				t.Fatalf("%s Width = %x, scalar %x", im.Name, math.Float64bits(got), math.Float64bits(wantW))
			}
			if got := im.WidthIncreaseSequence(u, l, s); math.Float64bits(got) != math.Float64bits(wantWIS) {
				t.Fatalf("%s WidthIncreaseSequence = %x, scalar %x",
					im.Name, math.Float64bits(got), math.Float64bits(wantWIS))
			}
		}
	})
}
