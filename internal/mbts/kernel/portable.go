package kernel

import "math"

// The branch-free portable kernels — the semantic definition of the
// package (see the package comment's NaN contract). Per-element
// branches on data-dependent float comparisons cost a mispredict each
// on real workloads (whether a lane excurses is essentially random), so
// the lane computation selects the excursion with conditional moves
// over the raw float bits: both candidate differences are computed
// unconditionally, then picked by CMOV (the accumulation kernels, whose
// adds can't be expressed as a select, use SETcc-derived bit masks
// instead).
//
// The running maximum is the trick that makes this fast: every
// excursion is +0 or strictly positive and never NaN, and non-negative
// IEEE doubles order identically to their bit patterns taken as
// uint64 — so the maximum accumulates in the integer domain with a
// compare+CMOV, keeping the loop-carried dependency to one integer
// move instead of a float→mask→float round trip per lane. Early
// abandoning is hoisted out of the lane loop entirely and checked once
// per 64-lane block — sound because the running maximum only grows, so
// "some prefix exceeded the limit" and "the final maximum exceeds the
// limit" are the same event.

// laneBlock is how many lanes the abandoning kernels process between
// limit checks.
const laneBlock = 64

// boolMask converts a comparison result to an all-ones (true) or
// all-zeros (false) 64-bit mask without a branch: the bool is a 0/1
// byte, and two's-complement negation stretches it.
func boolMask(b bool) uint64 {
	var u uint64
	if b {
		u = 1
	}
	return -u
}

// excursionBits is one Eq. 2 lane: the bit pattern of how far v lies
// outside [l, u], selected branch-free (the compiler lowers the
// conditional assignments to CMOV — both differences are computed
// unconditionally, so there is no branch to mispredict). The "above"
// select is applied last and wins when both fire (inverted bounds),
// matching the scalar else-if chain; a NaN anywhere leaves both
// comparisons false, so the lane contributes +0. The selected
// differences are never NaN (v > u implies both are ordered and not
// equal infinities) and never −0 (distinct float64s never subtract to
// zero), so the result is always the bit pattern of a non-negative
// double — comparable as a uint64.
func excursionBits(u, l, v float64) uint64 {
	da := math.Float64bits(v - u)
	db := math.Float64bits(l - v)
	var d uint64
	if v < l {
		d = db
	}
	if v > u {
		d = da
	}
	return d
}

// excursion is excursionBits back in the float domain, for the
// accumulation kernels (WidthIncrease*) and the assembly wrappers'
// tail lanes.
func excursion(u, l, v float64) float64 {
	return math.Float64frombits(excursionBits(u, l, v))
}

// maxSelect returns max(m, d) under the scalar kernels' update rule
// (`if d > m { m = d }`), branch-free.
func maxSelect(m, d float64) float64 {
	mb, db := math.Float64bits(m), math.Float64bits(d)
	if db > mb { // both non-negative doubles: uint64 order == float order
		mb = db
	}
	return math.Float64frombits(mb)
}

func distFlatPortable(upper, lower, s []float64) float64 {
	upper, lower = upper[:len(s)], lower[:len(s)]
	var m uint64
	for i, v := range s {
		if d := excursionBits(upper[i], lower[i], v); d > m {
			m = d // compare+CMOV: branch-free, one move on the chain
		}
	}
	return math.Float64frombits(m)
}

func distAbandonFlatPortable(upper, lower, s []float64, limit float64) (float64, bool) {
	n := len(s)
	upper, lower = upper[:n], lower[:n]
	if limit < 0 {
		// The scalar form's limit check is gated behind d > max with
		// max ≥ 0, so it abandons only when some excursion is BOTH
		// positive and above the limit — a negative limit acts as zero.
		// (NaN stays NaN: `NaN < 0` is false, and NaN never abandons.)
		limit = 0
	}
	var m uint64
	for lo := 0; lo < n; lo += laneBlock {
		hi := lo + laneBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if d := excursionBits(upper[i], lower[i], s[i]); d > m {
				m = d
			}
		}
		// One check per block: the running maximum is monotone, so
		// checking late never changes the outcome, only when the scan
		// stops. NaN and +Inf limits never abandon (`> limit` false).
		if math.Float64frombits(m) > limit {
			return 0, false
		}
	}
	return math.Float64frombits(m), true
}

func distMBTSPortable(bUpper, bLower, oUpper, oLower []float64) float64 {
	n := len(bUpper)
	bLower, oUpper, oLower = bLower[:n], oUpper[:n], oLower[:n]
	var m uint64
	for i, bu := range bUpper {
		// One Eq. 3 lane: gap between the bands, "b above o" winning
		// when both fire — the same asymmetric select as excursionBits.
		da := math.Float64bits(bLower[i] - oUpper[i])
		db := math.Float64bits(oLower[i] - bu)
		var d uint64
		if bu < oLower[i] {
			d = db
		}
		if bLower[i] > oUpper[i] {
			d = da
		}
		if d > m {
			m = d
		}
	}
	return math.Float64frombits(m)
}

func widthPortable(upper, lower []float64) float64 {
	lower = lower[:len(upper)]
	var sum float64
	for i, u := range upper {
		sum += u - lower[i]
	}
	return sum
}

func widthIncreaseSequencePortable(upper, lower, s []float64) float64 {
	upper, lower = upper[:len(s)], lower[:len(s)]
	var inc float64
	for i, v := range s {
		// Adding the +0 a non-excursing lane selects is bit-identical
		// to the scalar form's skipped add: inc is never −0 (it starts
		// +0 and only non-negative terms are added).
		inc += excursion(upper[i], lower[i], v)
	}
	return inc
}

func widthIncreaseMBTSPortable(bUpper, bLower, oUpper, oLower []float64) float64 {
	n := len(bUpper)
	bLower, oUpper, oLower = bLower[:n], oUpper[:n], oLower[:n]
	var inc float64
	for i, bu := range bUpper {
		ma := boolMask(oUpper[i] > bu)
		mb := boolMask(oLower[i] < bLower[i])
		inc += math.Float64frombits(ma & math.Float64bits(oUpper[i]-bu))
		inc += math.Float64frombits(mb & math.Float64bits(bLower[i]-oLower[i]))
	}
	return inc
}
