// Package kernel holds the distance kernels every pruning decision in
// the TS-Index funnels through — the Eq. 2 sequence-to-MBTS distance
// (DistFlat), its early-abandoning form (DistAbandonFlat), the Eq. 3
// MBTS-to-MBTS distance (DistMBTS), the split-heuristic width measures
// (Width, WidthIncrease*), and batch forms that push B queries through
// one node's bounds in a single pass (DistFlatBatch,
// DistAbandonFlatBatch).
//
// Three implementations exist, all bit-for-bit identical on every
// input:
//
//   - scalar: the original branchy loops, kept as the differential
//     oracle (the semantic reference the repo has shipped since PR 1).
//   - portable: branch-free forms — the per-lane excursion is selected
//     with bool→bit-mask arithmetic instead of branches, and early
//     abandoning is checked once per 64-lane block instead of per lane
//     — the only semantic *definition*; the assembly must match it.
//   - avx2: hand-written AVX2 assembly (amd64 only), 4 lanes per
//     instruction, selected at init when the CPU supports it.
//
// Dispatch happens once, at package init: the fastest implementation
// the CPU supports becomes Active. The TWINSEARCH_KERNEL environment
// variable forces a specific one ("scalar", "portable", "avx2") so CI
// can run the full test suite under each dispatch path; an unknown or
// unsupported value falls back to the default selection.
//
// # The NaN contract
//
// The kernels inherit the scalar loops' comparison semantics exactly,
// because every comparison is IEEE-ordered (false on NaN):
//
//   - A NaN lane — in the query, or in either bound — contributes
//     excursion 0: both `v > upper[i]` and `v < lower[i]` are false, so
//     the lane never produces a distance. NaN never propagates into the
//     result.
//   - When bounds are inverted (lower[i] > upper[i], never produced by
//     the index but reachable through the raw slice API), the "above"
//     test wins: a value above upper and below lower reports v −
//     upper[i], matching the scalar else-if chain.
//   - A NaN limit never abandons (`d > NaN` is false), so
//     DistAbandonFlat degenerates to (DistFlat, true). So does a +Inf
//     limit.
//
// Every excursion the select produces is therefore either +0 or a
// strictly positive number (distinct float64s never subtract to zero
// under gradual underflow, and v > u implies v−u > 0), never NaN and
// never −0 — which is what makes the horizontal max in the vector
// kernels order-independent and bit-identical to the sequential scalar
// max.
package kernel

import "os"

// Impl is one complete kernel implementation. All implementations
// agree bit-for-bit on every entry point for every input (enforced by
// TestKernelDifferential and FuzzDistKernels); they differ only in
// speed.
type Impl struct {
	// Name identifies the implementation: "scalar", "portable", "avx2".
	Name string

	DistFlat        func(upper, lower, s []float64) float64
	DistAbandonFlat func(upper, lower, s []float64, limit float64) (float64, bool)
	DistMBTS        func(bUpper, bLower, oUpper, oLower []float64) float64

	Width                 func(upper, lower []float64) float64
	WidthIncreaseSequence func(upper, lower, s []float64) float64
	WidthIncreaseMBTS     func(bUpper, bLower, oUpper, oLower []float64) float64
}

// scalarImpl is the original branchy loops — the differential oracle.
var scalarImpl = Impl{
	Name:                  "scalar",
	DistFlat:              distFlatScalar,
	DistAbandonFlat:       distAbandonFlatScalar,
	DistMBTS:              distMBTSScalar,
	Width:                 widthScalar,
	WidthIncreaseSequence: widthIncreaseSequenceScalar,
	WidthIncreaseMBTS:     widthIncreaseMBTSScalar,
}

// portableImpl is the branch-free blocked form — the semantic
// definition every other implementation must match bit-for-bit.
var portableImpl = Impl{
	Name:                  "portable",
	DistFlat:              distFlatPortable,
	DistAbandonFlat:       distAbandonFlatPortable,
	DistMBTS:              distMBTSPortable,
	Width:                 widthPortable,
	WidthIncreaseSequence: widthIncreaseSequencePortable,
	WidthIncreaseMBTS:     widthIncreaseMBTSPortable,
}

// active is the dispatched implementation, fixed at init — reads after
// init are safe from any goroutine because nothing writes it again.
var active = selectImpl(os.Getenv("TWINSEARCH_KERNEL"))

// selectImpl maps the TWINSEARCH_KERNEL knob to an implementation:
// empty or unknown selects the fastest the CPU supports; a named
// implementation the hardware cannot run falls back the same way.
func selectImpl(force string) Impl {
	switch force {
	case "scalar":
		return scalarImpl
	case "portable":
		return portableImpl
	case "avx2":
		if hasAVX2 {
			return avx2Impl()
		}
	}
	if hasAVX2 {
		return avx2Impl()
	}
	return portableImpl
}

// Active returns the name of the dispatched implementation ("scalar",
// "portable", "avx2") — surfaced by tsbench and the README's dispatch
// documentation.
func Active() string { return active.Name }

// Impls returns every implementation the current hardware can run,
// oracle first — the set the differential and fuzz tests quantify over.
func Impls() []Impl {
	out := []Impl{scalarImpl, portableImpl}
	if hasAVX2 {
		out = append(out, avx2Impl())
	}
	return out
}

// DistFlat is the paper's Eq. 2 over raw bound slices: the largest
// pointwise excursion of s outside the [lower, upper] band, 0 when s is
// enclosed. upper and lower must have at least len(s) entries.
func DistFlat(upper, lower, s []float64) float64 {
	return active.DistFlat(upper, lower, s)
}

// DistAbandonFlat is DistFlat with early abandoning: (0, false) when
// the distance exceeds limit — decided identically however the running
// maximum is scheduled, because it only grows — and (dist, true)
// otherwise. A NaN or +Inf limit never abandons.
func DistAbandonFlat(upper, lower, s []float64, limit float64) (float64, bool) {
	return active.DistAbandonFlat(upper, lower, s, limit)
}

// DistMBTS is the paper's Eq. 3 over raw bound slices: the largest
// pointwise gap between two bands, 0 when they overlap at every
// timestamp.
func DistMBTS(bUpper, bLower, oUpper, oLower []float64) float64 {
	return active.DistMBTS(bUpper, bLower, oUpper, oLower)
}

// Width is the total band width Σ_i (upper[i] − lower[i]) — the measure
// the split heuristics minimize.
func Width(upper, lower []float64) float64 {
	return active.Width(upper, lower)
}

// WidthIncreaseSequence is how much Width would grow if s were
// enclosed.
func WidthIncreaseSequence(upper, lower, s []float64) float64 {
	return active.WidthIncreaseSequence(upper, lower, s)
}

// WidthIncreaseMBTS is how much b's Width would grow if o were
// enclosed.
func WidthIncreaseMBTS(bUpper, bLower, oUpper, oLower []float64) float64 {
	return active.WidthIncreaseMBTS(bUpper, bLower, oUpper, oLower)
}

// DistFlatBatch evaluates Eq. 2 for every query in qs against one
// node's bounds, writing dists[i] = DistFlat(upper, lower, qs[i]). The
// bounds are streamed once per batch instead of once per query — they
// stay cache-resident across the B passes, which is where the batch
// traversal's win comes from. dists must have len(qs) entries.
func DistFlatBatch(upper, lower []float64, qs [][]float64, dists []float64) {
	for i, q := range qs {
		dists[i] = active.DistFlat(upper, lower, q)
	}
}

// DistAbandonFlatBatch is DistFlatBatch with per-query early-abandon
// limits: dists[i], oks[i] = DistAbandonFlat(upper, lower, qs[i],
// limits[i]). dists, oks, and limits must have len(qs) entries.
func DistAbandonFlatBatch(upper, lower []float64, qs [][]float64, limits, dists []float64, oks []bool) {
	for i, q := range qs {
		dists[i], oks[i] = active.DistAbandonFlat(upper, lower, q, limits[i])
	}
}
