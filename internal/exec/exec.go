// Package exec implements the work-stealing query executor shared by
// every parallel search path in the engine. Sharded fan-out, batch
// workloads, and approximate probes all enqueue fine-grained work
// units here instead of spawning goroutines per call — one scheduler
// decides where work runs, so a hot shard's units spread across idle
// workers instead of serializing behind one goroutine (the imbalance
// MESSI-style work queues remove from iSAX fan-outs).
//
// Structure: a fixed set of worker slots, each with its own deque. The
// worker owning a slot pushes and pops at the tail (LIFO — a unit
// spawned by a traversal is cache-hot), and idle workers steal from
// the head of a peer's deque (FIFO — the oldest unit is typically the
// largest remaining piece of a split). Workers are spawned on demand
// up to the configured limit and exit after a short idle period, so an
// executor that isn't answering queries holds no goroutines at all.
//
// Units must never block on other units or on Group.Wait; every unit
// is pure computation that runs to completion. That discipline is what
// makes the pool deadlock-free with any worker count, including 1.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// idleTimeout is how long a worker with nothing to run stays parked
// before exiting. Submissions respawn workers on demand, so the
// timeout trades a goroutine-spawn on the next burst against holding
// parked goroutines through quiet periods.
const idleTimeout = 100 * time.Millisecond

// task is one unit of work bound to its completion group.
type task struct {
	g  *Group
	fn func(*Ctx)
}

// queue is one slot's deque. The owner pushes and pops at the tail;
// thieves pop at the head. A plain mutex suffices: queues are short,
// critical sections are a few instructions, and the worker count is a
// small multiple of the core count.
type queue struct {
	mu   sync.Mutex
	ts   []task
	head int
}

func (q *queue) push(t task) {
	q.mu.Lock()
	q.ts = append(q.ts, t)
	q.mu.Unlock()
}

func (q *queue) popTail() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.ts) {
		return task{}, false
	}
	n := len(q.ts) - 1
	t := q.ts[n]
	q.ts[n] = task{}
	q.ts = q.ts[:n]
	if q.head == len(q.ts) {
		q.ts, q.head = q.ts[:0], 0
	}
	return t, true
}

func (q *queue) popHead() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.ts) {
		return task{}, false
	}
	t := q.ts[q.head]
	q.ts[q.head] = task{}
	q.head++
	if q.head == len(q.ts) {
		q.ts, q.head = q.ts[:0], 0
	}
	return t, true
}

func (q *queue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.head == len(q.ts)
}

// Executor schedules work units over at most Workers() concurrent
// workers. The zero value is not usable; construct with New.
type Executor struct {
	n      int
	queues []queue
	next   atomic.Uint64 // round-robin cursor for external submissions
	steals atomic.Uint64 // lifetime cross-queue steals, for /metrics

	mu        sync.Mutex
	running   int             // live worker goroutines
	freeSlots []int           // queue slots with no worker attached
	idle      []chan struct{} // parked workers, woken LIFO (warmest first)
}

// New returns an executor with the given worker limit; non-positive
// selects GOMAXPROCS. Construction is cheap — no goroutines exist
// until work is submitted.
func New(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{n: workers, queues: make([]queue, workers)}
	e.freeSlots = make([]int, workers)
	for i := range e.freeSlots {
		e.freeSlots[i] = i
	}
	return e
}

// Workers returns the executor's worker limit.
func (e *Executor) Workers() int { return e.n }

// Steals returns the lifetime count of cross-queue steals: units a
// worker popped from a peer's deque because its own ran dry. A high
// rate relative to units run means skewed partitions (one hot shard
// feeding everyone else).
func (e *Executor) Steals() uint64 { return e.steals.Load() }

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor (GOMAXPROCS workers),
// shared by callers that don't carry their own.
func Default() *Executor {
	defaultOnce.Do(func() { defaultExec = New(0) })
	return defaultExec
}

// Group tracks the completion of a set of units, including units they
// spawn transitively via Ctx.Go. Many groups may be in flight on one
// executor; their units interleave over the same workers.
type Group struct {
	e      *Executor
	wg     sync.WaitGroup
	steals atomic.Uint64 // units of this group stolen across queues
}

// Steals returns how many of the group's units were stolen by a worker
// other than the one whose queue they were submitted to — the per-query
// work-stealing figure the trace layer reports.
func (g *Group) Steals() uint64 { return g.steals.Load() }

// NewGroup returns an empty completion group on this executor.
func (e *Executor) NewGroup() *Group { return &Group{e: e} }

// Go enqueues one unit into the group. Safe from any goroutine.
func (g *Group) Go(fn func(*Ctx)) {
	g.wg.Add(1)
	g.e.submit(-1, task{g: g, fn: fn})
}

// Wait blocks until every unit enqueued into the group — including
// units spawned from inside other units — has completed. It must not
// be called from inside a unit.
func (g *Group) Wait() { g.wg.Wait() }

// Ctx is handed to every running unit; it identifies the worker slot
// so spawned sub-units land on the local deque.
type Ctx struct {
	e    *Executor
	slot int
	g    *Group
}

// Go spawns a sub-unit into the same group, pushed onto this worker's
// own deque: the spawner keeps working on it next (LIFO) unless an
// idle peer steals it first — the work-stealing split point.
func (c *Ctx) Go(fn func(*Ctx)) {
	c.g.wg.Add(1)
	c.e.submit(c.slot, task{g: c.g, fn: fn})
}

// ForEach runs fn(0..n-1) as n units and waits for all of them — the
// fork-join convenience for flat fan-outs (index builds, per-shard
// probes).
func (e *Executor) ForEach(n int, fn func(int)) {
	g := e.NewGroup()
	for i := 0; i < n; i++ {
		g.Go(func(*Ctx) { fn(i) })
	}
	g.Wait()
}

// submit enqueues t on the given slot (or round-robin when slot < 0)
// and ensures a worker will run it.
func (e *Executor) submit(slot int, t task) {
	if slot < 0 {
		slot = int(e.next.Add(1) % uint64(e.n))
	}
	e.queues[slot].push(t)
	e.wake()
}

// wake gets one more worker looking at the queues: an idle one if any
// is parked, a fresh one if the pool is below its limit, nothing if
// every worker is already busy (they scan all queues before parking,
// so the new task cannot be overlooked).
func (e *Executor) wake() {
	e.mu.Lock()
	if n := len(e.idle); n > 0 {
		ch := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		ch <- struct{}{} // buffered; a popped worker always drains it
		return
	}
	if e.running < e.n {
		e.running++
		slot := e.freeSlots[len(e.freeSlots)-1]
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		e.mu.Unlock()
		go e.work(slot)
		return
	}
	e.mu.Unlock()
}

func (e *Executor) work(slot int) {
	for {
		t, ok := e.grab(slot)
		if !ok {
			if !e.park(slot) {
				return
			}
			continue
		}
		e.run(slot, t)
	}
}

// grab pops local work LIFO, then steals FIFO from peers.
func (e *Executor) grab(slot int) (task, bool) {
	if t, ok := e.queues[slot].popTail(); ok {
		return t, true
	}
	for i := 1; i < e.n; i++ {
		if t, ok := e.queues[(slot+i)%e.n].popHead(); ok {
			t.g.steals.Add(1)
			e.steals.Add(1)
			return t, true
		}
	}
	return task{}, false
}

func (e *Executor) run(slot int, t task) {
	defer t.g.wg.Done()
	t.fn(&Ctx{e: e, slot: slot, g: t.g})
}

// park blocks the worker until new work arrives or the idle timeout
// passes; it returns false when the worker should exit. The recheck
// under e.mu closes the race with submit: a task pushed after this
// worker's last failed grab is either seen by the recheck, or its wake
// finds this worker on the idle list (both paths serialize on e.mu).
func (e *Executor) park(slot int) bool {
	e.mu.Lock()
	if e.anyWork() {
		e.mu.Unlock()
		return true
	}
	ch := make(chan struct{}, 1)
	e.idle = append(e.idle, ch)
	e.mu.Unlock()

	timer := time.NewTimer(idleTimeout)
	select {
	case <-ch:
		timer.Stop()
		return true
	case <-timer.C:
	}

	// Timed out: deregister, unless a waker popped us concurrently —
	// then its signal is in flight and a task is waiting for us.
	e.mu.Lock()
	for i, c := range e.idle {
		if c == ch {
			e.idle = append(e.idle[:i], e.idle[i+1:]...)
			e.running--
			e.freeSlots = append(e.freeSlots, slot)
			e.mu.Unlock()
			return false
		}
	}
	e.mu.Unlock()
	<-ch
	return true
}

func (e *Executor) anyWork() bool {
	for i := range e.queues {
		if !e.queues[i].empty() {
			return true
		}
	}
	return false
}

// liveWorkers reports the current worker goroutine count (for tests).
func (e *Executor) liveWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}
