package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-1).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if Default() != Default() {
		t.Fatal("Default() must return one shared executor")
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := New(workers)
		var sum atomic.Int64
		e.ForEach(100, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, got)
		}
		// Reuse after completion.
		var n atomic.Int64
		e.ForEach(7, func(int) { n.Add(1) })
		if n.Load() != 7 {
			t.Fatalf("workers=%d: second ForEach ran %d units", workers, n.Load())
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	e := New(2)
	ran := false
	e.ForEach(0, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach(0) ran a unit")
	}
}

// TestSpawnedUnits checks Group.Wait covers units spawned from inside
// other units, recursively.
func TestSpawnedUnits(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(workers)
		var count atomic.Int64
		g := e.NewGroup()
		var spawn func(c *Ctx, depth int)
		spawn = func(c *Ctx, depth int) {
			count.Add(1)
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				c.Go(func(c *Ctx) { spawn(c, depth-1) })
			}
		}
		g.Go(func(c *Ctx) { spawn(c, 4) })
		g.Wait()
		// 1 + 3 + 9 + 27 + 81 = 121 units.
		if got := count.Load(); got != 121 {
			t.Fatalf("workers=%d: ran %d units, want 121", workers, got)
		}
	}
}

// TestStealing asserts that units sitting in one worker's deque are
// picked up by peers: a single root unit spawns slow children, and
// with several workers they must overlap in time.
func TestStealing(t *testing.T) {
	e := New(4)
	var inFlight, peak atomic.Int64
	g := e.NewGroup()
	g.Go(func(c *Ctx) {
		for i := 0; i < 8; i++ {
			c.Go(func(*Ctx) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(20 * time.Millisecond)
				inFlight.Add(-1)
			})
		}
	})
	g.Wait()
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d: spawned units were never stolen", peak.Load())
	}
}

// TestConcurrentGroups drives many groups from many goroutines over
// one executor; under -race this guards the scheduler's whole surface.
func TestConcurrentGroups(t *testing.T) {
	e := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var sum atomic.Int64
			g := e.NewGroup()
			for j := 0; j < 50; j++ {
				g.Go(func(c *Ctx) {
					if j%10 == 0 {
						c.Go(func(*Ctx) { sum.Add(1) })
					}
					sum.Add(1)
				})
			}
			g.Wait()
			if got := sum.Load(); got != 55 {
				t.Errorf("group %d: sum = %d, want 55", seed, got)
			}
		}(i)
	}
	wg.Wait()
}

// TestWorkersExitWhenIdle: the pool must drain to zero goroutines
// after the idle timeout, and respawn on the next submission.
func TestWorkersExitWhenIdle(t *testing.T) {
	e := New(4)
	var n atomic.Int64
	e.ForEach(32, func(int) { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for e.liveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still alive long after idle timeout", e.liveWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The executor still works after its pool drained.
	e.ForEach(5, func(int) { n.Add(1) })
	if n.Load() != 37 {
		t.Fatalf("ran %d units, want 37", n.Load())
	}
}

// TestWorkerLimit: at most Workers() units run at once.
func TestWorkerLimit(t *testing.T) {
	e := New(2)
	var inFlight, peak atomic.Int64
	e.ForEach(16, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds worker limit 2", got)
	}
}
