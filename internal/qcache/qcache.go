// Package qcache holds the serving-tier caches: a plan cache of
// validated, transformed queries and an epoch-keyed result cache of
// whole answers. Production traffic against a twin-subsequence index
// is highly repetitive — the same query bytes, eps, and k arrive over
// and over — so the engine caches the rewritten form of a query (skip
// validation + normalization on repeat) and the full result set (skip
// the traversal entirely) until the index changes.
//
// Both caches are striped LRU maps: a key is routed to one of a fixed
// number of stripes by an FNV-1a hash, so the hot path takes one
// stripe mutex, never a global one, and concurrent lookups of
// different queries proceed in parallel. Keys are the exact query
// bytes (plus parameters), compared by Go's string equality — a hash
// collision can cost a miss, never a wrong answer.
//
// Invalidation is structural, not scan-based: result keys embed the
// engine's index epoch, a counter bumped on every mutation. An Append
// bumps the epoch, every subsequent lookup builds a key no stored
// entry can match, and the stale entries age out of the LRU under the
// byte budget. Nothing is ever walked or purged inline on the hot
// path.
package qcache

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"twinsearch/internal/core"
	"twinsearch/internal/series"
)

// stripeCount is the lock-striping factor of both caches. 16 stripes
// keep mutex contention negligible at serving concurrency (requests
// for distinct queries hash to distinct stripes with high probability)
// while the per-stripe LRU lists stay long enough to approximate a
// global LRU.
const stripeCount = 16

// stripeOf routes a key to its stripe: FNV-1a over the key bytes.
func stripeOf(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % stripeCount)
}

// Stats is a point-in-time snapshot of one cache's counters. Hits,
// misses, and evictions are cumulative since construction; Entries and
// Bytes are current occupancy.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int
}

// QueryKey encodes a raw query into the cache key string both caches
// share: the little-endian IEEE-754 bit patterns of the values,
// concatenated. Two queries collide only if every float64 is
// bit-identical — exactly the condition under which validation,
// transformation, and (at a fixed epoch and parameter set) the answer
// are identical too.
func QueryKey(q []float64) string {
	b := make([]byte, 8*len(q))
	for i, v := range q {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return string(b)
}

// Path tags the search path a cached result answers — part of the
// result key, so a range search and a top-k over the same query bytes
// can never alias.
type Path byte

// Result-cache path tags, one per cached Engine search path.
const (
	PathSearch Path = 's' // Search / SearchCtx
	PathStats  Path = 't' // SearchStats / SearchStatsCtx
	PathTopK   Path = 'k' // SearchTopK / SearchTopKCtx
	PathPrefix Path = 'p' // SearchShorter / SearchShorterCtx
	PathApprox Path = 'a' // SearchApprox / SearchApproxCtx
)

// ResultKey builds the result-cache key for one request: path tag,
// index epoch, two parameter slots (eps / float64(k) / leaf budget;
// unused slots are 0), then the raw query bytes. The epoch lives in
// the key so invalidation is a key mismatch — after a mutation no
// lookup can reach a pre-mutation entry.
func ResultKey(path Path, epoch uint64, a, b float64, q []float64) string {
	buf := make([]byte, 1+8+8+8+8*len(q))
	buf[0] = byte(path)
	binary.LittleEndian.PutUint64(buf[1:], epoch)
	binary.LittleEndian.PutUint64(buf[9:], math.Float64bits(a))
	binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(b))
	for i, v := range q {
		binary.LittleEndian.PutUint64(buf[25+i*8:], math.Float64bits(v))
	}
	return string(buf)
}

// PlanCache is the striped LRU of prepared queries: raw query bytes →
// the validated query mapped into the engine's value space. A hit
// skips length/finiteness validation and normalization. Entries are
// immutable once stored — callers must treat the returned slice as
// read-only (every search path already does).
type PlanCache struct {
	perCap  int // max entries per stripe
	stripes [stripeCount]planStripe

	hits, misses, evictions atomic.Uint64
}

type planStripe struct {
	mu sync.Mutex
	ll *list.List // front = most recently used
	m  map[string]*list.Element
}

type planEntry struct {
	key      string
	prepared []float64
}

// NewPlan builds a plan cache bounded to about `entries` prepared
// queries (rounded up to a multiple of the stripe count).
func NewPlan(entries int) *PlanCache {
	if entries < stripeCount {
		entries = stripeCount
	}
	c := &PlanCache{perCap: (entries + stripeCount - 1) / stripeCount}
	for i := range c.stripes {
		c.stripes[i].ll = list.New()
		c.stripes[i].m = make(map[string]*list.Element)
	}
	return c
}

// Get returns the prepared form of the query behind key, if cached.
// The returned slice is shared — read-only by contract.
func (c *PlanCache) Get(key string) ([]float64, bool) {
	s := &c.stripes[stripeOf(key)]
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	p := el.Value.(*planEntry).prepared
	s.mu.Unlock()
	c.hits.Add(1)
	return p, true
}

// Put stores a prepared query, evicting the stripe's least recently
// used entry past the capacity.
func (c *PlanCache) Put(key string, prepared []float64) {
	s := &c.stripes[stripeOf(key)]
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		// Racing fills of the same query store identical plans; keep
		// the incumbent and refresh its recency.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&planEntry{key: key, prepared: prepared})
	var evicted uint64
	for s.ll.Len() > c.perCap {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*planEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats snapshots the cache counters and occupancy.
func (c *PlanCache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// Result is one cached answer: the match set and, for the stats-
// reporting paths, the traversal counters that came with it (counters
// are part of the answer, so a cache hit reproduces them exactly).
type Result struct {
	Matches  []series.Match
	Stats    core.Stats
	HasStats bool
}

// matchBytes is the accounting cost of one Match (two words) and
// resultOverhead the fixed per-entry cost charged for the list node,
// map slot, and headers — approximate, but it keeps the byte budget
// honest for small results, whose footprint is dominated by the key.
const (
	matchBytes     = 16
	resultOverhead = 128
)

func entryBytes(key string, r Result) int {
	return len(key) + len(r.Matches)*matchBytes + resultOverhead
}

// ResultCache is the striped, byte-bounded LRU of full answers, keyed
// by ResultKey (path, epoch, params, query bytes).
type ResultCache struct {
	perBytes int // byte budget per stripe
	stripes  [stripeCount]resultStripe

	hits, misses, evictions atomic.Uint64
}

type resultStripe struct {
	mu    sync.Mutex
	ll    *list.List
	m     map[string]*list.Element
	bytes int
}

type resultEntry struct {
	key string
	val Result
}

// NewResult builds a result cache bounded to about maxBytes of stored
// results (split evenly across stripes).
func NewResult(maxBytes int) *ResultCache {
	if maxBytes < stripeCount {
		maxBytes = stripeCount
	}
	c := &ResultCache{perBytes: (maxBytes + stripeCount - 1) / stripeCount}
	for i := range c.stripes {
		c.stripes[i].ll = list.New()
		c.stripes[i].m = make(map[string]*list.Element)
	}
	return c
}

// Get returns a copy of the cached answer for key, if present. The
// match slice is copied so no caller can mutate the stored entry;
// nil-ness is preserved (an empty answer round-trips as nil, exactly
// as a fresh traversal reports it).
func (c *ResultCache) Get(key string) (Result, bool) {
	s := &c.stripes[stripeOf(key)]
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Result{}, false
	}
	s.ll.MoveToFront(el)
	val := el.Value.(*resultEntry).val
	s.mu.Unlock()
	c.hits.Add(1)
	out := Result{Stats: val.Stats, HasStats: val.HasStats}
	if val.Matches != nil {
		out.Matches = make([]series.Match, len(val.Matches))
		copy(out.Matches, val.Matches)
	}
	return out, true
}

// Put stores an answer under key, evicting least recently used entries
// past the stripe's byte budget. An answer larger than the whole
// stripe budget is not stored (it would evict everything and then be
// evicted itself on the next Put).
func (c *ResultCache) Put(key string, r Result) {
	cost := entryBytes(key, r)
	if cost > c.perBytes {
		return
	}
	// Snapshot the matches: the caller keeps ownership of its slice.
	stored := Result{Stats: r.Stats, HasStats: r.HasStats}
	if r.Matches != nil {
		stored.Matches = make([]series.Match, len(r.Matches))
		copy(stored.Matches, r.Matches)
	}
	s := &c.stripes[stripeOf(key)]
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		// Racing fills under one key store answers for the same
		// (query, params, epoch) — keep the incumbent.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&resultEntry{key: key, val: stored})
	s.bytes += cost
	var evicted uint64
	for s.bytes > c.perBytes {
		old := s.ll.Back()
		s.ll.Remove(old)
		e := old.Value.(*resultEntry)
		delete(s.m, e.key)
		s.bytes -= entryBytes(e.key, e.val)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats snapshots the cache counters and occupancy.
func (c *ResultCache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
