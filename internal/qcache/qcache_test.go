package qcache

import (
	"math"
	"sync"
	"testing"

	"twinsearch/internal/core"
	"twinsearch/internal/series"
)

func TestQueryKeyBitExact(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if QueryKey(a) != QueryKey(b) {
		t.Fatal("identical queries must share a key")
	}
	// -0 and +0 compare equal as floats but are different queries only
	// if their bits differ — the key is bit-exact, so they must not
	// alias... and they don't: Float64bits distinguishes them. A cache
	// keyed on bits can only cost a miss, never a wrong answer.
	if QueryKey([]float64{0}) == QueryKey([]float64{math.Copysign(0, -1)}) {
		t.Fatal("key must be bit-exact, -0 != +0")
	}
	if QueryKey([]float64{1, 2}) == QueryKey([]float64{2, 1}) {
		t.Fatal("order matters")
	}
}

func TestResultKeyNamespaces(t *testing.T) {
	q := []float64{1, 2, 3}
	base := ResultKey(PathSearch, 0, 0.5, 0, q)
	for name, other := range map[string]string{
		"path":  ResultKey(PathTopK, 0, 0.5, 0, q),
		"epoch": ResultKey(PathSearch, 1, 0.5, 0, q),
		"param": ResultKey(PathSearch, 0, 0.25, 0, q),
		"aux":   ResultKey(PathSearch, 0, 0.5, 64, q),
		"query": ResultKey(PathSearch, 0, 0.5, 0, []float64{1, 2, 4}),
	} {
		if other == base {
			t.Fatalf("%s must separate result keys", name)
		}
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlan(stripeCount) // one entry per stripe
	// Find two keys landing on the same stripe so the second insert
	// evicts the first.
	k1 := QueryKey([]float64{1})
	var k2 string
	for i := 2; ; i++ {
		k2 = QueryKey([]float64{float64(i)})
		if stripeOf(k2) == stripeOf(k1) {
			break
		}
	}
	c.Put(k1, []float64{10})
	c.Put(k2, []float64{20})
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 should have been evicted by k2")
	}
	if p, ok := c.Get(k2); !ok || p[0] != 20 {
		t.Fatalf("k2 missing or wrong: %v %v", p, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestPlanCacheDuplicatePutKeepsIncumbent(t *testing.T) {
	c := NewPlan(64)
	k := QueryKey([]float64{7})
	c.Put(k, []float64{1})
	c.Put(k, []float64{2})
	if p, _ := c.Get(k); p[0] != 1 {
		t.Fatalf("duplicate put replaced the incumbent: %v", p)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate put grew the cache: %+v", st)
	}
}

func TestResultCacheByteBoundAndEviction(t *testing.T) {
	// Budget fits roughly two entries per stripe; inserting three on
	// one stripe must evict the least recently used.
	q := []float64{1, 2, 3, 4}
	key := func(eps float64) string { return ResultKey(PathSearch, 0, eps, 0, q) }
	one := Result{Matches: []series.Match{{Start: 1, Dist: -1}}}
	per := entryBytes(key(0), one)
	c := NewResult(per * 2 * stripeCount)

	// Three keys on one stripe.
	var keys []string
	target := stripeOf(key(0.0))
	for eps := 0.0; len(keys) < 3; eps += 0.001 {
		if stripeOf(key(eps)) == target {
			keys = append(keys, key(eps))
		}
	}
	c.Put(keys[0], one)
	c.Put(keys[1], one)
	if _, ok := c.Get(keys[0]); !ok { // refresh 0 so 1 is LRU
		t.Fatal("keys[0] must be cached")
	}
	c.Put(keys[2], one)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry keys[1] should have been evicted")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used keys[0] must survive")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions: %+v", st)
	}
	if st.Bytes > 2*per*stripeCount {
		t.Fatalf("byte accounting exceeds budget: %+v", st)
	}
}

func TestResultCacheOversizedEntryRejected(t *testing.T) {
	c := NewResult(stripeCount * 256)
	big := Result{Matches: make([]series.Match, 10000)}
	k := ResultKey(PathSearch, 0, 1, 0, []float64{1})
	c.Put(k, big)
	if _, ok := c.Get(k); ok {
		t.Fatal("an entry larger than a stripe budget must not be stored")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("rejected entry left residue: %+v", st)
	}
}

func TestResultCacheCopiesOnGetAndPut(t *testing.T) {
	c := NewResult(1 << 20)
	src := []series.Match{{Start: 1, Dist: 0.5}, {Start: 2, Dist: 0.7}}
	k := ResultKey(PathTopK, 3, 2, 0, []float64{9})
	c.Put(k, Result{Matches: src, Stats: core.Stats{Results: 2}, HasStats: true})
	src[0].Start = 999 // caller mutates its slice after Put

	got, ok := c.Get(k)
	if !ok || got.Matches[0].Start != 1 {
		t.Fatalf("Put must snapshot the matches: %+v ok=%v", got, ok)
	}
	if !got.HasStats || got.Stats.Results != 2 {
		t.Fatalf("stats must round-trip: %+v", got)
	}
	got.Matches[1].Start = 888 // caller mutates the returned slice

	again, _ := c.Get(k)
	if again.Matches[1].Start != 2 {
		t.Fatal("Get must return an independent copy")
	}
}

func TestResultCachePreservesNilMatches(t *testing.T) {
	c := NewResult(1 << 16)
	k := ResultKey(PathSearch, 0, 0.1, 0, []float64{5})
	c.Put(k, Result{Matches: nil})
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("empty answers are cacheable")
	}
	if got.Matches != nil {
		t.Fatal("a nil match set must round-trip as nil (byte-identical to a fresh miss-free traversal)")
	}
}

// TestConcurrentHammer drives both caches from many goroutines with
// overlapping keys under -race and asserts the counters reconcile:
// every Get is either a hit or a miss, and occupancy never exceeds the
// configured bounds.
func TestConcurrentHammer(t *testing.T) {
	pc := NewPlan(128)
	rc := NewResult(64 << 10)
	const goroutines = 8
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				q := []float64{float64(i % 97), float64(g % 3)}
				pk := QueryKey(q)
				if _, ok := pc.Get(pk); !ok {
					pc.Put(pk, []float64{1})
				}
				rk := ResultKey(PathSearch, uint64(i%5), 0.5, 0, q)
				if _, ok := rc.Get(rk); !ok {
					rc.Put(rk, Result{Matches: []series.Match{{Start: i, Dist: -1}}})
				}
			}
		}(g)
	}
	wg.Wait()
	for name, st := range map[string]Stats{"plan": pc.Stats(), "result": rc.Stats()} {
		if st.Hits+st.Misses != goroutines*ops {
			t.Fatalf("%s: hits %d + misses %d != %d gets", name, st.Hits, st.Misses, goroutines*ops)
		}
	}
	if st := rc.Stats(); st.Bytes > 64<<10 {
		t.Fatalf("result cache exceeded its byte budget: %+v", st)
	}
	if st := pc.Stats(); st.Entries > 128+stripeCount {
		t.Fatalf("plan cache exceeded its entry budget: %+v", st)
	}
}

func BenchmarkResultCacheHit(b *testing.B) {
	c := NewResult(1 << 20)
	q := make([]float64, 100)
	for i := range q {
		q[i] = float64(i)
	}
	k := ResultKey(PathSearch, 1, 0.3, 0, q)
	c.Put(k, Result{Matches: []series.Match{{Start: 1, Dist: -1}, {Start: 7, Dist: -1}}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ResultKey(PathSearch, 1, 0.3, 0, q)
		if _, ok := c.Get(key); !ok {
			b.Fatal("must hit")
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	c := NewPlan(1024)
	q := make([]float64, 100)
	for i := range q {
		q[i] = float64(i)
	}
	c.Put(QueryKey(q), q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(QueryKey(q)); !ok {
			b.Fatal("must hit")
		}
	}
}
