package series

import (
	"errors"
	"testing"
)

// memReader serves raw windows from a slice through the WindowReader
// interface, standing in for store.Disk without touching the filesystem.
type memReader struct {
	data  []float64
	reads int
}

func (r *memReader) ReadAt(dst []float64, p int) error {
	if p < 0 || p+len(dst) > len(r.data) {
		return errors.New("out of bounds")
	}
	r.reads++
	copy(dst, r.data[p:])
	return nil
}

func TestDiskVerifyMatchesMemory(t *testing.T) {
	ts := randomSeries(21, 600)
	for _, mode := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		ext := NewExtractor(ts, mode)
		q := ext.ExtractCopy(123, 64)
		mem := NewVerifier(ext, q, 0.4)
		memResults := make([]bool, 0, 500)
		for p := 0; p+64 <= len(ts); p += 3 {
			memResults = append(memResults, mem.Verify(p))
		}

		reader := &memReader{data: ts}
		ext.AttachStore(reader)
		if ext.Backing() == nil {
			t.Fatal("Backing not attached")
		}
		disk := NewVerifier(ext, q, 0.4)
		i := 0
		for p := 0; p+64 <= len(ts); p += 3 {
			if got := disk.Verify(p); got != memResults[i] {
				t.Fatalf("mode=%v p=%d: disk=%v mem=%v", mode, p, got, memResults[i])
			}
			i++
		}
		if disk.DiskReads() != i {
			t.Fatalf("mode=%v: %d disk reads for %d verifications", mode, disk.DiskReads(), i)
		}
		if reader.reads != i {
			t.Fatalf("mode=%v: reader saw %d reads", mode, reader.reads)
		}
		ext.DetachStore()
		if ext.Backing() != nil {
			t.Fatal("DetachStore failed")
		}
	}
}

func TestDiskVerifyConstantGlobalSeries(t *testing.T) {
	ts := []float64{4, 4, 4, 4, 4, 4}
	ext := NewExtractor(ts, NormGlobal)
	ext.AttachStore(&memReader{data: ts})
	v := NewVerifier(ext, []float64{0, 0, 0}, 0.1)
	if !v.Verify(1) {
		t.Fatal("zero query must match constant series under global norm")
	}
}

func TestDiskVerifyPerSubConstantWindow(t *testing.T) {
	ts := []float64{7, 7, 7, 7, 1, 9}
	ext := NewExtractor(ts, NormPerSubsequence)
	ext.AttachStore(&memReader{data: ts})
	v := NewVerifier(ext, []float64{0, 0, 0}, 0.1)
	if !v.Verify(0) {
		t.Fatal("zero query must match constant window")
	}
	v2 := NewVerifier(ext, []float64{0.5, 0, 0}, 0.2)
	if v2.Verify(0) {
		t.Fatal("out-of-band query must fail")
	}
}

func TestDiskVerifyReadFailurePanics(t *testing.T) {
	ts := randomSeries(22, 100)
	ext := NewExtractor(ts, NormNone)
	ext.AttachStore(&memReader{data: ts[:10]}) // shorter than the series
	v := NewVerifier(ext, make([]float64, 20), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on read failure")
		}
	}()
	v.Verify(50)
}

func TestDiskVerifyResetClearsReads(t *testing.T) {
	ts := randomSeries(23, 200)
	ext := NewExtractor(ts, NormGlobal)
	ext.AttachStore(&memReader{data: ts})
	v := NewVerifier(ext, ext.ExtractCopy(0, 20), 0.5)
	v.Verify(5)
	if v.DiskReads() != 1 {
		t.Fatal("read not counted")
	}
	v.Reset()
	if v.DiskReads() != 0 {
		t.Fatal("Reset did not clear disk reads")
	}
}
