package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRollingMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ts := make([]float64, 500)
	for i := range ts {
		ts[i] = rng.NormFloat64() * 10
	}
	r := NewRolling(ts)
	if r.Len() != len(ts) {
		t.Fatalf("Len = %d", r.Len())
	}
	for _, l := range []int{1, 2, 7, 50, 500} {
		for p := 0; p+l <= len(ts); p += 13 {
			wantMean, wantStd := MeanStd(ts[p : p+l])
			gotMean := r.Mean(p, l)
			gotMean2, gotStd := r.MeanStd(p, l)
			if !almostEqual(gotMean, wantMean, 1e-8) || !almostEqual(gotMean2, wantMean, 1e-8) {
				t.Fatalf("mean(%d,%d) = %v, want %v", p, l, gotMean, wantMean)
			}
			// Prefix-sum variance suffers cancellation; allow a
			// scale-aware tolerance.
			tol := 1e-5 * (1 + math.Abs(wantMean))
			if !almostEqual(gotStd, wantStd, tol) {
				t.Fatalf("std(%d,%d) = %v, want %v", p, l, gotStd, wantStd)
			}
		}
	}
}

func TestRollingConstantWindow(t *testing.T) {
	ts := []float64{5, 5, 5, 5}
	r := NewRolling(ts)
	mean, std := r.MeanStd(0, 4)
	if mean != 5 || std != 0 {
		t.Fatalf("got %v, %v; want 5, 0", mean, std)
	}
}

// Property: Chebyshev satisfies the metric axioms on random vectors.
func TestChebyshevMetricAxioms(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		n := len(raw) / 3
		a, b, c := raw[:n], raw[n:2*n], raw[2*n:3*n]
		dab := Chebyshev(a, b)
		dba := Chebyshev(b, a)
		dac := Chebyshev(a, c)
		dcb := Chebyshev(c, b)
		if dab != dba { // symmetry
			return false
		}
		if Chebyshev(a, a) != 0 { // identity
			return false
		}
		// Triangle inequality with scale-relative tolerance: inputs are
		// arbitrary float64s, so rounding error scales with magnitude.
		bound := dac + dcb
		return dab <= bound+1e-9+1e-12*bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (paper §3.1): twins at ε have Euclidean distance ≤ ε√l.
func TestTwinEuclideanRelation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			if v > 1e150 || v < -1e150 { // avoid float64 overflow in squares
				return true
			}
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		eps := Chebyshev(a, b) // tightest ε making them twins
		return Euclidean(a, b) <= EuclideanThresholdFor(eps, n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (paper §3.1): time-aligned subwindows of twins are twins.
func TestTwinClosureUnderSubwindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 10 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		eps := Chebyshev(a, b)
		l := 1 + rng.Intn(n)
		p := rng.Intn(n - l + 1)
		if Chebyshev(a[p:p+l], b[p:p+l]) > eps+1e-12 {
			t.Fatalf("subwindow violates twin closure at iter %d", iter)
		}
	}
}
