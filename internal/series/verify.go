package series

import "sort"

// Verifier performs the verification step of the filter-verification
// framework (paper §3.2): it checks candidate windows against a fixed
// query with early abandoning, optionally visiting positions in order of
// decreasing |Q_i| ("reordering early abandoning", as in the UCR suite) —
// on z-normalized data the extreme query values are the least likely to
// match, so violations surface after very few comparisons.
type Verifier struct {
	q     []float64
	eps   float64
	order []int // visit order over query positions; nil = sequential
	ext   *Extractor

	diskBuf []float64 // scratch for disk-backed window reads

	candidates int // windows checked
	pointOps   int // pointwise comparisons performed
	diskReads  int // windows fetched from the backing store
}

// NewVerifier builds a verifier for query q at threshold eps over the
// extractor ext. Reordering is applied for normalized modes, where the
// |value| heuristic is meaningful; raw mode verifies sequentially.
func NewVerifier(ext *Extractor, q []float64, eps float64) *Verifier {
	v := MakeVerifier(ext, q, eps)
	return &v
}

// MakeVerifier is NewVerifier by value: core's traversal loops hold the
// verifier on the stack, keeping the allocation-free query path
// (BenchmarkTraceDisabled) allocation-free. Raw mode allocates nothing;
// normalized modes still build the reordering permutation.
func MakeVerifier(ext *Extractor, q []float64, eps float64) Verifier {
	v := Verifier{q: q, eps: eps, ext: ext}
	if ext.Mode() != NormNone {
		v.order = DescendingMagnitudeOrder(q)
	}
	return v
}

// DescendingMagnitudeOrder returns the positions of q sorted by
// decreasing absolute value, the visit order used by reordering early
// abandoning.
func DescendingMagnitudeOrder(q []float64) []int {
	order := make([]int, len(q))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := q[order[a]], q[order[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		return va > vb
	})
	return order
}

// Verify reports whether the window starting at p is a twin of the query.
func (v *Verifier) Verify(p int) bool {
	v.candidates++
	if v.ext.backing != nil {
		return v.verifyFromStore(p)
	}
	l := len(v.q)
	data := v.ext.Data()
	w := data[p : p+l]

	if v.ext.Mode() == NormPerSubsequence {
		return v.verifyPerSub(p, w)
	}
	if v.order == nil {
		for i, qv := range v.q {
			v.pointOps++
			d := qv - w[i]
			if d > v.eps || -d > v.eps {
				return false
			}
		}
		return true
	}
	for _, i := range v.order {
		v.pointOps++
		d := v.q[i] - w[i]
		if d > v.eps || -d > v.eps {
			return false
		}
	}
	return true
}

func (v *Verifier) verifyPerSub(p int, w []float64) bool {
	mean, std := v.ext.rolling.MeanStd(p, len(v.q))
	if std < zeroStd {
		for _, i := range v.order {
			v.pointOps++
			qv := v.q[i]
			if qv > v.eps || -qv > v.eps {
				return false
			}
		}
		return true
	}
	inv := 1 / std
	for _, i := range v.order {
		v.pointOps++
		d := v.q[i] - (w[i]-mean)*inv
		if d > v.eps || -d > v.eps {
			return false
		}
	}
	return true
}

// verifyFromStore implements the paper's disk-resident evaluation setup:
// the candidate window is fetched from the backing store with one
// random-access read of the raw series, the extractor's normalization is
// re-applied, and the (reordered) early-abandoning comparison runs over
// the fetched buffer. An I/O failure is a programming or environment
// error the search cannot recover from, so it panics with context.
func (v *Verifier) verifyFromStore(p int) bool {
	l := len(v.q)
	if cap(v.diskBuf) < l {
		v.diskBuf = make([]float64, l)
	}
	raw := v.diskBuf[:l]
	if err := v.ext.backing.ReadAt(raw, p); err != nil {
		panic("series: disk-backed verification read failed: " + err.Error())
	}
	v.diskReads++

	switch v.ext.mode {
	case NormGlobal:
		if v.ext.gStd == 0 {
			// Constant series: every normalized value is zero.
			for i := range raw {
				raw[i] = 0
			}
		} else {
			inv := 1 / v.ext.gStd
			for i, x := range raw {
				raw[i] = (x - v.ext.gMean) * inv
			}
		}
	case NormPerSubsequence:
		// Rolling prefix sums stay in memory (they are part of the
		// index-side state); only the values come from disk.
		mean, std := v.ext.rolling.MeanStd(p, l)
		if std < zeroStd {
			for i := range raw {
				raw[i] = 0
			}
		} else {
			inv := 1 / std
			for i, x := range raw {
				raw[i] = (x - mean) * inv
			}
		}
	}

	if v.order == nil {
		for i, qv := range v.q {
			v.pointOps++
			d := qv - raw[i]
			if d > v.eps || -d > v.eps {
				return false
			}
		}
		return true
	}
	for _, i := range v.order {
		v.pointOps++
		d := v.q[i] - raw[i]
		if d > v.eps || -d > v.eps {
			return false
		}
	}
	return true
}

// Stats returns the number of candidate windows checked and the total
// pointwise comparisons performed so far.
func (v *Verifier) Stats() (candidates, pointOps int) {
	return v.candidates, v.pointOps
}

// DiskReads returns how many candidate windows were fetched from the
// backing store.
func (v *Verifier) DiskReads() int { return v.diskReads }

// Reset clears the verifier's counters.
func (v *Verifier) Reset() {
	v.candidates, v.pointOps, v.diskReads = 0, 0, 0
}
