package series

import "sort"

// Match is a twin subsequence hit: the 0-based start position of the
// matching window in the indexed series and its Chebyshev distance to the
// query. Search implementations that skip the exact distance (they only
// prove d ≤ ε) report Dist = -1.
type Match struct {
	Start int
	Dist  float64
}

// SortMatches orders matches by start position in place; all search
// methods in this repository report results in this canonical order so
// result sets are directly comparable. Index traversals emit positions
// in leaf order, which is arbitrary with respect to start position, so
// this must be a real O(n log n) sort — loose thresholds can make the
// result set a double-digit percentage of all windows. Empty and
// single-element sets return before the sort.Slice call: its
// interface conversion allocates, and the no-match fast path is held
// to zero allocations (see BenchmarkTraceDisabled).
func SortMatches(ms []Match) {
	if len(ms) < 2 {
		return
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Start < ms[j].Start })
}

// MatchStarts projects the start positions of ms.
func MatchStarts(ms []Match) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Start
	}
	return out
}
