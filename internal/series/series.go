// Package series provides the core time-series substrate used by every
// index in this repository: subsequence views, summary statistics,
// z-normalization (global and rolling per-window), and the Chebyshev /
// Euclidean distance kernels with early-abandoning verification.
//
// Positions are 0-based throughout: the subsequence of T starting at
// position p with length l is T[p : p+l].
package series

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned by operations that require a non-empty sequence.
var ErrEmpty = errors.New("series: empty sequence")

// ErrLengthMismatch is returned by pairwise operations on sequences of
// different lengths.
var ErrLengthMismatch = errors.New("series: length mismatch")

// ErrBounds is returned when a requested subsequence falls outside the
// series.
var ErrBounds = errors.New("series: subsequence out of bounds")

// Sub returns the subsequence of t starting at p with length l as a view
// (no copy). It returns ErrBounds when the window does not fit.
func Sub(t []float64, p, l int) ([]float64, error) {
	if p < 0 || l <= 0 || p+l > len(t) {
		return nil, fmt.Errorf("%w: start=%d len=%d series=%d", ErrBounds, p, l, len(t))
	}
	return t[p : p+l], nil
}

// NumSubsequences returns the number of l-length subsequences of a series
// with n points: n-l+1, or 0 when the window does not fit.
func NumSubsequences(n, l int) int {
	if l <= 0 || n < l {
		return 0
	}
	return n - l + 1
}

// Mean returns the arithmetic mean of s. It returns 0 for an empty slice.
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// MeanStd returns the mean and the population standard deviation of s.
func MeanStd(s []float64) (mean, std float64) {
	if len(s) == 0 {
		return 0, 0
	}
	mean = Mean(s)
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(s)))
	return mean, std
}

// MinMax returns the minimum and maximum value of s. It returns
// (+Inf, -Inf) for an empty slice so that the result folds correctly.
func MinMax(s []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ZNormalize returns a z-normalized copy of s: zero mean, unit standard
// deviation. A (near-)constant sequence normalizes to all zeros, the
// convention used by the UCR suite.
func ZNormalize(s []float64) []float64 {
	out := make([]float64, len(s))
	ZNormalizeTo(out, s)
	return out
}

// zeroStd is the threshold under which a window is treated as constant:
// dividing by a smaller σ would only amplify float noise.
const zeroStd = 1e-12

// ZNormalizeTo writes the z-normalization of src into dst, which must have
// the same length. dst and src may alias.
func ZNormalizeTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("series: ZNormalizeTo length mismatch")
	}
	mean, std := MeanStd(src)
	if std < zeroStd {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / std
	for i, v := range src {
		dst[i] = (v - mean) * inv
	}
}

// Chebyshev returns the L∞ distance between equal-length sequences a and b:
// the maximum absolute pointwise difference. It panics on length mismatch;
// use ChebyshevChecked at API boundaries.
func Chebyshev(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("series: Chebyshev length mismatch")
	}
	var max float64
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// ChebyshevChecked is Chebyshev with an error instead of a panic on
// mismatched lengths.
func ChebyshevChecked(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	return Chebyshev(a, b), nil
}

// WithinChebyshev reports whether d∞(a, b) ≤ eps, abandoning the scan at
// the first position whose difference exceeds eps.
func WithinChebyshev(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		panic("series: WithinChebyshev length mismatch")
	}
	for i, v := range a {
		d := v - b[i]
		if d > eps || -d > eps {
			return false
		}
	}
	return true
}

// Euclidean returns the L2 distance between equal-length sequences.
func Euclidean(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// SquaredEuclidean returns the squared L2 distance between equal-length
// sequences.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("series: SquaredEuclidean length mismatch")
	}
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return sum
}

// WithinEuclidean reports whether ED(a, b) ≤ eps with early abandoning on
// the running sum of squares.
func WithinEuclidean(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		panic("series: WithinEuclidean length mismatch")
	}
	limit := eps * eps
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
		if sum > limit {
			return false
		}
	}
	return true
}

// EuclideanThresholdFor returns the Euclidean threshold ε·√l that admits
// every Chebyshev twin of length l at threshold eps (paper §3.1): if
// d∞(S,S′) ≤ ε then ED(S,S′) ≤ ε√l.
func EuclideanThresholdFor(eps float64, l int) float64 {
	return eps * math.Sqrt(float64(l))
}
