package series

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSub(t *testing.T) {
	ts := []float64{1, 2, 3, 4, 5}
	got, err := Sub(ts, 1, 3)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sub = %v, want %v", got, want)
		}
	}
}

func TestSubIsView(t *testing.T) {
	ts := []float64{1, 2, 3}
	got, _ := Sub(ts, 0, 2)
	ts[0] = 99
	if got[0] != 99 {
		t.Fatal("Sub should return a view, not a copy")
	}
}

func TestSubBounds(t *testing.T) {
	ts := []float64{1, 2, 3}
	cases := []struct{ p, l int }{
		{-1, 2}, {0, 0}, {0, -1}, {0, 4}, {2, 2}, {3, 1},
	}
	for _, c := range cases {
		if _, err := Sub(ts, c.p, c.l); err == nil {
			t.Errorf("Sub(%d,%d): want error", c.p, c.l)
		}
	}
	if _, err := Sub(ts, 2, 1); err != nil {
		t.Errorf("Sub(2,1): unexpected error %v", err)
	}
}

func TestNumSubsequences(t *testing.T) {
	cases := []struct{ n, l, want int }{
		{10, 3, 8}, {10, 10, 1}, {10, 11, 0}, {0, 1, 0}, {5, 0, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := NumSubsequences(c.n, c.l); got != c.want {
			t.Errorf("NumSubsequences(%d,%d) = %d, want %d", c.n, c.l, got, c.want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(mean, 5, 1e-12) || !almostEqual(std, 2, 1e-12) {
		t.Fatalf("MeanStd = %v, %v; want 5, 2", mean, std)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	mean, std := MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatalf("MeanStd(nil) = %v, %v; want 0, 0", mean, std)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Fatalf("MinMax(nil) = %v, %v; want +Inf, -Inf", lo, hi)
	}
}

func TestZNormalize(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6}
	z := ZNormalize(s)
	mean, std := MeanStd(z)
	if !almostEqual(mean, 0, 1e-12) || !almostEqual(std, 1, 1e-12) {
		t.Fatalf("normalized mean/std = %v, %v", mean, std)
	}
	// Original untouched.
	if s[0] != 1 {
		t.Fatal("ZNormalize modified its input")
	}
}

func TestZNormalizeConstant(t *testing.T) {
	z := ZNormalize([]float64{4, 4, 4})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant sequence should normalize to zeros, got %v", z)
		}
	}
}

func TestZNormalizeToAliasing(t *testing.T) {
	s := []float64{1, 2, 3}
	ZNormalizeTo(s, s)
	mean, _ := MeanStd(s)
	if !almostEqual(mean, 0, 1e-12) {
		t.Fatalf("in-place normalization failed: %v", s)
	}
}

func TestChebyshev(t *testing.T) {
	a := []float64{1, 5, 3}
	b := []float64{2, 2, 3}
	if got := Chebyshev(a, b); got != 3 {
		t.Fatalf("Chebyshev = %v, want 3", got)
	}
	if got := Chebyshev(a, a); got != 0 {
		t.Fatalf("Chebyshev(a,a) = %v, want 0", got)
	}
}

func TestChebyshevChecked(t *testing.T) {
	if _, err := ChebyshevChecked([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	d, err := ChebyshevChecked([]float64{1, 2}, []float64{2, 2})
	if err != nil || d != 1 {
		t.Fatalf("got %v, %v", d, err)
	}
}

func TestWithinChebyshev(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{0.5, -0.5, 0.4}
	if !WithinChebyshev(a, b, 0.5) {
		t.Fatal("should be within 0.5")
	}
	if WithinChebyshev(a, b, 0.49) {
		t.Fatal("should not be within 0.49")
	}
}

func TestEuclidean(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Euclidean(a, b); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Euclidean = %v, want 5", got)
	}
	if got := SquaredEuclidean(a, b); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("SquaredEuclidean = %v, want 25", got)
	}
}

func TestWithinEuclidean(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if !WithinEuclidean(a, b, 5) {
		t.Fatal("should be within 5")
	}
	if WithinEuclidean(a, b, 4.99) {
		t.Fatal("should not be within 4.99")
	}
}

func TestEuclideanThresholdFor(t *testing.T) {
	if got := EuclideanThresholdFor(2, 25); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("got %v, want 10", got)
	}
}

func TestDescendingMagnitudeOrder(t *testing.T) {
	q := []float64{0.1, -3, 2, 0}
	order := DescendingMagnitudeOrder(q)
	want := []int{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
