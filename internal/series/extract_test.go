package series

import (
	"math/rand"
	"testing"
)

func randomSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	v := 0.0
	for i := range ts {
		v += rng.NormFloat64()
		ts[i] = v
	}
	return ts
}

func TestNormModeString(t *testing.T) {
	if NormNone.String() != "raw" ||
		NormGlobal.String() != "z-norm(series)" ||
		NormPerSubsequence.String() != "z-norm(subsequence)" {
		t.Fatal("unexpected NormMode strings")
	}
	if NormMode(9).String() != "NormMode(9)" {
		t.Fatal("unexpected fallback string")
	}
}

func TestExtractorRaw(t *testing.T) {
	ts := []float64{1, 2, 3, 4}
	e := NewExtractor(ts, NormNone)
	w := e.Extract(1, 2, nil)
	if w[0] != 2 || w[1] != 3 {
		t.Fatalf("Extract = %v", w)
	}
	if e.Len() != 4 || e.Mode() != NormNone {
		t.Fatal("Len/Mode wrong")
	}
}

func TestExtractorGlobal(t *testing.T) {
	ts := randomSeries(1, 300)
	e := NewExtractor(ts, NormGlobal)
	mean, std := MeanStd(e.Data())
	if !almostEqual(mean, 0, 1e-9) || !almostEqual(std, 1, 1e-9) {
		t.Fatalf("global norm data mean/std = %v, %v", mean, std)
	}
	// Input untouched.
	if ts[0] == e.Data()[0] && ts[1] == e.Data()[1] && ts[2] == e.Data()[2] {
		t.Fatal("global normalization appears to be identity")
	}
	// Extraction is a view of the normalized data.
	w := e.Extract(10, 5, nil)
	for i := range w {
		if w[i] != e.Data()[10+i] {
			t.Fatal("global extract should be a view")
		}
	}
}

func TestExtractorPerSubsequence(t *testing.T) {
	ts := randomSeries(2, 300)
	e := NewExtractor(ts, NormPerSubsequence)
	buf := make([]float64, 0, 64)
	for p := 0; p+50 <= len(ts); p += 17 {
		got := e.Extract(p, 50, buf)
		want := ZNormalize(ts[p : p+50])
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8) {
				t.Fatalf("per-sub extract mismatch at p=%d i=%d: %v vs %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestExtractorPerSubConstantWindow(t *testing.T) {
	ts := []float64{3, 3, 3, 3, 7}
	e := NewExtractor(ts, NormPerSubsequence)
	w := e.Extract(0, 4, nil)
	for _, v := range w {
		if v != 0 {
			t.Fatalf("constant window should normalize to zeros, got %v", w)
		}
	}
}

func TestExtractCopy(t *testing.T) {
	ts := []float64{1, 2, 3, 4}
	e := NewExtractor(ts, NormNone)
	c := e.ExtractCopy(1, 2)
	ts[1] = 99
	if c[0] != 2 {
		t.Fatal("ExtractCopy must copy")
	}
}

func TestExtractPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewExtractor([]float64{1, 2}, NormNone).Extract(1, 5, nil)
}

func TestTransformQuery(t *testing.T) {
	q := []float64{1, 2, 3}
	eRaw := NewExtractor([]float64{1, 2, 3, 4}, NormNone)
	got := eRaw.TransformQuery(q)
	for i := range q {
		if got[i] != q[i] {
			t.Fatal("raw mode should copy query unchanged")
		}
	}
	got[0] = 99
	if q[0] == 99 {
		t.Fatal("TransformQuery must not alias input")
	}
	ePer := NewExtractor([]float64{1, 2, 3, 4}, NormPerSubsequence)
	z := ePer.TransformQuery(q)
	mean, _ := MeanStd(z)
	if !almostEqual(mean, 0, 1e-12) {
		t.Fatal("per-sub mode should z-normalize the query")
	}
}

func TestTransformQueryGlobalMatchesExtract(t *testing.T) {
	ts := randomSeries(8, 400)
	e := NewExtractor(ts, NormGlobal)
	gm, gs := e.GlobalParams()
	if gs <= 0 {
		t.Fatalf("GlobalParams = %v, %v", gm, gs)
	}
	for _, p := range []int{0, 57, 300} {
		got := e.TransformQuery(ts[p : p+50])
		want := e.ExtractCopy(p, 50)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d i=%d: transform %v != extract %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestTransformQueryConstantGlobalSeries(t *testing.T) {
	e := NewExtractor([]float64{5, 5, 5, 5}, NormGlobal)
	out := e.TransformQuery([]float64{1, 2})
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("constant series should map queries to zeros, got %v", out)
	}
}

func TestWithinAtAgainstExtract(t *testing.T) {
	ts := randomSeries(3, 400)
	for _, mode := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		e := NewExtractor(ts, mode)
		q := e.ExtractCopy(37, 40)
		for p := 0; p+40 <= len(ts); p += 11 {
			w := e.Extract(p, 40, nil)
			want := Chebyshev(q, w) <= 0.8
			if got := e.WithinAt(q, p, 0.8); got != want {
				t.Fatalf("mode=%v p=%d: WithinAt=%v want %v", mode, p, got, want)
			}
		}
	}
}

func TestWithinAtConstantWindow(t *testing.T) {
	ts := []float64{5, 5, 5, 1, 9}
	e := NewExtractor(ts, NormPerSubsequence)
	q := []float64{0, 0, 0}
	if !e.WithinAt(q, 0, 0.01) {
		t.Fatal("zero query should match constant window under per-sub norm")
	}
	q2 := []float64{0, 0.5, 0}
	if e.WithinAt(q2, 0, 0.4) {
		t.Fatal("query exceeding eps against zeros should not match")
	}
}

func TestVerifierMatchesWithinAt(t *testing.T) {
	ts := randomSeries(4, 500)
	for _, mode := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		e := NewExtractor(ts, mode)
		q := e.ExtractCopy(100, 60)
		ver := NewVerifier(e, q, 0.5)
		for p := 0; p+60 <= len(ts); p += 7 {
			want := e.WithinAt(q, p, 0.5)
			if got := ver.Verify(p); got != want {
				t.Fatalf("mode=%v p=%d: Verify=%v want %v", mode, p, got, want)
			}
		}
		cands, ops := ver.Stats()
		if cands == 0 || ops == 0 {
			t.Fatal("verifier stats not recorded")
		}
		ver.Reset()
		cands, ops = ver.Stats()
		if cands != 0 || ops != 0 {
			t.Fatal("Reset did not clear stats")
		}
	}
}

func TestVerifierSelfMatch(t *testing.T) {
	ts := randomSeries(5, 200)
	e := NewExtractor(ts, NormGlobal)
	q := e.ExtractCopy(50, 30)
	ver := NewVerifier(e, q, 0)
	if !ver.Verify(50) {
		t.Fatal("query must match its own source window at eps=0")
	}
}

func TestVerifierPerSubConstantWindow(t *testing.T) {
	ts := []float64{2, 2, 2, 2, 9, -4}
	e := NewExtractor(ts, NormPerSubsequence)
	q := []float64{0, 0, 0, 0}
	ver := NewVerifier(e, q, 0.1)
	if !ver.Verify(0) {
		t.Fatal("zero query should verify against constant window")
	}
	q2 := []float64{1, 0, 0, 0}
	ver2 := NewVerifier(e, q2, 0.5)
	if ver2.Verify(0) {
		t.Fatal("non-zero query should fail against constant window at eps=0.5")
	}
}

func TestSortMatches(t *testing.T) {
	ms := []Match{{Start: 5}, {Start: 1}, {Start: 3}}
	SortMatches(ms)
	if ms[0].Start != 1 || ms[1].Start != 3 || ms[2].Start != 5 {
		t.Fatalf("SortMatches = %v", ms)
	}
	starts := MatchStarts(ms)
	if starts[0] != 1 || starts[2] != 5 {
		t.Fatalf("MatchStarts = %v", starts)
	}
}
