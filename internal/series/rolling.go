package series

import "math"

// Rolling precomputes prefix sums over a series so that the mean and
// standard deviation of any window can be answered in O(1). It backs the
// KV-Index mean filter and on-the-fly per-subsequence z-normalization.
type Rolling struct {
	sum  []float64 // sum[i] = Σ t[0:i]
	sum2 []float64 // sum2[i] = Σ t[0:i]^2
	n    int
}

// NewRolling builds prefix sums over t in O(n).
func NewRolling(t []float64) *Rolling {
	r := &Rolling{
		sum:  make([]float64, len(t)+1),
		sum2: make([]float64, len(t)+1),
		n:    len(t),
	}
	for i, v := range t {
		r.sum[i+1] = r.sum[i] + v
		r.sum2[i+1] = r.sum2[i] + v*v
	}
	return r
}

// Len returns the length of the underlying series.
func (r *Rolling) Len() int { return r.n }

// Append extends the prefix sums with new trailing values, keeping all
// previously answerable windows valid.
func (r *Rolling) Append(vs ...float64) {
	for _, v := range vs {
		r.sum = append(r.sum, r.sum[r.n]+v)
		r.sum2 = append(r.sum2, r.sum2[r.n]+v*v)
		r.n++
	}
}

// Mean returns the mean of the window [p, p+l).
func (r *Rolling) Mean(p, l int) float64 {
	return (r.sum[p+l] - r.sum[p]) / float64(l)
}

// MeanStd returns the mean and population standard deviation of the
// window [p, p+l). Floating-point cancellation can drive the variance
// estimate slightly negative for constant windows; it is clamped to 0.
func (r *Rolling) MeanStd(p, l int) (mean, std float64) {
	fl := float64(l)
	mean = (r.sum[p+l] - r.sum[p]) / fl
	variance := (r.sum2[p+l]-r.sum2[p])/fl - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}
