package series

import "fmt"

// NormMode selects how values are normalized before indexing and search,
// mirroring the three settings in the paper (§3.1):
//
//   - NormNone: raw values (paper's "non-normalized" experiments, Fig. 7).
//   - NormGlobal: the entire series is z-normalized once (the paper's
//     default, Figs. 4 and 5).
//   - NormPerSubsequence: every window is z-normalized independently
//     (Fig. 6). KV-Index is inapplicable in this mode because every
//     window mean is zero.
type NormMode int

const (
	NormNone NormMode = iota
	NormGlobal
	NormPerSubsequence
)

// String implements fmt.Stringer.
func (m NormMode) String() string {
	switch m {
	case NormNone:
		return "raw"
	case NormGlobal:
		return "z-norm(series)"
	case NormPerSubsequence:
		return "z-norm(subsequence)"
	default:
		return fmt.Sprintf("NormMode(%d)", int(m))
	}
}

// Extractor yields (possibly normalized) subsequences of a series. All
// indices build from and verify against the same extractor, so the choice
// of normalization is made exactly once, at construction.
//
// For NormGlobal the series is transformed up front, making extraction a
// plain slice view; for NormPerSubsequence each window is normalized on
// demand using O(1) rolling statistics.
type Extractor struct {
	data    []float64
	mode    NormMode
	rolling *Rolling // non-nil only for NormPerSubsequence

	// Global z-normalization parameters (NormGlobal only), retained so
	// raw-space queries can be mapped into the extractor's value space.
	gMean, gStd float64

	// backing, when non-nil, redirects verification-time window reads
	// through it (see AttachStore). It must serve the RAW series.
	backing WindowReader
}

// WindowReader is the random-access read interface verification uses in
// disk-backed mode; store.Disk implements it.
type WindowReader interface {
	// ReadAt fills dst with len(dst) raw series values starting at p.
	ReadAt(dst []float64, p int) error
}

// AttachStore switches the extractor into the paper's evaluation setup
// (§6.1): the index structure stays in memory, but every candidate
// window verified at query time is fetched from r with a random-access
// read of the ORIGINAL (raw, un-normalized) series; the extractor
// re-applies its normalization to each fetched window. Index
// construction and Extract are unaffected — builds run from the
// in-memory pass exactly as before.
func (e *Extractor) AttachStore(r WindowReader) { e.backing = r }

// DetachStore reverts to in-memory verification.
func (e *Extractor) DetachStore() { e.backing = nil }

// Backing returns the attached WindowReader, or nil.
func (e *Extractor) Backing() WindowReader { return e.backing }

// NewExtractor prepares an extractor over t with the given mode. The
// input slice is never modified; NormGlobal takes a normalized copy.
func NewExtractor(t []float64, mode NormMode) *Extractor {
	e := &Extractor{mode: mode}
	switch mode {
	case NormGlobal:
		e.gMean, e.gStd = MeanStd(t)
		e.data = make([]float64, len(t))
		if e.gStd < zeroStd {
			e.gStd = 0
		} else {
			inv := 1 / e.gStd
			for i, v := range t {
				e.data[i] = (v - e.gMean) * inv
			}
		}
	case NormPerSubsequence:
		e.data = t
		e.rolling = NewRolling(t)
	default:
		e.data = t
	}
	return e
}

// Len returns the length of the underlying series.
func (e *Extractor) Len() int { return len(e.data) }

// Mode returns the extractor's normalization mode.
func (e *Extractor) Mode() NormMode { return e.mode }

// Data returns the series as seen by the extractor before any
// per-subsequence normalization (raw for NormNone/NormPerSubsequence,
// globally normalized for NormGlobal). Callers must not modify it.
func (e *Extractor) Data() []float64 { return e.data }

// Extract returns the subsequence at [p, p+l) under the extractor's
// normalization. For NormPerSubsequence the result is written into buf
// (allocated when too small); otherwise a zero-copy view is returned.
// The window must be in bounds.
func (e *Extractor) Extract(p, l int, buf []float64) []float64 {
	if p < 0 || l <= 0 || p+l > len(e.data) {
		panic(fmt.Sprintf("series: Extract out of bounds: start=%d len=%d series=%d", p, l, len(e.data)))
	}
	w := e.data[p : p+l]
	if e.mode != NormPerSubsequence {
		return w
	}
	if cap(buf) < l {
		buf = make([]float64, l)
	}
	buf = buf[:l]
	mean, std := e.rolling.MeanStd(p, l)
	if std < zeroStd {
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	inv := 1 / std
	for i, v := range w {
		buf[i] = (v - mean) * inv
	}
	return buf
}

// ExtractCopy returns a freshly allocated copy of the window at [p, p+l)
// under the extractor's normalization.
func (e *Extractor) ExtractCopy(p, l int) []float64 {
	out := make([]float64, l)
	w := e.Extract(p, l, out)
	if &w[0] != &out[0] {
		copy(out, w)
	}
	return out
}

// TransformQuery maps a query expressed in the raw value space of the
// original series into the extractor's value space, so that Chebyshev
// distances against extracted windows mean what the caller expects:
//
//   - NormNone: identity (copied).
//   - NormGlobal: the same affine transform applied to the series,
//     (v − mean)/σ with the global parameters.
//   - NormPerSubsequence: z-normalization of the query itself.
//
// A query sampled from the series at position p transforms to exactly
// ExtractCopy(p, len(q)).
func (e *Extractor) TransformQuery(q []float64) []float64 {
	out := make([]float64, len(q))
	switch e.mode {
	case NormGlobal:
		if e.gStd == 0 {
			return out // constant series normalized to zeros
		}
		inv := 1 / e.gStd
		for i, v := range q {
			out[i] = (v - e.gMean) * inv
		}
	case NormPerSubsequence:
		ZNormalizeTo(out, q)
	default:
		copy(out, q)
	}
	return out
}

// GlobalParams returns the global normalization mean and σ (NormGlobal
// extractors only; zeros otherwise).
func (e *Extractor) GlobalParams() (mean, std float64) { return e.gMean, e.gStd }

// Append extends the series with new trailing values, enabling
// streaming ingestion:
//
//   - NormNone: values are stored as-is.
//   - NormGlobal: values are transformed with the FROZEN original
//     (mean, σ) — the standard streaming practice; the normalization
//     basis never shifts under already-indexed windows. A constant
//     original series (σ=0) maps appended values to 0 like the rest.
//   - NormPerSubsequence: raw values are stored and the rolling prefix
//     sums are extended, so new windows normalize exactly like old ones.
//
// Existing windows, queries and attached stores are unaffected; only
// positions gained by the growth become addressable.
func (e *Extractor) Append(vs ...float64) {
	switch e.mode {
	case NormGlobal:
		if e.gStd == 0 {
			e.data = append(e.data, make([]float64, len(vs))...)
			return
		}
		inv := 1 / e.gStd
		for _, v := range vs {
			e.data = append(e.data, (v-e.gMean)*inv)
		}
	case NormPerSubsequence:
		e.data = append(e.data, vs...)
		e.rolling.Append(vs...)
	default:
		e.data = append(e.data, vs...)
	}
}

// WithinAt reports whether the window at [p, p+l) under the extractor's
// normalization is a twin of q at threshold eps, without materializing
// the normalized window: per-subsequence normalization is folded into the
// comparison, abandoning at the first violating position.
func (e *Extractor) WithinAt(q []float64, p int, eps float64) bool {
	l := len(q)
	if p < 0 || p+l > len(e.data) {
		panic(fmt.Sprintf("series: WithinAt out of bounds: start=%d len=%d series=%d", p, l, len(e.data)))
	}
	w := e.data[p : p+l]
	if e.mode != NormPerSubsequence {
		return WithinChebyshev(q, w, eps)
	}
	mean, std := e.rolling.MeanStd(p, l)
	if std < zeroStd {
		// Window normalizes to all zeros.
		for _, v := range q {
			if v > eps || -v > eps {
				return false
			}
		}
		return true
	}
	inv := 1 / std
	for i, v := range w {
		d := q[i] - (v-mean)*inv
		if d > eps || -d > eps {
			return false
		}
	}
	return true
}
