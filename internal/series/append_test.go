package series

import "testing"

func TestRollingAppend(t *testing.T) {
	ts := randomSeries(71, 200)
	r := NewRolling(ts[:120])
	r.Append(ts[120:]...)
	want := NewRolling(ts)
	if r.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", r.Len(), want.Len())
	}
	for p := 0; p+30 <= 200; p += 7 {
		m1, s1 := r.MeanStd(p, 30)
		m2, s2 := want.MeanStd(p, 30)
		if !almostEqual(m1, m2, 1e-9) || !almostEqual(s1, s2, 1e-9) {
			t.Fatalf("window %d: (%v,%v) vs (%v,%v)", p, m1, s1, m2, s2)
		}
	}
}

func TestExtractorAppendRaw(t *testing.T) {
	e := NewExtractor([]float64{1, 2, 3}, NormNone)
	e.Append(4, 5)
	if e.Len() != 5 || e.Data()[4] != 5 {
		t.Fatalf("append failed: %v", e.Data())
	}
}

func TestExtractorAppendGlobalFrozenParams(t *testing.T) {
	ts := randomSeries(72, 300)
	e := NewExtractor(ts[:200], NormGlobal)
	gm, gs := e.GlobalParams()
	e.Append(ts[200:]...)
	// Appended values must be normalized with the ORIGINAL parameters.
	for i := 200; i < 300; i++ {
		want := (ts[i] - gm) / gs
		if !almostEqual(e.Data()[i], want, 1e-12) {
			t.Fatalf("appended value %d: %v, want %v", i, e.Data()[i], want)
		}
	}
	// Old values untouched.
	gm2, gs2 := e.GlobalParams()
	if gm != gm2 || gs != gs2 {
		t.Fatal("global params must stay frozen")
	}
}

func TestExtractorAppendGlobalConstant(t *testing.T) {
	e := NewExtractor([]float64{2, 2, 2, 2}, NormGlobal)
	e.Append(7, 9)
	if e.Data()[4] != 0 || e.Data()[5] != 0 {
		t.Fatalf("σ=0 appends should map to zeros: %v", e.Data())
	}
}

func TestExtractorAppendPerSubsequence(t *testing.T) {
	ts := randomSeries(73, 400)
	grown := NewExtractor(append([]float64(nil), ts[:300]...), NormPerSubsequence)
	grown.Append(ts[300:]...)
	fresh := NewExtractor(ts, NormPerSubsequence)
	for p := 250; p+60 <= 400; p += 11 {
		a := grown.ExtractCopy(p, 60)
		b := fresh.ExtractCopy(p, 60)
		for i := range a {
			if !almostEqual(a[i], b[i], 1e-9) {
				t.Fatalf("window %d differs after append", p)
			}
		}
	}
}
