package cluster

// The shard RPC's server half: the HTTP face of one cluster node. A
// node serves an assigned subset of a saved index's shards (Node /
// shard.Subset) and exposes the five search paths to the coordinator:
//
//	GET  /healthz       → NodeHealth (role "node", assignment)
//	POST /shard/search  → SearchRequest → SearchResponse (+stats)
//	POST /shard/topk    → TopKRequest   → SearchResponse
//	POST /shard/prefix  → SearchRequest → SearchResponse (tree only)
//	POST /shard/approx  → ApproxRequest → SearchResponse (+stats)
//
// Queries arrive pre-transformed (the coordinator normalizes once) and
// responses follow the shard.Backend contract, so the coordinator's
// merges reproduce the single-engine answer bit for bit. Every handler
// runs under r.Context(): a coordinator that gives up (timeout, death)
// cancels the node-side fan-out instead of leaving it to burn executor
// time. internal/server mounts this handler for tsserve's node role;
// it lives here so the client and server halves of the protocol share
// one package.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"

	"twinsearch/internal/core"
	"twinsearch/internal/obs"
	"twinsearch/internal/series"
)

// NodeRPC serves one cluster node's shard RPC. It implements
// http.Handler.
type NodeRPC struct {
	n     *Node
	mux   *http.ServeMux
	drain atomic.Bool
}

// NewNodeRPC wraps a node in its RPC handler.
func NewNodeRPC(n *Node) *NodeRPC {
	h := &NodeRPC{n: n, mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/shard/search", h.search)
	h.mux.HandleFunc("/shard/topk", h.topk)
	h.mux.HandleFunc("/shard/prefix", h.prefix)
	h.mux.HandleFunc("/shard/approx", h.approx)
	return h
}

// BeginDrain makes every subsequent query answer 503 while /healthz
// keeps working — the graceful-shutdown window in which in-flight
// requests finish and the coordinator routes around the node.
func (h *NodeRPC) BeginDrain() { h.drain.Store(true) }

// ServeHTTP implements http.Handler.
func (h *NodeRPC) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.drain.Load() && r.URL.Path != "/healthz" {
		rpcError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	h.mux.ServeHTTP(w, r)
}

var errDraining = errors.New("server is draining for shutdown")

// rpcJSON / rpcError mirror internal/server's body shapes — the
// {"error": ...} form the remote client decodes.
func rpcJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func rpcError(w http.ResponseWriter, status int, err error) {
	rpcJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (h *NodeRPC) health(w http.ResponseWriter, r *http.Request) {
	hd := h.n.Health()
	if h.drain.Load() {
		hd.Status = "draining"
	}
	rpcJSON(w, http.StatusOK, hd)
}

// decodeRPC decodes one POSTed request body, enforcing method and
// well-formedness uniformly across the shard endpoints.
func decodeRPC(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		rpcError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// writeRPC writes a search result, translating errors: context endings
// (the caller hung up or timed out) are 503, everything else is the
// node refusing the request (400). tr, when non-nil, is the node's
// finished span tree for the query, returned so the coordinator can
// stitch the cross-node trace.
func writeRPC(w http.ResponseWriter, ms []series.Match, st *core.Stats, err error, tr *obs.Trace) {
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		rpcError(w, status, err)
		return
	}
	resp := SearchResponse{Matches: toWire(ms), Stats: st}
	if tr != nil {
		tr.Finish()
		resp.Trace = tr.Root
	}
	rpcJSON(w, http.StatusOK, resp)
}

// traceCtx starts a node-local trace when the request asked for one
// (req.Trace): the returned context carries the node's root span, so
// the shard layer below annotates it, and writeRPC ships the finished
// subtree back. StartUs values in it are relative to this node's own
// trace start.
func (h *NodeRPC) traceCtx(r *http.Request, want bool) (context.Context, *obs.Trace) {
	if !want {
		return r.Context(), nil
	}
	tr := obs.NewTrace("node:" + h.n.Name)
	return obs.WithSpan(r.Context(), tr.Root), tr
}

func (h *NodeRPC) search(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	if err := validateRPCQuery(req.Query, h.n.Sub.L(), req.Eps); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tr := h.traceCtx(r, req.Trace)
	ms, st, err := h.n.Sub.SearchStats(ctx, req.Query, req.Eps)
	writeRPC(w, ms, &st, err, tr)
}

func (h *NodeRPC) topk(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	if err := validateRPCQuery(req.Query, h.n.Sub.L(), 0); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	bound := math.Inf(1)
	if req.Bound != nil {
		if math.IsNaN(*req.Bound) || *req.Bound < 0 {
			rpcError(w, http.StatusBadRequest, fmt.Errorf("invalid bound %v", *req.Bound))
			return
		}
		bound = *req.Bound
	}
	ctx, tr := h.traceCtx(r, req.Trace)
	ms, err := h.n.Sub.SearchTopK(ctx, req.Query, req.K, bound)
	writeRPC(w, ms, nil, err, tr)
}

func (h *NodeRPC) prefix(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	// Prefix queries are shorter than L by design; the subset validates
	// the length itself. Screen the values and threshold only.
	if err := validateRPCValues(req.Query, req.Eps); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tr := h.traceCtx(r, req.Trace)
	ms, err := h.n.Sub.SearchPrefixTree(ctx, req.Query, req.Eps)
	writeRPC(w, ms, nil, err, tr)
}

func (h *NodeRPC) approx(w http.ResponseWriter, r *http.Request) {
	var req ApproxRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	if err := validateRPCQuery(req.Query, h.n.Sub.L(), req.Eps); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	if req.LeafBudget <= 0 {
		rpcError(w, http.StatusBadRequest, fmt.Errorf("leaf budget %d; a positive probe count is required", req.LeafBudget))
		return
	}
	ctx, tr := h.traceCtx(r, req.Trace)
	ms, st, err := h.n.Sub.SearchApprox(ctx, req.Query, req.Eps, req.LeafBudget)
	writeRPC(w, ms, &st, err, tr)
}

// validateRPCQuery screens a full-length RPC query before it reaches
// the subset: the shard layer panics on length mismatches (its callers
// validate), and non-finite values would poison the early-abandoning
// comparisons, so the node refuses both at the door.
func validateRPCQuery(q []float64, l int, eps float64) error {
	if len(q) != l {
		return fmt.Errorf("query length %d, node indexes L=%d", len(q), l)
	}
	return validateRPCValues(q, eps)
}

func validateRPCValues(q []float64, eps float64) error {
	if eps < 0 || math.IsNaN(eps) {
		return fmt.Errorf("invalid threshold %v", eps)
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite query value %v at position %d", v, i)
		}
	}
	return nil
}
