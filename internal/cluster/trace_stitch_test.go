package cluster_test

// Cross-node trace stitching: a forced trace on a replicated cluster
// must come back as ONE tree — coordinator spans (unit / attempt /
// merge) with each node's own subtree grafted under the attempt that
// won — and forcing it must leave the answer byte-identical to an
// untraced run. A Refuse chaos rule on the first replica proves the
// failed-then-failed-over shape is visible in the tree: an attempt
// with outcome=error followed by a winning failover attempt carrying
// the node's subtree. (A transient single-request fault won't do — the
// transport-level retry absorbs it below the attempt spans.)

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"twinsearch/internal/cluster"
	"twinsearch/internal/datasets"
	"twinsearch/internal/obs"
	"twinsearch/internal/series"
)

// collectSpans flattens a span tree into (span, parent) pairs.
func collectSpans(root *obs.Span) []*obs.Span {
	var out []*obs.Span
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		out = append(out, s)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

func TestForcedTraceStitched(t *testing.T) {
	data := datasets.EEGN(71, 1800)
	ctx := context.Background()
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path := buildSaved(t, ext, 4, false)
	cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1}, {2, 3}}, 2, cluster.Options{
		Timeout: 10 * time.Second,
	})
	q := ext.ExtractCopy(777, testL)

	// Untraced baseline answer.
	wantM, wantSt, err := cl.SearchStats(ctx, q, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	// srvs[0] is g0r0, group 0's first-attempt replica (topology order):
	// refusing all its connections forces the traced query to fail over
	// to g0r1.
	chaos.Set(hostOf(t, srvs[0]), cluster.ChaosRule{Refuse: true})

	tr := obs.NewTrace("coordinator")
	gotM, gotSt, err := cl.SearchStats(obs.WithSpan(ctx, tr.Root), q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	// The traced answer is byte-identical to the untraced one.
	if !sameMatches(wantM, gotM) {
		t.Fatalf("traced search diverged (%d vs %d results)", len(gotM), len(wantM))
	}
	if !reflect.DeepEqual(wantSt, gotSt) {
		t.Fatalf("traced stats diverged: %+v vs %+v", gotSt, wantSt)
	}

	spans := collectSpans(tr.Root)
	units, merges := 0, 0
	failed, failedOver := false, false
	nodeSubtrees := map[string]bool{}
	for _, s := range spans {
		switch {
		case s.Name == "unit":
			units++
		case s.Name == "merge":
			merges++
		case s.Name == "attempt":
			switch s.Attrs["outcome"] {
			case "error":
				failed = true
			case "ok":
				if s.Attrs["kind"] == "failover" {
					failedOver = true
				}
				// The winning attempt must carry the node's grafted
				// subtree, whose root names the node.
				sub := ""
				for _, c := range s.Children {
					if strings.HasPrefix(c.Name, "node:") {
						sub = c.Name
					}
				}
				if sub == "" {
					t.Fatalf("winning attempt on %v has no node: subtree (children: %v)", s.Attrs["node"], s.Children)
				}
				nodeSubtrees[sub] = true
			}
			if s.Attrs["breaker"] == nil || s.Attrs["node"] == nil {
				t.Fatalf("attempt span missing node/breaker attrs: %v", s.Attrs)
			}
		case strings.HasPrefix(s.Name, "node:"):
			// A node subtree must itself contain shard-layer spans —
			// proof it was recorded node-side, not fabricated here.
			if len(s.Children) == 0 {
				t.Fatalf("node subtree %s is empty", s.Name)
			}
		}
	}
	if units != 2 {
		t.Fatalf("stitched tree has %d unit spans, want 2 (one per replica group)", units)
	}
	if merges == 0 {
		t.Fatal("stitched tree has no merge span")
	}
	if !failed || !failedOver {
		t.Fatalf("stitched tree shows failed=%v failedOver=%v, want both (FailFirst chaos on g0r0)", failed, failedOver)
	}
	if len(nodeSubtrees) != 2 {
		t.Fatalf("stitched tree grafts subtrees from %v, want one per group", nodeSubtrees)
	}
}
