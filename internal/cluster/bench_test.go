package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"twinsearch/internal/cluster"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// BenchmarkClusterSearch prices the distributed hop: the same saved
// 4-shard index searched locally versus through a coordinator fanning
// out to N in-process HTTP nodes. The delta is serialization + loopback
// RPC + merge — what horizontal memory scaling costs per query.
func BenchmarkClusterSearch(b *testing.B) {
	data := datasets.EEGN(83, 4000)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(b, ext, 4, false)
	q := ext.ExtractCopy(1234, testL)

	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			local.Search(q, 0.3)
		}
	})
	for _, nodes := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			cl, _ := startClusterB(b, ext, path, contiguousSplit(4, nodes))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Search(ctx, q, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// startClusterB is startCluster for benchmarks.
func startClusterB(b *testing.B, ext *series.Extractor, path string, runs [][]int) (*cluster.Coordinator, []*httptest.Server) {
	b.Helper()
	topo := &cluster.Topology{Index: path}
	for i, run := range runs {
		topo.Nodes = append(topo.Nodes, cluster.NodeSpec{
			Name: fmt.Sprintf("n%d", i), Addr: "placeholder", Shards: run,
		})
	}
	var srvs []*httptest.Server
	for i := range topo.Nodes {
		n, err := cluster.OpenNode(topo, topo.Nodes[i].Name, ext, cluster.NodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { n.Close() })
		srv := httptest.NewServer(cluster.NewNodeRPC(n))
		b.Cleanup(srv.Close)
		topo.Nodes[i].Addr = srv.URL
		srvs = append(srvs, srv)
	}
	cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl, srvs
}
