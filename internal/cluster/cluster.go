// Package cluster is the distributed query tier over a saved sharded
// TS-Index (TSSH v3): one saved index, many processes. A **node** opens
// only its assigned shard subset — selective mmap via the segment
// table, O(assigned) cost — and serves the shard RPC (internal/server's
// /shard/* endpoints). A **coordinator** fans each query across every
// node through a pooled HTTP client with per-node timeouts and
// recombines with the same deterministic merges the local fan-out uses,
// so a cluster answers byte-identically to a single local engine:
// range-style paths k-way merge the nodes' disjoint start-sorted lists,
// top-k runs two-phase with a shared bound (the seed node's k-th
// distance is broadcast to prune the rest — exactly the bound one local
// work unit publishes to another, so the merged result is unchanged),
// and approximate search splits the global leaf budget across nodes in
// proportion to their window counts.
//
// The topology is static (a JSON file mapping node addresses to shard
// ranges) and failures are loud: a node that cannot be reached within
// its timeout fails the whole query with an error naming it — never a
// silent partial answer, never a hang.
//
// The decomposition mirrors the relational-join view of search-space
// partitioning (cf. Relational E-Matching): partition, evaluate
// partitions independently, recombine order-preservingly.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// Options configures OpenCoordinator.
type Options struct {
	// Timeout bounds every per-node RPC (0 selects 10s). A node that
	// cannot answer within it fails the query cleanly.
	Timeout time.Duration
	// PingTimeout bounds the liveness probes behind Health (0 → 2s).
	PingTimeout time.Duration
	// Workers sizes the executor local (LocalAddr) backends run on.
	Workers int
	// NoMMap / Prefetch apply to local backends; see NodeOptions.
	NoMMap   bool
	Prefetch bool
	// Client overrides the HTTP client (tests inject failure modes);
	// nil selects a client with a pooled transport owned by the
	// coordinator.
	Client *http.Client
}

const (
	defaultTimeout     = 10 * time.Second
	defaultPingTimeout = 2 * time.Second
)

// backendRef is one opened topology entry.
type backendRef struct {
	spec NodeSpec
	b    shard.Backend
	node *Node // non-nil for local entries; owns the arena
}

// Coordinator fans queries over the topology's backends. Methods are
// safe for concurrent use.
type Coordinator struct {
	ext      *series.Extractor
	l        int
	byMean   bool
	total    int // shard count of the saved index
	windows  int // windows served across all backends
	backends []backendRef

	timeout, pingTimeout time.Duration
	client               *http.Client
	ownTransport         *http.Transport
}

// OpenCoordinator opens every topology entry — LocalAddr entries become
// in-process subsets of the index file, the rest are dialed and
// cross-checked (same L, normalization, series length, and shard
// assignment as the topology claims) — and verifies the assignment
// partitions the index's shards exactly and the per-node window counts
// sum to the series'. ext must present the same series the index was
// built over; queries are fanned out pre-transformed. ctx bounds the
// whole open — dialing and cross-checking every remote node — so a
// caller's deadline or cancellation aborts a wedged dial instead of
// waiting out the per-node timeout.
func OpenCoordinator(ctx context.Context, topo *Topology, ext *series.Extractor, l int, o Options) (*Coordinator, error) {
	if o.Timeout <= 0 {
		o.Timeout = defaultTimeout
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = defaultPingTimeout
	}
	c := &Coordinator{ext: ext, l: l, timeout: o.Timeout, pingTimeout: o.PingTimeout, client: o.Client}
	if c.client == nil {
		c.ownTransport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
		c.client = &http.Client{Transport: c.ownTransport}
	}
	fail := func(err error) (*Coordinator, error) {
		c.Close()
		return nil, err
	}

	total, byMean := -1, false
	var ex *exec.Executor // shared by every local entry
	for _, spec := range topo.Nodes {
		var ref backendRef
		ref.spec = spec
		if spec.Addr == LocalAddr {
			if ex == nil {
				ex = exec.New(o.Workers)
			}
			n, err := openLocalEntry(topo, spec.Name, ext, ex, o)
			if err != nil {
				return fail(err)
			}
			ref.node, ref.b = n, n.Sub
			if total == -1 {
				total, byMean = n.Sub.TotalShards(), n.Sub.PartitionByMean()
			} else if total != n.Sub.TotalShards() || byMean != n.Sub.PartitionByMean() {
				return fail(fmt.Errorf("cluster: node %q serves a different index (%d/%v shards vs %d/%v)",
					spec.Name, n.Sub.TotalShards(), n.Sub.PartitionByMean(), total, byMean))
			}
		} else {
			rm, h, err := dialRemote(ctx, c.client, spec, ext, l, o.Timeout)
			if err != nil {
				return fail(err)
			}
			ref.b = rm
			nodeByMean := h.Partition == "mean"
			if total == -1 {
				total, byMean = h.TotalShards, nodeByMean
			} else if total != h.TotalShards || byMean != nodeByMean {
				return fail(fmt.Errorf("cluster: node %q serves a different index (%d/%s shards vs %d total)",
					spec.Name, h.TotalShards, h.Partition, total))
			}
		}
		c.backends = append(c.backends, ref)
		c.windows += ref.b.Windows()
	}
	c.total, c.byMean = total, byMean

	if err := topo.checkCoverage(total); err != nil {
		return fail(err)
	}
	if count := series.NumSubsequences(ext.Len(), l); c.windows != count {
		return fail(fmt.Errorf("cluster: nodes serve %d windows, series has %d", c.windows, count))
	}
	return c, nil
}

// openLocalEntry opens a LocalAddr topology entry on the shared
// executor.
func openLocalEntry(topo *Topology, name string, ext *series.Extractor, ex *exec.Executor, o Options) (*Node, error) {
	spec, err := topo.Node(name)
	if err != nil {
		return nil, err
	}
	if topo.Index == "" {
		return nil, fmt.Errorf("cluster: topology names no index file for local node %q", name)
	}
	ar, err := openIndexArena(topo.Index, o.NoMMap)
	if err != nil {
		return nil, err
	}
	sub, err := shard.OpenArenaShards(ar, ext, ex, spec.Shards)
	if err != nil {
		ar.Close()
		return nil, fmt.Errorf("cluster: node %q: %w", name, err)
	}
	if o.Prefetch {
		ar.Prefetch(0)
	}
	return &Node{Name: name, Sub: sub, ar: ar}, nil
}

// Close releases local backends' arenas and the coordinator's idle
// connections. No query may run during or after it.
func (c *Coordinator) Close() error {
	var firstErr error
	for _, ref := range c.backends {
		if ref.node != nil {
			if err := ref.node.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if c.ownTransport != nil {
		c.ownTransport.CloseIdleConnections()
	}
	return firstErr
}

// TotalShards returns the shard count of the saved index being served.
func (c *Coordinator) TotalShards() int { return c.total }

// PartitionByMean reports the saved index's partition scheme.
func (c *Coordinator) PartitionByMean() bool { return c.byMean }

// Windows returns the total indexed windows across all nodes.
func (c *Coordinator) Windows() int { return c.windows }

// L returns the indexed subsequence length.
func (c *Coordinator) L() int { return c.l }

// MemoryBytes sums the heap footprints of the local backends (remote
// nodes spend their memory in other processes).
func (c *Coordinator) MemoryBytes() int {
	total := 0
	for _, ref := range c.backends {
		total += ref.b.MemoryBytes()
	}
	return total
}

// MappedBytes sums the file-mapped footprints of the local backends.
func (c *Coordinator) MappedBytes() int {
	total := 0
	for _, ref := range c.backends {
		total += ref.b.MappedBytes()
	}
	return total
}

// Peers returns the static node view (no liveness probe; see Health).
func (c *Coordinator) Peers() []PeerStatus {
	out := make([]PeerStatus, len(c.backends))
	for i, ref := range c.backends {
		out[i] = PeerStatus{Name: ref.spec.Name, Addr: ref.spec.Addr,
			Shards: ref.b.ShardIDs(), Windows: ref.b.Windows(), Alive: true}
	}
	return out
}

// Health probes every node's liveness: local backends are alive by
// construction, remote ones answer /healthz within PingTimeout or are
// reported down with the error.
func (c *Coordinator) Health(ctx context.Context) []PeerStatus {
	out := c.Peers()
	done := make(chan int, len(c.backends))
	for i, ref := range c.backends {
		if ref.node != nil {
			done <- i
			continue
		}
		//tsvet:ignore network-bound health probes must not occupy CPU executor workers
		go func(i int, rm *remote) {
			pctx, cancel := context.WithTimeout(ctx, c.pingTimeout)
			defer cancel()
			if _, err := rm.health(pctx); err != nil {
				out[i].Alive = false
				out[i].Error = err.Error()
			}
			done <- i
		}(i, ref.b.(*remote))
	}
	for range c.backends {
		<-done
	}
	return out
}

// fan runs fn once per backend concurrently, each under the per-node
// timeout, and returns the lowest-indexed error (wrapped with the
// node's name) — deterministic whichever node failed first in time.
func (c *Coordinator) fan(ctx context.Context, fn func(ctx context.Context, b shard.Backend, i int) error) error {
	errs := make([]error, len(c.backends))
	done := make(chan struct{}, len(c.backends))
	for i, ref := range c.backends {
		//tsvet:ignore network-bound fan-out must not occupy CPU executor workers
		go func(i int, b shard.Backend) {
			defer func() { done <- struct{}{} }()
			nctx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			errs[i] = fn(nctx, b, i)
		}(i, ref.b)
	}
	for range c.backends {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: node %q: %w", c.backends[i].spec.Name, err)
		}
	}
	return ctx.Err()
}

// Search returns all twins of q at eps across the cluster, sorted by
// start — byte-identical to a single local engine over the same saved
// index.
func (c *Coordinator) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := c.SearchStats(ctx, q, eps)
	return ms, err
}

// SearchStats is Search with traversal counters summed across every
// node's work units.
func (c *Coordinator) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	per := make([][]series.Match, len(c.backends))
	stats := make([]core.Stats, len(c.backends))
	err := c.fan(ctx, func(ctx context.Context, b shard.Backend, i int) error {
		var err error
		per[i], stats[i], err = b.SearchStats(ctx, q, eps)
		return err
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	var st core.Stats
	for _, x := range stats {
		st = shard.AddStats(st, x)
	}
	return shard.MergeByStart(per), st, nil
}

// SearchTopK returns the k nearest across the cluster in (dist, start)
// order, in two phases: the node serving the most windows answers
// unbounded, then its k-th distance is broadcast as the pruning bound
// for every other node — the same monotone bound local work units share
// through core.SharedBound, so the merged result is exactly the
// single-engine top-k.
func (c *Coordinator) SearchTopK(ctx context.Context, q []float64, k int) ([]series.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	seed := 0
	for i, ref := range c.backends {
		if ref.b.Windows() > c.backends[seed].b.Windows() {
			seed = i
		}
	}
	lists := make([][]series.Match, len(c.backends))

	// Phase 1: the seed node, unbounded.
	sctx, cancel := context.WithTimeout(ctx, c.timeout)
	first, err := c.backends[seed].b.SearchTopK(sctx, q, k, math.Inf(1))
	cancel()
	if err != nil {
		return nil, fmt.Errorf("cluster: node %q: %w", c.backends[seed].spec.Name, err)
	}
	lists[seed] = first
	bound := math.Inf(1)
	if len(first) >= k {
		bound = first[k-1].Dist
	}

	// Phase 2: everyone else, pruning against the seed's k-th distance.
	err = c.fan(ctx, func(ctx context.Context, b shard.Backend, i int) error {
		if i == seed {
			return nil
		}
		var err error
		lists[i], err = b.SearchTopK(ctx, q, k, bound)
		return err
	})
	if err != nil {
		return nil, err
	}
	return shard.MergeTopK(lists, k), nil
}

// SearchPrefix answers a query shorter than the indexed length: the
// truncated-bound tree halves fan across the nodes, and the tail
// windows that exist only at the shorter length — which belong to no
// shard — are scanned exactly once, here at the coordinator (it holds
// the full series).
func (c *Coordinator) SearchPrefix(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	if err := c.validatePrefix(q); err != nil {
		return nil, err
	}
	per := make([][]series.Match, len(c.backends))
	err := c.fan(ctx, func(ctx context.Context, b shard.Backend, i int) error {
		var err error
		per[i], err = b.SearchPrefixTree(ctx, q, eps)
		return err
	})
	if err != nil {
		return nil, err
	}
	return core.ScanPrefixTail(c.ext, c.l, q, eps, shard.MergeByStart(per)), nil
}

// validatePrefix mirrors core's prefix-query validation with the
// coordinator's own parameters (no arena in this process to ask).
func (c *Coordinator) validatePrefix(q []float64) error {
	if len(q) > c.l {
		return fmt.Errorf("core: prefix query length %d exceeds indexed length %d", len(q), c.l)
	}
	if len(q) == 0 {
		return fmt.Errorf("core: empty query")
	}
	if c.ext.Mode() == series.NormPerSubsequence {
		return fmt.Errorf("core: prefix queries are unsupported under per-subsequence normalization")
	}
	return nil
}

// SearchApprox probes at most leafBudget leaves across the cluster and
// returns a possibly incomplete subset of the twins. The global budget
// splits across nodes in proportion to their window counts (an atomic
// allowance cannot span processes), floor-divided with the remainder
// going to the earliest nodes — deterministic, and never exceeding the
// requested total. Nodes whose share is zero are skipped.
func (c *Coordinator) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	shares := c.splitBudget(leafBudget)
	per := make([][]series.Match, len(c.backends))
	stats := make([]core.Stats, len(c.backends))
	err := c.fan(ctx, func(ctx context.Context, b shard.Backend, i int) error {
		if shares[i] == 0 {
			return nil
		}
		var err error
		per[i], stats[i], err = b.SearchApprox(ctx, q, eps, shares[i])
		return err
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	var st core.Stats
	for _, x := range stats {
		st = shard.AddStats(st, x)
	}
	return shard.MergeByStart(per), st, nil
}

// splitBudget divides a leaf budget across backends proportionally to
// their window counts: floor shares first, then one extra to the
// earliest backends until the total is spent. sum(shares) == budget.
func (c *Coordinator) splitBudget(budget int) []int {
	shares := make([]int, len(c.backends))
	spent := 0
	for i, ref := range c.backends {
		shares[i] = budget * ref.b.Windows() / c.windows
		spent += shares[i]
	}
	for i := 0; spent < budget && i < len(shares); i++ {
		shares[i]++
		spent++
	}
	return shares
}

// --- remote backend ---

// remote speaks the shard RPC to one node over HTTP. It implements
// shard.Backend; ctx deadlines abort the request (the transport closes
// the connection), so a dead node costs one timeout, never a hang.
type remote struct {
	name    string
	base    string
	shards  []int
	windows int
	client  *http.Client
}

var _ shard.Backend = (*remote)(nil)

// dialRemote connects to a node and cross-checks its health report
// against the topology entry and the coordinator's series. The health
// probe runs under the caller's ctx bounded by the per-node timeout.
func dialRemote(ctx context.Context, client *http.Client, spec NodeSpec, ext *series.Extractor, l int, timeout time.Duration) (*remote, NodeHealth, error) {
	rm := &remote{name: spec.Name, base: spec.Addr, shards: spec.Shards, client: client}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	h, err := rm.health(ctx)
	if err != nil {
		return nil, h, fmt.Errorf("cluster: node %q (%s): %w", spec.Name, spec.Addr, err)
	}
	if h.Role != "node" {
		return nil, h, fmt.Errorf("cluster: node %q (%s) reports role %q, want a shard node", spec.Name, spec.Addr, h.Role)
	}
	if h.L != l {
		return nil, h, fmt.Errorf("cluster: node %q indexes L=%d, coordinator expects %d", spec.Name, h.L, l)
	}
	if h.Norm != ext.Mode().String() {
		return nil, h, fmt.Errorf("cluster: node %q normalizes %q, coordinator %q", spec.Name, h.Norm, ext.Mode().String())
	}
	if h.SeriesLen != ext.Len() {
		return nil, h, fmt.Errorf("cluster: node %q serves a %d-point series, coordinator holds %d", spec.Name, h.SeriesLen, ext.Len())
	}
	if !equalInts(h.Shards, spec.Shards) {
		return nil, h, fmt.Errorf("cluster: node %q serves shards %v, topology assigns %v", spec.Name, h.Shards, spec.Shards)
	}
	rm.windows = h.Windows
	return rm, h, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// health fetches and decodes the node's /healthz.
func (r *remote) health(ctx context.Context) (NodeHealth, error) {
	var h NodeHealth
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// post sends one shard RPC and decodes the response, translating
// non-200 answers into the node's own error text.
func (r *remote) post(ctx context.Context, path string, reqBody, respBody interface{}) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", path, e.Error)
		}
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(respBody)
}

// Search implements shard.Backend.
func (r *remote) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := r.SearchStats(ctx, q, eps)
	return ms, err
}

// SearchStats implements shard.Backend.
func (r *remote) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/search", SearchRequest{Query: q, Eps: eps}, &resp); err != nil {
		return nil, core.Stats{}, err
	}
	var st core.Stats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return fromWire(resp.Matches), st, nil
}

// SearchTopK implements shard.Backend.
func (r *remote) SearchTopK(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error) {
	req := TopKRequest{Query: q, K: k}
	if !math.IsInf(bound, 1) {
		req.Bound = &bound
	}
	var resp SearchResponse
	if err := r.post(ctx, "/shard/topk", req, &resp); err != nil {
		return nil, err
	}
	return fromWire(resp.Matches), nil
}

// SearchPrefixTree implements shard.Backend.
func (r *remote) SearchPrefixTree(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/prefix", SearchRequest{Query: q, Eps: eps}, &resp); err != nil {
		return nil, err
	}
	return fromWire(resp.Matches), nil
}

// SearchApprox implements shard.Backend.
func (r *remote) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/approx", ApproxRequest{Query: q, Eps: eps, LeafBudget: leafBudget}, &resp); err != nil {
		return nil, core.Stats{}, err
	}
	var st core.Stats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return fromWire(resp.Matches), st, nil
}

// Windows implements shard.Backend.
func (r *remote) Windows() int { return r.windows }

// ShardIDs implements shard.Backend.
func (r *remote) ShardIDs() []int { return append([]int(nil), r.shards...) }

// MemoryBytes implements shard.Backend: a remote node's memory lives in
// its own process.
func (r *remote) MemoryBytes() int { return 0 }

// MappedBytes implements shard.Backend.
func (r *remote) MappedBytes() int { return 0 }
