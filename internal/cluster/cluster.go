// Package cluster is the distributed query tier over a saved sharded
// TS-Index (TSSH v3): one saved index, many processes. A **node** opens
// only its assigned shard subset — selective mmap via the segment
// table, O(assigned) cost — and serves the shard RPC (internal/server's
// /shard/* endpoints). A **coordinator** fans each query across the
// topology's replica groups through a pooled HTTP client with per-node
// timeouts and recombines with the same deterministic merges the local
// fan-out uses, so a cluster answers byte-identically to a single local
// engine: range-style paths k-way merge the groups' disjoint
// start-sorted lists, top-k runs two-phase with a shared bound (the
// seed group's k-th distance is broadcast to prune the rest — exactly
// the bound one local work unit publishes to another, so the merged
// result is unchanged), and approximate search splits the global leaf
// budget across groups in proportion to their window counts.
//
// The topology is static (a JSON file mapping node addresses to shard
// ranges) but replicated: with Replicas R ≥ 2 every shard set is owned
// by R interchangeable nodes, and the coordinator survives node
// failure — an RPC that errors or times out retries on the next
// replica (failover.go), per-node circuit breakers keep dead nodes off
// the first-attempt path (breaker.go), hedged requests bound the tail
// of slow-but-alive nodes, and a background membership sweep keeps the
// health view fresh (health.go). Because replicas serve identical
// subsets of one saved index, answers stay byte-identical whichever
// owner responds. Only when every replica of a shard set is out does a
// query fail — loudly, naming the nodes — never a silent partial
// answer, never a hang.
//
// The decomposition mirrors the relational-join view of search-space
// partitioning (cf. Relational E-Matching): partition, evaluate
// partitions independently, recombine order-preservingly.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"syscall"
	"time"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/obs"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// Options configures OpenCoordinator.
type Options struct {
	// Timeout bounds every per-node RPC (0 selects 10s). An attempt
	// that misses it fails over to the next replica; only when every
	// replica is out does the query fail.
	Timeout time.Duration
	// PingTimeout bounds the liveness probes behind Sweep (0 → 2s).
	PingTimeout time.Duration
	// HedgeDelay, when positive, issues each unit to a second replica
	// after this delay; the first response wins and the loser is
	// canceled. Pick a high quantile of healthy latency (a few ms on a
	// LAN) so hedges fire only on the slow tail. 0 disables hedging.
	HedgeDelay time.Duration
	// BreakerFails is the consecutive-failure run that trips a node's
	// circuit breaker (0 → 3). Tripped nodes drop to the back of the
	// attempt order until a health probe sees them answer again.
	BreakerFails int
	// RefreshInterval is the background membership sweep period
	// (0 → 2s; negative disables the sweep — tests drive
	// Coordinator.Sweep explicitly).
	RefreshInterval time.Duration
	// Workers sizes the executor local (LocalAddr) backends run on.
	Workers int
	// NoMMap / Prefetch apply to local backends; see NodeOptions.
	NoMMap   bool
	Prefetch bool
	// Client overrides the HTTP client (tests inject failure modes via
	// the Chaos transport); nil selects a client with a pooled
	// transport owned by the coordinator.
	Client *http.Client
}

const (
	defaultTimeout      = 10 * time.Second
	defaultPingTimeout  = 2 * time.Second
	defaultBreakerFails = 3
	defaultRefresh      = 2 * time.Second
)

// owner is one opened topology entry: a backend plus the node's cached
// liveness and circuit breaker.
type owner struct {
	spec NodeSpec
	b    shard.Backend
	node *Node // non-nil for local entries; owns the arena
	st   *nodeState
	g    *group // the replica group this owner belongs to
}

// group is one replica group: a shard set with R interchangeable
// owners — the coordinator's fan-out unit.
type group struct {
	shards  []int
	windows int
	owners  []*owner // topology order
}

// Coordinator fans queries over the topology's replica groups. Methods
// are safe for concurrent use.
type Coordinator struct {
	ext      *series.Extractor
	l        int
	byMean   bool
	total    int // shard count of the saved index
	windows  int // windows served across all groups (each counted once)
	replicas int
	groups   []*group
	owners   []*owner // every topology entry, in topology order

	timeout, pingTimeout, hedgeDelay time.Duration
	client                           *http.Client
	ownTransport                     *http.Transport
	stopSweep                        context.CancelFunc
	sweepDone                        chan struct{}
}

// OpenCoordinator opens every topology entry — LocalAddr entries become
// in-process subsets of the index file, the rest are dialed and
// cross-checked (same L, normalization, series length, and shard
// assignment as the topology claims) — and verifies the replicated
// assignment covers the index's shards exactly (R owners per shard,
// replica groups mirroring whole shard sets) and the per-group window
// counts sum to the series'. A remote node that cannot be reached
// opens the cluster **degraded** when its group still has at least one
// reachable owner (the read quorum): the dead node starts with a
// tripped breaker and rejoins via the membership sweep once it answers
// health probes again. A group with no reachable owner refuses the
// open. ext must present the same series the index was built over;
// queries are fanned out pre-transformed. ctx bounds the whole open —
// dialing and cross-checking every remote node — so a caller's
// deadline or cancellation aborts a wedged dial instead of waiting out
// the per-node timeout.
func OpenCoordinator(ctx context.Context, topo *Topology, ext *series.Extractor, l int, o Options) (*Coordinator, error) {
	if o.Timeout <= 0 {
		o.Timeout = defaultTimeout
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = defaultPingTimeout
	}
	c := &Coordinator{ext: ext, l: l, replicas: topo.R(),
		timeout: o.Timeout, pingTimeout: o.PingTimeout, hedgeDelay: o.HedgeDelay,
		client: o.Client}
	if c.client == nil {
		c.ownTransport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
		c.client = &http.Client{Transport: c.ownTransport}
	}
	fail := func(err error) (*Coordinator, error) {
		c.Close()
		return nil, err
	}

	// The assignment's shape first (R owners per shard, mirrored
	// replica sets), so grouping below cannot mis-bucket a malformed
	// document. Parsed topologies were already checked; programmatic
	// ones are checked here.
	if err := topo.validateAssignment(-1); err != nil {
		return fail(err)
	}

	total, byMean := -1, false
	var ex *exec.Executor // shared by every local entry
	groupOf := map[string]*group{}
	for _, spec := range topo.Nodes {
		ow := &owner{spec: spec, st: newNodeState(o.BreakerFails)}
		if spec.Addr == LocalAddr {
			if ex == nil {
				ex = exec.New(o.Workers)
			}
			n, err := openLocalEntry(topo, spec.Name, ext, ex, o)
			if err != nil {
				return fail(err)
			}
			ow.node, ow.b = n, n.Sub
			if total == -1 {
				total, byMean = n.Sub.TotalShards(), n.Sub.PartitionByMean()
			} else if total != n.Sub.TotalShards() || byMean != n.Sub.PartitionByMean() {
				return fail(fmt.Errorf("cluster: node %q serves a different index (%d/%v shards vs %d/%v)",
					spec.Name, n.Sub.TotalShards(), n.Sub.PartitionByMean(), total, byMean))
			}
			ow.st.setHealth(true, nil)
		} else {
			rm := &remote{name: spec.Name, base: spec.Addr, shards: spec.Shards, client: c.client}
			ow.b = rm
			h, err := dialHealth(ctx, rm, o.Timeout)
			if err != nil {
				// Unreachable is weather, not configuration: mark the
				// node down (tripped) and let the per-group quorum
				// check below decide whether the cluster can open
				// degraded without it.
				ow.st.setHealth(false, err)
				ow.st.br.trip()
			} else {
				if err := checkNodeIdentity(h, spec, ext, l); err != nil {
					return fail(err)
				}
				nodeByMean := h.Partition == "mean"
				if total == -1 {
					total, byMean = h.TotalShards, nodeByMean
				} else if total != h.TotalShards || byMean != nodeByMean {
					return fail(fmt.Errorf("cluster: node %q serves a different index (%d/%s shards vs %d total)",
						spec.Name, h.TotalShards, h.Partition, total))
				}
				rm.windows = h.Windows
				ow.st.epoch.Store(h.Epoch)
				ow.st.setHealth(true, nil)
			}
		}
		c.owners = append(c.owners, ow)
		key := shardSetKey(spec.Shards)
		g := groupOf[key]
		if g == nil {
			g = &group{shards: normalizeShards(append([]int(nil), spec.Shards...))}
			groupOf[key] = g
			c.groups = append(c.groups, g)
		}
		g.owners = append(g.owners, ow)
		ow.g = g
	}

	// Per-group quorum and window agreement: every shard set needs at
	// least one reachable owner to open (degraded below R is fine —
	// reads need one replica), and reachable replicas must report the
	// same window count (same subset of the same index).
	for _, g := range c.groups {
		var live []*owner
		var firstErr string
		for _, ow := range g.owners {
			alive, errMsg, _ := ow.st.healthSnapshot()
			if alive {
				live = append(live, ow)
			} else if firstErr == "" {
				firstErr = errMsg
			}
		}
		if len(live) == 0 {
			return fail(fmt.Errorf("cluster: shards %v: no reachable replica (%d listed): %s",
				g.shards, len(g.owners), firstErr))
		}
		g.windows = live[0].b.Windows()
		for _, ow := range live[1:] {
			if ow.b.Windows() != g.windows {
				return fail(fmt.Errorf("cluster: replicas %q and %q of shards %v disagree on window count (%d vs %d)",
					live[0].spec.Name, ow.spec.Name, g.shards, g.windows, ow.b.Windows()))
			}
		}
		c.windows += g.windows
	}
	c.total, c.byMean = total, byMean

	if err := topo.checkCoverage(total); err != nil {
		return fail(err)
	}
	if count := series.NumSubsequences(ext.Len(), l); c.windows != count {
		return fail(fmt.Errorf("cluster: nodes serve %d windows, series has %d", c.windows, count))
	}

	if o.RefreshInterval >= 0 {
		interval := o.RefreshInterval
		if interval == 0 {
			interval = defaultRefresh
		}
		// The sweep outlives the open call but not the coordinator:
		// detach from the caller's deadline, keep its values, cancel in
		// Close.
		sctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c.stopSweep = cancel
		c.sweepDone = make(chan struct{})
		//tsvet:ignore network-bound membership sweep must not occupy CPU executor workers
		go c.sweepLoop(sctx, interval)
	}
	return c, nil
}

// openLocalEntry opens a LocalAddr topology entry on the shared
// executor.
func openLocalEntry(topo *Topology, name string, ext *series.Extractor, ex *exec.Executor, o Options) (*Node, error) {
	spec, err := topo.Node(name)
	if err != nil {
		return nil, err
	}
	if topo.Index == "" {
		return nil, fmt.Errorf("cluster: topology names no index file for local node %q", name)
	}
	ar, err := openIndexArena(topo.Index, o.NoMMap)
	if err != nil {
		return nil, err
	}
	sub, err := shard.OpenArenaShards(ar, ext, ex, spec.Shards)
	if err != nil {
		ar.Close()
		return nil, fmt.Errorf("cluster: node %q: %w", name, err)
	}
	if o.Prefetch {
		ar.Prefetch(0)
	}
	return &Node{Name: name, Sub: sub, ar: ar}, nil
}

// Close stops the membership sweep, releases local backends' arenas,
// and drops the coordinator's idle connections. No query may run
// during or after it.
func (c *Coordinator) Close() error {
	if c.stopSweep != nil {
		c.stopSweep()
		<-c.sweepDone
		c.stopSweep = nil
	}
	var firstErr error
	for _, ow := range c.owners {
		if ow.node != nil {
			if err := ow.node.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if c.ownTransport != nil {
		c.ownTransport.CloseIdleConnections()
	}
	return firstErr
}

// TotalShards returns the shard count of the saved index being served.
func (c *Coordinator) TotalShards() int { return c.total }

// PartitionByMean reports the saved index's partition scheme.
func (c *Coordinator) PartitionByMean() bool { return c.byMean }

// Windows returns the total indexed windows across all replica groups
// (each group counted once, however many replicas serve it).
func (c *Coordinator) Windows() int { return c.windows }

// L returns the indexed subsequence length.
func (c *Coordinator) L() int { return c.l }

// Replicas returns the topology's replication factor R.
func (c *Coordinator) Replicas() int { return c.replicas }

// MemoryBytes sums the heap footprints of the local backends (remote
// nodes spend their memory in other processes).
func (c *Coordinator) MemoryBytes() int {
	total := 0
	for _, ow := range c.owners {
		total += ow.b.MemoryBytes()
	}
	return total
}

// MappedBytes sums the file-mapped footprints of the local backends.
func (c *Coordinator) MappedBytes() int {
	total := 0
	for _, ow := range c.owners {
		total += ow.b.MappedBytes()
	}
	return total
}

// Peers returns the static node view (no liveness claim; see Health
// for the cached membership view the sweep maintains).
func (c *Coordinator) Peers() []PeerStatus {
	out := make([]PeerStatus, len(c.owners))
	for i, ow := range c.owners {
		out[i] = PeerStatus{Name: ow.spec.Name, Addr: ow.spec.Addr,
			Shards: ow.b.ShardIDs(), Windows: ow.b.Windows(), Alive: true}
	}
	return out
}

// Search returns all twins of q at eps across the cluster, sorted by
// start — byte-identical to a single local engine over the same saved
// index.
func (c *Coordinator) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := c.SearchStats(ctx, q, eps)
	return ms, err
}

// statsResult carries one group's range-search answer through the
// generic fan-out.
type statsResult struct {
	ms []series.Match
	st core.Stats
}

// SearchStats is Search with traversal counters summed across every
// group's work units.
func (c *Coordinator) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	per, err := fanOut(ctx, c, -1, func(ctx context.Context, b shard.Backend, _ int) (statsResult, error) {
		ms, st, err := b.SearchStats(ctx, q, eps)
		return statsResult{ms, st}, err
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	msp := obs.SpanFrom(ctx).StartChild("merge")
	lists := make([][]series.Match, len(per))
	var st core.Stats
	for i, r := range per {
		lists[i] = r.ms
		st = shard.AddStats(st, r.st)
	}
	ms := shard.MergeByStart(lists)
	if msp != nil {
		msp.Set("groups", len(lists))
		msp.Set("results", len(ms))
		msp.End()
	}
	return ms, st, nil
}

// SearchTopK returns the k nearest across the cluster in (dist, start)
// order, in two phases: the group serving the most windows answers
// unbounded, then its k-th distance is broadcast as the pruning bound
// for every other group — the same monotone bound local work units
// share through core.SharedBound, so the merged result is exactly the
// single-engine top-k. Each phase's units fail over and hedge like any
// other.
func (c *Coordinator) SearchTopK(ctx context.Context, q []float64, k int) ([]series.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	seed := 0
	for gi, g := range c.groups {
		if g.windows > c.groups[seed].windows {
			seed = gi
		}
	}

	// Phase 1: the seed group, unbounded.
	first, err := runUnit(ctx, c, c.groups[seed], func(ctx context.Context, b shard.Backend) ([]series.Match, error) {
		return b.SearchTopK(ctx, q, k, math.Inf(1))
	})
	if err != nil {
		return nil, err
	}
	bound := math.Inf(1)
	if len(first) >= k {
		bound = first[k-1].Dist
	}

	// Phase 2: every other group, pruning against the seed's k-th
	// distance.
	lists, err := fanOut(ctx, c, seed, func(ctx context.Context, b shard.Backend, _ int) ([]series.Match, error) {
		return b.SearchTopK(ctx, q, k, bound)
	})
	if err != nil {
		return nil, err
	}
	lists[seed] = first
	return shard.MergeTopK(lists, k), nil
}

// SearchPrefix answers a query shorter than the indexed length: the
// truncated-bound tree halves fan across the groups, and the tail
// windows that exist only at the shorter length — which belong to no
// shard — are scanned exactly once, here at the coordinator (it holds
// the full series).
func (c *Coordinator) SearchPrefix(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	if err := c.validatePrefix(q); err != nil {
		return nil, err
	}
	per, err := fanOut(ctx, c, -1, func(ctx context.Context, b shard.Backend, _ int) ([]series.Match, error) {
		return b.SearchPrefixTree(ctx, q, eps)
	})
	if err != nil {
		return nil, err
	}
	return core.ScanPrefixTail(c.ext, c.l, q, eps, shard.MergeByStart(per)), nil
}

// validatePrefix mirrors core's prefix-query validation with the
// coordinator's own parameters (no arena in this process to ask).
func (c *Coordinator) validatePrefix(q []float64) error {
	if len(q) > c.l {
		return fmt.Errorf("core: prefix query length %d exceeds indexed length %d", len(q), c.l)
	}
	if len(q) == 0 {
		return fmt.Errorf("core: empty query")
	}
	if c.ext.Mode() == series.NormPerSubsequence {
		return fmt.Errorf("core: prefix queries are unsupported under per-subsequence normalization")
	}
	return nil
}

// SearchApprox probes at most leafBudget leaves across the cluster and
// returns a possibly incomplete subset of the twins. The global budget
// splits across replica groups in proportion to their window counts
// (an atomic allowance cannot span processes), floor-divided with the
// remainder going to the earliest groups — deterministic, and never
// exceeding the requested total. Groups whose share is zero are
// skipped.
func (c *Coordinator) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	shares := c.splitBudget(leafBudget)
	per, err := fanOut(ctx, c, -1, func(ctx context.Context, b shard.Backend, gi int) (statsResult, error) {
		if shares[gi] == 0 {
			return statsResult{}, nil
		}
		ms, st, err := b.SearchApprox(ctx, q, eps, shares[gi])
		return statsResult{ms, st}, err
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	lists := make([][]series.Match, len(per))
	var st core.Stats
	for i, r := range per {
		lists[i] = r.ms
		st = shard.AddStats(st, r.st)
	}
	return shard.MergeByStart(lists), st, nil
}

// splitBudget divides a leaf budget across replica groups
// proportionally to their window counts: floor shares first, then one
// extra to the earliest groups until the total is spent.
// sum(shares) == budget.
func (c *Coordinator) splitBudget(budget int) []int {
	shares := make([]int, len(c.groups))
	spent := 0
	for gi, g := range c.groups {
		shares[gi] = budget * g.windows / c.windows
		spent += shares[gi]
	}
	for gi := 0; spent < budget && gi < len(shares); gi++ {
		shares[gi]++
		spent++
	}
	return shares
}

// --- remote backend ---

// remote speaks the shard RPC to one node over HTTP. It implements
// shard.Backend; ctx deadlines abort the request (the transport closes
// the connection), so a dead node costs one timeout, never a hang.
type remote struct {
	name    string
	base    string
	shards  []int
	windows int
	client  *http.Client
}

var _ shard.Backend = (*remote)(nil)

// dialHealth fetches a node's health document under the caller's ctx
// bounded by the per-node timeout — the reachability half of the open
// handshake (identity cross-checks are checkNodeIdentity's).
func dialHealth(ctx context.Context, rm *remote, timeout time.Duration) (NodeHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	h, err := rm.health(ctx)
	if err != nil {
		return h, fmt.Errorf("node %q (%s): %w", rm.name, rm.base, err)
	}
	return h, nil
}

// checkNodeIdentity cross-checks a node's health report against its
// topology entry and the coordinator's series — the configuration half
// of the handshake, always fatal (a wrong node is not weather).
func checkNodeIdentity(h NodeHealth, spec NodeSpec, ext *series.Extractor, l int) error {
	if h.Role != "node" {
		return fmt.Errorf("cluster: node %q (%s) reports role %q, want a shard node", spec.Name, spec.Addr, h.Role)
	}
	if h.L != l {
		return fmt.Errorf("cluster: node %q indexes L=%d, coordinator expects %d", spec.Name, h.L, l)
	}
	if h.Norm != ext.Mode().String() {
		return fmt.Errorf("cluster: node %q normalizes %q, coordinator %q", spec.Name, h.Norm, ext.Mode().String())
	}
	if h.SeriesLen != ext.Len() {
		return fmt.Errorf("cluster: node %q serves a %d-point series, coordinator holds %d", spec.Name, h.SeriesLen, ext.Len())
	}
	if !equalInts(h.Shards, spec.Shards) {
		return fmt.Errorf("cluster: node %q serves shards %v, topology assigns %v", spec.Name, h.Shards, spec.Shards)
	}
	return nil
}

// verifyRemote is the rejoin gate the membership sweep applies before
// marking a previously down node up again: the identity checks plus
// agreement with the established cluster view (index shape and the
// group's window count) — a node restarted over a different file must
// not serve divergent bytes.
func (c *Coordinator) verifyRemote(h NodeHealth, ow *owner) error {
	if err := checkNodeIdentity(h, ow.spec, c.ext, c.l); err != nil {
		return err
	}
	if h.TotalShards != c.total || (h.Partition == "mean") != c.byMean {
		return fmt.Errorf("cluster: node %q serves a different index (%d/%s shards vs %d total)",
			ow.spec.Name, h.TotalShards, h.Partition, c.total)
	}
	if ow.g != nil && ow.g.windows > 0 && h.Windows != ow.g.windows {
		return fmt.Errorf("cluster: node %q serves %d windows, its replica group serves %d",
			ow.spec.Name, h.Windows, ow.g.windows)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// health fetches and decodes the node's /healthz.
func (r *remote) health(ctx context.Context) (NodeHealth, error) {
	var h NodeHealth
	resp, err := r.do(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// do issues one HTTP request, retrying exactly once on a transport-
// level connection error (refused or reset — the request failed before
// any byte was processed, so the retry cannot double-execute
// anything; every shard RPC is a read). This absorbs the transient
// blips a restarting listener or a dropped idle connection causes even
// at R=1; replica failover handles everything beyond it.
func (r *remote) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	mk := func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	}
	req, err := mk()
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil && isConnRefused(err) && ctx.Err() == nil {
		req, mkErr := mk()
		if mkErr != nil {
			return nil, err
		}
		resp, err = r.client.Do(req)
	}
	return resp, err
}

// isConnRefused reports a transport-level connection failure that
// happened before the server processed any request byte — the only
// failure an idempotent RPC retries on the same node.
func isConnRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// post sends one shard RPC and decodes the response, translating
// non-200 answers into the node's own error text.
func (r *remote) post(ctx context.Context, path string, reqBody, respBody interface{}) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	resp, err := r.do(ctx, http.MethodPost, r.base+path, raw)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", path, e.Error)
		}
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(respBody)
}

// Search implements shard.Backend.
func (r *remote) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := r.SearchStats(ctx, q, eps)
	return ms, err
}

// SearchStats implements shard.Backend.
func (r *remote) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/search", SearchRequest{Query: q, Eps: eps, Trace: obs.SpanFrom(ctx) != nil}, &resp); err != nil {
		return nil, core.Stats{}, err
	}
	obs.SpanFrom(ctx).Attach(resp.Trace)
	var st core.Stats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return fromWire(resp.Matches), st, nil
}

// SearchTopK implements shard.Backend.
func (r *remote) SearchTopK(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error) {
	req := TopKRequest{Query: q, K: k, Trace: obs.SpanFrom(ctx) != nil}
	if !math.IsInf(bound, 1) {
		req.Bound = &bound
	}
	var resp SearchResponse
	if err := r.post(ctx, "/shard/topk", req, &resp); err != nil {
		return nil, err
	}
	obs.SpanFrom(ctx).Attach(resp.Trace)
	return fromWire(resp.Matches), nil
}

// SearchPrefixTree implements shard.Backend.
func (r *remote) SearchPrefixTree(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/prefix", SearchRequest{Query: q, Eps: eps, Trace: obs.SpanFrom(ctx) != nil}, &resp); err != nil {
		return nil, err
	}
	obs.SpanFrom(ctx).Attach(resp.Trace)
	return fromWire(resp.Matches), nil
}

// SearchApprox implements shard.Backend.
func (r *remote) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	var resp SearchResponse
	if err := r.post(ctx, "/shard/approx", ApproxRequest{Query: q, Eps: eps, LeafBudget: leafBudget, Trace: obs.SpanFrom(ctx) != nil}, &resp); err != nil {
		return nil, core.Stats{}, err
	}
	obs.SpanFrom(ctx).Attach(resp.Trace)
	var st core.Stats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return fromWire(resp.Matches), st, nil
}

// Windows implements shard.Backend.
func (r *remote) Windows() int { return r.windows }

// ShardIDs implements shard.Backend.
func (r *remote) ShardIDs() []int { return append([]int(nil), r.shards...) }

// MemoryBytes implements shard.Backend: a remote node's memory lives in
// its own process.
func (r *remote) MemoryBytes() int { return 0 }

// MappedBytes implements shard.Backend.
func (r *remote) MappedBytes() int { return 0 }
