package cluster

// Chaos is a fault-injecting http.RoundTripper for tests and
// benchmarks: it wraps a real transport and applies per-node rules —
// refuse connections, black-hole requests until the caller's context
// ends, delay by a fixed latency, or fail the first K requests and
// then recover. The differential failover tests drive it to prove that
// killing or wedging any single node mid-query still yields
// byte-identical answers, and tsbench's failover figure uses it to put
// numbers on the same scenarios. Faults are injected at the transport
// seam, so everything above it — the coordinator's retry, hedging, and
// breaker logic, and the real wire encoding — runs exactly as in
// production.

import (
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// ChaosRule is the fault policy for one node (keyed by host:port).
// Exactly one behavior applies per request, checked in field order;
// the zero rule passes requests through untouched.
type ChaosRule struct {
	// Refuse fails every request with ECONNREFUSED, as a dead listener
	// would.
	Refuse bool
	// BlackHole holds every request until the request context ends —
	// the wedged-but-connected node, detectable only by timeout or a
	// hedged sibling.
	BlackHole bool
	// FailFirst fails the first K requests with ECONNREFUSED and lets
	// the rest through — the transient blip the transport-level retry
	// exists for.
	FailFirst int
	// Delay adds fixed latency before forwarding — the slow-but-alive
	// node whose tail hedging bounds.
	Delay time.Duration
}

// Chaos implements http.RoundTripper. The zero value is not usable;
// construct with NewChaos. Safe for concurrent use.
type Chaos struct {
	base http.RoundTripper

	mu     sync.Mutex
	rules  map[string]*chaosEntry
	hits   map[string]int
	faults map[string]int
}

type chaosEntry struct {
	rule      ChaosRule
	failsLeft int // FailFirst countdown
}

// NewChaos wraps base (nil selects http.DefaultTransport).
func NewChaos(base http.RoundTripper) *Chaos {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Chaos{
		base:  base,
		rules: map[string]*chaosEntry{}, hits: map[string]int{}, faults: map[string]int{},
	}
}

// Set installs the fault rule for one host:port, replacing any
// previous rule (and resetting its FailFirst countdown).
func (c *Chaos) Set(host string, rule ChaosRule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[host] = &chaosEntry{rule: rule, failsLeft: rule.FailFirst}
}

// Clear removes the rule for one host:port; requests pass through
// again.
func (c *Chaos) Clear(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.rules, host)
}

// Hits returns how many requests targeted the host (faulted or not) —
// the observable the breaker tests assert on.
func (c *Chaos) Hits(host string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[host]
}

// Faults returns how many requests to the host were injected with a
// fault.
func (c *Chaos) Faults(host string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults[host]
}

// refusedErr mimics a dead listener: the same *net.OpError shape a
// real refused dial produces, so errors.Is(err, syscall.ECONNREFUSED)
// holds through the http.Client's wrapping — exactly what the
// transport-level retry and the failover path key on.
func refusedErr() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
}

// RoundTrip implements http.RoundTripper.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	c.mu.Lock()
	c.hits[host]++
	e := c.rules[host]
	var rule ChaosRule
	fault := false
	if e != nil {
		rule = e.rule
		switch {
		case rule.Refuse, rule.BlackHole:
			fault = true
		case e.failsLeft > 0:
			e.failsLeft--
			fault = true
		}
		if fault {
			c.faults[host]++
		}
	}
	c.mu.Unlock()
	if e == nil {
		return c.base.RoundTrip(req)
	}
	switch {
	case rule.Refuse:
		return nil, refusedErr()
	case rule.BlackHole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case fault: // FailFirst countdown
		return nil, refusedErr()
	}
	if rule.Delay > 0 {
		select {
		case <-time.After(rule.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return c.base.RoundTrip(req)
}
