package cluster

// Cached cluster membership. The background sweep (started by
// OpenCoordinator, stopped by Close) is the single source of truth for
// per-node liveness: it probes every remote node's /healthz on a fixed
// interval, records up/down state with a staleness timestamp, and
// half-opens tripped circuit breakers whose node answers again.
// Coordinator.Health reads this cache — a /healthz hit on the
// coordinator never blocks on N network probes, and the staleness
// timestamp tells the consumer how fresh each fact is.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// nodeState is one node's cached liveness fact plus its circuit
// breaker. Methods are safe for concurrent use.
type nodeState struct {
	br *breaker

	// epoch caches the index mutation counter the node last reported in
	// /healthz (see NodeHealth.Epoch) — read by Coordinator.Epoch on
	// every cached search, refreshed by the membership sweep.
	epoch atomic.Uint64

	mu        sync.Mutex
	alive     bool
	errMsg    string
	checkedAt time.Time // when the fact was last refreshed; zero = never
}

func newNodeState(breakerFails int) *nodeState {
	return &nodeState{br: newBreaker(breakerFails)}
}

// setHealth records a liveness observation with the current time as
// its staleness timestamp.
func (s *nodeState) setHealth(alive bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive = alive
	s.errMsg = ""
	if err != nil {
		s.errMsg = err.Error()
	}
	s.checkedAt = time.Now()
}

// healthSnapshot returns the cached fact.
func (s *nodeState) healthSnapshot() (alive bool, errMsg string, checkedAt time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive, s.errMsg, s.checkedAt
}

// Sweep probes every remote node's /healthz once, concurrently (each
// under PingTimeout), and updates the cached membership view: up/down
// state, staleness timestamps, and breaker recovery (a tripped node
// that answers — and still serves the right index — half-opens).
// The background refresher calls this on its interval; tests and
// callers wanting a fresh view now can call it directly.
func (c *Coordinator) Sweep(ctx context.Context) {
	done := make(chan struct{}, len(c.owners))
	for _, ow := range c.owners {
		if ow.node != nil {
			// Local backends are alive by construction; refresh the
			// timestamp so staleness reflects the sweep, not the open.
			ow.st.setHealth(true, nil)
			done <- struct{}{}
			continue
		}
		//tsvet:ignore network-bound health probes must not occupy CPU executor workers
		go func(ow *owner) {
			defer func() { done <- struct{}{} }()
			c.probe(ctx, ow)
		}(ow)
	}
	for range c.owners {
		<-done
	}
}

// probe refreshes one remote node's cached state.
func (c *Coordinator) probe(ctx context.Context, ow *owner) {
	rm, ok := ow.b.(*remote)
	if !ok {
		return
	}
	pctx, cancel := context.WithTimeout(ctx, c.pingTimeout)
	defer cancel()
	h, err := rm.health(pctx)
	if err != nil {
		ow.st.setHealth(false, err)
		// A node the sweep cannot reach must not absorb first-attempt
		// latency on the next query.
		ow.st.br.trip()
		return
	}
	// A node that answers but serves the wrong index (restarted with a
	// different file, misconfigured replacement) must not rejoin.
	if err := c.verifyRemote(h, ow); err != nil {
		ow.st.setHealth(false, err)
		ow.st.br.trip()
		return
	}
	rm.windows = h.Windows
	ow.st.epoch.Store(h.Epoch)
	ow.st.setHealth(true, nil)
	ow.st.br.probeOK()
}

// sweepLoop is the background membership refresher.
func (c *Coordinator) sweepLoop(ctx context.Context, interval time.Duration) {
	defer close(c.sweepDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Sweep(ctx)
		}
	}
}

// Health returns the cached per-node membership view: liveness as of
// each node's CheckedAt timestamp (maintained by the background sweep
// and by open-time dialing — never probed inline here), plus circuit
// breaker state. Use Sweep first to force a fresh view.
func (c *Coordinator) Health() []PeerStatus {
	out := make([]PeerStatus, len(c.owners))
	for i, ow := range c.owners {
		alive, errMsg, checkedAt := ow.st.healthSnapshot()
		brState, fails := ow.st.br.snapshot()
		out[i] = PeerStatus{
			Name: ow.spec.Name, Addr: ow.spec.Addr,
			Shards: ow.b.ShardIDs(), Windows: ow.b.Windows(),
			Alive: alive, Error: errMsg,
			Breaker: brState.String(), ConsecFails: fails,
			CheckedAt: checkedAt,
			Epoch:     ow.epochView(),
		}
	}
	return out
}

// epochView is the owner's current index epoch: live for in-process
// nodes, the sweep-cached value for remote ones.
func (ow *owner) epochView() uint64 {
	if ow.node != nil {
		return ow.node.Epoch()
	}
	return ow.st.epoch.Load()
}

// Epoch composes the cluster's index mutation counter from the
// per-node view: replicas of one group serve identical subsets, so a
// group's epoch is the max any owner reported, and the cluster epoch
// sums the groups (any node mutating bumps the total — the monotonic
// "index changed" signal result-cache keys embed, see Engine.Epoch).
func (c *Coordinator) Epoch() uint64 {
	var total uint64
	for _, g := range c.groups {
		var hi uint64
		for _, ow := range g.owners {
			if e := ow.epochView(); e > hi {
				hi = e
			}
		}
		total += hi
	}
	return total
}
