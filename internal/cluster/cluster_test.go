package cluster_test

// Differential proof of the distributed tier: a coordinator fanning out
// over in-process HTTP nodes (real wire format, real handlers, loopback
// transport) must answer every search path byte-identically to the
// local sharded engine over the same saved index — across norm modes,
// node counts, partition schemes, and mixed local/remote topologies —
// and a dead or hung node must fail queries cleanly instead of hanging.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"twinsearch/internal/cluster"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/server"
	"twinsearch/internal/shard"
)

const testL = 32

// buildSaved builds a sharded index over ext and saves it, returning
// the local reference index and the file path.
func buildSaved(t testing.TB, ext *series.Extractor, shards int, byMean bool) (*shard.Index, string) {
	t.Helper()
	ix, err := shard.Build(ext, shard.Config{Config: core.Config{L: testL}, Shards: shards, PartitionByMean: byMean})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.tsidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return ix, path
}

// contiguousSplit assigns total shards to n nodes in contiguous runs.
func contiguousSplit(total, n int) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for s := i * total / n; s < (i+1)*total/n; s++ {
			out[i] = append(out[i], s)
		}
	}
	return out
}

// startCluster opens one node per shard run, serves each over httptest,
// and returns a coordinator dialed at the real URLs plus the servers
// (so failure tests can kill one). wrap, when non-nil, decorates each
// node's handler (failure-injection hook).
func startCluster(t *testing.T, ext *series.Extractor, path string, runs [][]int, o cluster.Options, wrap func(i int, h http.Handler) http.Handler) (*cluster.Coordinator, []*httptest.Server) {
	t.Helper()
	topo := &cluster.Topology{Index: path}
	for i, run := range runs {
		topo.Nodes = append(topo.Nodes, cluster.NodeSpec{
			Name: fmt.Sprintf("n%d", i), Addr: "placeholder", Shards: run,
		})
	}
	var srvs []*httptest.Server
	for i := range topo.Nodes {
		n, err := cluster.OpenNode(topo, topo.Nodes[i].Name, ext, cluster.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		var h http.Handler = server.NewNode(n)
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		topo.Nodes[i].Addr = srv.URL
		srvs = append(srvs, srv)
	}
	cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srvs
}

func sameMatches(a, b []series.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterDifferential is the acceptance matrix: all five search
// paths × norm modes × node counts, coordinator vs local engine.
func TestClusterDifferential(t *testing.T) {
	data := datasets.EEGN(41, 2400)
	ctx := context.Background()
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ext := series.NewExtractor(data, mode)
		local, path := buildSaved(t, ext, 4, false)
		for _, nodes := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("norm=%v/nodes=%d", mode, nodes), func(t *testing.T) {
				cl, _ := startCluster(t, ext, path, contiguousSplit(4, nodes), cluster.Options{}, nil)
				if cl.TotalShards() != 4 {
					t.Fatalf("TotalShards = %d", cl.TotalShards())
				}
				for _, qp := range []int{50, 777, 2300} {
					q := ext.ExtractCopy(qp, testL)
					for _, eps := range []float64{0.05, 0.4} {
						// Search + Stats.
						wantM, wantSt := local.SearchStats(q, eps)
						gotM, gotSt, err := cl.SearchStats(ctx, q, eps)
						if err != nil {
							t.Fatal(err)
						}
						if !sameMatches(wantM, gotM) {
							t.Fatalf("q=%d eps=%g: search diverged (%d vs %d results)", qp, eps, len(gotM), len(wantM))
						}
						if !reflect.DeepEqual(wantSt, gotSt) {
							t.Fatalf("q=%d eps=%g: stats diverged: %+v vs %+v", qp, eps, gotSt, wantSt)
						}
						// Approximate with a saturating budget: every node's
						// proportional share covers all its leaves, so the
						// answer (and counters) are the full deterministic set.
						budget := 2 * local.Len()
						wantA, wantASt := local.SearchApprox(q, eps, budget)
						gotA, gotASt, err := cl.SearchApprox(ctx, q, eps, budget)
						if err != nil {
							t.Fatal(err)
						}
						if !sameMatches(wantA, gotA) {
							t.Fatalf("q=%d eps=%g: approx diverged", qp, eps)
						}
						if !reflect.DeepEqual(wantASt, gotASt) {
							t.Fatalf("q=%d eps=%g: approx stats diverged: %+v vs %+v", qp, eps, gotASt, wantASt)
						}
					}
					// Top-k, including k beyond one node's windows.
					for _, k := range []int{1, 5, 17} {
						want := local.SearchTopK(q, k)
						got, err := cl.SearchTopK(ctx, q, k)
						if err != nil {
							t.Fatal(err)
						}
						if !sameMatches(want, got) {
							t.Fatalf("q=%d k=%d: topk diverged:\n%v\nvs\n%v", qp, k, got, want)
						}
					}
					// Prefix (unsupported under per-subsequence norm: both
					// sides must refuse identically).
					short := q[:testL/2]
					wantP, wantErr := local.SearchPrefix(short, 0.3)
					gotP, gotErr := cl.SearchPrefix(ctx, short, 0.3)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("q=%d prefix: error mismatch: %v vs %v", qp, gotErr, wantErr)
					}
					if wantErr == nil && !sameMatches(wantP, gotP) {
						t.Fatalf("q=%d prefix: diverged (%d vs %d results)", qp, len(gotP), len(wantP))
					}
				}
			})
		}
	}
}

// TestClusterDifferentialMeanPartition repeats the core paths over a
// mean-partitioned index, where node result lists interleave in
// position space and the k-way merge does real work.
func TestClusterDifferentialMeanPartition(t *testing.T) {
	data := datasets.RandomWalk(43, 2000)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, true)
	cl, _ := startCluster(t, ext, path, contiguousSplit(4, 2), cluster.Options{}, nil)
	if !cl.PartitionByMean() {
		t.Fatal("coordinator lost the partition scheme")
	}
	ctx := context.Background()
	for _, qp := range []int{100, 950, 1900} {
		q := ext.ExtractCopy(qp, testL)
		wantM, wantSt := local.SearchStats(q, 0.4)
		gotM, gotSt, err := cl.SearchStats(ctx, q, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(wantM, gotM) {
			t.Fatalf("q=%d: search diverged", qp)
		}
		if !reflect.DeepEqual(wantSt, gotSt) {
			t.Fatalf("q=%d: stats diverged: %+v vs %+v", qp, gotSt, wantSt)
		}
		if want, got := local.SearchTopK(q, 9), mustTopK(t, cl, ctx, q, 9); !sameMatches(want, got) {
			t.Fatalf("q=%d: topk diverged", qp)
		}
	}
}

func mustTopK(t *testing.T, cl *cluster.Coordinator, ctx context.Context, q []float64, k int) []series.Match {
	t.Helper()
	ms, err := cl.SearchTopK(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestClusterMixedLocalRemote proves local and remote backends compose:
// one topology entry served in the coordinator's process, one dialed.
func TestClusterMixedLocalRemote(t *testing.T) {
	data := datasets.EEGN(47, 1600)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, false)

	topo := &cluster.Topology{Index: path, Nodes: []cluster.NodeSpec{
		{Name: "self", Addr: cluster.LocalAddr, Shards: []int{0, 1}},
		{Name: "peer", Addr: "placeholder", Shards: []int{2, 3}},
	}}
	peer, err := cluster.OpenNode(topo, "peer", ext, cluster.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	srv := httptest.NewServer(server.NewNode(peer))
	t.Cleanup(srv.Close)
	topo.Nodes[1].Addr = srv.URL

	cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	ctx := context.Background()
	q := ext.ExtractCopy(321, testL)
	want, _ := local.SearchStats(q, 0.4)
	got, err := cl.Search(ctx, q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(want, got) {
		t.Fatal("mixed local/remote topology diverged")
	}
	if kWant, kGot := local.SearchTopK(q, 6), mustTopK(t, cl, ctx, q, 6); !sameMatches(kWant, kGot) {
		t.Fatal("mixed topology topk diverged")
	}

	// The health view must mark both peers alive and carry assignments.
	// Health reads the cached membership view; Sweep refreshes it now.
	cl.Sweep(ctx)
	peers := cl.Health()
	if len(peers) != 2 || !peers[0].Alive || !peers[1].Alive {
		t.Fatalf("health = %+v", peers)
	}
	if len(peers[0].Shards) != 2 || peers[0].Shards[0] != 0 {
		t.Fatalf("peer 0 shards = %v", peers[0].Shards)
	}
}

// TestClusterNodeFailure kills one node and requires a clean, prompt
// error naming it — the no-partial-answers, no-hangs contract. It also
// checks the health view reports the dead peer.
func TestClusterNodeFailure(t *testing.T) {
	data := datasets.EEGN(51, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path := buildSaved(t, ext, 4, false)
	cl, srvs := startCluster(t, ext, path, contiguousSplit(4, 2), cluster.Options{Timeout: 2 * time.Second}, nil)

	ctx := context.Background()
	q := ext.ExtractCopy(100, testL)
	if _, err := cl.Search(ctx, q, 0.3); err != nil {
		t.Fatalf("pre-failure query: %v", err)
	}

	// Kill node n1's listener: the coordinator must fail fast
	// (connection refused) with the node's name in the error.
	srvs[1].CloseClientConnections()
	srvs[1].Close()

	start := time.Now()
	_, err := cl.Search(ctx, q, 0.3)
	if err == nil {
		t.Fatal("query over a dead node succeeded")
	}
	if !strings.Contains(err.Error(), "n1") {
		t.Fatalf("error does not name the dead node: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dead-node query took %v", elapsed)
	}
	if _, err := cl.SearchTopK(ctx, q, 5); err == nil {
		t.Fatal("topk over a dead node succeeded")
	}

	cl.Sweep(ctx)
	peers := cl.Health()
	if peers[0].Name != "n0" || !peers[0].Alive {
		t.Fatalf("living peer reported dead: %+v", peers[0])
	}
	if peers[1].Name != "n1" || peers[1].Alive || peers[1].Error == "" {
		t.Fatalf("dead peer not reported: %+v", peers[1])
	}
}

// TestClusterSlowNodeTimeout wedges one node mid-request and requires
// the per-node timeout to fail the query instead of hanging.
func TestClusterSlowNodeTimeout(t *testing.T) {
	data := datasets.EEGN(53, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path := buildSaved(t, ext, 4, false)

	var wedged atomic.Bool
	cl, _ := startCluster(t, ext, path, contiguousSplit(4, 2),
		cluster.Options{Timeout: 300 * time.Millisecond},
		func(i int, h http.Handler) http.Handler {
			if i != 1 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if wedged.Load() && strings.HasPrefix(r.URL.Path, "/shard/") {
					// Hold the request far beyond the coordinator's
					// timeout; its context must abort the wait. Drain
					// the body first — net/http only detects a client
					// abort (and cancels r.Context()) once the request
					// has been consumed.
					io.Copy(io.Discard, r.Body)
					select {
					case <-r.Context().Done():
					case <-time.After(5 * time.Second):
					}
					return
				}
				h.ServeHTTP(w, r)
			})
		})

	ctx := context.Background()
	q := ext.ExtractCopy(64, testL)
	if _, err := cl.Search(ctx, q, 0.3); err != nil {
		t.Fatalf("pre-wedge query: %v", err)
	}
	wedged.Store(true)
	start := time.Now()
	_, err := cl.Search(ctx, q, 0.3)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query over a wedged node succeeded")
	}
	if !strings.Contains(err.Error(), "n1") {
		t.Fatalf("error does not name the wedged node: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("wedged-node query took %v (timeout not enforced)", elapsed)
	}
}

// TestCoordinatorRejectsBadTopologies sweeps open-time validation:
// incomplete coverage, overlapping claims, and an unreachable node all
// fail loudly at OpenCoordinator, not at first query.
func TestCoordinatorRejectsBadTopologies(t *testing.T) {
	data := datasets.EEGN(59, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path := buildSaved(t, ext, 4, false)

	open := func(nodes ...cluster.NodeSpec) error {
		topo := &cluster.Topology{Index: path, Nodes: nodes}
		cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, cluster.Options{Timeout: time.Second})
		if err == nil {
			cl.Close()
		}
		return err
	}

	if err := open(cluster.NodeSpec{Name: "a", Addr: cluster.LocalAddr, Shards: []int{0, 1, 2}}); err == nil {
		t.Error("incomplete coverage accepted")
	}
	if err := open(cluster.NodeSpec{Name: "a", Addr: cluster.LocalAddr, Shards: []int{0, 1, 2, 3, 4}}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := open(cluster.NodeSpec{Name: "a", Addr: "http://127.0.0.1:1", Shards: []int{0, 1, 2, 3}}); err == nil {
		t.Error("unreachable node accepted at open")
	}
	// Wrong L: the local subset opens fine but coverage of windows
	// cannot match a different indexed length.
	topo := &cluster.Topology{Index: path, Nodes: []cluster.NodeSpec{
		{Name: "a", Addr: cluster.LocalAddr, Shards: []int{0, 1, 2, 3}}}}
	if cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL+8, cluster.Options{}); err == nil {
		cl.Close()
		t.Error("mismatched L accepted")
	}
}

// Regression for a ctxflow finding: dialRemote re-rooted its health
// probe on context.Background(), so a caller's deadline or cancellation
// could not abort a wedged dial — OpenCoordinator sat out the full
// per-node Timeout. With the context threaded through, a short caller
// deadline must win over a large per-node timeout.
func TestOpenCoordinatorHonorsContext(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // wedge until the client abandons the request
	}))
	defer hang.Close()
	topo := &cluster.Topology{Nodes: []cluster.NodeSpec{
		{Name: "n0", Addr: hang.URL, Shards: []int{0}}}}
	ext := series.NewExtractor(datasets.RandomWalk(59, 400), series.NormGlobal)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	cl, err := cluster.OpenCoordinator(ctx, topo, ext, testL, cluster.Options{Timeout: time.Minute})
	if err == nil {
		cl.Close()
		t.Fatal("open against a wedged node succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("open took %v despite a 100ms caller deadline", elapsed)
	}
}
