package cluster

// Per-node circuit breaking for the coordinator's fan-out. A breaker
// trips after a configurable run of consecutive failures; a tripped
// node drops to the back of every unit's attempt order, so a dead node
// stops absorbing first-attempt latency while the cluster keeps
// answering from its replicas. Recovery is probe-driven: the background
// membership sweep (see health.go) pings /healthz, a success half-opens
// the breaker, and the next real query closes it on success or re-opens
// it on failure — the classic closed → open → half-open cycle, scoped
// to one node.

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for health documents.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one node's circuit. Methods are safe for concurrent use.
type breaker struct {
	threshold int // consecutive failures that trip the circuit

	mu    sync.Mutex
	state breakerState
	fails int       // consecutive failures while closed
	since time.Time // last state transition
}

func newBreaker(threshold int) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerFails
	}
	return &breaker{threshold: threshold}
}

// success records a completed RPC: the failure run resets and a
// half-open circuit closes (the trial request succeeded).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.since = time.Now()
	}
}

// failure records a failed RPC: a half-open circuit re-opens
// immediately (the trial request failed), a closed one trips once the
// consecutive run reaches the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.since = time.Now()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.since = time.Now()
		}
	}
}

// trip forces the circuit open — a node found unreachable by the
// membership sweep (or never reachable at open) must not absorb
// first-attempt latency while it is known dead.
func (b *breaker) trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.state = breakerOpen
		b.since = time.Now()
	}
	b.fails = b.threshold
}

// probeOK records a successful out-of-band health probe: an open
// circuit half-opens, letting the next real query be the trial that
// closes or re-opens it. Closed and half-open circuits are unchanged —
// a ping is not a served query.
func (b *breaker) probeOK() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
		b.since = time.Now()
	}
}

// tripped reports whether the circuit is open (the node is skipped for
// first attempts; it remains a last resort when every replica is out).
func (b *breaker) tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen
}

// snapshot returns the state and consecutive-failure count for health
// reporting.
func (b *breaker) snapshot() (breakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails
}
