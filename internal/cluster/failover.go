package cluster

// Per-unit failover and hedging. The coordinator's fan-out unit is one
// replica group (a shard set with R interchangeable owners); runUnit
// turns "call one backend" into "get this shard set answered":
//
//   - Attempt order prefers owners whose cached liveness is up and
//     whose circuit breaker is not open; tripped or known-down owners
//     drop to the back as a last resort, so a dead node stops
//     absorbing first-attempt latency.
//   - An attempt that errors or times out (per-node Timeout) fails
//     over to the next replica instead of failing the query.
//   - With hedging enabled, a second replica is issued the same unit
//     after HedgeDelay; the first response wins and the loser is
//     canceled through its context — tail latency from a slow-but-
//     alive node is bounded by delay + the sibling's latency.
//
// Replicas open identical shard subsets of the same saved index (the
// coordinator cross-checks at open and on rejoin), so whichever owner
// answers, the bytes — matches and Stats both — are the same, and the
// merged result stays byte-identical to a local engine.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"twinsearch/internal/obs"
	"twinsearch/internal/shard"
)

// candidates returns the group's owners in attempt order: live,
// untripped owners first (topology order), then the tripped or
// known-down ones — still tried when nothing better is left, because a
// stale "down" fact must not fail a query a node could have answered.
func (g *group) candidates() []*owner {
	pref := make([]*owner, 0, len(g.owners))
	var rest []*owner
	for _, ow := range g.owners {
		alive, _, _ := ow.st.healthSnapshot()
		if alive && !ow.st.br.tripped() {
			pref = append(pref, ow)
		} else {
			rest = append(rest, ow)
		}
	}
	return append(pref, rest...)
}

// runUnit executes one query unit against group g with replica
// failover, breaker accounting, and optional hedging. call must be
// idempotent and side-effect-free until it returns (hedged attempts
// run concurrently); the winning attempt's value is returned.
func runUnit[T any](ctx context.Context, c *Coordinator, g *group, call func(ctx context.Context, b shard.Backend) (T, error)) (T, error) {
	var zero T
	cands := g.candidates()
	// Traced queries grow one "unit" span per replica group; each
	// attempt (primary, failover, hedge) becomes a child annotated with
	// the node tried, the breaker state seen at launch, and the
	// outcome. The winning attempt's context carries its span, so a
	// remote node's returned subtree (or an in-process subset's shard
	// spans) lands under the attempt that produced the answer.
	usp := obs.SpanFrom(ctx).StartChild("unit")
	if usp != nil {
		usp.Set("shards", fmt.Sprint(g.shards))
		usp.Set("replicas", len(cands))
	}
	defer usp.End()
	type result struct {
		ow  *owner
		sp  *obs.Span
		v   T
		err error
	}
	resCh := make(chan result, len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	defer func() {
		// Winner decided (or unit abandoned): cancel every other
		// attempt — the hedging loser's RPC is torn down through its
		// context, not left to run out its timeout.
		for _, cancel := range cancels {
			cancel()
		}
	}()
	next := 0
	launch := func(kind string) {
		ow := cands[next]
		next++
		asp := usp.StartChild("attempt")
		if asp != nil {
			asp.Set("node", ow.spec.Name)
			asp.Set("kind", kind)
			brState, _ := ow.st.br.snapshot()
			asp.Set("breaker", brState.String())
		}
		actx, cancel := context.WithTimeout(ctx, c.timeout)
		actx = obs.WithSpan(actx, asp)
		cancels = append(cancels, cancel)
		//tsvet:ignore network-bound replica attempts must not occupy CPU executor workers
		go func() {
			v, err := call(actx, ow.b)
			resCh <- result{ow: ow, sp: asp, v: v, err: err}
		}()
	}
	launch("primary")
	var hedge <-chan time.Time
	if c.hedgeDelay > 0 && next < len(cands) {
		t := time.NewTimer(c.hedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	pending := 1
	var attemptErrs []error
	for {
		select {
		case r := <-resCh:
			pending--
			if r.err == nil {
				r.ow.st.success()
				if r.sp != nil {
					r.sp.Set("outcome", "ok")
					r.sp.Set("won", true)
					r.sp.End()
					usp.Set("winner", r.ow.spec.Name)
				}
				return r.v, nil
			}
			if ctx.Err() != nil {
				// The caller gave up; the failure says nothing about
				// the node, and the unit is over.
				return zero, ctx.Err()
			}
			r.ow.st.failure()
			if r.sp != nil {
				r.sp.Set("outcome", "error")
				r.sp.Set("error", r.err.Error())
				r.sp.End()
			}
			attemptErrs = append(attemptErrs, fmt.Errorf("node %q: %w", r.ow.spec.Name, r.err))
			if next < len(cands) {
				launch("failover")
				pending++
			} else if pending == 0 {
				return zero, fmt.Errorf("cluster: shards %v: all %d replica(s) failed: %w",
					g.shards, len(cands), errors.Join(attemptErrs...))
			}
		case <-hedge:
			hedge = nil
			if next < len(cands) {
				launch("hedge")
				pending++
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// success / failure route one attempt's outcome into the owner's
// breaker and liveness cache.
func (s *nodeState) success() {
	s.br.success()
}

func (s *nodeState) failure() {
	s.br.failure()
}

// fanOut runs one unit per replica group concurrently (each with
// failover and hedging via runUnit) and collects results in group
// order. skip names a group index to leave at T's zero value without
// any attempt (-1 for none) — the top-k second phase already holds the
// seed group's answer. The lowest-indexed unit error is returned,
// deterministic whichever group failed first in time.
func fanOut[T any](ctx context.Context, c *Coordinator, skip int, call func(ctx context.Context, b shard.Backend, gi int) (T, error)) ([]T, error) {
	out := make([]T, len(c.groups))
	errs := make([]error, len(c.groups))
	done := make(chan struct{}, len(c.groups))
	launched := 0
	for gi, g := range c.groups {
		if gi == skip {
			continue
		}
		launched++
		//tsvet:ignore network-bound fan-out must not occupy CPU executor workers
		go func(gi int, g *group) {
			defer func() { done <- struct{}{} }()
			out[gi], errs[gi] = runUnit(ctx, c, g, func(ctx context.Context, b shard.Backend) (T, error) {
				return call(ctx, b, gi)
			})
		}(gi, g)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
