package cluster

// Wire types of the shard RPC — the JSON bodies internal/server's
// /shard/* endpoints accept and produce, shared by the server handlers
// and the coordinator's HTTP client so the two cannot drift. Queries
// travel pre-transformed (the coordinator normalizes once); floats
// survive the JSON round trip exactly (encoding/json emits the shortest
// decimal that parses back to the same float64), which the
// byte-identical differential guarantees rely on.

import (
	"time"

	"twinsearch/internal/core"
	"twinsearch/internal/obs"
	"twinsearch/internal/series"
)

// SearchRequest asks for all twins at eps among the node's windows
// (POST /shard/search) or, with prefix searches, the tree half of a
// shorter query (POST /shard/prefix).
type SearchRequest struct {
	Query []float64 `json:"query"` // engine value space
	Eps   float64   `json:"eps"`
	// Trace asks the node to record its own span tree for this query
	// and return it in SearchResponse.Trace, so the coordinator can
	// stitch one cross-node trace. Set automatically when the
	// coordinator's context carries a span.
	Trace bool `json:"trace,omitempty"`
}

// TopKRequest asks for the node's k nearest (POST /shard/topk). Bound,
// when present, seeds the node's shared pruning bound with the
// coordinator's current k-th threshold (see shard.Backend); absent
// means unbounded. A pointer because +Inf does not exist in JSON.
type TopKRequest struct {
	Query []float64 `json:"query"`
	K     int       `json:"k"`
	Bound *float64  `json:"bound,omitempty"`
	Trace bool      `json:"trace,omitempty"` // see SearchRequest.Trace
}

// ApproxRequest asks for an approximate search drawing at most
// LeafBudget leaf probes across the node's shards (POST /shard/approx).
type ApproxRequest struct {
	Query      []float64 `json:"query"`
	Eps        float64   `json:"eps"`
	LeafBudget int       `json:"leaf_budget"`
	Trace      bool      `json:"trace,omitempty"` // see SearchRequest.Trace
}

// Match is one result on the wire. Dist is -1 for range-style results
// (the engine's "not computed" convention) and the true Chebyshev
// distance for top-k.
type Match struct {
	Start int     `json:"start"`
	Dist  float64 `json:"dist"`
}

// SearchResponse carries a node's matches (sorted per the
// shard.Backend contract) and, for the paths that report them, the
// traversal counters summed over the node's work units.
type SearchResponse struct {
	Matches []Match     `json:"matches"`
	Stats   *core.Stats `json:"stats,omitempty"`
	// Trace is the node's span subtree for this query, present only
	// when the request asked for one. Its StartUs values are relative
	// to the node's own trace start (clocks are not assumed
	// synchronized); the coordinator grafts it under the replica-
	// attempt span that won.
	Trace *obs.Span `json:"trace,omitempty"`
}

// toWire converts engine matches to wire form.
func toWire(ms []series.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Start: m.Start, Dist: m.Dist}
	}
	return out
}

// fromWire converts wire matches back to engine form.
func fromWire(ms []Match) []series.Match {
	if len(ms) == 0 {
		return nil
	}
	out := make([]series.Match, len(ms))
	for i, m := range ms {
		out[i] = series.Match{Start: m.Start, Dist: m.Dist}
	}
	return out
}

// NodeHealth is the /healthz shape a shard node reports and a
// coordinator consumes: enough to cross-check that both sides describe
// the same index before any query flows.
type NodeHealth struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Name        string `json:"name"`
	L           int    `json:"l"`
	Norm        string `json:"norm"`
	SeriesLen   int    `json:"series_len"`
	Windows     int    `json:"windows"`
	Shards      []int  `json:"shard_ids"`
	TotalShards int    `json:"total_shards"`
	Partition   string `json:"partition"`
	HeapBytes   int    `json:"heap_bytes"`
	MappedBytes int    `json:"mapped_bytes"`
	// Epoch is the node's index mutation counter (see Engine.Epoch);
	// coordinators compose per-node epochs into the cluster epoch that
	// keys serving-tier result caches.
	Epoch uint64 `json:"epoch"`
}

// PeerStatus is one row of a coordinator's view of its nodes, surfaced
// through the coordinator's /healthz. Liveness comes from the cached
// membership view the background sweep maintains; CheckedAt is the
// staleness timestamp of that fact (zero: never checked), and Breaker /
// ConsecFails expose the node's circuit state.
type PeerStatus struct {
	Name        string    `json:"name"`
	Addr        string    `json:"addr"`
	Shards      []int     `json:"shard_ids"`
	Windows     int       `json:"windows"`
	Alive       bool      `json:"alive"`
	Error       string    `json:"error,omitempty"`
	Breaker     string    `json:"breaker,omitempty"`
	ConsecFails int       `json:"consec_fails,omitempty"`
	CheckedAt   time.Time `json:"checked_at,omitzero"`
	Epoch       uint64    `json:"epoch"`
}
