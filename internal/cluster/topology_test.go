package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseShardRanges(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-1,3", []int{0, 1, 3}},
		{"3, 0-1", []int{0, 1, 3}},
		{"2,2,2", []int{2}}, // duplicates collapse
	}
	for _, c := range cases {
		got, err := ParseShardRanges(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%q → %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "3-1", "-1", "1-", ",", "0-9999999"} {
		if _, err := ParseShardRanges(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}

func TestParseTopology(t *testing.T) {
	good := `{"index":"idx.tsidx","nodes":[
		{"name":"a","addr":"http://h1:1","shards":"0-1"},
		{"name":"b","addr":"http://h2:2","shards":[2,3]}]}`
	topo, err := ParseTopology(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 || !reflect.DeepEqual([]int(topo.Nodes[0].Shards), []int{0, 1}) {
		t.Fatalf("topology = %+v", topo)
	}
	if n, err := topo.Node("b"); err != nil || n.Addr != "http://h2:2" {
		t.Fatalf("Node(b) = %+v, %v", n, err)
	}
	if _, err := topo.Node("zzz"); err == nil {
		t.Fatal("unknown node resolved")
	}

	bad := map[string]string{
		"no nodes":       `{"index":"i"}`,
		"dup name":       `{"nodes":[{"name":"a","addr":"x","shards":[0]},{"name":"a","addr":"y","shards":[1]}]}`,
		"no name":        `{"nodes":[{"addr":"x","shards":[0]}]}`,
		"no addr":        `{"nodes":[{"name":"a","shards":[0]}]}`,
		"no shards":      `{"nodes":[{"name":"a","addr":"x"}]}`,
		"dup shard":      `{"nodes":[{"name":"a","addr":"x","shards":[0]},{"name":"b","addr":"y","shards":[0]}]}`,
		"unknown fields": `{"nodes":[{"name":"a","addr":"x","shards":[0],"weight":2}]}`,
		"bad shards":     `{"nodes":[{"name":"a","addr":"x","shards":true}]}`,
		"negative shard": `{"nodes":[{"name":"a","addr":"x","shards":[-1,0]}]}`,

		// Replicated assignments.
		"negative replicas": `{"replicas":-1,"nodes":[{"name":"a","addr":"x","shards":[0]}]}`,
		"R exceeds nodes":   `{"replicas":3,"nodes":[{"name":"a","addr":"x","shards":[0]},{"name":"b","addr":"y","shards":[0]}]}`,
		"under-replicated":  `{"replicas":2,"nodes":[{"name":"a","addr":"x","shards":[0]},{"name":"b","addr":"y","shards":[0]},{"name":"c","addr":"z","shards":[1]}]}`,
		"over-replicated":   `{"replicas":2,"nodes":[{"name":"a","addr":"x","shards":[0]},{"name":"b","addr":"y","shards":[0]},{"name":"c","addr":"z","shards":[0]}]}`,
		"mismatched replica sets": `{"replicas":2,"nodes":[
			{"name":"a","addr":"w","shards":[0,1]},{"name":"b","addr":"x","shards":[0,2]},
			{"name":"c","addr":"y","shards":[1,2]}]}`,
	}
	for name, doc := range bad {
		if _, err := ParseTopology(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A well-formed replicated document parses: two mirrored pairs.
	replicated := `{"replicas":2,"nodes":[
		{"name":"a1","addr":"http://h1:1","shards":"0-1"},
		{"name":"a2","addr":"http://h2:2","shards":[0,1]},
		{"name":"b1","addr":"http://h3:3","shards":[2]},
		{"name":"b2","addr":"http://h4:4","shards":[2]}]}`
	topo2, err := ParseTopology(strings.NewReader(replicated))
	if err != nil {
		t.Fatalf("replicated topology rejected: %v", err)
	}
	if topo2.R() != 2 {
		t.Fatalf("R() = %d, want 2", topo2.R())
	}
}

// TestValidateAssignmentDuplicateOwner covers the programmatic path:
// one node listing the same shard twice must be refused even though
// ShardList's JSON unmarshaler normally collapses duplicates before
// validation sees them.
func TestValidateAssignmentDuplicateOwner(t *testing.T) {
	topo := &Topology{Nodes: []NodeSpec{{Name: "a", Addr: "x", Shards: []int{0, 0}}}}
	err := topo.validateAssignment(-1)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate shard on one node: err = %v", err)
	}
}

// TestLoadTopologyResolvesIndex checks a relative index path resolves
// against the topology file's directory, not the process cwd.
func TestLoadTopologyResolvesIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	doc := `{"index":"idx.tsidx","nodes":[{"name":"a","addr":"local","shards":[0]}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "idx.tsidx"); topo.Index != want {
		t.Fatalf("index resolved to %q, want %q", topo.Index, want)
	}
}

func TestCheckCoverage(t *testing.T) {
	topo := &Topology{Nodes: []NodeSpec{
		{Name: "a", Addr: "x", Shards: []int{0, 1}},
		{Name: "b", Addr: "y", Shards: []int{2}},
	}}
	if err := topo.checkCoverage(3); err != nil {
		t.Fatalf("complete coverage rejected: %v", err)
	}
	if err := topo.checkCoverage(4); err == nil {
		t.Fatal("hole accepted")
	}
	if err := topo.checkCoverage(2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	neg := &Topology{Nodes: []NodeSpec{{Name: "a", Addr: "x", Shards: []int{-1, 0, 1, 2}}}}
	if err := neg.checkCoverage(3); err == nil {
		t.Fatal("negative shard accepted (programmatic topology)")
	}
}

func TestSplitBudget(t *testing.T) {
	c := &Coordinator{windows: 100, groups: []*group{
		{windows: 50}, {windows: 30}, {windows: 20},
	}}
	for _, budget := range []int{1, 7, 100, 250} {
		shares := c.splitBudget(budget)
		sum := 0
		for _, s := range shares {
			sum += s
		}
		if sum != budget {
			t.Fatalf("budget %d: shares %v sum to %d", budget, shares, sum)
		}
	}
	// Saturation: a budget ≥ 2× windows guarantees every node at least
	// its window count — the determinism precondition the differential
	// tests rely on.
	shares := c.splitBudget(200)
	for i, want := range []int{100, 60, 40} {
		if shares[i] != want {
			t.Fatalf("shares = %v", shares)
		}
	}
}
