package cluster

import (
	"fmt"
	"os"

	"twinsearch/internal/arena"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// Node is one shard node's state: the selectively opened subset of the
// saved index it serves, plus the identity the topology gave it.
// internal/server mounts the shard RPC over it.
type Node struct {
	Name string
	Sub  *shard.Subset

	ar *arena.Arena // owned when OpenNode mapped/read the index file
}

// NodeOptions configures OpenNode.
type NodeOptions struct {
	// Workers sizes the node's query executor (0 = one per CPU).
	Workers int
	// NoMMap forces the copy path: the index file is read into a heap
	// arena instead of being memory-mapped. The default prefers the
	// mapping (selective open then costs O(assigned segments), and N
	// nodes on one machine share one physical copy) and falls back to
	// the heap on platforms without mmap.
	NoMMap bool
	// Prefetch warms the mapping after a selective open — see
	// arena.Prefetch. Pointless (but harmless) with NoMMap.
	Prefetch bool
}

// OpenNode opens the shard subset the topology assigns to name: the
// index file is mapped (or read, see NodeOptions.NoMMap) and only the
// assigned segments are interpreted — unassigned segments are skipped
// via the segment table, so startup cost and mapped footprint scale
// with the assignment, not the index. ext must present the same series
// and normalization the index was built with.
func OpenNode(topo *Topology, name string, ext *series.Extractor, o NodeOptions) (*Node, error) {
	spec, err := topo.Node(name)
	if err != nil {
		return nil, err
	}
	if topo.Index == "" {
		return nil, fmt.Errorf("cluster: topology names no index file")
	}
	ar, err := openIndexArena(topo.Index, o.NoMMap)
	if err != nil {
		return nil, err
	}
	sub, err := shard.OpenArenaShards(ar, ext, exec.New(o.Workers), spec.Shards)
	if err != nil {
		ar.Close()
		return nil, fmt.Errorf("cluster: node %q: %w", name, err)
	}
	if o.Prefetch {
		ar.Prefetch(0)
	}
	return &Node{Name: name, Sub: sub, ar: ar}, nil
}

// openIndexArena produces the byte region a subset opens from: an mmap
// of the file when the platform supports zero-copy, a heap read
// otherwise.
func openIndexArena(path string, noMMap bool) (*arena.Arena, error) {
	if !noMMap && arena.MapSupported() && arena.LittleEndianHost() {
		ar, err := arena.Map(path)
		if err == nil {
			return ar, nil
		}
		// Mapping can fail at runtime (FUSE mounts, mapping limits);
		// the copy path serves the file or reports the real problem.
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return arena.FromBytes(raw), nil
}

// Health reports the node's /healthz document.
func (n *Node) Health() NodeHealth {
	return NodeHealth{
		Status:      "ok",
		Role:        "node",
		Name:        n.Name,
		L:           n.Sub.L(),
		Norm:        n.Sub.Extractor().Mode().String(),
		SeriesLen:   n.Sub.Extractor().Len(),
		Windows:     n.Sub.Windows(),
		Shards:      n.Sub.ShardIDs(),
		TotalShards: n.Sub.TotalShards(),
		Partition:   partitionName(n.Sub.PartitionByMean()),
		HeapBytes:   n.Sub.MemoryBytes(),
		MappedBytes: n.Sub.MappedBytes(),
		Epoch:       n.Epoch(),
	}
}

// Epoch reports the node's index mutation counter (see Engine.Epoch).
// Shard subsets are opened read-only from a saved index file, so the
// counter stays 0 for the node's lifetime today; it is reported anyway
// so coordinators compose cluster epochs through one code path and
// cache invalidation keeps working the day nodes learn to mutate.
func (n *Node) Epoch() uint64 { return 0 }

func partitionName(byMean bool) string {
	if byMean {
		return "mean"
	}
	return "range"
}

// Close releases the node's arena (unmapping the index region). No
// search may run on the subset during or after it.
func (n *Node) Close() error {
	if n.ar == nil {
		return nil
	}
	ar := n.ar
	n.ar = nil
	return ar.Close()
}
