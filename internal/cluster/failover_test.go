package cluster_test

// Fault-injection proofs of the replicated cluster tier: with R = 2,
// killing or wedging any single node mid-query must leave every search
// path's answer byte-identical to the local engine — matches, Dist
// bits, and Stats counters — with zero query errors. The faults are
// injected at the HTTP transport seam (cluster.Chaos), so the
// coordinator's failover, hedging, breaker, and retry logic all run
// exactly as in production.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"twinsearch/internal/cluster"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/server"
)

// startReplicated builds an R-way replicated cluster: every shard group
// is served by r independent nodes (each opening its own subset of the
// saved index at path), all dialed through a Chaos transport the test
// can inject faults into. The background sweep is disabled unless the
// options ask for it — tests drive Sweep explicitly for determinism.
func startReplicated(t *testing.T, ext *series.Extractor, path string, groups [][]int, r int, o cluster.Options) (*cluster.Coordinator, []*httptest.Server, *cluster.Chaos) {
	t.Helper()
	chaos := cluster.NewChaos(nil)
	if o.Client == nil {
		o.Client = &http.Client{Transport: chaos}
	}
	if o.RefreshInterval == 0 {
		o.RefreshInterval = -1
	}
	topo := &cluster.Topology{Index: path, Replicas: r}
	for gi, run := range groups {
		for ri := 0; ri < r; ri++ {
			topo.Nodes = append(topo.Nodes, cluster.NodeSpec{
				Name: fmt.Sprintf("g%dr%d", gi, ri), Addr: "placeholder", Shards: run,
			})
		}
	}
	var srvs []*httptest.Server
	for i := range topo.Nodes {
		n, err := cluster.OpenNode(topo, topo.Nodes[i].Name, ext, cluster.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		srv := httptest.NewServer(server.NewNode(n))
		t.Cleanup(srv.Close)
		topo.Nodes[i].Addr = srv.URL
		srvs = append(srvs, srv)
	}
	cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srvs, chaos
}

// hostOf extracts the host:port key Chaos rules are addressed by.
func hostOf(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestFailoverDifferential is the replicated acceptance matrix: R = 2,
// each node killed in turn — refused connections AND black-holed
// requests — during each of the five search paths, across all three
// norm modes. Every query must complete with zero errors and answer
// byte-identically to the local engine (matches, Dist, Stats). Hedging
// is on with a small delay so a black-holed first attempt costs
// milliseconds, not a timeout.
func TestFailoverDifferential(t *testing.T) {
	data := datasets.EEGN(61, 1800)
	ctx := context.Background()
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ext := series.NewExtractor(data, mode)
		local, path := buildSaved(t, ext, 4, false)
		cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1}, {2, 3}}, 2, cluster.Options{
			Timeout:    10 * time.Second,
			HedgeDelay: 20 * time.Millisecond,
		})
		if cl.Replicas() != 2 {
			t.Fatalf("Replicas() = %d", cl.Replicas())
		}
		q := ext.ExtractCopy(777, testL)
		for victim := range srvs {
			for _, fault := range []string{"refuse", "blackhole"} {
				t.Run(fmt.Sprintf("norm=%v/victim=%d/%s", mode, victim, fault), func(t *testing.T) {
					host := hostOf(t, srvs[victim])
					chaos.Set(host, cluster.ChaosRule{
						Refuse:    fault == "refuse",
						BlackHole: fault == "blackhole",
					})
					defer func() {
						// Heal the victim AND half-open its breaker so the
						// next subtest's faults are genuinely attempted —
						// a node left tripped would just be skipped.
						chaos.Clear(host)
						cl.Sweep(ctx)
					}()

					// Path 1+2: range search with stats.
					wantM, wantSt := local.SearchStats(q, 0.3)
					gotM, gotSt, err := cl.SearchStats(ctx, q, 0.3)
					if err != nil {
						t.Fatalf("search with dead node: %v", err)
					}
					if !sameMatches(wantM, gotM) {
						t.Fatalf("search diverged (%d vs %d results)", len(gotM), len(wantM))
					}
					if !reflect.DeepEqual(wantSt, gotSt) {
						t.Fatalf("stats diverged: %+v vs %+v", gotSt, wantSt)
					}
					// Path 3: top-k (two-phase; both phases must survive).
					wantK := local.SearchTopK(q, 7)
					gotK, err := cl.SearchTopK(ctx, q, 7)
					if err != nil {
						t.Fatalf("topk with dead node: %v", err)
					}
					if !sameMatches(wantK, gotK) {
						t.Fatalf("topk diverged:\n%v\nvs\n%v", gotK, wantK)
					}
					// Path 4: prefix (refused identically under per-sub norm).
					short := q[:testL/2]
					wantP, wantErr := local.SearchPrefix(short, 0.3)
					gotP, gotErr := cl.SearchPrefix(ctx, short, 0.3)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("prefix error mismatch: %v vs %v", gotErr, wantErr)
					}
					if wantErr == nil && !sameMatches(wantP, gotP) {
						t.Fatalf("prefix diverged")
					}
					// Path 5: approximate with a saturating budget.
					budget := 2 * local.Len()
					wantA, wantASt := local.SearchApprox(q, 0.3, budget)
					gotA, gotASt, err := cl.SearchApprox(ctx, q, 0.3, budget)
					if err != nil {
						t.Fatalf("approx with dead node: %v", err)
					}
					if !sameMatches(wantA, gotA) {
						t.Fatalf("approx diverged")
					}
					if !reflect.DeepEqual(wantASt, gotASt) {
						t.Fatalf("approx stats diverged: %+v vs %+v", gotASt, wantASt)
					}
				})
			}
		}
	}
}

// TestFailoverTimeout proves failover works without hedging: a
// black-holed replica burns its per-attempt timeout, then the unit
// retries on the sibling and the query still answers correctly.
func TestFailoverTimeout(t *testing.T) {
	data := datasets.EEGN(67, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, false)
	cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1}, {2, 3}}, 2, cluster.Options{
		Timeout: 250 * time.Millisecond, // per attempt; failover doubles it at worst
	})
	chaos.Set(hostOf(t, srvs[0]), cluster.ChaosRule{BlackHole: true})

	ctx := context.Background()
	q := ext.ExtractCopy(400, testL)
	start := time.Now()
	got, err := cl.Search(ctx, q, 0.3)
	if err != nil {
		t.Fatalf("query with wedged replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout failover took %v", elapsed)
	}
	want, _ := local.SearchStats(q, 0.3)
	if !sameMatches(want, got) {
		t.Fatal("timeout failover diverged")
	}
}

// TestHedgeMasksSlowReplica proves the hedge path: one replica delayed
// far beyond the hedge delay must not set the query's latency — the
// hedged sibling answers first and the answer is still exact.
func TestHedgeMasksSlowReplica(t *testing.T) {
	data := datasets.EEGN(71, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, false)
	cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1}, {2, 3}}, 2, cluster.Options{
		Timeout:    10 * time.Second,
		HedgeDelay: 15 * time.Millisecond,
	})
	chaos.Set(hostOf(t, srvs[0]), cluster.ChaosRule{Delay: 3 * time.Second})

	ctx := context.Background()
	q := ext.ExtractCopy(200, testL)
	start := time.Now()
	got, err := cl.Search(ctx, q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge did not mask the slow replica: query took %v", elapsed)
	}
	want, _ := local.SearchStats(q, 0.3)
	if !sameMatches(want, got) {
		t.Fatal("hedged query diverged")
	}
}

// TestTransportRetryAtR1 proves the transport-level idempotent retry:
// even unreplicated (R = 1), a connection refused before any request
// byte is processed is retried once on the same node, absorbing the
// transient blip a restarting listener causes.
func TestTransportRetryAtR1(t *testing.T) {
	data := datasets.EEGN(73, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, false)
	cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1}, {2, 3}}, 1, cluster.Options{})

	// Install the blip after open so the open handshake doesn't consume
	// it: the next request to n0 is refused, the one after succeeds.
	host := hostOf(t, srvs[0])
	chaos.Set(host, cluster.ChaosRule{FailFirst: 1})

	ctx := context.Background()
	q := ext.ExtractCopy(300, testL)
	got, err := cl.Search(ctx, q, 0.3)
	if err != nil {
		t.Fatalf("query across a transient refusal failed: %v", err)
	}
	want, _ := local.SearchStats(q, 0.3)
	if !sameMatches(want, got) {
		t.Fatal("retried query diverged")
	}
	if f := chaos.Faults(host); f != 1 {
		t.Fatalf("expected exactly 1 injected fault, saw %d", f)
	}
	if h := chaos.Hits(host); h < 2 {
		t.Fatalf("expected a retry after the refusal, saw %d requests", h)
	}
}

// TestBreakerTripsAndRecovers walks one node through the full circuit:
// closed → tripped after consecutive failures (the dead node stops
// absorbing first attempts) → half-open after a successful health probe
// → closed again once a real query succeeds.
func TestBreakerTripsAndRecovers(t *testing.T) {
	data := datasets.EEGN(79, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path := buildSaved(t, ext, 4, false)
	// One replica group of two nodes; g0r0 is first in topology order,
	// so while healthy it absorbs every first attempt.
	cl, srvs, chaos := startReplicated(t, ext, path, [][]int{{0, 1, 2, 3}}, 2, cluster.Options{
		BreakerFails: 2,
	})
	ctx := context.Background()
	q := ext.ExtractCopy(500, testL)
	host := hostOf(t, srvs[0])

	search := func() {
		t.Helper()
		if _, err := cl.Search(ctx, q, 0.3); err != nil {
			t.Fatalf("query failed: %v", err)
		}
	}
	breakerOf := func(name string) string {
		t.Helper()
		for _, p := range cl.Health() {
			if p.Name == name {
				return p.Breaker
			}
		}
		t.Fatalf("no peer %q in health view", name)
		return ""
	}

	// Refuse g0r0: queries keep succeeding via its sibling, and after
	// BreakerFails consecutive failures the circuit is open.
	chaos.Set(host, cluster.ChaosRule{Refuse: true})
	search()
	search()
	if st := breakerOf("g0r0"); st != "open" {
		t.Fatalf("breaker after %d failed queries = %q, want open", 2, st)
	}

	// Tripped: the dead node must stop seeing first attempts.
	quiet := chaos.Hits(host)
	search()
	search()
	if h := chaos.Hits(host); h != quiet {
		t.Fatalf("tripped node still queried: %d → %d requests", quiet, h)
	}

	// Recovery: the node answers again, a health sweep half-opens the
	// circuit, and the next real query (first attempt goes to g0r0
	// again) closes it.
	chaos.Clear(host)
	cl.Sweep(ctx)
	if st := breakerOf("g0r0"); st != "half-open" {
		t.Fatalf("breaker after successful probe = %q, want half-open", st)
	}
	search()
	if st := breakerOf("g0r0"); st != "closed" {
		t.Fatalf("breaker after successful trial query = %q, want closed", st)
	}
	if h := chaos.Hits(host); h == quiet {
		t.Fatal("recovered node never re-attempted")
	}

	// The health view carries per-node staleness timestamps.
	for _, p := range cl.Health() {
		if p.CheckedAt.IsZero() {
			t.Fatalf("peer %q has no staleness timestamp", p.Name)
		}
	}
}

// TestDegradedOpen: a cluster with R = 2 opens with one node dead (its
// group still has a live owner) and answers correctly; with R = 1 the
// same dead node refuses the open — no replica can cover its shards.
func TestDegradedOpen(t *testing.T) {
	data := datasets.EEGN(83, 1200)
	ext := series.NewExtractor(data, series.NormGlobal)
	local, path := buildSaved(t, ext, 4, false)

	build := func(r int) (*cluster.Topology, []*httptest.Server) {
		t.Helper()
		topo := &cluster.Topology{Index: path, Replicas: r}
		var srvs []*httptest.Server
		for gi, run := range [][]int{{0, 1}, {2, 3}} {
			for ri := 0; ri < r; ri++ {
				name := fmt.Sprintf("g%dr%d", gi, ri)
				n, err := cluster.OpenNode(&cluster.Topology{Index: path, Replicas: r,
					Nodes: []cluster.NodeSpec{{Name: name, Addr: "placeholder", Shards: run}}}, name, ext, cluster.NodeOptions{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { n.Close() })
				srv := httptest.NewServer(server.NewNode(n))
				t.Cleanup(srv.Close)
				topo.Nodes = append(topo.Nodes, cluster.NodeSpec{Name: name, Addr: srv.URL, Shards: run})
				srvs = append(srvs, srv)
			}
		}
		return topo, srvs
	}

	// R = 2: kill g0r0 before the open. The open degrades, the dead
	// node shows up down with a tripped breaker, and queries answer.
	topo, srvs := build(2)
	srvs[0].CloseClientConnections()
	srvs[0].Close()
	cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, testL, cluster.Options{RefreshInterval: -1})
	if err != nil {
		t.Fatalf("degraded open refused: %v", err)
	}
	defer cl.Close()
	peers := cl.Health()
	if peers[0].Alive || peers[0].Breaker != "open" || peers[0].Error == "" {
		t.Fatalf("dead node not reported: %+v", peers[0])
	}
	if !peers[1].Alive {
		t.Fatalf("live replica reported dead: %+v", peers[1])
	}
	ctx := context.Background()
	q := ext.ExtractCopy(600, testL)
	want, _ := local.SearchStats(q, 0.3)
	got, err := cl.Search(ctx, q, 0.3)
	if err != nil {
		t.Fatalf("query on degraded cluster: %v", err)
	}
	if !sameMatches(want, got) {
		t.Fatal("degraded cluster diverged")
	}

	// R = 1: the same kill leaves shards 0-1 unowned; the open refuses.
	topo1, srvs1 := build(1)
	srvs1[0].CloseClientConnections()
	srvs1[0].Close()
	if _, err := cluster.OpenCoordinator(context.Background(), topo1, ext, testL, cluster.Options{RefreshInterval: -1}); err == nil {
		t.Fatal("open with an uncovered shard group succeeded")
	} else if !strings.Contains(err.Error(), "no reachable replica") {
		t.Fatalf("unexpected open error: %v", err)
	}
}
