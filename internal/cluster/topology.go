package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LocalAddr is the sentinel node address meaning "serve these shards in
// the coordinator process itself": the coordinator opens the subset
// from the topology's index file instead of dialing anything.
const LocalAddr = "local"

// ShardList is a set of global shard indices. In JSON it unmarshals
// from either an explicit array ([0,1,4]) or a compact range string
// ("0-3,7"); it always normalizes to ascending order without
// duplicates.
type ShardList []int

// UnmarshalJSON implements json.Unmarshaler.
func (s *ShardList) UnmarshalJSON(b []byte) error {
	var ids []int
	if err := json.Unmarshal(b, &ids); err == nil {
		*s = normalizeShards(ids)
		return nil
	}
	var spec string
	if err := json.Unmarshal(b, &spec); err != nil {
		return fmt.Errorf("cluster: shards must be an array of indices or a range string like \"0-3,7\"")
	}
	ids, err := ParseShardRanges(spec)
	if err != nil {
		return err
	}
	*s = ids
	return nil
}

// ParseShardRanges parses a compact shard spec: comma-separated single
// indices and inclusive lo-hi ranges, e.g. "0-3,7" → [0 1 2 3 7].
func ParseShardRanges(spec string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("cluster: empty entry in shard spec %q", spec)
		}
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil || a < 0 {
			return nil, fmt.Errorf("cluster: bad shard index %q in spec %q", lo, spec)
		}
		b := a
		if found {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil || b < a {
				return nil, fmt.Errorf("cluster: bad shard range %q in spec %q", part, spec)
			}
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("cluster: implausible shard range %q", part)
		}
		for i := a; i <= b; i++ {
			ids = append(ids, i)
		}
	}
	return normalizeShards(ids), nil
}

func normalizeShards(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// NodeSpec names one shard node: where to reach it and which global
// shards of the saved index it serves. Addr is an http base URL
// ("http://10.0.0.5:8081") or LocalAddr.
type NodeSpec struct {
	Name   string    `json:"name"`
	Addr   string    `json:"addr"`
	Shards ShardList `json:"shards"`
}

// Topology is the static cluster layout: the saved TSSH v3 index every
// node opens its slice of, the node → shard-set assignment, and the
// replication factor. With Replicas R ≥ 2, every shard must be owned
// by exactly R distinct nodes and owners of one shard must mirror each
// other's whole shard set — assignments form replica groups of R
// interchangeable nodes, the unit the coordinator fails over and
// hedges across. The assignment's shard sets must partition the
// index's shards exactly — validated against the real shard count when
// a coordinator or node opens it.
type Topology struct {
	// Index is the path of the saved sharded index (TSSH v3). Relative
	// paths are resolved against the topology file's directory by
	// LoadTopology.
	Index string     `json:"index"`
	Nodes []NodeSpec `json:"nodes"`
	// Replicas is the replication factor R: how many distinct nodes own
	// every shard (0 means 1, the unreplicated default).
	Replicas int `json:"replicas,omitempty"`
}

// R returns the effective replication factor (Replicas, defaulting
// to 1).
func (t *Topology) R() int {
	if t.Replicas <= 0 {
		return 1
	}
	return t.Replicas
}

// ParseTopology decodes and validates a topology document. Coverage of
// the index's full shard range needs the shard count, which only the
// index file knows, so only per-document invariants are checked here:
// unique non-empty names, non-empty addresses and shard sets, and a
// well-formed replicated assignment (exactly R owners per listed
// shard, owners mirroring whole shard sets).
func ParseTopology(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: topology lists no nodes")
	}
	names := make(map[string]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: topology node %d has no name", i)
		}
		if names[n.Name] {
			return nil, fmt.Errorf("cluster: topology names node %q twice", n.Name)
		}
		names[n.Name] = true
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: topology node %q has no addr", n.Name)
		}
		if len(n.Shards) == 0 {
			return nil, fmt.Errorf("cluster: topology node %q serves no shards", n.Name)
		}
	}
	if err := t.validateAssignment(-1); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopology reads a topology file, resolving a relative index path
// against the file's own directory so the document works from any cwd.
func LoadTopology(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	t, err := ParseTopology(f)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	if t.Index != "" && !filepath.IsAbs(t.Index) {
		t.Index = filepath.Join(filepath.Dir(path), t.Index)
	}
	return t, nil
}

// Node returns the spec with the given name.
func (t *Topology) Node(name string) (NodeSpec, error) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return NodeSpec{}, fmt.Errorf("cluster: topology has no node %q", name)
}

// checkCoverage verifies the replicated assignment covers [0, total)
// exactly: every shard of the index owned by exactly R nodes, no shard
// out of range. The full validation repeats ParseTopology's so
// topologies built programmatically (never parsed) fail cleanly too.
func (t *Topology) checkCoverage(total int) error {
	if err := t.validateAssignment(total); err != nil {
		return err
	}
	seen := make([]bool, total)
	for _, n := range t.Nodes {
		for _, id := range n.Shards {
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: shard %d of %d assigned to no node", id, total)
		}
	}
	return nil
}

// validateAssignment checks the shape of the node → shard assignment
// under the topology's replication factor: no node lists a shard
// twice, every listed shard has exactly R distinct owners, and owners
// of one shard mirror each other's whole shard set (replica groups).
// total ≥ 0 additionally range-checks the ids (open time; parse time
// passes -1 because only the index file knows the real shard count).
func (t *Topology) validateAssignment(total int) error {
	if t.Replicas < 0 {
		return fmt.Errorf("cluster: topology replicas %d; the factor must be at least 1", t.Replicas)
	}
	r := t.R()
	if r > len(t.Nodes) {
		return fmt.Errorf("cluster: replication factor %d exceeds the %d listed node(s)", r, len(t.Nodes))
	}
	owners := map[int][]string{} // shard id → owning node names
	keys := map[string]string{}  // node name → canonical shard-set key
	for _, n := range t.Nodes {
		mine := make(map[int]bool, len(n.Shards))
		for _, id := range n.Shards {
			// The range-string parser already refuses negatives; the
			// JSON-array and programmatic forms must too, or coverage
			// would index a slice with the bad id instead of reporting
			// it.
			if id < 0 {
				return fmt.Errorf("cluster: topology node %q serves negative shard %d", n.Name, id)
			}
			if total >= 0 && id >= total {
				return fmt.Errorf("cluster: node %q serves shard %d, index has %d", n.Name, id, total)
			}
			if mine[id] {
				return fmt.Errorf("cluster: node %q lists shard %d twice", n.Name, id)
			}
			mine[id] = true
			owners[id] = append(owners[id], n.Name)
		}
		keys[n.Name] = shardSetKey(n.Shards)
	}
	for id, who := range owners {
		if len(who) != r {
			if r == 1 && len(who) == 2 {
				return fmt.Errorf("cluster: shard %d assigned to both %q and %q", id, who[0], who[1])
			}
			return fmt.Errorf("cluster: shard %d has %d owner(s) (%v), replication factor %d requires exactly %d",
				id, len(who), who, r, r)
		}
		for _, name := range who[1:] {
			if keys[name] != keys[who[0]] {
				return fmt.Errorf("cluster: nodes %q and %q both serve shard %d but with different shard sets; replicas must mirror whole shard sets",
					who[0], name, id)
			}
		}
	}
	return nil
}

// shardSetKey canonicalizes a shard list for replica-group comparison
// and grouping.
func shardSetKey(ids []int) string {
	s := append([]int(nil), ids...)
	sort.Ints(s)
	var b strings.Builder
	for i, id := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}
