package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LocalAddr is the sentinel node address meaning "serve these shards in
// the coordinator process itself": the coordinator opens the subset
// from the topology's index file instead of dialing anything.
const LocalAddr = "local"

// ShardList is a set of global shard indices. In JSON it unmarshals
// from either an explicit array ([0,1,4]) or a compact range string
// ("0-3,7"); it always normalizes to ascending order without
// duplicates.
type ShardList []int

// UnmarshalJSON implements json.Unmarshaler.
func (s *ShardList) UnmarshalJSON(b []byte) error {
	var ids []int
	if err := json.Unmarshal(b, &ids); err == nil {
		*s = normalizeShards(ids)
		return nil
	}
	var spec string
	if err := json.Unmarshal(b, &spec); err != nil {
		return fmt.Errorf("cluster: shards must be an array of indices or a range string like \"0-3,7\"")
	}
	ids, err := ParseShardRanges(spec)
	if err != nil {
		return err
	}
	*s = ids
	return nil
}

// ParseShardRanges parses a compact shard spec: comma-separated single
// indices and inclusive lo-hi ranges, e.g. "0-3,7" → [0 1 2 3 7].
func ParseShardRanges(spec string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("cluster: empty entry in shard spec %q", spec)
		}
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil || a < 0 {
			return nil, fmt.Errorf("cluster: bad shard index %q in spec %q", lo, spec)
		}
		b := a
		if found {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil || b < a {
				return nil, fmt.Errorf("cluster: bad shard range %q in spec %q", part, spec)
			}
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("cluster: implausible shard range %q", part)
		}
		for i := a; i <= b; i++ {
			ids = append(ids, i)
		}
	}
	return normalizeShards(ids), nil
}

func normalizeShards(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// NodeSpec names one shard node: where to reach it and which global
// shards of the saved index it serves. Addr is an http base URL
// ("http://10.0.0.5:8081") or LocalAddr.
type NodeSpec struct {
	Name   string    `json:"name"`
	Addr   string    `json:"addr"`
	Shards ShardList `json:"shards"`
}

// Topology is the static cluster layout: the saved TSSH v3 index every
// node opens its slice of, and the node → shard-set assignment. The
// assignment must partition the index's shards exactly — validated
// against the real shard count when a coordinator or node opens it.
type Topology struct {
	// Index is the path of the saved sharded index (TSSH v3). Relative
	// paths are resolved against the topology file's directory by
	// LoadTopology.
	Index string     `json:"index"`
	Nodes []NodeSpec `json:"nodes"`
}

// ParseTopology decodes and validates a topology document. Coverage of
// the index's full shard range needs the shard count, which only the
// index file knows, so only per-document invariants are checked here:
// unique non-empty names, non-empty addresses and shard sets, and no
// shard assigned to two nodes.
func ParseTopology(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: topology lists no nodes")
	}
	names := make(map[string]bool, len(t.Nodes))
	owner := make(map[int]string)
	for i, n := range t.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: topology node %d has no name", i)
		}
		if names[n.Name] {
			return nil, fmt.Errorf("cluster: topology names node %q twice", n.Name)
		}
		names[n.Name] = true
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: topology node %q has no addr", n.Name)
		}
		if len(n.Shards) == 0 {
			return nil, fmt.Errorf("cluster: topology node %q serves no shards", n.Name)
		}
		for _, id := range n.Shards {
			// The range-string parser already refuses negatives; the
			// JSON-array form must too, or checkCoverage would index a
			// slice with the bad id instead of reporting it.
			if id < 0 {
				return nil, fmt.Errorf("cluster: topology node %q serves negative shard %d", n.Name, id)
			}
			if prev, dup := owner[id]; dup {
				return nil, fmt.Errorf("cluster: shard %d assigned to both %q and %q", id, prev, n.Name)
			}
			owner[id] = n.Name
		}
	}
	return &t, nil
}

// LoadTopology reads a topology file, resolving a relative index path
// against the file's own directory so the document works from any cwd.
func LoadTopology(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	t, err := ParseTopology(f)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	if t.Index != "" && !filepath.IsAbs(t.Index) {
		t.Index = filepath.Join(filepath.Dir(path), t.Index)
	}
	return t, nil
}

// Node returns the spec with the given name.
func (t *Topology) Node(name string) (NodeSpec, error) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return NodeSpec{}, fmt.Errorf("cluster: topology has no node %q", name)
}

// checkCoverage verifies the assignment partitions [0, total) exactly.
// The negative-id check repeats ParseTopology's so topologies built
// programmatically (never parsed) fail cleanly too.
func (t *Topology) checkCoverage(total int) error {
	seen := make([]string, total)
	for _, n := range t.Nodes {
		for _, id := range n.Shards {
			if id < 0 || id >= total {
				return fmt.Errorf("cluster: node %q serves shard %d, index has %d", n.Name, id, total)
			}
			seen[id] = n.Name
		}
	}
	for id, name := range seen {
		if name == "" {
			return fmt.Errorf("cluster: shard %d of %d assigned to no node", id, total)
		}
	}
	return nil
}
