package datasets

import "math/rand"

// Queries samples count query subsequences of length l from t, the way
// the paper builds its workload ("we randomly picked 100 subsequences,
// each of length 100 points", §6.1). Queries are copies, so callers may
// normalize them freely. Sampling is deterministic in seed.
func Queries(t []float64, seed int64, count, l int) [][]float64 {
	if l <= 0 || len(t) < l {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		p := rng.Intn(len(t) - l + 1)
		q := make([]float64, l)
		copy(q, t[p:p+l])
		out[i] = q
	}
	return out
}

// QueryStarts returns the start offsets Queries would sample, for tests
// that need to know where each query came from.
func QueryStarts(n int, seed int64, count, l int) []int {
	if l <= 0 || n < l {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, count)
	for i := range out {
		out[i] = rng.Intn(n - l + 1)
	}
	return out
}
