package datasets

import (
	"math"
	"testing"

	"twinsearch/internal/series"
)

func TestLengths(t *testing.T) {
	if n := len(InsectN(1, 1000)); n != 1000 {
		t.Fatalf("InsectN length = %d", n)
	}
	if n := len(EEGN(1, 1000)); n != 1000 {
		t.Fatalf("EEGN length = %d", n)
	}
	if InsectLen != 64436 || EEGLen != 1801999 {
		t.Fatal("paper lengths changed")
	}
}

func TestDeterminism(t *testing.T) {
	a := InsectN(7, 5000)
	b := InsectN(7, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InsectN not deterministic")
		}
	}
	c := EEGN(7, 5000)
	d := EEGN(7, 5000)
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("EEGN not deterministic")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := EEGN(1, 2000)
	b := EEGN(2, 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical samples", same, len(a))
	}
}

func TestValuesFinite(t *testing.T) {
	for name, ts := range map[string][]float64{
		"insect": InsectN(3, 50000),
		"eeg":    EEGN(3, 50000),
		"walk":   RandomWalk(3, 50000),
		"sine":   Sine(3, 50000, 200, 1, 0.1),
	} {
		for i, v := range ts {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s[%d] = %v", name, i, v)
			}
		}
	}
}

func TestEEGHasSpikes(t *testing.T) {
	ts := EEGN(11, 200000)
	_, std := series.MeanStd(ts)
	spikes := 0
	for _, v := range ts {
		if v > 3*std || v < -3*std {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("EEG generator produced no spike excursions")
	}
}

func TestInsectHasRegimes(t *testing.T) {
	ts := InsectN(11, InsectLen)
	// Split into 1000-point windows; regime switching should give a wide
	// spread of window variances (bursty vs calm).
	var stds []float64
	for p := 0; p+1000 <= len(ts); p += 1000 {
		_, std := series.MeanStd(ts[p : p+1000])
		stds = append(stds, std)
	}
	lo, hi := series.MinMax(stds)
	if hi < 3*lo {
		t.Fatalf("insect generator lacks regime contrast: window std range [%v, %v]", lo, hi)
	}
}

func TestSinePeriodicity(t *testing.T) {
	ts := Sine(1, 1000, 100, 2, 0)
	for i := 0; i+100 < len(ts); i++ {
		if math.Abs(ts[i]-ts[i+100]) > 1e-9 {
			t.Fatalf("noise-free sine should repeat every period (i=%d)", i)
		}
	}
}

func TestQueries(t *testing.T) {
	ts := RandomWalk(5, 10000)
	qs := Queries(ts, 99, 100, 64)
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	starts := QueryStarts(len(ts), 99, 100, 64)
	for i, q := range qs {
		if len(q) != 64 {
			t.Fatalf("query %d has length %d", i, len(q))
		}
		p := starts[i]
		for j := range q {
			if q[j] != ts[p+j] {
				t.Fatalf("query %d does not match its sampled window", i)
			}
		}
	}
	// Copies, not views.
	ts[starts[0]] = 1e18
	if qs[0][0] == 1e18 {
		t.Fatal("queries must be copies")
	}
}

func TestQueriesDegenerate(t *testing.T) {
	if qs := Queries([]float64{1, 2}, 1, 5, 10); qs != nil {
		t.Fatal("window longer than series should yield nil")
	}
	if qs := Queries(nil, 1, 5, 1); qs != nil {
		t.Fatal("empty series should yield nil")
	}
	if st := QueryStarts(2, 1, 5, 10); st != nil {
		t.Fatal("QueryStarts should mirror Queries degenerate cases")
	}
}
