package datasets

import "math"

// Thin aliases keep the generator code close to its math.
const pi = math.Pi

func sin(x float64) float64 { return math.Sin(x) }
func exp(x float64) float64 { return math.Exp(x) }
