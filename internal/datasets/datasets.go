// Package datasets generates the synthetic stand-ins for the two
// real-world series used in the paper's evaluation (§6.1):
//
//   - Insect Movement [Mueen et al. 2009]: 64,436 insect telemetry
//     (EPG) readings spanning ~30 minutes at 36 Hz. EPG recordings are
//     sequences of stereotyped waveform episodes from a small family
//     library; we model them as a per-seed motif library rendered with
//     per-episode jitter (see InsectN).
//
//   - EEG [Mueen et al. 2009]: 1,801,999 scalp-potential readings at
//     500 Hz over one hour. EEG is dominated by band-limited
//     oscillations (delta/theta/alpha/beta) whose amplitudes drift
//     slowly, plus sporadic high-amplitude spikes and measurement noise.
//     We synthesize a sum of amplitude-modulated sinusoids per band,
//     inject spike events, and add white noise.
//
// Both generators are fully deterministic given a seed, so every
// experiment in this repository is reproducible bit-for-bit. The
// substitution rationale is recorded in DESIGN.md §3: twin-search
// behaviour depends on value locality, self-similarity and burstiness,
// all of which these processes reproduce, not on the physiological origin
// of the samples.
package datasets

import "math/rand"

// Paper dataset lengths (§6.1, Table 1).
const (
	InsectLen = 64436
	EEGLen    = 1801999
)

// Insect generates an insect-telemetry-like series of the paper's length.
func Insect(seed int64) []float64 { return InsectN(seed, InsectLen) }

// InsectN generates an insect-telemetry-like series with n points.
//
// Electrical penetration graphs are sequences of stereotyped episodes
// drawn from a small library of waveform families (probing, salivation,
// ingestion, …), each family a characteristic oscillatory shape at its
// own voltage level. The generator draws a per-seed library of motif
// templates and concatenates episodes: a template rendered with small
// per-episode detuning and jitter, plus measurement noise; occasional
// spiky bursts overlay feeding episodes. Two windows match under
// Chebyshev distance essentially only when they come from the same
// family at compatible phase — giving the moderate, strongly-clustered
// twin structure that real EPG shows and that the paper's index
// comparison depends on (tight MBTS leaves, selective mean filters,
// non-trivial but far-from-exhaustive result sets).
func InsectN(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)

	const (
		families = 10
		noiseSig = 0.07
	)

	// Per-seed motif library: every family has a voltage level, two
	// superimposed oscillatory components and an optional spike habit.
	type component struct {
		freq, amp, phase float64
	}
	type family struct {
		level  float64
		comps  [2]component
		spiky  bool
		spikeP float64
	}
	lib := make([]family, families)
	for f := range lib {
		fam := family{
			// Families sit on a ladder of nearby levels: distinct, but
			// close enough that window means alone separate families
			// poorly — the regime in which the paper observes KV-Index's
			// mean filter "achieves less pruning" while MBTS shape
			// bounds still discriminate.
			level: float64(f)*0.55 - float64(families-1)*0.275 + rng.NormFloat64()*0.1,
			spiky: rng.Float64() < 0.3,
		}
		for c := range fam.comps {
			fam.comps[c] = component{
				freq:  0.15 + rng.Float64()*1.1, // radians per sample
				amp:   0.5 + rng.Float64()*1.6,
				phase: rng.Float64() * 2 * pi,
			}
		}
		fam.spikeP = 0.02 + rng.Float64()*0.05
		lib[f] = fam
	}

	cur := rng.Intn(families)
	left := 0 // samples remaining in the current episode
	var detune, ampScale float64
	var phase0, phase1 float64
	spikeLeft := 0
	spikeAmp := 0.0

	for i := 0; i < n; i++ {
		if left == 0 {
			// Episode change: usually a different family.
			if rng.Float64() < 0.85 {
				cur = rng.Intn(families)
			}
			left = 200 + rng.Intn(1400)
			// Small per-episode rendering variation: the same family
			// repeats recognizably but never identically.
			detune = 1 + rng.NormFloat64()*0.01
			ampScale = 1 + rng.NormFloat64()*0.05
			phase0 = rng.Float64() * 2 * pi
			phase1 = rng.Float64() * 2 * pi
		}
		fam := lib[cur]
		v := fam.level
		v += ampScale * fam.comps[0].amp * sin(fam.comps[0].freq*detune*float64(i)+fam.comps[0].phase+phase0)
		v += ampScale * fam.comps[1].amp * sin(fam.comps[1].freq*detune*float64(i)+fam.comps[1].phase+phase1)
		if fam.spiky {
			if spikeLeft == 0 && rng.Float64() < fam.spikeP {
				spikeLeft = 3 + rng.Intn(8)
				spikeAmp = (2 + rng.Float64()*4) * signOf(rng)
			}
			if spikeLeft > 0 {
				v += spikeAmp
				spikeLeft--
			}
		}
		out[i] = v + rng.NormFloat64()*noiseSig
		left--
	}
	return out
}

// EEG generates an EEG-like series of the paper's length.
func EEG(seed int64) []float64 { return EEGN(seed, EEGLen) }

// eegBand is one amplitude-modulated oscillatory component.
type eegBand struct {
	freqHz   float64 // center frequency
	baseAmp  float64 // nominal amplitude (µV-ish arbitrary units)
	modHz    float64 // amplitude-modulation frequency
	modDepth float64 // fraction of baseAmp swung by the modulation
}

// EEGN generates an EEG-like series with n points at a nominal 500 Hz
// sampling rate.
func EEGN(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)

	const sampleHz = 500.0
	bands := []eegBand{
		{freqHz: 2.1, baseAmp: 18, modHz: 0.013, modDepth: 0.55}, // delta
		{freqHz: 6.3, baseAmp: 9, modHz: 0.031, modDepth: 0.5},   // theta
		{freqHz: 10.2, baseAmp: 14, modHz: 0.023, modDepth: 0.6}, // alpha
		{freqHz: 21.7, baseAmp: 4, modHz: 0.047, modDepth: 0.4},  // beta
	}
	// Random initial phases keep different seeds decorrelated.
	phases := make([]float64, len(bands))
	modPhases := make([]float64, len(bands))
	for i := range bands {
		phases[i] = rng.Float64() * 2 * pi
		modPhases[i] = rng.Float64() * 2 * pi
	}

	const (
		// Noise well below band amplitude: EEG self-similarity is what
		// produces the paper's non-trivial twin counts, and a high noise
		// floor would mask it under Chebyshev distance.
		noiseSigma = 0.8
		pSpike     = 1.0 / 20000 // spike event onset probability per sample
	)

	spikeLeft := 0  // samples remaining in the active spike
	spikeAmp := 0.0 // current spike peak amplitude
	spikeLen := 0   // total length of the active spike
	drift := 0.0    // slow baseline wander
	driftTarget := 0.0

	for i := 0; i < n; i++ {
		t := float64(i) / sampleHz
		v := 0.0
		for b, band := range bands {
			amp := band.baseAmp * (1 + band.modDepth*sin(2*pi*band.modHz*t+modPhases[b]))
			v += amp * sin(2*pi*band.freqHz*t+phases[b])
		}
		// Slow baseline wander (electrode drift).
		if i%2500 == 0 {
			driftTarget = rng.NormFloat64() * 6
		}
		drift += (driftTarget - drift) * 0.0005
		v += drift

		// Sporadic spike-wave events: a sharp half-sine burst.
		if spikeLeft == 0 && rng.Float64() < pSpike {
			spikeLen = 40 + rng.Intn(80) // 80–240 ms at 500 Hz
			spikeLeft = spikeLen
			spikeAmp = (60 + rng.Float64()*80) * signOf(rng)
		}
		if spikeLeft > 0 {
			prog := float64(spikeLen-spikeLeft) / float64(spikeLen)
			v += spikeAmp * sin(pi*prog)
			spikeLeft--
		}

		v += rng.NormFloat64() * noiseSigma
		out[i] = v
	}
	return out
}

// RandomWalk generates a plain Gaussian random walk, the lightweight
// fixture most unit tests use.
func RandomWalk(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = v
	}
	return out
}

// Sine generates amp·sin(2π·i/period) + noise·N(0,1), handy for tests
// that need guaranteed self-similar structure (every period repeats).
func Sine(seed int64, n int, period float64, amp, noise float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = amp*sin(2*pi*float64(i)/period) + noise*rng.NormFloat64()
	}
	return out
}

func signOf(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return 1
	}
	return -1
}
