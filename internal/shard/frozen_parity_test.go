package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// TestFrozenShardParityAllPaths is the differential matrix of the
// frozen refactor: every search path × normalization mode × shard
// count × partition scheme must return byte-identical results to one
// unsharded pointer-tree index over the same series.
func TestFrozenShardParityAllPaths(t *testing.T) {
	ts := datasets.RandomWalk(21, 2600)
	const l = 44
	modes := []struct {
		name string
		mode series.NormMode
	}{
		{"raw", series.NormNone},
		{"global", series.NormGlobal},
		{"persub", series.NormPerSubsequence},
	}
	for _, m := range modes {
		ext := series.NewExtractor(ts, m.mode)
		ref, err := core.Build(ext, core.Config{L: l})
		if err != nil {
			t.Fatal(err)
		}
		queries := [][]float64{ext.ExtractCopy(10, l), ext.ExtractCopy(1900, l)}
		for _, p := range []int{1, 2, 4} {
			for _, byMean := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/shards=%d/mean=%v", m.name, p, byMean), func(t *testing.T) {
					sh, err := Build(ext, Config{
						Config: core.Config{L: l}, Shards: p, PartitionByMean: byMean,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := sh.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
					for qi, q := range queries {
						for _, eps := range []float64{0.05, 0.4, 1.5} {
							want, _ := ref.SearchStats(q, eps)
							got, st := sh.SearchStats(q, eps)
							if !sameMatches(want, got) {
								t.Fatalf("q%d eps=%g: Search mismatch (%d vs %d)", qi, eps, len(want), len(got))
							}
							if st.Results != len(got) {
								t.Fatalf("q%d eps=%g: Stats.Results %d for %d matches", qi, eps, st.Results, len(got))
							}
							// An approximate search granted more leaves
							// than exist must equal the exact answer,
							// whatever the partition.
							app, _ := sh.SearchApprox(q, eps, 1<<30)
							if !sameMatches(want, app) {
								t.Fatalf("q%d eps=%g: unbounded SearchApprox mismatch", qi, eps)
							}
						}
						for _, k := range []int{1, 9, 64} {
							if want, got := ref.SearchTopK(q, k), sh.SearchTopK(q, k); !sameMatches(want, got) {
								t.Fatalf("q%d k=%d: SearchTopK mismatch", qi, k)
							}
						}
						if m.mode != series.NormPerSubsequence {
							want, err := ref.SearchPrefix(q[:l/2], 0.3)
							if err != nil {
								t.Fatal(err)
							}
							got, err := sh.SearchPrefix(q[:l/2], 0.3)
							if err != nil {
								t.Fatal(err)
							}
							if !sameMatches(want, got) {
								t.Fatalf("q%d: SearchPrefix mismatch", qi)
							}
						}
					}
				})
			}
		}
	}
}

// TestMeanPartitionInsertRouting appends past the series end and checks
// mean-routed insertion keeps the partition coherent and the answers
// exact.
func TestMeanPartitionInsertRouting(t *testing.T) {
	ts := datasets.RandomWalk(33, 900)
	const l = 30
	grown := datasets.RandomWalk(33, 960) // same prefix generator, longer
	copy(grown, ts)

	ext := series.NewExtractor(append([]float64(nil), ts...), series.NormNone)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 3, PartitionByMean: true})
	if err != nil {
		t.Fatal(err)
	}
	ext.Append(grown[len(ts):]...)
	count := series.NumSubsequences(len(grown), l)
	for p := series.NumSubsequences(len(ts), l); p < count; p++ {
		sh.Insert(p)
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != count {
		t.Fatalf("after inserts: %d windows indexed, want %d", sh.Len(), count)
	}
	refExt := series.NewExtractor(grown, series.NormNone)
	ref, err := core.Build(refExt, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := refExt.ExtractCopy(920, l)
	for _, eps := range []float64{0.1, 0.8} {
		if want, got := ref.Search(q, eps), sh.Search(q, eps); !sameMatches(want, got) {
			t.Fatalf("eps=%g: post-insert search mismatch (%d vs %d)", eps, len(want), len(got))
		}
	}
}

// TestShardPersistRoundTripBothPartitions saves and reloads both
// partition schemes through the frozen v2 stream, including an index
// left dirty by Insert (WriteTo must re-freeze first).
func TestShardPersistRoundTripBothPartitions(t *testing.T) {
	ts := datasets.RandomWalk(41, 1400)
	const l = 36
	for _, byMean := range []bool{false, true} {
		t.Run(fmt.Sprintf("mean=%v", byMean), func(t *testing.T) {
			ext := series.NewExtractor(append([]float64(nil), ts...), series.NormNone)
			sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 3, PartitionByMean: byMean})
			if err != nil {
				t.Fatal(err)
			}
			// Dirty a shard so WriteTo exercises the refreeze path: grow
			// the series and insert the newly completed windows.
			oldCount := series.NumSubsequences(ext.Len(), l)
			ext.Append(1.5, -0.25, 0.75)
			for p := oldCount; p < series.NumSubsequences(ext.Len(), l); p++ {
				sh.Insert(p)
			}

			var buf bytes.Buffer
			if _, err := sh.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(bytes.NewReader(buf.Bytes()), ext, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.PartitionByMean() != byMean {
				t.Fatalf("partition scheme lost in round trip")
			}
			q := ext.ExtractCopy(777, l)
			if want, have := sh.Search(q, 0.5), got.Search(q, 0.5); !sameMatches(want, have) {
				t.Fatal("reloaded index answers differently")
			}
			if err := got.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardLoadV1BackCompat hand-writes the version-1 sharded stream
// (pointer-tree shard payloads) and checks Load still accepts it,
// freezing the shards on the way in.
func TestShardLoadV1BackCompat(t *testing.T) {
	ts := datasets.RandomWalk(55, 1100)
	const l = 34
	ext := series.NewExtractor(ts, series.NormGlobal)
	count := series.NumSubsequences(len(ts), l)
	bounds := []int{0, count / 2, count}

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(Magic)
	binary.Write(bw, binary.LittleEndian, uint16(1)) // v1: no partition byte
	binary.Write(bw, binary.LittleEndian, uint32(len(bounds)-1))
	for _, b := range bounds {
		binary.Write(bw, binary.LittleEndian, uint64(b))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(bounds); i++ {
		ix, err := core.BuildRange(ext, core.Config{L: l}, bounds[i], bounds[i+1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}

	got, err := Load(bytes.NewReader(buf.Bytes()), ext, nil)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if got.NumShards() != 2 || got.PartitionByMean() {
		t.Fatalf("v1 stream loaded as %d shards, mean=%v", got.NumShards(), got.PartitionByMean())
	}
	ref, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := ext.ExtractCopy(300, l)
	if want, have := ref.Search(q, 0.5), got.Search(q, 0.5); !sameMatches(want, have) {
		t.Fatal("v1-loaded index answers differently")
	}
}

func sameMatches(a, b []series.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
