package shard

// Batch query fan-out: B validated queries run as (shard, subtree)
// work units where each unit traverses the arena ONCE for the whole
// batch (core.Frozen.SearchStatsBatchFrom / SearchTopKBatchFrom) —
// node bounds stream through the distance kernels once per node per
// unit instead of once per node per query. Per-query results and
// counters are identical to B separate fan-outs; only the work shape
// changes.

import (
	"context"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// PendingBatchSearch holds the per-unit results of one enqueued batch
// range search; Resolve assembles them after the group completes —
// the batch counterpart of PendingSearch.
type PendingBatchSearch struct {
	res    [][][][]series.Match // [shard][unit][query] match lists, batch traversal order
	st     [][][]core.Stats     // [shard][unit][query]
	nq     int
	byMean bool
}

// QueueSearchBatch enqueues the (shard, subtree) units of one batch
// range search into g and returns a handle to assemble the per-query
// results. Call Resolve only after g.Wait() returns.
func (s *Index) QueueSearchBatch(g *exec.Group, qs [][]float64, eps float64) *PendingBatchSearch {
	s.ensureFrozen()
	return queueSearchBatchUnits(g, nil, s.frozen, s.unitFrontiers(), s.byMean, qs, eps)
}

// queueSearchBatchUnits enqueues the (shard, subtree) units of one
// batch range search over frozen/fr into g — the batch counterpart of
// queueSearchUnits, shared by Index and Subset. A nil ctx never
// cancels.
func queueSearchBatchUnits(g *exec.Group, ctx context.Context, frozen []*core.Frozen, fr [][]core.FrozenSubtree, byMean bool, qs [][]float64, eps float64) *PendingBatchSearch {
	p := &PendingBatchSearch{
		res:    make([][][][]series.Match, len(fr)),
		st:     make([][][]core.Stats, len(fr)),
		nq:     len(qs),
		byMean: byMean,
	}
	for i, units := range fr {
		p.res[i] = make([][][]series.Match, len(units))
		p.st[i] = make([][]core.Stats, len(units))
		f := frozen[i]
		for j, u := range units {
			g.Go(func(*exec.Ctx) {
				if canceled(ctx) {
					return
				}
				p.res[i][j], p.st[i][j] = f.SearchStatsBatchFrom(u, qs, eps)
			})
		}
	}
	return p
}

// Resolve merges the unit results per query with exactly the merge
// PendingSearch.Resolve applies to a single query: per-shard
// concatenation and sort by start, then the partition merge. Entry i
// of both returns covers query i.
func (p *PendingBatchSearch) Resolve() ([][]series.Match, []core.Stats) {
	out := make([][]series.Match, p.nq)
	sts := make([]core.Stats, p.nq)
	for qi := 0; qi < p.nq; qi++ {
		var st core.Stats
		total := 0
		per := make([][]series.Match, len(p.res))
		for i := range p.res {
			n := 0
			for j := range p.res[i] {
				if p.st[i][j] != nil {
					st = addStats(st, p.st[i][j][qi])
				}
				if p.res[i][j] != nil {
					n += len(p.res[i][j][qi])
				}
			}
			ms := make([]series.Match, 0, n)
			for j := range p.res[i] {
				if p.res[i][j] != nil {
					ms = append(ms, p.res[i][j][qi]...)
				}
			}
			series.SortMatches(ms)
			per[i] = ms
			total += n
		}
		st.Results = total
		out[qi] = mergePartitioned(per, p.byMean)
		sts[qi] = st
	}
	return out, sts
}

// SearchStatsBatch runs one complete batch range search on the index:
// enqueue, wait, merge. Per-query results and counters equal B calls
// to SearchStats.
func (s *Index) SearchStatsBatch(qs [][]float64, eps float64) ([][]series.Match, []core.Stats) {
	s.ensureFrozen()
	g := s.ex.NewGroup()
	p := s.QueueSearchBatch(g, qs, eps)
	g.Wait()
	return p.Resolve()
}

// SearchStatsBatchCtx is Subset's batch range search honoring
// cancellation — the batch counterpart of Subset.SearchStats.
func (s *Subset) SearchStatsBatchCtx(ctx context.Context, qs [][]float64, eps float64) ([][]series.Match, []core.Stats, error) {
	if canceled(ctx) {
		return nil, nil, ctx.Err()
	}
	g := s.ex.NewGroup()
	p := queueSearchBatchUnits(g, ctx, s.frozen, s.unitFrontiers(), s.byMean, qs, eps)
	g.Wait()
	if canceled(ctx) {
		return nil, nil, ctx.Err()
	}
	ms, st := p.Resolve()
	return ms, st, nil
}

// SearchTopKBatch answers B top-k queries with one fan-out: every
// (shard, subtree) unit traverses once for the whole batch, and each
// query carries its own cross-unit pruning bound. Per-query merged
// results equal B calls to SearchTopK.
func (s *Index) SearchTopKBatch(qs [][]float64, k int) [][]series.Match {
	s.ensureFrozen()
	return searchTopKBatchUnits(nil, s.ex, s.frozen, s.unitFrontiers, qs, k)
}

// searchTopKBatchUnits is the batch counterpart of searchTopKUnits:
// one shared bound per query, every unit a batch descent, per-query
// k-way merges of the unit lists.
func searchTopKBatchUnits(ctx context.Context, ex *exec.Executor, frozen []*core.Frozen, fr func() [][]core.FrozenSubtree, qs [][]float64, k int) [][]series.Match {
	nq := len(qs)
	out := make([][]series.Match, nq)
	if k <= 0 || nq == 0 {
		return out
	}
	shared := make([]*core.SharedBound, nq)
	for i := range shared {
		shared[i] = core.NewSharedBound()
	}
	if len(frozen) == 1 {
		return frozen[0].SearchTopKBatchFrom(frozen[0].Root(), qs, k, shared)
	}
	units := fr()
	n := 0
	for _, u := range units {
		n += len(u)
	}
	lists := make([][][]series.Match, n) // [unit][query]
	g := ex.NewGroup()
	at := 0
	for i, us := range units {
		f := frozen[i]
		for _, u := range us {
			slot := at
			at++
			g.Go(func(*exec.Ctx) {
				if canceled(ctx) {
					return
				}
				lists[slot] = f.SearchTopKBatchFrom(u, qs, k, shared)
			})
		}
	}
	g.Wait()
	per := make([][]series.Match, n)
	for qi := 0; qi < nq; qi++ {
		for slot := range lists {
			if lists[slot] != nil {
				per[slot] = lists[slot][qi]
			} else {
				per[slot] = nil
			}
		}
		out[qi] = mergeTopK(per, k)
	}
	return out
}
