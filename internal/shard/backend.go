package shard

// Backend abstracts "something that can answer the five TS-Index search
// paths over a set of shards" — the seam the distributed tier
// (internal/cluster) plugs into. Three implementations exist: the full
// local Index (via Local), a Subset serving an assigned slice of a
// saved index's shards, and cluster's HTTP client talking to a remote
// node that itself wraps a Subset. A coordinator fans one query across
// several Backends whose shard sets partition the saved index and
// recombines with the same deterministic merges the local fan-out uses,
// so the answer never depends on where the shards live.
//
// Contracts shared by every implementation:
//
//   - Queries are in the engine's normalized value space (the caller
//     transforms once; see Engine.PrepareQuery).
//   - Range-style results (Search/Stats/PrefixTree/Approx) are sorted
//     by start position; top-k results by the (dist, start) total
//     order. Result sets from backends over disjoint shard sets are
//     disjoint, so a k-way merge reproduces the single-engine order.
//   - SearchPrefixTree reports prefix twins among the backend's indexed
//     starts only — no tail scan. The windows that exist only at the
//     shorter query length belong to no shard; exactly one party (the
//     coordinator, or SearchPrefix on a full local index) scans them.
//   - SearchTopK's bound seeds the traversal's shared pruning bound:
//     subtrees whose lower bound strictly exceeds it are skipped, so a
//     coordinator can broadcast its current k-th threshold to prune
//     remote work. math.Inf(1) means unbounded. Because pruning is on
//     strict inequality — identical to the bound one fan-out unit
//     publishes to another — seeding never changes the merged top-k.
//   - ctx cancels remaining work: queued work units are skipped and
//     remote calls abandoned once ctx is done, and the call returns
//     ctx.Err().
//   - Replica interchangeability: two Backends opened over the same
//     shard set of the same saved index are answer-equivalent — every
//     method returns the same matches AND the same Stats counters for
//     the same arguments, because a saved index freezes tree shape and
//     traversal order. The cluster tier's failover and hedging rest on
//     this: whichever replica answers a unit, the bytes are the same.
//     Implementations must stay deterministic per (index bytes, shard
//     set, query) — no randomized traversal, no time-dependent
//     short-circuits.

import (
	"context"
	"fmt"
	"math"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/obs"
	"twinsearch/internal/series"
)

// Backend is one group of shards answering the five search paths; see
// the package-level contract above.
type Backend interface {
	Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error)
	SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error)
	SearchTopK(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error)
	SearchPrefixTree(ctx context.Context, q []float64, eps float64) ([]series.Match, error)
	SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error)

	// Windows is the number of indexed window positions the backend
	// serves (coordinators split approximate leaf budgets by it).
	Windows() int
	// ShardIDs lists the global shard indices served, ascending.
	ShardIDs() []int
	// MemoryBytes / MappedBytes report the heap-resident and
	// file-mapped footprints (0 for remote backends, which spend their
	// memory in another process).
	MemoryBytes() int
	MappedBytes() int
}

// MergeByStart k-way merges start-sorted, start-disjoint match lists
// into one start-sorted list — the deterministic range merge every
// fan-out layer (units→shard, shard→index, node→coordinator) reuses.
func MergeByStart(per [][]series.Match) []series.Match {
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	if total == 0 {
		return nil
	}
	return mergeByStart(per, total)
}

// MergeTopK k-way merges start-disjoint, (dist, start)-sorted lists and
// returns the first k under that total order — the deterministic top-k
// merge shared with the coordinator.
func MergeTopK(per [][]series.Match, k int) []series.Match {
	return mergeTopK(per, k)
}

// AddStats sums two traversal-counter records field by field — the one
// accumulation every fan-out layer (units→shard, node→coordinator)
// must share, so a new counter cannot be summed in one place and
// dropped in another.
func AddStats(a, b core.Stats) core.Stats {
	return addStats(a, b)
}

// canceled reports whether ctx is already done. Work units poll it
// before traversing — a unit costs microseconds, so unit granularity is
// fine-grained enough for a disconnected client to stop burning
// executor time.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// queueSearchUnits enqueues the (shard, subtree) units of one range
// search over frozen/fr into g — the core of QueueSearch, shared with
// Subset. A nil ctx never cancels.
func queueSearchUnits(g *exec.Group, ctx context.Context, frozen []*core.Frozen, fr [][]core.FrozenSubtree, byMean bool, q []float64, eps float64) *PendingSearch {
	p := &PendingSearch{
		res:    make([][][]series.Match, len(fr)),
		st:     make([][]core.Stats, len(fr)),
		byMean: byMean,
	}
	for i, units := range fr {
		p.res[i] = make([][]series.Match, len(units))
		p.st[i] = make([]core.Stats, len(units))
		f := frozen[i]
		for j, u := range units {
			g.Go(func(*exec.Ctx) {
				if canceled(ctx) {
					return
				}
				p.res[i][j], p.st[i][j] = f.SearchStatsFrom(u, q, eps)
			})
		}
	}
	return p
}

// searchStatsUnits runs one complete range search over frozen/fr:
// enqueue, wait, merge. direct selects the whole-tree fast path for a
// lone shard — only valid when that shard IS the whole index: a subset
// serving one shard of a larger container must still traverse frontier
// units so its counters (which skip nodes above unit roots) agree with
// the full fan-out's.
func searchStatsUnits(ctx context.Context, ex *exec.Executor, frozen []*core.Frozen, fr func() [][]core.FrozenSubtree, byMean bool, q []float64, eps float64, direct bool) ([]series.Match, core.Stats, error) {
	if canceled(ctx) {
		return nil, core.Stats{}, ctx.Err()
	}
	sp := obs.SpanFrom(ctx)
	if direct && len(frozen) == 1 {
		tsp := sp.StartChild("traverse")
		ms, st := frozen[0].SearchStats(q, eps)
		setShardAttrs(tsp, st, 0)
		tsp.End()
		return ms, st, nil
	}
	g := ex.NewGroup()
	tsp := sp.StartChild("traverse")
	p := queueSearchUnits(g, ctx, frozen, fr(), byMean, q, eps)
	g.Wait()
	if tsp != nil {
		// Per-shard counter subtrees are assembled after the barrier
		// from the already-collected unit stats, so the hot work-unit
		// closures stay untouched by tracing. Unit timings interleave
		// across workers; the shard spans carry counters, not durations.
		tsp.Set("steals", int(g.Steals()))
		for i := range p.st {
			var st core.Stats
			for _, u := range p.st[i] {
				st = addStats(st, u)
			}
			ssp := tsp.StartChild(fmt.Sprintf("shard[%d]", i))
			setShardAttrs(ssp, st, len(p.st[i]))
			ssp.End()
		}
	}
	tsp.End()
	if canceled(ctx) {
		return nil, core.Stats{}, ctx.Err()
	}
	msp := sp.StartChild("merge")
	ms, st := p.Resolve()
	msp.End()
	return ms, st, nil
}

// setShardAttrs annotates one shard's traversal span with its summed
// counters. units == 0 means the whole-tree direct path. Nil-safe.
func setShardAttrs(sp *obs.Span, st core.Stats, units int) {
	if sp == nil {
		return
	}
	if units > 0 {
		sp.Set("units", units)
	}
	sp.Set("nodes_visited", st.NodesVisited)
	sp.Set("nodes_pruned", st.NodesPruned)
	sp.Set("leaves_reached", st.LeavesReached)
	sp.Set("candidates", st.Candidates)
	sp.Set("abandons", st.Abandons)
	// Results is deliberately omitted: unit stats carry 0 until the
	// merge resolves the final set; the root span reports it.
}

// searchTopKUnits runs one top-k search over frozen/fr with the shared
// pruning bound seeded to bound (math.Inf(1) = unbounded). Seeding only
// tightens the initial threshold; pruning stays on strict inequality,
// so the merged result equals the unseeded traversal's whenever bound
// is an upper bound on the true k-th distance.
func searchTopKUnits(ctx context.Context, ex *exec.Executor, frozen []*core.Frozen, fr func() [][]core.FrozenSubtree, q []float64, k int, bound float64) ([]series.Match, error) {
	if k <= 0 {
		return nil, nil
	}
	if canceled(ctx) {
		return nil, ctx.Err()
	}
	shared := core.NewSharedBound()
	if !math.IsInf(bound, 1) {
		shared.Tighten(bound)
	}
	if len(frozen) == 1 {
		return frozen[0].SearchTopKShared(q, k, shared), nil
	}
	units := fr()
	n := 0
	for _, u := range units {
		n += len(u)
	}
	lists := make([][]series.Match, n)
	g := ex.NewGroup()
	at := 0
	for i, us := range units {
		f := frozen[i]
		for _, u := range us {
			slot := at
			at++
			g.Go(func(*exec.Ctx) {
				if canceled(ctx) {
					return
				}
				lists[slot] = f.SearchTopKSharedFrom(u, q, k, shared)
			})
		}
	}
	g.Wait()
	if canceled(ctx) {
		return nil, ctx.Err()
	}
	return mergeTopK(lists, k), nil
}

// searchPrefixUnits runs the tree half of one prefix search over
// frozen/fr: truncated-bound traversal of every unit, per-shard sort,
// partition merge. The tail windows are NOT scanned here — the caller
// decides who scans them exactly once.
func searchPrefixUnits(ctx context.Context, ex *exec.Executor, frozen []*core.Frozen, fr func() [][]core.FrozenSubtree, byMean bool, q []float64, eps float64) ([]series.Match, error) {
	if err := frozen[0].ValidatePrefix(q); err != nil {
		return nil, err
	}
	if canceled(ctx) {
		return nil, ctx.Err()
	}
	if len(frozen) == 1 {
		return frozen[0].SearchPrefixTree(q, eps)
	}
	units := fr()
	res := make([][][]series.Match, len(units))
	g := ex.NewGroup()
	for i, us := range units {
		res[i] = make([][]series.Match, len(us))
		f := frozen[i]
		for j, u := range us {
			g.Go(func(*exec.Ctx) {
				if canceled(ctx) {
					return
				}
				res[i][j] = f.SearchPrefixTreeFrom(u, q, eps)
			})
		}
	}
	g.Wait()
	if canceled(ctx) {
		return nil, ctx.Err()
	}
	per := make([][]series.Match, len(units))
	for i := range res {
		var ms []series.Match
		for _, unit := range res[i] {
			ms = append(ms, unit...)
		}
		series.SortMatches(ms)
		per[i] = ms
	}
	return mergePartitioned(per, byMean), nil
}

// searchApproxUnits runs one approximate search over frozen, drawing
// leaves from a single shared budget across the shards.
func searchApproxUnits(ctx context.Context, ex *exec.Executor, frozen []*core.Frozen, byMean bool, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	if canceled(ctx) {
		return nil, core.Stats{}, ctx.Err()
	}
	if len(frozen) == 1 {
		ms, st := frozen[0].SearchApprox(q, eps, leafBudget)
		return ms, st, nil
	}
	budget := core.NewLeafBudget(leafBudget)
	per := make([][]series.Match, len(frozen))
	stats := make([]core.Stats, len(frozen))
	g := ex.NewGroup()
	for i, f := range frozen {
		g.Go(func(*exec.Ctx) {
			if canceled(ctx) {
				return
			}
			per[i], stats[i] = f.SearchApproxShared(q, eps, budget)
		})
	}
	g.Wait()
	if canceled(ctx) {
		return nil, core.Stats{}, ctx.Err()
	}
	var st core.Stats
	for _, x := range stats {
		st = addStats(st, x)
	}
	return mergePartitioned(per, byMean), st, nil
}

// --- ctx-aware entry points on the full local index ---

// SearchCtx is Search honoring cancellation: once ctx is done, queued
// work units are skipped and the call returns ctx.Err().
func (s *Index) SearchCtx(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := s.SearchStatsCtx(ctx, q, eps)
	return ms, err
}

// SearchStatsCtx is SearchStats honoring cancellation.
func (s *Index) SearchStatsCtx(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	s.ensureFrozen()
	return searchStatsUnits(ctx, s.ex, s.frozen, s.unitFrontiers, s.byMean, q, eps, true)
}

// SearchTopKCtx is SearchTopK honoring cancellation, with the shared
// pruning bound seeded to bound (math.Inf(1) = unbounded; see Backend).
func (s *Index) SearchTopKCtx(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error) {
	s.ensureFrozen()
	return searchTopKUnits(ctx, s.ex, s.frozen, s.unitFrontiers, q, k, bound)
}

// SearchPrefixTreeCtx is the tree half of SearchPrefix honoring
// cancellation: prefix twins among the indexed starts only, no tail
// scan (the Backend contract).
func (s *Index) SearchPrefixTreeCtx(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	s.ensureFrozen()
	return searchPrefixUnits(ctx, s.ex, s.frozen, s.unitFrontiers, s.byMean, q, eps)
}

// SearchApproxCtx is SearchApprox honoring cancellation.
func (s *Index) SearchApproxCtx(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	s.ensureFrozen()
	return searchApproxUnits(ctx, s.ex, s.frozen, s.byMean, q, eps, leafBudget)
}

// Local adapts the full index to the Backend interface — the form a
// coordinator process uses to serve every shard itself, and the
// reference implementation the differential tests compare remote
// topologies against.
type Local struct{ Ix *Index }

var _ Backend = Local{}

// Search implements Backend.
func (l Local) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	return l.Ix.SearchCtx(ctx, q, eps)
}

// SearchStats implements Backend.
func (l Local) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	return l.Ix.SearchStatsCtx(ctx, q, eps)
}

// SearchTopK implements Backend.
func (l Local) SearchTopK(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error) {
	return l.Ix.SearchTopKCtx(ctx, q, k, bound)
}

// SearchPrefixTree implements Backend.
func (l Local) SearchPrefixTree(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	return l.Ix.SearchPrefixTreeCtx(ctx, q, eps)
}

// SearchApprox implements Backend.
func (l Local) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	return l.Ix.SearchApproxCtx(ctx, q, eps, leafBudget)
}

// Windows implements Backend.
func (l Local) Windows() int { return l.Ix.Len() }

// ShardIDs implements Backend.
func (l Local) ShardIDs() []int {
	ids := make([]int, l.Ix.NumShards())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// MemoryBytes implements Backend.
func (l Local) MemoryBytes() int { return l.Ix.MemoryBytes() }

// MappedBytes implements Backend.
func (l Local) MappedBytes() int { return l.Ix.MappedBytes() }
