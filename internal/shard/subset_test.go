package shard

import (
	"context"
	"encoding/binary"
	"math"
	"os"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/series"
)

// saveSharded builds a sharded index and writes its v3 stream to a temp
// file, returning the index, the path, and the stream size.
func saveSharded(t *testing.T, ext *series.Extractor, cfg Config) (*Index, string, int64) {
	t.Helper()
	ix, err := Build(ext, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "subset-*.tsidx")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ix.WriteTo(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return ix, f.Name(), n
}

// TestOpenArenaShardsSelective proves the acceptance criterion: a node
// opening 2 of 4 shards from a mapped v3 file maps strictly less than
// the file, serves exactly its shards' windows, and answers every
// search path identically to a reference index over the same positions.
func TestOpenArenaShardsSelective(t *testing.T) {
	const l = 32
	data := synthetic(3000, 7)
	ext := series.NewExtractor(data, series.NormGlobal)
	ix, path, fileSize := saveSharded(t, ext, Config{Config: core.Config{L: l}, Shards: 4})

	if !arena.MapSupported() || !arena.LittleEndianHost() {
		t.Skip("no mmap on this platform")
	}
	ar, err := arena.Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()

	sub, err := OpenArenaShards(ar, ext, nil, []int{2, 1}) // any order in, ascending out
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.ShardIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ShardIDs = %v, want [1 2]", got)
	}
	if sub.TotalShards() != 4 {
		t.Fatalf("TotalShards = %d, want 4", sub.TotalShards())
	}

	// Selective mapping: only the two assigned segments are viewed, so
	// the mapped footprint must be a strict fraction of the file.
	mb := sub.MappedBytes()
	if mb <= 0 || int64(mb) >= fileSize {
		t.Fatalf("MappedBytes = %d, want in (0, %d)", mb, fileSize)
	}

	lo, hi, ok := ix.Range(1)
	if !ok {
		t.Fatal("contiguous index reports no range")
	}
	_, hi2, _ := ix.Range(2)
	hi = hi2
	if sub.Windows() != hi-lo {
		t.Fatalf("Windows = %d, range [%d, %d) spans %d", sub.Windows(), lo, hi, hi-lo)
	}

	// Reference: an index over exactly the subset's position range. Any
	// exact index over the same positions answers identically.
	ref, err := core.BuildRange(ext, core.Config{L: l}, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	rf := ref.Freeze()

	ctx := context.Background()
	for _, qp := range []int{100, 1500, 2900} {
		q := ext.ExtractCopy(qp, l)
		for _, eps := range []float64{0.05, 0.3, 1.0} {
			want, wantSt := rf.SearchStats(q, eps)
			got, gotSt, err := sub.SearchStats(ctx, q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !equalMatches(want, got) {
				t.Fatalf("q=%d eps=%g: subset %v, reference %v", qp, eps, matchStarts(got), matchStarts(want))
			}
			if gotSt.Results != wantSt.Results || gotSt.Results != len(got) {
				t.Fatalf("q=%d eps=%g: Results=%d, want %d", qp, eps, gotSt.Results, wantSt.Results)
			}
		}
		wantK := rf.SearchTopK(q, 7)
		gotK, err := sub.SearchTopK(ctx, q, 7, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(wantK, gotK) {
			t.Fatalf("q=%d topk: subset %v, reference %v", qp, gotK, wantK)
		}
		// Prefix: tree half only; reference likewise.
		short := q[:l/2]
		wantP, err := rf.SearchPrefixTree(short, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		gotP, err := sub.SearchPrefixTree(ctx, short, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(wantP, gotP) {
			t.Fatalf("q=%d prefix: subset %v, reference %v", qp, matchStarts(gotP), matchStarts(wantP))
		}
		// Approx with a saturating budget probes everything: exact.
		wantA, _ := rf.SearchApprox(q, 0.3, 2*rf.Len())
		gotA, _, err := sub.SearchApprox(ctx, q, 0.3, 2*sub.Windows())
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(wantA, gotA) {
			t.Fatalf("q=%d approx: subset %v, reference %v", qp, matchStarts(gotA), matchStarts(wantA))
		}
	}
}

// TestOpenArenaShardsMeanPartition checks a mean-partitioned subset
// merges its interleaved shards by start, matching the per-shard
// traversals of the fully loaded index.
func TestOpenArenaShardsMeanPartition(t *testing.T) {
	const l = 24
	data := synthetic(2200, 11)
	ext := series.NewExtractor(data, series.NormGlobal)
	ix, path, _ := saveSharded(t, ext, Config{Config: core.Config{L: l}, Shards: 4, PartitionByMean: true})

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Heap arena: the selective path works on any byte region.
	sub, err := OpenArenaShards(arena.FromBytes(raw), ext, nil, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.MappedBytes() != 0 {
		t.Fatalf("heap subset reports MappedBytes=%d", sub.MappedBytes())
	}
	if !sub.PartitionByMean() {
		t.Fatal("subset lost the partition scheme")
	}

	q := ext.ExtractCopy(500, l)
	for _, eps := range []float64{0.1, 0.6} {
		w0, _ := ix.Shard(0).SearchStats(q, eps)
		w3, _ := ix.Shard(3).SearchStats(q, eps)
		want := MergeByStart([][]series.Match{w0, w3})
		got, err := sub.Search(context.Background(), q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !equalMatches(want, got) {
			t.Fatalf("eps=%g: subset %v, want %v", eps, matchStarts(got), matchStarts(want))
		}
	}
}

// TestOpenArenaShardsRejects sweeps the invalid-assignment and
// unsupported-stream cases.
func TestOpenArenaShardsRejects(t *testing.T) {
	const l = 16
	data := synthetic(600, 3)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path, _ := saveSharded(t, ext, Config{Config: core.Config{L: l}, Shards: 3})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, ids := range map[string][]int{
		"empty":        {},
		"out-of-range": {0, 3},
		"negative":     {-1},
		"duplicate":    {1, 1},
	} {
		if _, err := OpenArenaShards(arena.FromBytes(raw), ext, nil, ids); err == nil {
			t.Errorf("%s assignment accepted", name)
		}
	}

	// Old container versions have no segment table to skip by; a v2
	// header must be refused before any segment is interpreted.
	v2 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(v2[4:], 2)
	if _, err := OpenArenaShards(arena.FromBytes(v2), ext, nil, []int{0}); err == nil {
		t.Error("v2 stream opened selectively")
	}
}

// TestSubsetCancellation checks a canceled context stops the fan-out
// with ctx.Err() instead of a partial answer.
func TestSubsetCancellation(t *testing.T) {
	const l = 16
	data := synthetic(800, 5)
	ext := series.NewExtractor(data, series.NormGlobal)
	_, path, _ := saveSharded(t, ext, Config{Config: core.Config{L: l}, Shards: 2})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := OpenArenaShards(arena.FromBytes(raw), ext, nil, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := ext.ExtractCopy(10, l)
	if _, _, err := sub.SearchStats(ctx, q, 0.3); err != context.Canceled {
		t.Fatalf("SearchStats on canceled ctx: %v", err)
	}
	if _, err := sub.SearchTopK(ctx, q, 3, math.Inf(1)); err != context.Canceled {
		t.Fatalf("SearchTopK on canceled ctx: %v", err)
	}
	if _, _, err := sub.SearchApprox(ctx, q, 0.3, 8); err != context.Canceled {
		t.Fatalf("SearchApprox on canceled ctx: %v", err)
	}
}
