package shard

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

func synthetic(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	phase := rng.Float64()
	for i := range out {
		out[i] = math.Sin(float64(i)/9+phase) + 0.3*math.Sin(float64(i)/41) + 0.15*rng.NormFloat64()
	}
	return out
}

var allModes = []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence}

func matchStarts(ms []series.Match) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Start
	}
	return out
}

func equalMatches(a, b []series.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParityWithSingleIndex asserts that, for every normalization mode,
// build style, and shard count, the sharded index answers Search,
// SearchStats, and SearchTopK identically to one core.Index over the
// whole series.
func TestParityWithSingleIndex(t *testing.T) {
	const l = 32
	data := synthetic(2000, 1)
	for _, mode := range allModes {
		ext := series.NewExtractor(data, mode)
		single, err := core.Build(ext, core.Config{L: l})
		if err != nil {
			t.Fatal(err)
		}
		queries := [][]float64{
			ext.ExtractCopy(137, l),
			ext.ExtractCopy(900, l),
			ext.ExtractCopy(len(data)-l, l),
		}
		for _, bulk := range []bool{false, true} {
			for _, p := range []int{1, 2, 3, 7} {
				sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: p, BulkLoad: bulk})
				if err != nil {
					t.Fatal(err)
				}
				if err := sh.CheckInvariants(); err != nil {
					t.Fatalf("mode=%v shards=%d bulk=%v: %v", mode, p, bulk, err)
				}
				if sh.NumShards() != p {
					t.Fatalf("built %d shards, want %d", sh.NumShards(), p)
				}
				for qi, q := range queries {
					for _, eps := range []float64{0, 0.05, 0.3, 1.5} {
						want, _ := single.SearchStats(q, eps)
						got, st := sh.SearchStats(q, eps)
						if !equalMatches(got, want) {
							t.Fatalf("mode=%v shards=%d bulk=%v q=%d eps=%g: got %v want %v",
								mode, p, bulk, qi, eps, matchStarts(got), matchStarts(want))
						}
						if st.Results != len(want) {
							t.Fatalf("stats.Results=%d, %d matches", st.Results, len(want))
						}
					}
					for _, k := range []int{1, 5, 40} {
						want := single.SearchTopK(q, k)
						got := sh.SearchTopK(q, k)
						if !equalMatches(got, want) {
							t.Fatalf("mode=%v shards=%d bulk=%v q=%d k=%d: topk got %v want %v",
								mode, p, bulk, qi, k, got, want)
						}
					}
				}
			}
		}
	}
}

// TestPrefixParity asserts sharded prefix search (shorter queries)
// agrees with the single index, including the tail windows.
func TestPrefixParity(t *testing.T) {
	const l = 48
	data := synthetic(1200, 3)
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal} {
		ext := series.NewExtractor(data, mode)
		single, err := core.Build(ext, core.Config{L: l})
		if err != nil {
			t.Fatal(err)
		}
		sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []int{8, 20, l} {
			q := ext.ExtractCopy(len(data)-pl, pl)
			want, err := single.SearchPrefix(q, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.SearchPrefix(q, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if !equalMatches(got, want) {
				t.Fatalf("mode=%v prefix l=%d: got %v want %v", mode, pl, matchStarts(got), matchStarts(want))
			}
		}
	}
	// Per-subsequence mode must be rejected, matching the single index.
	ext := series.NewExtractor(data, series.NormPerSubsequence)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SearchPrefix(make([]float64, 10), 0.2); err == nil {
		t.Fatal("expected prefix search rejection under per-subsequence normalization")
	}
}

// TestApproxIsSubset checks the sharded approximate search returns a
// subset of the exact result set and respects the leaf budget.
func TestApproxIsSubset(t *testing.T) {
	const l = 32
	data := synthetic(3000, 5)
	ext := series.NewExtractor(data, series.NormGlobal)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ext.ExtractCopy(500, l)
	exact := sh.Search(q, 0.3)
	inExact := map[int]bool{}
	for _, m := range exact {
		inExact[m.Start] = true
	}
	for _, budget := range []int{1, 2, 8, 100} {
		got, st := sh.SearchApprox(q, 0.3, budget)
		if st.LeavesReached > budget {
			t.Fatalf("budget %d: probed %d leaves", budget, st.LeavesReached)
		}
		for _, m := range got {
			if !inExact[m.Start] {
				t.Fatalf("budget %d: approximate match %d not in exact set", budget, m.Start)
			}
		}
	}
}

// TestInsertRouting appends trailing windows and inserts into interior
// shards, then checks searches still agree with a fresh single index.
func TestInsertRouting(t *testing.T) {
	const l = 16
	data := synthetic(400, 7)
	ext := series.NewExtractor(data, series.NormNone)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := sh.Len()
	ext.Append(synthetic(60, 8)...)
	for p := before; p+l <= ext.Len(); p++ {
		sh.Insert(p)
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	single, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := ext.ExtractCopy(ext.Len()-l, l)
	want := single.Search(q, 0.25)
	got := sh.Search(q, 0.25)
	if !equalMatches(got, want) {
		t.Fatalf("after append: got %v want %v", matchStarts(got), matchStarts(want))
	}
}

// TestPersistRoundTrip saves and reloads a sharded index and checks the
// reloaded copy answers identically.
func TestPersistRoundTrip(t *testing.T) {
	const l = 24
	data := synthetic(1500, 11)
	for _, mode := range allModes {
		ext := series.NewExtractor(data, mode)
		sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 4, BulkLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		var blob bytes.Buffer
		n, err := sh.WriteTo(&blob)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(blob.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, blob.Len())
		}
		re, err := Load(bytes.NewReader(blob.Bytes()), ext, nil)
		if err != nil {
			t.Fatal(err)
		}
		if re.NumShards() != sh.NumShards() || re.Len() != sh.Len() || re.L() != sh.L() {
			t.Fatalf("reloaded shape mismatch: %d/%d/%d vs %d/%d/%d",
				re.NumShards(), re.Len(), re.L(), sh.NumShards(), sh.Len(), sh.L())
		}
		q := ext.ExtractCopy(700, l)
		if !equalMatches(re.Search(q, 0.3), sh.Search(q, 0.3)) {
			t.Fatalf("mode=%v: reloaded index answers differently", mode)
		}
		if !equalMatches(re.SearchTopK(q, 9), sh.SearchTopK(q, 9)) {
			t.Fatalf("mode=%v: reloaded top-k differs", mode)
		}
	}
}

// TestPersistRejectsMismatch checks corrupted or mismatched streams are
// rejected rather than silently misloaded.
func TestPersistRejectsMismatch(t *testing.T) {
	const l = 24
	data := synthetic(800, 13)
	ext := series.NewExtractor(data, series.NormGlobal)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := sh.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}

	if _, err := Load(bytes.NewReader([]byte("JUNKJUNKJUNK")), ext, nil); err == nil {
		t.Fatal("expected bad-magic rejection")
	}
	truncated := blob.Bytes()[:blob.Len()/2]
	if _, err := Load(bytes.NewReader(truncated), ext, nil); err == nil {
		t.Fatal("expected truncated-stream rejection")
	}
	otherExt := series.NewExtractor(synthetic(800, 99), series.NormGlobal)
	if _, err := Load(bytes.NewReader(blob.Bytes()), otherExt, nil); err == nil {
		t.Fatal("expected wrong-series rejection")
	}
	shorterExt := series.NewExtractor(data[:700], series.NormGlobal)
	if _, err := Load(bytes.NewReader(blob.Bytes()), shorterExt, nil); err == nil {
		t.Fatal("expected wrong-length rejection")
	}
}

// TestBuildErrors covers the constructor's validation paths.
func TestBuildErrors(t *testing.T) {
	ext := series.NewExtractor(synthetic(100, 17), series.NormNone)
	if _, err := Build(ext, Config{Config: core.Config{L: 0}}); err == nil {
		t.Fatal("expected invalid-L rejection")
	}
	if _, err := Build(ext, Config{Config: core.Config{L: 200}}); err == nil {
		t.Fatal("expected short-series rejection")
	}
	// More shards than windows must clamp, not fail.
	sh, err := Build(ext, Config{Config: core.Config{L: 99}, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 2 { // 100-99+1 = 2 windows
		t.Fatalf("got %d shards for 2 windows", sh.NumShards())
	}
}

// TestConcurrentBuildAndSearch exercises concurrent sharded builds and
// concurrent searches over one sharded index; run under -race this
// guards the fan-out paths.
func TestConcurrentBuildAndSearch(t *testing.T) {
	const l = 32
	data := synthetic(2500, 19)
	ext := series.NewExtractor(data, series.NormGlobal)
	single, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		sh  *Index
		err error
	}
	results := make(chan res, 4)
	for i := 0; i < 4; i++ {
		go func(bulk bool) {
			sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 4, BulkLoad: bulk})
			results <- res{sh, err}
		}(i%2 == 0)
	}
	var sh *Index
	for i := 0; i < 4; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		sh = r.sh
	}

	done := make(chan []series.Match, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			q := ext.ExtractCopy(i*250, l)
			if i%2 == 0 {
				done <- sh.Search(q, 0.3)
			} else {
				done <- sh.SearchTopK(q, 10)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		if ms := <-done; len(ms) == 0 {
			t.Fatal("concurrent search returned nothing (every query has at least its own window)")
		}
	}

	q := ext.ExtractCopy(1000, l)
	if !equalMatches(sh.Search(q, 0.3), single.Search(q, 0.3)) {
		t.Fatal("concurrently built shard index disagrees with single index")
	}
}

// TestSkewedBoundariesParity builds deliberately imbalanced partitions
// (the last shard holding ~90% of the windows) and asserts every query
// kind still answers identically to a single index, across executors
// of different widths — the work-stealing property under test is that
// partition skew may move work between workers but never changes an
// answer.
func TestSkewedBoundariesParity(t *testing.T) {
	const l = 32
	data := synthetic(2400, 23)
	for _, mode := range allModes {
		ext := series.NewExtractor(data, mode)
		single, err := core.Build(ext, core.Config{L: l})
		if err != nil {
			t.Fatal(err)
		}
		count := series.NumSubsequences(len(data), l)
		head := count / 10
		bounds := []int{0, head / 3, 2 * head / 3, head, count}
		queries := [][]float64{
			ext.ExtractCopy(100, l),
			ext.ExtractCopy(count-1, l), // deep inside the hot shard
		}
		for _, workers := range []int{1, 3, 8} {
			sh, err := Build(ext, Config{
				Config: core.Config{L: l}, Boundaries: bounds,
				Executor: exec.New(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sh.CheckInvariants(); err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			for qi, q := range queries {
				for _, eps := range []float64{0.05, 0.4} {
					want, _ := single.SearchStats(q, eps)
					got, st := sh.SearchStats(q, eps)
					if !equalMatches(got, want) {
						t.Fatalf("mode=%v workers=%d q=%d eps=%g: got %v want %v",
							mode, workers, qi, eps, matchStarts(got), matchStarts(want))
					}
					if st.Results != len(want) {
						t.Fatalf("stats.Results=%d, %d matches", st.Results, len(want))
					}
				}
				for _, k := range []int{1, 12, 60} {
					want := single.SearchTopK(q, k)
					got := sh.SearchTopK(q, k)
					if !equalMatches(got, want) {
						t.Fatalf("mode=%v workers=%d q=%d k=%d: topk differs", mode, workers, qi, k)
					}
				}
				if mode != series.NormPerSubsequence {
					want, err := single.SearchPrefix(q[:l/2], 0.3)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.SearchPrefix(q[:l/2], 0.3)
					if err != nil {
						t.Fatal(err)
					}
					if !equalMatches(got, want) {
						t.Fatalf("mode=%v workers=%d q=%d: prefix differs", mode, workers, qi)
					}
				}
			}
		}
	}
}

// TestBoundariesValidation covers the explicit-partition error paths.
func TestBoundariesValidation(t *testing.T) {
	const l = 16
	data := synthetic(300, 29)
	ext := series.NewExtractor(data, series.NormNone)
	count := series.NumSubsequences(len(data), l)
	cases := []struct {
		name   string
		shards int
		b      []int
	}{
		{"too short", 0, []int{0}},
		{"shards mismatch", 3, []int{0, count / 2, count}},
		{"not starting at zero", 0, []int{1, count}},
		{"not ending at count", 0, []int{0, count - 1}},
		{"empty range", 0, []int{0, 10, 10, count}},
		{"decreasing", 0, []int{0, 40, 20, count}},
	}
	for _, tc := range cases {
		_, err := Build(ext, Config{Config: core.Config{L: l}, Shards: tc.shards, Boundaries: tc.b})
		if err == nil {
			t.Fatalf("%s: boundaries %v accepted", tc.name, tc.b)
		}
	}
	// A valid explicit partition builds, with Shards agreeing or unset.
	for _, shards := range []int{0, 2} {
		sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: shards, Boundaries: []int{0, count / 4, count}})
		if err != nil {
			t.Fatal(err)
		}
		if sh.NumShards() != 2 {
			t.Fatalf("built %d shards from explicit boundaries", sh.NumShards())
		}
		if err := sh.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSkewedConcurrentSearch hammers a skewed index from many
// goroutines; under -race this guards the executor's whole fan-out
// surface including frontier caching.
func TestSkewedConcurrentSearch(t *testing.T) {
	const l = 32
	data := synthetic(3000, 31)
	ext := series.NewExtractor(data, series.NormGlobal)
	count := series.NumSubsequences(len(data), l)
	head := count / 10
	sh, err := Build(ext, Config{
		Config: core.Config{L: l}, Boundaries: []int{0, head, count},
		Executor: exec.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 12)
	for g := 0; g < 12; g++ {
		go func(g int) {
			q := ext.ExtractCopy((g*251)%(count-1), l)
			switch g % 3 {
			case 0:
				want, _ := single.SearchStats(q, 0.3)
				if got := sh.Search(q, 0.3); !equalMatches(got, want) {
					done <- fmt.Errorf("goroutine %d: search differs", g)
					return
				}
			case 1:
				if got, want := sh.SearchTopK(q, 8), single.SearchTopK(q, 8); !equalMatches(got, want) {
					done <- fmt.Errorf("goroutine %d: topk differs", g)
					return
				}
			default:
				ms, st := sh.SearchApprox(q, 0.3, 6)
				if st.LeavesReached > 6 {
					done <- fmt.Errorf("goroutine %d: approx probed %d leaves", g, st.LeavesReached)
					return
				}
				exact := map[int]bool{}
				for _, m := range single.Search(q, 0.3) {
					exact[m.Start] = true
				}
				for _, m := range ms {
					if !exact[m.Start] {
						done <- fmt.Errorf("goroutine %d: approx hit %d not exact", g, m.Start)
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 12; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
