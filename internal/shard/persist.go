package shard

// Sharded index persistence: a small header naming the partition,
// followed by each shard's self-delimiting stream. Version 2 stores
// every shard as its frozen arena (core/frozen_persist.go) — saving
// writes the flat arrays as-is and loading is a few sequential reads
// per shard straight into the final slices, no tree rebuild. Version 1
// streams (pointer trees, core/persist.go) are still accepted and are
// frozen on load. Like the single-index formats, the series itself is
// not embedded; Load revalidates each shard against the supplied
// extractor.
//
// Format (little-endian):
//
//	magic "TSSH", version u16
//	v2: partition u8 (0 = contiguous ranges, 1 = mean-sorted runs)
//	shardCount u32
//	contiguous: (shardCount+1) × u64 range boundaries
//	mean:       (shardCount−1) × f64 routing cut keys
//	shardCount × shard streams:
//	  v2: core.Frozen streams ("TSFZ", see core/frozen_persist.go)
//	  v1: core.Index streams ("TSIX", see core/persist.go)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Magic is the stream prefix identifying a sharded index; callers that
// accept both formats sniff it to dispatch (see twinsearch.OpenSaved).
const Magic = "TSSH"

const (
	persistVersion1 = 1
	persistVersion  = 2
)

const (
	partitionRange = 0
	partitionMean  = 1
)

// maxShards bounds the header's shard count on load; real shard counts
// are a small multiple of the core count, so anything enormous is a
// corrupt or hostile stream, rejected before allocation.
const maxShards = 1 << 20

// WriteTo serializes the sharded index in the current (frozen, v2)
// format, re-freezing any shards left stale by Insert first. It
// implements io.WriterTo.
func (s *Index) WriteTo(w io.Writer) (int64, error) {
	s.ensureFrozen()
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write([]byte(Magic)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(persistVersion)); err != nil {
		return cw.n, err
	}
	part := uint8(partitionRange)
	if s.byMean {
		part = partitionMean
	}
	if err := binary.Write(bw, binary.LittleEndian, part); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.frozen))); err != nil {
		return cw.n, err
	}
	if s.byMean {
		if err := binary.Write(bw, binary.LittleEndian, s.cuts); err != nil {
			return cw.n, err
		}
	} else {
		for _, b := range s.starts {
			if err := binary.Write(bw, binary.LittleEndian, uint64(b)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	for i, f := range s.frozen {
		if _, err := f.WriteTo(cw); err != nil {
			return cw.n, fmt.Errorf("shard: writing shard %d: %w", i, err)
		}
	}
	return cw.n, nil
}

// Load reconstructs a sharded index from a stream produced by WriteTo
// (either version), scheduling its queries on ex (nil selects the
// process-wide default executor). The extractor must present the same
// series and normalization the index was built with; every shard
// stream is validated exactly as its single-index loader validates it.
func Load(r io.Reader, ext *series.Extractor, ex *exec.Executor) (*Index, error) {
	// One buffered reader shared down into the per-shard loaders (which
	// reuse an existing *bufio.Reader instead of re-wrapping, so shard
	// streams are consumed exactly, not over-read).
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("shard: load: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("shard: load header: %w", err)
	}
	if version != persistVersion1 && version != persistVersion {
		return nil, fmt.Errorf("shard: load: unsupported version %d", version)
	}
	byMean := false
	if version >= persistVersion {
		var part uint8
		if err := binary.Read(br, binary.LittleEndian, &part); err != nil {
			return nil, fmt.Errorf("shard: load header: %w", err)
		}
		switch part {
		case partitionRange:
		case partitionMean:
			byMean = true
		default:
			return nil, fmt.Errorf("shard: load: unknown partition scheme %d", part)
		}
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("shard: load header: %w", err)
	}
	if count == 0 || count > maxShards {
		return nil, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	var starts []int
	var cuts []float64
	if byMean {
		cuts = make([]float64, count-1)
		if err := binary.Read(br, binary.LittleEndian, cuts); err != nil {
			return nil, fmt.Errorf("shard: load mean cuts: %w", err)
		}
		for i, c := range cuts {
			if math.IsNaN(c) {
				return nil, fmt.Errorf("shard: load: NaN mean cut %d", i)
			}
		}
	} else {
		starts = make([]int, count+1)
		for i := range starts {
			var b uint64
			if err := binary.Read(br, binary.LittleEndian, &b); err != nil {
				return nil, fmt.Errorf("shard: load boundaries: %w", err)
			}
			starts[i] = int(b)
		}
	}

	frozen := make([]*core.Frozen, count)
	l := 0
	for i := range frozen {
		var f *core.Frozen
		var err error
		if version == persistVersion1 {
			// v1 shards are pointer-tree streams; freeze on load.
			var ix *core.Index
			ix, err = core.Load(br, ext)
			if err == nil {
				f = ix.Freeze()
			}
		} else {
			f, err = core.LoadFrozen(br, ext)
		}
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", i, err)
		}
		if i == 0 {
			l = f.L()
		} else if f.L() != l {
			return nil, fmt.Errorf("shard: shard %d has L=%d, shard 0 has L=%d", i, f.L(), l)
		}
		frozen[i] = f
	}

	if ex == nil {
		ex = exec.Default()
	}
	s := &Index{ext: ext, l: l, frozen: frozen,
		pointer: make([]*core.Index, count), dirtyShard: make([]bool, count),
		byMean: byMean, starts: starts, cuts: cuts, ex: ex}
	// Partition invariants only: each shard stream was just validated in
	// full by its own loader, so re-walking every arena here would only
	// double the load cost.
	if err := s.checkPartition(); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	return s, nil
}

// countWriter tracks bytes written for WriteTo's contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
