package shard

// Sharded index persistence: a small header naming the partition,
// followed by each shard's self-delimiting core.Index stream. Like the
// single-index format, the series itself is not embedded; Load
// revalidates each shard stream against the supplied extractor.
//
// Format (little-endian):
//
//	magic "TSSH", version u16
//	shardCount u32
//	(shardCount+1) × u64 range boundaries
//	shardCount × core.Index streams (see core/persist.go)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Magic is the stream prefix identifying a sharded index; callers that
// accept both formats sniff it to dispatch (see twinsearch.OpenSaved).
const Magic = "TSSH"

const persistVersion = 1

// maxShards bounds the header's shard count on load; real shard counts
// are a small multiple of the core count, so anything enormous is a
// corrupt or hostile stream, rejected before allocation.
const maxShards = 1 << 20

// WriteTo serializes the sharded index. It implements io.WriterTo.
func (s *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write([]byte(Magic)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(persistVersion)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.shards))); err != nil {
		return cw.n, err
	}
	for _, b := range s.starts {
		if err := binary.Write(bw, binary.LittleEndian, uint64(b)); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	for i, ix := range s.shards {
		if _, err := ix.WriteTo(cw); err != nil {
			return cw.n, fmt.Errorf("shard: writing shard %d: %w", i, err)
		}
	}
	return cw.n, nil
}

// Load reconstructs a sharded index from a stream produced by WriteTo,
// scheduling its queries on ex (nil selects the process-wide default
// executor). The extractor must present the same series and
// normalization the index was built with; every shard stream is
// validated exactly as core.Load validates a single index.
func Load(r io.Reader, ext *series.Extractor, ex *exec.Executor) (*Index, error) {
	// One buffered reader shared down into core.Load (which reuses an
	// existing *bufio.Reader of sufficient size instead of re-wrapping,
	// so shard streams are consumed exactly, not over-read).
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("shard: load: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("shard: load header: %w", err)
	}
	if version != persistVersion {
		return nil, fmt.Errorf("shard: load: unsupported version %d", version)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("shard: load header: %w", err)
	}
	if count == 0 || count > maxShards {
		return nil, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	starts := make([]int, count+1)
	for i := range starts {
		var b uint64
		if err := binary.Read(br, binary.LittleEndian, &b); err != nil {
			return nil, fmt.Errorf("shard: load boundaries: %w", err)
		}
		starts[i] = int(b)
	}

	shards := make([]*core.Index, count)
	l := 0
	for i := range shards {
		ix, err := core.Load(br, ext)
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", i, err)
		}
		if i == 0 {
			l = ix.L()
		} else if ix.L() != l {
			return nil, fmt.Errorf("shard: shard %d has L=%d, shard 0 has L=%d", i, ix.L(), l)
		}
		shards[i] = ix
	}

	if ex == nil {
		ex = exec.Default()
	}
	s := &Index{ext: ext, l: l, shards: shards, starts: starts, ex: ex}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	return s, nil
}

// countWriter tracks bytes written for WriteTo's contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
