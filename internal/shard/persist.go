package shard

// Sharded index persistence: a small header naming the partition, a
// segment table, and each shard's frozen stream. Version 3 makes the
// container mappable: the header records every segment's byte length,
// segments start 8-byte aligned relative to the file start, and each
// segment is an aligned TSFZ v2 stream — so OpenArena can point every
// shard's arrays straight into one mmap'd file region with O(header)
// allocation, while Load still reads any version by copy. Version 2
// (TSFZ v1 segments, no table) and version 1 (pointer-tree TSIX
// segments) are still accepted by Load and frozen on the way in. Like
// the single-index formats, the series itself is not embedded; both
// loaders revalidate each shard against the supplied extractor.
//
// Version 3 format (little-endian):
//
//	off 0  magic "TSSH", version u16
//	off 6  partition u8 (0 = contiguous ranges, 1 = mean-sorted runs),
//	       reserved u8 (0)
//	off 8  shardCount u32
//	       contiguous: (shardCount+1) × u64 range boundaries
//	       mean:       (shardCount−1) × f64 routing cut keys
//	       shardCount × u64 segment byte lengths
//	       zero padding to the next multiple of 8
//	       shardCount × segments (TSFZ v2, each length a multiple of 8)

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Magic is the stream prefix identifying a sharded index; callers that
// accept both formats sniff it to dispatch (see twinsearch.OpenSaved).
const Magic = "TSSH"

const (
	persistVersion1 = 1
	persistVersion2 = 2
	PersistVersion  = 3
)

const (
	partitionRange = 0
	partitionMean  = 1
)

// maxShards bounds the header's shard count on load; real shard counts
// are a small multiple of the core count, so anything enormous is a
// corrupt or hostile stream, rejected before allocation.
const maxShards = 1 << 20

// headerLen returns the byte length of the v3 fixed header plus
// partition array and segment table for count shards — the unpadded
// offset of the first segment.
func headerLen(count int, byMean bool) int64 {
	n := int64(8) // magic, version, partition, reserved, shardCount is at 8
	n += 4        // shardCount
	if byMean {
		n += 8 * int64(count-1)
	} else {
		n += 8 * int64(count+1)
	}
	n += 8 * int64(count) // segment table
	return n
}

// WriteTo serializes the sharded index in the current (v3, mappable)
// format, re-freezing any shards left stale by Insert first. It
// implements io.WriterTo.
func (s *Index) WriteTo(w io.Writer) (int64, error) {
	s.ensureFrozen()
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write([]byte(Magic)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(PersistVersion)); err != nil {
		return cw.n, err
	}
	part := uint8(partitionRange)
	if s.byMean {
		part = partitionMean
	}
	if _, err := bw.Write([]byte{part, 0}); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.frozen))); err != nil {
		return cw.n, err
	}
	if s.byMean {
		if err := binary.Write(bw, binary.LittleEndian, s.cuts); err != nil {
			return cw.n, err
		}
	} else {
		for _, b := range s.starts {
			if err := binary.Write(bw, binary.LittleEndian, uint64(b)); err != nil {
				return cw.n, err
			}
		}
	}
	// Segment table: frozen stream lengths are deterministic, so the
	// table precedes the segments without buffering them.
	for _, f := range s.frozen {
		if err := binary.Write(bw, binary.LittleEndian, uint64(f.StreamLen())); err != nil {
			return cw.n, err
		}
	}
	hl := headerLen(len(s.frozen), s.byMean)
	for pad := arena.Align8(hl) - hl; pad > 0; pad-- {
		if err := bw.WriteByte(0); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	for i, f := range s.frozen {
		n, err := f.WriteTo(cw)
		if err != nil {
			return cw.n, fmt.Errorf("shard: writing shard %d: %w", i, err)
		}
		if n != f.StreamLen() {
			return cw.n, fmt.Errorf("shard: shard %d wrote %d bytes, table says %d", i, n, f.StreamLen())
		}
	}
	return cw.n, nil
}

// shardHeader is the decoded container header shared by both loaders.
type shardHeader struct {
	version uint16
	byMean  bool
	count   int
	starts  []int
	cuts    []float64
	segLens []int64 // v3 only
}

// readShardHeader decodes and validates the container header from br,
// leaving the reader positioned at the first segment.
func readShardHeader(br *bufio.Reader) (shardHeader, error) {
	var h shardHeader
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return h, fmt.Errorf("shard: load: %w", err)
	}
	if string(magic) != Magic {
		return h, fmt.Errorf("shard: load: bad magic %q", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &h.version); err != nil {
		return h, fmt.Errorf("shard: load header: %w", err)
	}
	switch h.version {
	case persistVersion1, persistVersion2, PersistVersion:
	default:
		return h, fmt.Errorf("shard: load: unsupported version %d", h.version)
	}
	if h.version >= persistVersion2 {
		var part uint8
		if err := binary.Read(br, binary.LittleEndian, &part); err != nil {
			return h, fmt.Errorf("shard: load header: %w", err)
		}
		switch part {
		case partitionRange:
		case partitionMean:
			h.byMean = true
		default:
			return h, fmt.Errorf("shard: load: unknown partition scheme %d", part)
		}
		if h.version >= PersistVersion {
			// v3 has a reserved alignment byte after the partition.
			if _, err := br.Discard(1); err != nil {
				return h, fmt.Errorf("shard: load header: %w", err)
			}
		}
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return h, fmt.Errorf("shard: load header: %w", err)
	}
	if count == 0 || count > maxShards {
		return h, fmt.Errorf("shard: load: implausible shard count %d", count)
	}
	h.count = int(count)
	if h.byMean {
		h.cuts = make([]float64, h.count-1)
		if err := binary.Read(br, binary.LittleEndian, h.cuts); err != nil {
			return h, fmt.Errorf("shard: load mean cuts: %w", err)
		}
		for i, c := range h.cuts {
			if math.IsNaN(c) {
				return h, fmt.Errorf("shard: load: NaN mean cut %d", i)
			}
		}
	} else {
		h.starts = make([]int, h.count+1)
		for i := range h.starts {
			var b uint64
			if err := binary.Read(br, binary.LittleEndian, &b); err != nil {
				return h, fmt.Errorf("shard: load boundaries: %w", err)
			}
			h.starts[i] = int(b)
		}
	}
	if h.version >= PersistVersion {
		h.segLens = make([]int64, h.count)
		for i := range h.segLens {
			var n uint64
			if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
				return h, fmt.Errorf("shard: load segment table: %w", err)
			}
			if n == 0 || n%8 != 0 || n > math.MaxInt64 {
				return h, fmt.Errorf("shard: load: implausible segment length %d for shard %d", n, i)
			}
			h.segLens[i] = int64(n)
		}
		hl := headerLen(h.count, h.byMean)
		if _, err := br.Discard(int(arena.Align8(hl) - hl)); err != nil {
			return h, fmt.Errorf("shard: load header: %w", err)
		}
	}
	return h, nil
}

// Load reconstructs a sharded index from a stream produced by WriteTo
// (any version), copying every shard into heap arenas, and schedules
// its queries on ex (nil selects the process-wide default executor).
// The extractor must present the same series and normalization the
// index was built with; every shard stream is validated exactly as its
// single-index loader validates it. OpenArena is the zero-copy
// counterpart.
func Load(r io.Reader, ext *series.Extractor, ex *exec.Executor) (*Index, error) {
	// One buffered reader shared down into the per-shard loaders (which
	// reuse an existing *bufio.Reader instead of re-wrapping, so shard
	// streams are consumed exactly, not over-read).
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	h, err := readShardHeader(br)
	if err != nil {
		return nil, err
	}

	frozen := make([]*core.Frozen, h.count)
	l := 0
	for i := range frozen {
		var f *core.Frozen
		var err error
		if h.version == persistVersion1 {
			// v1 shards are pointer-tree streams; freeze on load.
			var ix *core.Index
			ix, err = core.Load(br, ext)
			if err == nil {
				f = ix.Freeze()
			}
		} else {
			f, err = core.LoadFrozen(br, ext)
		}
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", i, err)
		}
		if h.segLens != nil && f.StreamLen() != h.segLens[i] {
			// The v3 table must agree with the streams it frames: a
			// mismatch means the container was edited or corrupted, even
			// if each segment still parses.
			return nil, fmt.Errorf("shard: shard %d spans %d bytes, table says %d", i, f.StreamLen(), h.segLens[i])
		}
		if i == 0 {
			l = f.L()
		} else if f.L() != l {
			return nil, fmt.Errorf("shard: shard %d has L=%d, shard 0 has L=%d", i, f.L(), l)
		}
		frozen[i] = f
	}

	s := newLoaded(ext, l, frozen, h, ex)
	// Partition invariants only: each shard stream was just validated in
	// full by its own loader, so re-walking every arena here would only
	// double the load cost.
	if err := s.checkPartition(); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	return s, nil
}

// OpenArena is the zero-copy open path: it interprets a TSSH v3 stream
// occupying the whole arena as a sharded index whose per-shard arrays
// are views directly into the region — opening a multi-gigabyte index
// costs O(header) allocations and faults pages in on demand. The
// caller owns ar and must keep it alive (and unclosed) for the index's
// lifetime.
//
// Only v3 streams qualify (v1/v2 predate the aligned segment layout);
// callers fall back to Load for those. Each shard's structural
// invariants and the partition shape are validated; the O(windows)
// ownership scan and O(size·L) bound-containment walk are trusted to
// the writer, exactly as FrozenFromArena documents.
func OpenArena(ar *arena.Arena, ext *series.Extractor, ex *exec.Executor) (*Index, error) {
	buf := ar.Bytes()
	if len(buf) < 12 {
		return nil, fmt.Errorf("shard: arena: %d-byte region too small for a header", len(buf))
	}
	if string(buf[:4]) != Magic {
		return nil, fmt.Errorf("shard: arena: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != PersistVersion {
		return nil, fmt.Errorf("shard: arena: version %d streams cannot be mapped in place (zero-copy needs the aligned v%d format)", v, PersistVersion)
	}
	// The header is small and byte-order sensitive; decode it through
	// the same reader the copy loader uses rather than aliasing it.
	br := bufio.NewReader(bytes.NewReader(buf))
	h, err := readShardHeader(br)
	if err != nil {
		return nil, err
	}

	off := arena.Align8(headerLen(h.count, h.byMean))
	frozen := make([]*core.Frozen, h.count)
	l := 0
	for i := range frozen {
		if off > int64(len(buf)) {
			return nil, fmt.Errorf("shard: arena: segment %d starts at %d, region has %d bytes", i, off, len(buf))
		}
		f, n, err := core.FrozenFromArena(ar, off, ext)
		if err != nil {
			return nil, fmt.Errorf("shard: mapping shard %d: %w", i, err)
		}
		if n != h.segLens[i] {
			return nil, fmt.Errorf("shard: arena: shard %d spans %d bytes, table says %d", i, n, h.segLens[i])
		}
		if i == 0 {
			l = f.L()
		} else if f.L() != l {
			return nil, fmt.Errorf("shard: shard %d has L=%d, shard 0 has L=%d", i, f.L(), l)
		}
		frozen[i] = f
		off += n
	}

	s := newLoaded(ext, l, frozen, h, ex)
	if err := s.checkPartitionShape(); err != nil {
		return nil, fmt.Errorf("shard: arena: %w", err)
	}
	return s, nil
}

// newLoaded assembles a loaded Index from its parts.
func newLoaded(ext *series.Extractor, l int, frozen []*core.Frozen, h shardHeader, ex *exec.Executor) *Index {
	if ex == nil {
		ex = exec.Default()
	}
	return &Index{ext: ext, l: l, frozen: frozen,
		pointer: make([]*core.Index, len(frozen)), dirtyShard: make([]bool, len(frozen)),
		byMean: h.byMean, starts: h.starts, cuts: h.cuts, ex: ex}
}

// countWriter tracks bytes written for WriteTo's contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
