package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// TestOpenArenaDifferential opens a saved v3 stream through a real mmap
// and requires every search path to agree with the heap-loaded index
// byte for byte, for both partition schemes; Insert must copy-on-thaw
// (the mapped file stays byte-identical) and migrate the touched shard
// off the mapping.
func TestOpenArenaDifferential(t *testing.T) {
	if !arena.MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	ts := datasets.RandomWalk(71, 1800)
	const l = 40
	for _, byMean := range []bool{false, true} {
		t.Run(fmt.Sprintf("mean=%v", byMean), func(t *testing.T) {
			ext := series.NewExtractor(append([]float64(nil), ts...), series.NormGlobal)
			sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 3, PartitionByMean: byMean})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "index.tssh")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sh.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			ar, err := arena.Map(path)
			if err != nil {
				t.Fatal(err)
			}
			defer ar.Close()
			got, err := OpenArena(ar, ext, nil)
			if err != nil {
				t.Fatalf("OpenArena: %v", err)
			}
			if got.MappedBytes() == 0 {
				t.Fatal("mapped index reports no mapped bytes")
			}
			if got.MemoryBytes() >= got.MappedBytes() {
				t.Fatalf("mapped index heap bytes %d not below mapped bytes %d", got.MemoryBytes(), got.MappedBytes())
			}
			if got.PartitionByMean() != byMean {
				t.Fatal("partition scheme lost through the arena open")
			}

			q := ext.ExtractCopy(444, l)
			wantM, wantS := sh.SearchStats(q, 0.5)
			gotM, gotS := got.SearchStats(q, 0.5)
			if !sameMatches(wantM, gotM) || wantS != gotS {
				t.Fatal("SearchStats diverged between heap and mapped index")
			}
			if w, g := sh.SearchTopK(q, 9), got.SearchTopK(q, 9); !sameMatches(w, g) {
				t.Fatal("SearchTopK diverged between heap and mapped index")
			}
			wp, werr := sh.SearchPrefix(q[:l/2], 0.5)
			gp, gerr := got.SearchPrefix(q[:l/2], 0.5)
			if (werr == nil) != (gerr == nil) || !sameMatches(wp, gp) {
				t.Fatal("SearchPrefix diverged between heap and mapped index")
			}
			// With the budget covering every leaf, the approximate search
			// is exhaustive and deterministic on both forms.
			budget := got.Len()
			wa, _ := sh.SearchApprox(q, 0.5, budget)
			ga, _ := got.SearchApprox(q, 0.5, budget)
			if !sameMatches(wa, ga) {
				t.Fatal("SearchApprox diverged between heap and mapped index")
			}

			// Copy-on-thaw: growing the mapped index must leave the file
			// untouched and move the mutated shard's arena to the heap.
			oldCount := series.NumSubsequences(ext.Len(), l)
			ext.Append(0.5, -1.5, 2.5)
			for p := oldCount; p < series.NumSubsequences(ext.Len(), l); p++ {
				got.Insert(p)
			}
			if n := len(got.Search(q, 0.5)); n < len(wantM) {
				t.Fatalf("post-append search lost results: %d < %d", n, len(wantM))
			}
			if got.MappedBytes() >= 4*(len(before)/5) && got.NumShards() > 1 {
				// At least the mutated shard must have left the mapping.
				t.Fatalf("append did not migrate any shard off the mapping (%d of %d bytes still mapped)", got.MappedBytes(), len(before))
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("append wrote through the mapped file")
			}
		})
	}
}

// TestShardLoadV2BackCompat hand-writes the version-2 sharded stream
// (TSFZ v1 shard payloads, no segment table) and checks Load still
// accepts it while OpenArena refuses it as unmappable.
func TestShardLoadV2BackCompat(t *testing.T) {
	ts := datasets.RandomWalk(56, 1200)
	const l = 30
	ext := series.NewExtractor(ts, series.NormGlobal)
	count := series.NumSubsequences(len(ts), l)
	bounds := []int{0, count / 3, count}

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(Magic)
	binary.Write(bw, binary.LittleEndian, uint16(2))
	bw.WriteByte(0) // partition: contiguous ranges
	binary.Write(bw, binary.LittleEndian, uint32(len(bounds)-1))
	for _, b := range bounds {
		binary.Write(bw, binary.LittleEndian, uint64(b))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(bounds); i++ {
		ix, err := core.BuildRange(ext, core.Config{L: l}, bounds[i], bounds[i+1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Freeze().WriteLegacyV1(&buf); err != nil {
			t.Fatal(err)
		}
	}

	got, err := Load(bytes.NewReader(buf.Bytes()), ext, nil)
	if err != nil {
		t.Fatalf("v2 stream rejected: %v", err)
	}
	ref, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	q := ext.ExtractCopy(200, l)
	if want, have := ref.Search(q, 0.5), got.Search(q, 0.5); !sameMatches(want, have) {
		t.Fatal("v2-loaded index answers differently")
	}

	if _, err := OpenArena(arena.FromBytes(buf.Bytes()), ext, nil); err == nil {
		t.Fatal("OpenArena accepted a pre-alignment v2 stream")
	}
}

// TestOpenArenaRejectsCorruptStreams damages a valid v3 stream in the
// container layer (the segment layer is fuzzed in core): every case
// must fail cleanly.
func TestOpenArenaRejectsCorruptStreams(t *testing.T) {
	ts := datasets.RandomWalk(57, 1300)
	const l = 32
	ext := series.NewExtractor(ts, series.NormGlobal)
	sh, err := Build(ext, Config{Config: core.Config{L: l}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	segTableOff := 8 + 4 + 8*4 // magic+ver+part+pad, count, 4 boundaries

	mutate := func(off int, val byte) []byte {
		c := append([]byte(nil), full...)
		c[off] = val
		return c
	}
	cases := map[string][]byte{
		"empty":            {},
		"header truncated": full[:10],
		"bad magic":        append([]byte("NOPE"), full[4:]...),
		"bad partition":    mutate(6, 9),
		"zero shards": func() []byte {
			c := append([]byte(nil), full...)
			binary.LittleEndian.PutUint32(c[8:], 0)
			return c
		}(),
		"segment table lies": func() []byte {
			c := append([]byte(nil), full...)
			n := binary.LittleEndian.Uint64(c[segTableOff:])
			binary.LittleEndian.PutUint64(c[segTableOff:], n+8)
			return c
		}(),
		"misaligned segment length": func() []byte {
			c := append([]byte(nil), full...)
			binary.LittleEndian.PutUint64(c[segTableOff:], 12345)
			return c
		}(),
		"segments truncated": full[:len(full)-16],
	}
	for name, stream := range cases {
		if _, err := OpenArena(arena.FromBytes(stream), ext, nil); err == nil {
			t.Errorf("OpenArena accepted %s", name)
		}
		if _, err := Load(bytes.NewReader(stream), ext, nil); err == nil {
			t.Errorf("Load accepted %s", name)
		}
	}
	// A v1/v2 magic+version is not corruption for Load, only for
	// OpenArena — covered in TestShardLoadV2BackCompat.
}
