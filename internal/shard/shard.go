// Package shard implements a sharded parallel TS-Index: the window
// position space [0, N−ℓ] is split into P contiguous ranges, one
// core.Index is built per range concurrently, and queries fan out
// across the shards in parallel — the data-partitioning strategy
// ParIS/MESSI apply to iSAX, transplanted onto the paper's TS-Index.
//
// Sharding changes the tree shapes (each shard packs only its own
// windows) but never the answer set: range searches concatenate
// per-shard results in position order, and top-k runs a k-way merge
// under the (distance, start) total order with a cross-shard pruning
// bound (core.SharedBound), so results are identical to a single index
// over the full series.
package shard

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"twinsearch/internal/core"
	"twinsearch/internal/series"
)

// Config parameterizes a sharded build.
type Config struct {
	// Config is the per-shard TS-Index configuration.
	core.Config
	// Shards is the number of partitions; ≤ 0 selects GOMAXPROCS. The
	// effective count never exceeds the number of windows.
	Shards int
	// BulkLoad selects bottom-up construction for every shard.
	BulkLoad bool
}

// Index is a sharded TS-Index over one series.
type Index struct {
	ext    *series.Extractor
	l      int
	shards []*core.Index
	// starts has len(shards)+1 entries; shard i owns window positions
	// [starts[i], starts[i+1]).
	starts []int
}

// Build partitions the position space and constructs every shard
// concurrently. With Shards resolving to 1 the result is a single
// core.Index behind the fan-out API — bit-identical answers either way.
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	if cfg.L <= 0 {
		return nil, fmt.Errorf("shard: invalid subsequence length %d", cfg.L)
	}
	count := series.NumSubsequences(ext.Len(), cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("shard: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	p := cfg.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > count {
		p = count
	}

	starts := make([]int, p+1)
	for i := range starts {
		starts[i] = i * count / p
	}

	shards := make([]*core.Index, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.BulkLoad {
				shards[i], errs[i] = core.BuildBulkRange(ext, cfg.Config, starts[i], starts[i+1])
			} else {
				shards[i], errs[i] = core.BuildRange(ext, cfg.Config, starts[i], starts[i+1])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
	}
	return &Index{ext: ext, l: cfg.L, shards: shards, starts: starts}, nil
}

// fanOut runs f once per shard concurrently and waits.
func (s *Index) fanOut(f func(i int, ix *core.Index)) {
	if len(s.shards) == 1 {
		f(0, s.shards[0])
		return
	}
	var wg sync.WaitGroup
	for i, ix := range s.shards {
		wg.Add(1)
		go func(i int, ix *core.Index) {
			defer wg.Done()
			f(i, ix)
		}(i, ix)
	}
	wg.Wait()
}

// Search returns all twin subsequences of q at threshold eps, in start
// order — identical to core.Index.Search over an unsharded index.
func (s *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := s.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters summed across shards.
// Counter values differ from a single index's (P roots are visited, and
// each shard's tree packs differently); the match set does not.
func (s *Index) SearchStats(q []float64, eps float64) ([]series.Match, core.Stats) {
	per := make([][]series.Match, len(s.shards))
	stats := make([]core.Stats, len(s.shards))
	s.fanOut(func(i int, ix *core.Index) {
		per[i], stats[i] = ix.SearchStats(q, eps)
	})
	return concatMatches(per), sumStats(stats)
}

// concatMatches merges per-shard results. Shards own ascending
// contiguous position ranges and each result list is start-sorted, so
// concatenation in shard order IS the position-order merge.
func concatMatches(per [][]series.Match) []series.Match {
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	if total == 0 {
		return nil
	}
	out := make([]series.Match, 0, total)
	for _, ms := range per {
		out = append(out, ms...)
	}
	return out
}

func sumStats(stats []core.Stats) core.Stats {
	var st core.Stats
	for _, s := range stats {
		st.NodesVisited += s.NodesVisited
		st.NodesPruned += s.NodesPruned
		st.LeavesReached += s.LeavesReached
		st.Candidates += s.Candidates
		st.Results += s.Results
	}
	return st
}

// SearchTopK returns the k nearest subsequences under Chebyshev
// distance in ascending (distance, start) order — identical to
// core.Index.SearchTopK. Every shard traversal shares one pruning bound
// (the best k-th distance any shard has admitted so far), and the
// per-shard lists are combined by a k-way merge.
func (s *Index) SearchTopK(q []float64, k int) []series.Match {
	if k <= 0 {
		return nil
	}
	shared := core.NewSharedBound()
	per := make([][]series.Match, len(s.shards))
	s.fanOut(func(i int, ix *core.Index) {
		per[i] = ix.SearchTopKShared(q, k, shared)
	})
	return mergeTopK(per, k)
}

// mergeTopK k-way-merges start-disjoint, distance-sorted lists and
// returns the first k items under the (dist, start) total order.
func mergeTopK(per [][]series.Match, k int) []series.Match {
	h := make(mergeHeap, 0, len(per))
	for i, ms := range per {
		if len(ms) > 0 {
			h = append(h, mergeItem{list: i, m: ms[0]})
		}
	}
	heap.Init(&h)
	var out []series.Match
	next := make([]int, len(per))
	for h.Len() > 0 && len(out) < k {
		top := h[0]
		out = append(out, top.m)
		next[top.list]++
		if n := next[top.list]; n < len(per[top.list]) {
			h[0] = mergeItem{list: top.list, m: per[top.list][n]}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

type mergeItem struct {
	list int
	m    series.Match
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].m.Dist != h[j].m.Dist {
		return h[i].m.Dist < h[j].m.Dist
	}
	return h[i].m.Start < h[j].m.Start
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SearchPrefix answers a query shorter than the indexed length (see
// core.Index.SearchPrefix): the tree traversal fans across shards and
// the tail windows that exist only at the shorter length are scanned
// once, here.
func (s *Index) SearchPrefix(q []float64, eps float64) ([]series.Match, error) {
	per := make([][]series.Match, len(s.shards))
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int, ix *core.Index) {
		per[i], errs[i] = ix.SearchPrefixTree(q, eps)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// concatMatches yields position order and the tail starts extend it.
	return core.ScanPrefixTail(s.ext, s.l, q, eps, concatMatches(per)), nil
}

// SearchApprox probes at most leafBudget nearest leaves across all
// shards (budget split as evenly as possible, each probed shard getting
// at least its share) and returns a possibly incomplete subset of the
// twins — the sharded counterpart of core.Index.SearchApprox.
func (s *Index) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	p := len(s.shards)
	budgets := make([]int, p)
	for i := 0; i < p; i++ {
		budgets[i] = leafBudget / p
		if i < leafBudget%p {
			budgets[i]++
		}
	}
	per := make([][]series.Match, p)
	stats := make([]core.Stats, p)
	s.fanOut(func(i int, ix *core.Index) {
		if budgets[i] == 0 {
			return
		}
		per[i], stats[i] = ix.SearchApprox(q, eps, budgets[i])
	})
	return concatMatches(per), sumStats(stats)
}

// Insert adds the window starting at p to the shard owning that
// position; positions past the current end extend the last shard (the
// streaming-append path).
func (s *Index) Insert(p int) {
	last := len(s.starts) - 1
	if p >= s.starts[last] {
		s.starts[last] = p + 1
		s.shards[len(s.shards)-1].Insert(p)
		return
	}
	// Owning shard i satisfies starts[i] ≤ p < starts[i+1].
	i := sort.SearchInts(s.starts, p+1) - 1
	s.shards[i].Insert(p)
}

// Len returns the number of indexed windows across all shards.
func (s *Index) Len() int {
	total := 0
	for _, ix := range s.shards {
		total += ix.Len()
	}
	return total
}

// L returns the indexed subsequence length.
func (s *Index) L() int { return s.l }

// NumShards returns the shard count.
func (s *Index) NumShards() int { return len(s.shards) }

// Shard returns shard i and the position range it owns.
func (s *Index) Shard(i int) (ix *core.Index, lo, hi int) {
	return s.shards[i], s.starts[i], s.starts[i+1]
}

// Extractor exposes the extractor the index was built over.
func (s *Index) Extractor() *series.Extractor { return s.ext }

// MemoryBytes sums the per-shard index footprints.
func (s *Index) MemoryBytes() int {
	total := 0
	for _, ix := range s.shards {
		total += ix.MemoryBytes()
	}
	return total
}

// CheckInvariants validates every shard's structural invariants plus
// the partition invariants: ranges are contiguous, cover [0, count),
// and each shard holds exactly the windows of its range.
func (s *Index) CheckInvariants() error {
	if len(s.starts) != len(s.shards)+1 {
		return fmt.Errorf("shard: %d boundaries for %d shards", len(s.starts), len(s.shards))
	}
	if s.starts[0] != 0 {
		return fmt.Errorf("shard: first range starts at %d, want 0", s.starts[0])
	}
	count := series.NumSubsequences(s.ext.Len(), s.l)
	if got := s.starts[len(s.shards)]; got != count {
		return fmt.Errorf("shard: ranges end at %d, series has %d windows", got, count)
	}
	for i, ix := range s.shards {
		if s.starts[i] >= s.starts[i+1] {
			return fmt.Errorf("shard %d: empty or inverted range [%d, %d)", i, s.starts[i], s.starts[i+1])
		}
		if got, want := ix.Len(), s.starts[i+1]-s.starts[i]; got != want {
			return fmt.Errorf("shard %d: holds %d windows, range [%d, %d) spans %d", i, got, s.starts[i], s.starts[i+1], want)
		}
		if err := ix.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
