// Package shard implements a sharded parallel TS-Index: the window
// position space [0, N−ℓ] is split into P partitions, one index is
// built per partition concurrently, and queries run as fine-grained
// (shard, subtree) work units on a work-stealing executor
// (internal/exec) — the data-partitioning strategy ParIS/MESSI apply
// to iSAX, transplanted onto the paper's TS-Index, with MESSI-style
// work queues instead of one goroutine per shard.
//
// After construction every shard is FROZEN: the pointer tree is
// compiled into core.Frozen's flat structure-of-arrays arena (packed
// MBTS bounds, index-range children, one flat positions array) and the
// pointer form is dropped. All queries traverse the arenas; Insert
// thaws the owning shard back to pointer form and the next search
// re-freezes it. Freezing changes only the memory layout, never the
// answer set: every frozen traversal replicates its pointer
// counterpart step for step.
//
// Two partitioning schemes are supported. The default splits positions
// into contiguous ranges, whose per-shard results concatenate in shard
// order. Config.PartitionByMean instead sorts positions by window mean
// and hands each shard an equal run — twins have means within ε of each
// other, so mean-neighbours pack into tighter per-shard MBTS and prune
// more — at the cost of a k-way merge by start position where the
// contiguous scheme concatenates.
package shard

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Config parameterizes a sharded build.
type Config struct {
	// Config is the per-shard TS-Index configuration.
	core.Config
	// Shards is the number of partitions; ≤ 0 selects GOMAXPROCS. The
	// effective count never exceeds the number of windows.
	Shards int
	// BulkLoad selects bottom-up construction for every shard.
	BulkLoad bool
	// Boundaries, when non-nil, fixes the contiguous partition
	// explicitly: entry i and i+1 delimit shard i's position range, so
	// it must be strictly increasing from 0 to the window count, and its
	// length must agree with Shards when both are set. Benchmarks and
	// tests use it to build deliberately skewed shards; the default is
	// an even split. Incompatible with PartitionByMean.
	Boundaries []int
	// PartitionByMean assigns positions to shards by window mean rather
	// than contiguously: positions are sorted by mean (first normalized
	// value under per-subsequence normalization, where every mean is
	// zero) and split into equal-count runs. Per-shard MBTS get tighter
	// — a shard encloses look-alike windows instead of whatever happened
	// to be adjacent — so searches prune more; range-search merges
	// switch from positional concatenation to a k-way merge by start.
	PartitionByMean bool
	// Executor runs the build and query work units; nil selects the
	// process-wide default (GOMAXPROCS workers).
	Executor *exec.Executor
}

// Index is a sharded TS-Index over one series.
type Index struct {
	ext *series.Extractor
	l   int
	// frozen holds each shard's arena — the form every query traverses.
	frozen []*core.Frozen
	// pointer[i] is shard i thawed for insertion; nil while the shard is
	// frozen-only. Once a shard is thawed it stays resident (repeated
	// Insert/refreeze cycles then skip the thaw).
	pointer []*core.Index
	byMean  bool
	// starts has len(shards)+1 entries in contiguous mode; shard i owns
	// window positions [starts[i], starts[i+1]). nil under
	// PartitionByMean.
	starts []int
	// cuts has len(shards)-1 entries under PartitionByMean: shard i+1's
	// smallest window-mean key. Insert routes new positions by key.
	cuts []float64
	ex   *exec.Executor

	// Refreeze bookkeeping: Insert marks shards dirty; the next search
	// re-freezes them before traversing (ensureFrozen). Insert must not
	// run concurrently with searches, so dirtyShard needs no lock of its
	// own; the atomic dirty flag publishes the writes and mu serializes
	// racing searches.
	dirty      atomic.Bool
	dirtyShard []bool
	mu         sync.Mutex

	// units caches each shard's subtree frontier — the (shard, subtree)
	// work units a query enqueues. Refreezing invalidates it; concurrent
	// searches recompute it racily but deterministically, so whichever
	// Store wins is equivalent.
	units atomic.Pointer[[][]core.FrozenSubtree]
}

// Build partitions the position space, constructs every shard on the
// executor, and freezes each shard's tree into its flat arena. With
// Shards resolving to 1 the result is a single frozen index behind the
// fan-out API — bit-identical answers either way.
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	if cfg.L <= 0 {
		return nil, fmt.Errorf("shard: invalid subsequence length %d", cfg.L)
	}
	count := series.NumSubsequences(ext.Len(), cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("shard: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	if cfg.PartitionByMean && cfg.Boundaries != nil {
		return nil, fmt.Errorf("shard: PartitionByMean and explicit Boundaries are mutually exclusive")
	}

	ex := cfg.Executor
	if ex == nil {
		ex = exec.Default()
	}

	s := &Index{ext: ext, l: cfg.L, byMean: cfg.PartitionByMean, ex: ex}

	var runs [][]int32 // mean mode: each shard's position run
	if cfg.PartitionByMean {
		p := cfg.Shards
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		if p > count {
			p = count
		}
		runs, s.cuts = meanRuns(ext, cfg.L, count, p)
	} else if cfg.Boundaries != nil {
		if err := validateBoundaries(cfg.Boundaries, cfg.Shards, count); err != nil {
			return nil, err
		}
		s.starts = append([]int(nil), cfg.Boundaries...)
	} else {
		p := cfg.Shards
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		if p > count {
			p = count
		}
		s.starts = make([]int, p+1)
		for i := range s.starts {
			s.starts[i] = i * count / p
		}
	}
	p := len(runs)
	if !cfg.PartitionByMean {
		p = len(s.starts) - 1
	}

	s.frozen = make([]*core.Frozen, p)
	s.pointer = make([]*core.Index, p)
	s.dirtyShard = make([]bool, p)
	errs := make([]error, p)
	ex.ForEach(p, func(i int) {
		var ix *core.Index
		var err error
		switch {
		case cfg.PartitionByMean && cfg.BulkLoad:
			ix, err = core.BuildBulkPositions(ext, cfg.Config, runs[i])
		case cfg.PartitionByMean:
			ix, err = core.BuildPositions(ext, cfg.Config, runs[i])
		case cfg.BulkLoad:
			ix, err = core.BuildBulkRange(ext, cfg.Config, s.starts[i], s.starts[i+1])
		default:
			ix, err = core.BuildRange(ext, cfg.Config, s.starts[i], s.starts[i+1])
		}
		if err != nil {
			errs[i] = err
			return
		}
		// Freeze inside the same work unit (arenas compile in parallel)
		// and let the pointer tree go: the arena is the index now.
		s.frozen[i] = ix.Freeze()
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
	}
	return s, nil
}

// windowKey is the mean-partition sort/routing key of one window: the
// window mean, or its first normalized value under per-subsequence
// normalization (where every mean is zero). It is the single key
// definition — meanRuns derives the partition and the routing cuts
// from it, and routeShard applies it to inserts — so a window always
// routes to the shard its key sorted into, bit for bit. buf is scratch
// of length l, used only under per-subsequence normalization (pass nil
// otherwise).
func windowKey(ext *series.Extractor, p, l int, buf []float64) float64 {
	if ext.Mode() == series.NormPerSubsequence {
		return ext.Extract(p, l, buf)[0]
	}
	data := ext.Data()
	var sum float64
	for _, v := range data[p : p+l] {
		sum += v
	}
	return sum / float64(l)
}

// meanRuns sorts all window positions by key and splits them into p
// equal-count runs, returning the runs and the p−1 routing cut keys
// (run i+1's smallest key). Keys come from windowKey — the exact
// function inserts route by — rather than a prefix-sum shortcut, so a
// key landing on a cut can never round differently at build time than
// at routing time.
func meanRuns(ext *series.Extractor, l, count, p int) ([][]int32, []float64) {
	keys := make([]float64, count)
	var buf []float64
	if ext.Mode() == series.NormPerSubsequence {
		buf = make([]float64, l)
	}
	for i := 0; i < count; i++ {
		keys[i] = windowKey(ext, i, l, buf)
	}
	order := make([]int32, count)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if ka, kb := keys[order[a]], keys[order[b]]; ka != kb {
			return ka < kb
		}
		return order[a] < order[b] // total order: runs are deterministic
	})
	runs := make([][]int32, p)
	cuts := make([]float64, p-1)
	for i := 0; i < p; i++ {
		lo, hi := i*count/p, (i+1)*count/p
		runs[i] = order[lo:hi:hi]
		if i > 0 {
			cuts[i-1] = keys[order[lo]]
		}
	}
	return runs, cuts
}

// validateBoundaries rejects partitions that don't cover [0, count)
// with strictly increasing non-empty ranges.
func validateBoundaries(b []int, shards, count int) error {
	if len(b) < 2 {
		return fmt.Errorf("shard: %d boundary entries delimit no shards", len(b))
	}
	if shards != 0 && shards != len(b)-1 {
		return fmt.Errorf("shard: %d boundary entries delimit %d shards, Config.Shards says %d", len(b), len(b)-1, shards)
	}
	if b[0] != 0 {
		return fmt.Errorf("shard: first boundary %d, want 0", b[0])
	}
	if b[len(b)-1] != count {
		return fmt.Errorf("shard: last boundary %d, series has %d windows", b[len(b)-1], count)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return fmt.Errorf("shard: boundary %d (%d) not after boundary %d (%d)", i, b[i], i-1, b[i-1])
		}
	}
	return nil
}

// Executor returns the executor the index schedules its queries on.
func (s *Index) Executor() *exec.Executor { return s.ex }

// PartitionByMean reports whether shards own mean-sorted runs rather
// than contiguous position ranges.
func (s *Index) PartitionByMean() bool { return s.byMean }

// ensureFrozen re-freezes any shards Insert has thawed and mutated.
// Hot path cost is one atomic load; the mutex only serializes searches
// racing to refreeze after an insertion batch (Insert itself must not
// run concurrently with searches).
func (s *Index) ensureFrozen() {
	if !s.dirty.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty.Load() {
		return
	}
	for i, d := range s.dirtyShard {
		if d {
			s.frozen[i] = s.pointer[i].Freeze()
			s.dirtyShard[i] = false
		}
	}
	s.units.Store(nil)
	s.dirty.Store(false)
}

// unitFrontiers returns the cached (shard → subtrees) split,
// recomputing it after insertion invalidated the cache. The per-shard
// target over-provisions units (4×) relative to the widest pool that
// could usefully run them — the index's own executor or the machine
// (SearchBatch may bring a dedicated pool wider than the engine's; the
// work is CPU-bound, so GOMAXPROCS caps useful width) — giving
// stealing slack to even out skewed shards.
func (s *Index) unitFrontiers() [][]core.FrozenSubtree {
	if u := s.units.Load(); u != nil {
		return *u
	}
	p := len(s.frozen)
	w := s.ex.Workers()
	if g := runtime.GOMAXPROCS(0); g > w {
		w = g
	}
	per := 1
	if t := 4 * w; t > p {
		per = (t + p - 1) / p
	}
	fr := make([][]core.FrozenSubtree, p)
	for i, f := range s.frozen {
		fr[i] = f.Frontier(per)
	}
	s.units.Store(&fr)
	return fr
}

// Search returns all twin subsequences of q at threshold eps, in start
// order — identical to core.Index.Search over an unsharded index.
func (s *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := s.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters summed across work
// units. Counter values differ from a single index's (each shard's
// tree packs differently, and nodes above a unit's subtree root are
// never visited); the match set does not.
func (s *Index) SearchStats(q []float64, eps float64) ([]series.Match, core.Stats) {
	ms, st, _ := s.SearchStatsCtx(nil, q, eps) // nil ctx never cancels
	return ms, st
}

// PendingSearch holds the per-unit results of one enqueued range
// search; Resolve assembles them after the group completes. It lets
// Engine.SearchBatch fuse many queries into one executor group — every
// (query, shard, subtree) unit is a peer in the same pool — instead of
// nesting a query pool above a shard pool.
type PendingSearch struct {
	res    [][][]series.Match // [shard][unit] match lists, traversal order
	st     [][]core.Stats     // [shard][unit]
	byMean bool
}

// QueueSearch enqueues the (shard, subtree) units of one range search
// into g and returns a handle to assemble the result. Call Resolve
// only after g.Wait() returns.
func (s *Index) QueueSearch(g *exec.Group, q []float64, eps float64) *PendingSearch {
	s.ensureFrozen()
	return queueSearchUnits(g, nil, s.frozen, s.unitFrontiers(), s.byMean, q, eps)
}

// Resolve merges the unit results deterministically: units of one
// shard are concatenated and sorted by start (the set is identical
// however the tree was split, so the sorted order is too). Under the
// contiguous partition shards own ascending position ranges, so
// shard-order concatenation IS the position-order merge; mean-sorted
// shards interleave in position space, so their sorted lists k-way
// merge by start instead.
func (p *PendingSearch) Resolve() ([]series.Match, core.Stats) {
	var st core.Stats
	total := 0
	for i := range p.res {
		for j := range p.res[i] {
			total += len(p.res[i][j])
			st = addStats(st, p.st[i][j])
		}
	}
	st.Results = total
	if total == 0 {
		return nil, st
	}
	per := make([][]series.Match, len(p.res))
	for i := range p.res {
		n := 0
		for _, unit := range p.res[i] {
			n += len(unit)
		}
		ms := make([]series.Match, 0, n)
		for _, unit := range p.res[i] {
			ms = append(ms, unit...)
		}
		series.SortMatches(ms)
		per[i] = ms
	}
	return mergePartitioned(per, p.byMean), st
}

func addStats(a, b core.Stats) core.Stats {
	a.NodesVisited += b.NodesVisited
	a.NodesPruned += b.NodesPruned
	a.LeavesReached += b.LeavesReached
	a.Candidates += b.Candidates
	a.Abandons += b.Abandons
	a.Results += b.Results
	return a
}

// mergePartitioned combines per-shard start-sorted results according
// to the partition scheme: positional concatenation for contiguous
// shards (shard order IS position order), a k-way merge by start for
// mean-sorted shards. Every range-search path funnels through here so
// the merge policy lives in one place.
func mergePartitioned(per [][]series.Match, byMean bool) []series.Match {
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	if total == 0 {
		return nil
	}
	if byMean {
		return mergeByStart(per, total)
	}
	out := make([]series.Match, 0, total)
	for _, ms := range per {
		out = append(out, ms...)
	}
	return out
}

// mergeByStart k-way merges start-sorted, start-disjoint lists into one
// start-sorted list of the given total length.
func mergeByStart(per [][]series.Match, total int) []series.Match {
	h := make(startHeap, 0, len(per))
	for i, ms := range per {
		if len(ms) > 0 {
			h = append(h, mergeItem{list: i, m: ms[0]})
		}
	}
	heap.Init(&h)
	out := make([]series.Match, 0, total)
	next := make([]int, len(per))
	for h.Len() > 0 {
		top := h[0]
		out = append(out, top.m)
		next[top.list]++
		if n := next[top.list]; n < len(per[top.list]) {
			h[0] = mergeItem{list: top.list, m: per[top.list][n]}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// SearchTopK returns the k nearest subsequences under Chebyshev
// distance in ascending (distance, start) order — identical to
// core.Index.SearchTopK. Every unit's traversal shares one pruning
// bound (the best k-th distance any unit has admitted so far), and the
// per-unit lists are combined by a k-way merge.
func (s *Index) SearchTopK(q []float64, k int) []series.Match {
	ms, _ := s.SearchTopKCtx(nil, q, k, math.Inf(1))
	return ms
}

// mergeTopK k-way-merges start-disjoint, distance-sorted lists and
// returns the first k items under the (dist, start) total order.
func mergeTopK(per [][]series.Match, k int) []series.Match {
	h := make(distHeap, 0, len(per))
	for i, ms := range per {
		if len(ms) > 0 {
			h = append(h, mergeItem{list: i, m: ms[0]})
		}
	}
	heap.Init(&h)
	var out []series.Match
	next := make([]int, len(per))
	for h.Len() > 0 && len(out) < k {
		top := h[0]
		out = append(out, top.m)
		next[top.list]++
		if n := next[top.list]; n < len(per[top.list]) {
			h[0] = mergeItem{list: top.list, m: per[top.list][n]}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

type mergeItem struct {
	list int
	m    series.Match
}

// distHeap is a min-heap under the (dist, start) total order.
type distHeap []mergeItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].m.Dist != h[j].m.Dist {
		return h[i].m.Dist < h[j].m.Dist
	}
	return h[i].m.Start < h[j].m.Start
}
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// startHeap is a min-heap by start position.
type startHeap []mergeItem

func (h startHeap) Len() int            { return len(h) }
func (h startHeap) Less(i, j int) bool  { return h[i].m.Start < h[j].m.Start }
func (h startHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *startHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *startHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SearchPrefix answers a query shorter than the indexed length (see
// core.Index.SearchPrefix): the truncated-bounds traversal fans across
// (shard, subtree) units and the tail windows that exist only at the
// shorter length are scanned once, here.
func (s *Index) SearchPrefix(q []float64, eps float64) ([]series.Match, error) {
	return s.SearchPrefixCtx(nil, q, eps)
}

// SearchPrefixCtx is SearchPrefix honoring cancellation: ctx flows into
// the fanned-out tree traversal, and the tail scan is skipped when the
// context has already ended. A nil ctx never cancels.
func (s *Index) SearchPrefixCtx(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	tree, err := s.SearchPrefixTreeCtx(ctx, q, eps)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	// The merged list is in position order and the tail starts extend it.
	return core.ScanPrefixTail(s.ext, s.l, q, eps, tree), nil
}

// SearchApprox probes at most leafBudget nearest leaves across all
// shards and returns a possibly incomplete subset of the twins — the
// sharded counterpart of core.Frozen.SearchApprox. The budget is one
// shared atomic allowance drawn by every shard's best-first traversal,
// not a per-shard split: shards whose leaves sit closest to the query
// spend more of it, so a skewed partition no longer burns budget on
// shards with nothing nearby. Which shard draws a contended probe
// depends on scheduling, so the subset may vary between runs; every
// match is a true twin and total leaves probed never exceed the budget.
func (s *Index) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats) {
	ms, st, _ := s.SearchApproxCtx(nil, q, eps, leafBudget)
	return ms, st
}

// Insert adds the window starting at p to the shard owning that
// position: under the contiguous partition the range owner (positions
// past the current end extend the last shard — the streaming-append
// path); under PartitionByMean the shard whose key range covers the
// window's mean. The owning shard is thawed back to pointer form if
// needed and marked dirty; the next search re-freezes it. Do not call
// concurrently with searches.
func (s *Index) Insert(p int) {
	i := s.routeShard(p)
	if s.pointer[i] == nil {
		s.pointer[i] = s.frozen[i].Thaw()
	}
	s.pointer[i].Insert(p)
	s.dirtyShard[i] = true
	s.dirty.Store(true)
	s.units.Store(nil)
}

// routeShard picks the shard that owns (or will own) position p.
func (s *Index) routeShard(p int) int {
	if s.byMean {
		var buf []float64
		if s.ext.Mode() == series.NormPerSubsequence {
			buf = make([]float64, s.l)
		}
		k := windowKey(s.ext, p, s.l, buf)
		// Shard i+1 starts at cuts[i]; route to the last shard whose
		// lower bound is ≤ k.
		return sort.Search(len(s.cuts), func(j int) bool { return s.cuts[j] > k })
	}
	last := len(s.starts) - 1
	if p >= s.starts[last] {
		s.starts[last] = p + 1
		return len(s.frozen) - 1
	}
	// Owning shard i satisfies starts[i] ≤ p < starts[i+1].
	return sort.SearchInts(s.starts, p+1) - 1
}

// Len returns the number of indexed windows across all shards.
func (s *Index) Len() int {
	// ensureFrozen first: the arenas are then authoritative, and the
	// dirty-flag handshake orders this read against any concurrent
	// search's refreeze (plain reads of frozen[] would race with it).
	s.ensureFrozen()
	total := 0
	for _, f := range s.frozen {
		total += f.Len()
	}
	return total
}

// L returns the indexed subsequence length.
func (s *Index) L() int { return s.l }

// NumShards returns the shard count.
func (s *Index) NumShards() int { return len(s.frozen) }

// Shard returns the frozen arena of shard i (re-freezing first if an
// insertion left it stale).
func (s *Index) Shard(i int) *core.Frozen {
	s.ensureFrozen()
	return s.frozen[i]
}

// Range returns the contiguous position range shard i owns, or ok=false
// under PartitionByMean (where shards own interleaved runs).
func (s *Index) Range(i int) (lo, hi int, ok bool) {
	if s.byMean {
		return 0, 0, false
	}
	return s.starts[i], s.starts[i+1], true
}

// Extractor exposes the extractor the index was built over.
func (s *Index) Extractor() *series.Extractor { return s.ext }

// MemoryBytes sums the per-shard heap-resident arena footprints, plus
// the pointer trees of any shards thawed for insertion (both forms are
// resident on the streaming path). File-mapped shard arenas are counted
// by MappedBytes instead.
func (s *Index) MemoryBytes() int {
	s.ensureFrozen() // order the frozen[] reads against refreezes
	total := 0
	for i, f := range s.frozen {
		total += f.MemoryBytes()
		if s.pointer[i] != nil {
			total += s.pointer[i].MemoryBytes()
		}
	}
	return total
}

// MappedBytes sums the file-mapped footprints of the shard arenas: the
// flat arrays of every shard still backed by an mmap'd region (see
// OpenArena). Shards re-frozen after Insert move their arrays to the
// heap and drop out of this figure.
func (s *Index) MappedBytes() int {
	s.ensureFrozen()
	total := 0
	for _, f := range s.frozen {
		total += f.MappedBytes()
	}
	return total
}

// CheckInvariants validates every shard's structural invariants plus
// the partition invariants (checkPartition). Load skips the per-arena
// half — core.LoadFrozen / core.Load validated each shard stream
// moments earlier — and runs only checkPartition.
func (s *Index) CheckInvariants() error {
	s.ensureFrozen()
	for i, f := range s.frozen {
		if err := f.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return s.checkPartition()
}

// checkPartitionShape validates the O(shards) partition invariants:
// contiguous ranges cover [0, count) in order with per-shard window
// counts matching their range widths (contiguous mode), mean-routing
// cuts are sorted and shard sizes sum to the window count (mean mode).
// The zero-copy open path (OpenArena) stops here — walking every
// position of a mapped multi-gigabyte index would defeat the cheap
// open — while checkPartition adds the full ownership scan.
func (s *Index) checkPartitionShape() error {
	s.ensureFrozen()
	p := len(s.frozen)
	count := series.NumSubsequences(s.ext.Len(), s.l)
	total := 0
	for _, f := range s.frozen {
		total += f.Len()
	}
	if total != count {
		return fmt.Errorf("shard: shards hold %d windows, series has %d", total, count)
	}
	if s.byMean {
		if len(s.cuts) != p-1 {
			return fmt.Errorf("shard: %d mean cuts for %d shards", len(s.cuts), p)
		}
		for i := 1; i < len(s.cuts); i++ {
			if s.cuts[i] < s.cuts[i-1] {
				return fmt.Errorf("shard: mean cut %d (%g) below cut %d (%g)", i, s.cuts[i], i-1, s.cuts[i-1])
			}
		}
		return nil
	}
	if len(s.starts) != p+1 {
		return fmt.Errorf("shard: %d boundaries for %d shards", len(s.starts), p)
	}
	if s.starts[0] != 0 {
		return fmt.Errorf("shard: first range starts at %d, want 0", s.starts[0])
	}
	if got := s.starts[p]; got != count {
		return fmt.Errorf("shard: ranges end at %d, series has %d windows", got, count)
	}
	for i, f := range s.frozen {
		if s.starts[i] >= s.starts[i+1] {
			return fmt.Errorf("shard %d: empty or inverted range [%d, %d)", i, s.starts[i], s.starts[i+1])
		}
		if got, want := f.Len(), s.starts[i+1]-s.starts[i]; got != want {
			return fmt.Errorf("shard %d: holds %d windows, range [%d, %d) spans %d", i, got, s.starts[i], s.starts[i+1], want)
		}
	}
	return nil
}

// checkPartition validates the partition invariants alone: the shape
// checks above plus the full ownership scan — every window position
// owned by exactly one shard, inside its owner's range in contiguous
// mode.
func (s *Index) checkPartition() error {
	if err := s.checkPartitionShape(); err != nil {
		return err
	}
	count := series.NumSubsequences(s.ext.Len(), s.l)
	seen := make([]bool, count)
	for i, f := range s.frozen {
		for _, pos := range f.Positions() {
			if int(pos) >= count {
				return fmt.Errorf("shard %d: position %d beyond %d windows", i, pos, count)
			}
			if seen[pos] {
				return fmt.Errorf("shard %d: position %d owned twice", i, pos)
			}
			seen[pos] = true
			if !s.byMean && (int(pos) < s.starts[i] || int(pos) >= s.starts[i+1]) {
				return fmt.Errorf("shard %d: position %d outside range [%d, %d)", i, pos, s.starts[i], s.starts[i+1])
			}
		}
	}
	for pos, ok := range seen {
		if !ok {
			return fmt.Errorf("shard: position %d owned by no shard", pos)
		}
	}
	return nil
}
