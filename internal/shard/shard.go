// Package shard implements a sharded parallel TS-Index: the window
// position space [0, N−ℓ] is split into P contiguous ranges, one
// core.Index is built per range concurrently, and queries run as
// fine-grained (shard, subtree) work units on a work-stealing executor
// (internal/exec) — the data-partitioning strategy ParIS/MESSI apply
// to iSAX, transplanted onto the paper's TS-Index, with MESSI-style
// work queues instead of one goroutine per shard, so a hot shard's
// subtrees spread across idle workers and query latency is bounded by
// total work rather than by the largest partition.
//
// Sharding changes the tree shapes (each shard packs only its own
// windows) but never the answer set: range searches concatenate
// per-shard results in position order, and top-k runs a k-way merge
// under the (distance, start) total order with a cross-unit pruning
// bound (core.SharedBound), so results are identical to a single index
// over the full series regardless of how many workers run the units.
package shard

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Config parameterizes a sharded build.
type Config struct {
	// Config is the per-shard TS-Index configuration.
	core.Config
	// Shards is the number of partitions; ≤ 0 selects GOMAXPROCS. The
	// effective count never exceeds the number of windows.
	Shards int
	// BulkLoad selects bottom-up construction for every shard.
	BulkLoad bool
	// Boundaries, when non-nil, fixes the partition explicitly: entry i
	// and i+1 delimit shard i's position range, so it must be strictly
	// increasing from 0 to the window count, and its length must agree
	// with Shards when both are set. Benchmarks and tests use it to
	// build deliberately skewed shards; the default is an even split.
	Boundaries []int
	// Executor runs the build and query work units; nil selects the
	// process-wide default (GOMAXPROCS workers).
	Executor *exec.Executor
}

// Index is a sharded TS-Index over one series.
type Index struct {
	ext    *series.Extractor
	l      int
	shards []*core.Index
	// starts has len(shards)+1 entries; shard i owns window positions
	// [starts[i], starts[i+1]).
	starts []int
	ex     *exec.Executor

	// units caches each shard's subtree frontier — the (shard, subtree)
	// work units a query enqueues. Insert invalidates it (splits
	// restructure nodes); concurrent searches recompute it racily but
	// deterministically, so whichever Store wins is equivalent.
	units atomic.Pointer[[][]core.Subtree]
}

// Build partitions the position space and constructs every shard on
// the executor. With Shards resolving to 1 the result is a single
// core.Index behind the fan-out API — bit-identical answers either way.
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	if cfg.L <= 0 {
		return nil, fmt.Errorf("shard: invalid subsequence length %d", cfg.L)
	}
	count := series.NumSubsequences(ext.Len(), cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("shard: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}

	var starts []int
	if cfg.Boundaries != nil {
		if err := validateBoundaries(cfg.Boundaries, cfg.Shards, count); err != nil {
			return nil, err
		}
		starts = append([]int(nil), cfg.Boundaries...)
	} else {
		p := cfg.Shards
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		if p > count {
			p = count
		}
		starts = make([]int, p+1)
		for i := range starts {
			starts[i] = i * count / p
		}
	}
	p := len(starts) - 1

	ex := cfg.Executor
	if ex == nil {
		ex = exec.Default()
	}

	shards := make([]*core.Index, p)
	errs := make([]error, p)
	ex.ForEach(p, func(i int) {
		if cfg.BulkLoad {
			shards[i], errs[i] = core.BuildBulkRange(ext, cfg.Config, starts[i], starts[i+1])
		} else {
			shards[i], errs[i] = core.BuildRange(ext, cfg.Config, starts[i], starts[i+1])
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
	}
	return &Index{ext: ext, l: cfg.L, shards: shards, starts: starts, ex: ex}, nil
}

// validateBoundaries rejects partitions that don't cover [0, count)
// with strictly increasing non-empty ranges.
func validateBoundaries(b []int, shards, count int) error {
	if len(b) < 2 {
		return fmt.Errorf("shard: %d boundary entries delimit no shards", len(b))
	}
	if shards != 0 && shards != len(b)-1 {
		return fmt.Errorf("shard: %d boundary entries delimit %d shards, Config.Shards says %d", len(b), len(b)-1, shards)
	}
	if b[0] != 0 {
		return fmt.Errorf("shard: first boundary %d, want 0", b[0])
	}
	if b[len(b)-1] != count {
		return fmt.Errorf("shard: last boundary %d, series has %d windows", b[len(b)-1], count)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return fmt.Errorf("shard: boundary %d (%d) not after boundary %d (%d)", i, b[i], i-1, b[i-1])
		}
	}
	return nil
}

// Executor returns the executor the index schedules its queries on.
func (s *Index) Executor() *exec.Executor { return s.ex }

// unitFrontiers returns the cached (shard → subtrees) split,
// recomputing it after Insert invalidated the cache. The per-shard
// target over-provisions units (4×) relative to the widest pool that
// could usefully run them — the index's own executor or the machine
// (SearchBatch may bring a dedicated pool wider than the engine's; the
// work is CPU-bound, so GOMAXPROCS caps useful width) — giving
// stealing slack to even out skewed shards.
func (s *Index) unitFrontiers() [][]core.Subtree {
	if u := s.units.Load(); u != nil {
		return *u
	}
	p := len(s.shards)
	w := s.ex.Workers()
	if g := runtime.GOMAXPROCS(0); g > w {
		w = g
	}
	per := 1
	if t := 4 * w; t > p {
		per = (t + p - 1) / p
	}
	fr := make([][]core.Subtree, p)
	for i, ix := range s.shards {
		fr[i] = ix.Frontier(per)
	}
	s.units.Store(&fr)
	return fr
}

// Search returns all twin subsequences of q at threshold eps, in start
// order — identical to core.Index.Search over an unsharded index.
func (s *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := s.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters summed across work
// units. Counter values differ from a single index's (each shard's
// tree packs differently, and nodes above a unit's subtree root are
// never visited); the match set does not.
func (s *Index) SearchStats(q []float64, eps float64) ([]series.Match, core.Stats) {
	if len(s.shards) == 1 {
		return s.shards[0].SearchStats(q, eps)
	}
	g := s.ex.NewGroup()
	p := s.QueueSearch(g, q, eps)
	g.Wait()
	return p.Resolve()
}

// PendingSearch holds the per-unit results of one enqueued range
// search; Resolve assembles them after the group completes. It lets
// Engine.SearchBatch fuse many queries into one executor group — every
// (query, shard, subtree) unit is a peer in the same pool — instead of
// nesting a query pool above a shard pool.
type PendingSearch struct {
	res [][][]series.Match // [shard][unit] match lists, traversal order
	st  [][]core.Stats     // [shard][unit]
}

// QueueSearch enqueues the (shard, subtree) units of one range search
// into g and returns a handle to assemble the result. Call Resolve
// only after g.Wait() returns.
func (s *Index) QueueSearch(g *exec.Group, q []float64, eps float64) *PendingSearch {
	fr := s.unitFrontiers()
	p := &PendingSearch{
		res: make([][][]series.Match, len(fr)),
		st:  make([][]core.Stats, len(fr)),
	}
	for i, units := range fr {
		p.res[i] = make([][]series.Match, len(units))
		p.st[i] = make([]core.Stats, len(units))
		ix := s.shards[i]
		for j, u := range units {
			g.Go(func(*exec.Ctx) {
				p.res[i][j], p.st[i][j] = ix.SearchStatsFrom(u, q, eps)
			})
		}
	}
	return p
}

// Resolve merges the unit results deterministically: units of one
// shard are concatenated and sorted by start (the set is identical
// however the tree was split, so the sorted order is too), and shards
// own ascending contiguous position ranges, so shard-order
// concatenation IS the position-order merge.
func (p *PendingSearch) Resolve() ([]series.Match, core.Stats) {
	var st core.Stats
	total := 0
	for i := range p.res {
		for j := range p.res[i] {
			total += len(p.res[i][j])
			st = addStats(st, p.st[i][j])
		}
	}
	st.Results = total
	if total == 0 {
		return nil, st
	}
	out := make([]series.Match, 0, total)
	for i := range p.res {
		shardStart := len(out)
		for _, ms := range p.res[i] {
			out = append(out, ms...)
		}
		series.SortMatches(out[shardStart:])
	}
	return out, st
}

func addStats(a, b core.Stats) core.Stats {
	a.NodesVisited += b.NodesVisited
	a.NodesPruned += b.NodesPruned
	a.LeavesReached += b.LeavesReached
	a.Candidates += b.Candidates
	a.Results += b.Results
	return a
}

// concatMatches merges per-shard start-sorted results; shard order IS
// position order (contiguous ascending ranges).
func concatMatches(per [][]series.Match) []series.Match {
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	if total == 0 {
		return nil
	}
	out := make([]series.Match, 0, total)
	for _, ms := range per {
		out = append(out, ms...)
	}
	return out
}

// SearchTopK returns the k nearest subsequences under Chebyshev
// distance in ascending (distance, start) order — identical to
// core.Index.SearchTopK. Every unit's traversal shares one pruning
// bound (the best k-th distance any unit has admitted so far), and the
// per-unit lists are combined by a k-way merge.
func (s *Index) SearchTopK(q []float64, k int) []series.Match {
	if k <= 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.shards[0].SearchTopK(q, k)
	}
	fr := s.unitFrontiers()
	n := 0
	for _, units := range fr {
		n += len(units)
	}
	shared := core.NewSharedBound()
	lists := make([][]series.Match, n)
	g := s.ex.NewGroup()
	at := 0
	for i, units := range fr {
		ix := s.shards[i]
		for _, u := range units {
			slot := at
			at++
			g.Go(func(*exec.Ctx) {
				lists[slot] = ix.SearchTopKSharedFrom(u, q, k, shared)
			})
		}
	}
	g.Wait()
	return mergeTopK(lists, k)
}

// mergeTopK k-way-merges start-disjoint, distance-sorted lists and
// returns the first k items under the (dist, start) total order.
func mergeTopK(per [][]series.Match, k int) []series.Match {
	h := make(mergeHeap, 0, len(per))
	for i, ms := range per {
		if len(ms) > 0 {
			h = append(h, mergeItem{list: i, m: ms[0]})
		}
	}
	heap.Init(&h)
	var out []series.Match
	next := make([]int, len(per))
	for h.Len() > 0 && len(out) < k {
		top := h[0]
		out = append(out, top.m)
		next[top.list]++
		if n := next[top.list]; n < len(per[top.list]) {
			h[0] = mergeItem{list: top.list, m: per[top.list][n]}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

type mergeItem struct {
	list int
	m    series.Match
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].m.Dist != h[j].m.Dist {
		return h[i].m.Dist < h[j].m.Dist
	}
	return h[i].m.Start < h[j].m.Start
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SearchPrefix answers a query shorter than the indexed length (see
// core.Index.SearchPrefix): the truncated-bounds traversal fans across
// (shard, subtree) units and the tail windows that exist only at the
// shorter length are scanned once, here.
func (s *Index) SearchPrefix(q []float64, eps float64) ([]series.Match, error) {
	if err := s.shards[0].ValidatePrefix(q); err != nil {
		return nil, err
	}
	if len(s.shards) == 1 {
		return s.shards[0].SearchPrefix(q, eps)
	}
	fr := s.unitFrontiers()
	res := make([][][]series.Match, len(fr))
	g := s.ex.NewGroup()
	for i, units := range fr {
		res[i] = make([][]series.Match, len(units))
		ix := s.shards[i]
		for j, u := range units {
			g.Go(func(*exec.Ctx) {
				res[i][j] = ix.SearchPrefixTreeFrom(u, q, eps)
			})
		}
	}
	g.Wait()
	per := make([][]series.Match, len(fr))
	for i := range res {
		var ms []series.Match
		for _, unit := range res[i] {
			ms = append(ms, unit...)
		}
		series.SortMatches(ms)
		per[i] = ms
	}
	// concatMatches yields position order and the tail starts extend it.
	return core.ScanPrefixTail(s.ext, s.l, q, eps, concatMatches(per)), nil
}

// SearchApprox probes at most leafBudget nearest leaves across all
// shards and returns a possibly incomplete subset of the twins — the
// sharded counterpart of core.Index.SearchApprox. The budget is one
// shared atomic allowance drawn by every shard's best-first traversal,
// not a per-shard split: shards whose leaves sit closest to the query
// spend more of it, so a skewed partition no longer burns budget on
// shards with nothing nearby. Which shard draws a contended probe
// depends on scheduling, so the subset may vary between runs; every
// match is a true twin and total leaves probed never exceed the budget.
func (s *Index) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	if len(s.shards) == 1 {
		return s.shards[0].SearchApprox(q, eps, leafBudget)
	}
	budget := core.NewLeafBudget(leafBudget)
	per := make([][]series.Match, len(s.shards))
	stats := make([]core.Stats, len(s.shards))
	g := s.ex.NewGroup()
	for i, ix := range s.shards {
		g.Go(func(*exec.Ctx) {
			per[i], stats[i] = ix.SearchApproxShared(q, eps, budget)
		})
	}
	g.Wait()
	var st core.Stats
	for _, x := range stats {
		st = addStats(st, x)
	}
	return concatMatches(per), st
}

// Insert adds the window starting at p to the shard owning that
// position; positions past the current end extend the last shard (the
// streaming-append path). Insertion restructures nodes, so the cached
// work-unit frontiers are invalidated and recomputed on the next
// query. Do not call concurrently with searches.
func (s *Index) Insert(p int) {
	s.units.Store(nil)
	last := len(s.starts) - 1
	if p >= s.starts[last] {
		s.starts[last] = p + 1
		s.shards[len(s.shards)-1].Insert(p)
		return
	}
	// Owning shard i satisfies starts[i] ≤ p < starts[i+1].
	i := sort.SearchInts(s.starts, p+1) - 1
	s.shards[i].Insert(p)
}

// Len returns the number of indexed windows across all shards.
func (s *Index) Len() int {
	total := 0
	for _, ix := range s.shards {
		total += ix.Len()
	}
	return total
}

// L returns the indexed subsequence length.
func (s *Index) L() int { return s.l }

// NumShards returns the shard count.
func (s *Index) NumShards() int { return len(s.shards) }

// Shard returns shard i and the position range it owns.
func (s *Index) Shard(i int) (ix *core.Index, lo, hi int) {
	return s.shards[i], s.starts[i], s.starts[i+1]
}

// Extractor exposes the extractor the index was built over.
func (s *Index) Extractor() *series.Extractor { return s.ext }

// MemoryBytes sums the per-shard index footprints.
func (s *Index) MemoryBytes() int {
	total := 0
	for _, ix := range s.shards {
		total += ix.MemoryBytes()
	}
	return total
}

// CheckInvariants validates every shard's structural invariants plus
// the partition invariants: ranges are contiguous, cover [0, count),
// and each shard holds exactly the windows of its range.
func (s *Index) CheckInvariants() error {
	if len(s.starts) != len(s.shards)+1 {
		return fmt.Errorf("shard: %d boundaries for %d shards", len(s.starts), len(s.shards))
	}
	if s.starts[0] != 0 {
		return fmt.Errorf("shard: first range starts at %d, want 0", s.starts[0])
	}
	count := series.NumSubsequences(s.ext.Len(), s.l)
	if got := s.starts[len(s.shards)]; got != count {
		return fmt.Errorf("shard: ranges end at %d, series has %d windows", got, count)
	}
	for i, ix := range s.shards {
		if s.starts[i] >= s.starts[i+1] {
			return fmt.Errorf("shard %d: empty or inverted range [%d, %d)", i, s.starts[i], s.starts[i+1])
		}
		if got, want := ix.Len(), s.starts[i+1]-s.starts[i]; got != want {
			return fmt.Errorf("shard %d: holds %d windows, range [%d, %d) spans %d", i, got, s.starts[i], s.starts[i+1], want)
		}
		if err := ix.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
