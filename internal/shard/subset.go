package shard

// Subset serves an assigned slice of a saved sharded index's shards —
// the unit a distributed shard node hosts. OpenArenaShards opens only
// the assigned segments of a TSSH v3 region: the segment table gives
// every segment's byte length, so unassigned segments are skipped by
// pure offset arithmetic — their bytes are never read, validated, or
// viewed, and under a file mapping their pages are never faulted in.
// Opening N of P shards costs O(N segments), not O(file).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"twinsearch/internal/arena"
	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
)

// Subset is a read-only view over an assigned subset of a saved sharded
// index's shards. It implements Backend; unlike Index it supports no
// insertion (a node's shards are exactly what the saved file froze).
type Subset struct {
	ext    *series.Extractor
	l      int
	byMean bool
	total  int   // shard count of the whole container
	ids    []int // assigned global shard indices, ascending
	frozen []*core.Frozen
	starts []int // contiguous mode: the container's full boundary table
	ex     *exec.Executor

	// units caches the (shard → subtrees) split; a Subset is immutable,
	// so racing recomputations are identical and whichever lands wins.
	units atomic.Pointer[[][]core.FrozenSubtree]
}

var _ Backend = (*Subset)(nil)

// OpenArenaShards opens the shards listed in assigned (global indices,
// any order, no duplicates) from a TSSH v3 stream occupying the whole
// arena. Assigned segments become zero-copy views into the region;
// unassigned segments are skipped via the segment table without
// touching their bytes. The caller owns ar and must keep it alive (and
// unclosed) for the subset's lifetime; ex nil selects the process-wide
// default executor.
func OpenArenaShards(ar *arena.Arena, ext *series.Extractor, ex *exec.Executor, assigned []int) (*Subset, error) {
	buf := ar.Bytes()
	if len(buf) < 12 {
		return nil, fmt.Errorf("shard: arena: %d-byte region too small for a header", len(buf))
	}
	if string(buf[:4]) != Magic {
		return nil, fmt.Errorf("shard: arena: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != PersistVersion {
		return nil, fmt.Errorf("shard: arena: version %d streams cannot be opened selectively (the segment table arrived in v%d)", v, PersistVersion)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	h, err := readShardHeader(br)
	if err != nil {
		return nil, err
	}

	if len(assigned) == 0 {
		return nil, fmt.Errorf("shard: subset: no shards assigned")
	}
	ids := append([]int(nil), assigned...)
	sort.Ints(ids)
	for i, id := range ids {
		if id < 0 || id >= h.count {
			return nil, fmt.Errorf("shard: subset: shard %d out of range [0, %d)", id, h.count)
		}
		if i > 0 && id == ids[i-1] {
			return nil, fmt.Errorf("shard: subset: shard %d assigned twice", id)
		}
	}

	if ex == nil {
		ex = exec.Default()
	}
	s := &Subset{ext: ext, byMean: h.byMean, total: h.count, ids: ids,
		frozen: make([]*core.Frozen, len(ids)), starts: h.starts, ex: ex}

	off := arena.Align8(headerLen(h.count, h.byMean))
	next := 0
	for i := 0; i < h.count && next < len(ids); i++ {
		if off > int64(len(buf)) {
			return nil, fmt.Errorf("shard: arena: segment %d starts at %d, region has %d bytes", i, off, len(buf))
		}
		if i != ids[next] {
			// Not ours: step over the segment by table length alone.
			off += h.segLens[i]
			continue
		}
		f, n, err := core.FrozenFromArena(ar, off, ext)
		if err != nil {
			return nil, fmt.Errorf("shard: mapping shard %d: %w", i, err)
		}
		if n != h.segLens[i] {
			return nil, fmt.Errorf("shard: arena: shard %d spans %d bytes, table says %d", i, n, h.segLens[i])
		}
		if next == 0 {
			s.l = f.L()
		} else if f.L() != s.l {
			return nil, fmt.Errorf("shard: shard %d has L=%d, shard %d has L=%d", i, f.L(), ids[0], s.l)
		}
		s.frozen[next] = f
		next++
		off += n
	}

	if err := s.checkShape(); err != nil {
		return nil, fmt.Errorf("shard: subset: %w", err)
	}
	return s, nil
}

// checkShape validates the O(assigned) partition invariants: contiguous
// shards hold exactly their recorded range widths and ranges are
// ordered; the subset total never exceeds the series' window count.
func (s *Subset) checkShape() error {
	count := series.NumSubsequences(s.ext.Len(), s.l)
	total := 0
	for _, f := range s.frozen {
		total += f.Len()
	}
	if total > count {
		return fmt.Errorf("assigned shards hold %d windows, series has %d", total, count)
	}
	if s.byMean {
		return nil
	}
	if len(s.starts) != s.total+1 {
		return fmt.Errorf("%d boundaries for %d shards", len(s.starts), s.total)
	}
	if s.starts[0] != 0 || s.starts[s.total] != count {
		return fmt.Errorf("boundaries [%d, %d] do not frame %d windows", s.starts[0], s.starts[s.total], count)
	}
	for j, id := range s.ids {
		lo, hi := s.starts[id], s.starts[id+1]
		if lo >= hi {
			return fmt.Errorf("shard %d: empty or inverted range [%d, %d)", id, lo, hi)
		}
		if got, want := s.frozen[j].Len(), hi-lo; got != want {
			return fmt.Errorf("shard %d: holds %d windows, range [%d, %d) spans %d", id, got, lo, hi, want)
		}
	}
	return nil
}

// unitFrontiers mirrors Index.unitFrontiers with one deliberate twist:
// the over-provisioning target divides by the CONTAINER's shard count,
// not the assigned count. Per-shard frontiers (and therefore the
// traversal counters a node reports, which never visit nodes above a
// unit's subtree root) then match what the single-process fan-out over
// the whole index would produce on the same machine — whatever slice of
// the shards this node happens to serve.
func (s *Subset) unitFrontiers() [][]core.FrozenSubtree {
	if u := s.units.Load(); u != nil {
		return *u
	}
	p := len(s.frozen)
	w := s.ex.Workers()
	if g := runtime.GOMAXPROCS(0); g > w {
		w = g
	}
	per := 1
	if t := 4 * w; t > s.total {
		per = (t + s.total - 1) / s.total
	}
	fr := make([][]core.FrozenSubtree, p)
	for i, f := range s.frozen {
		fr[i] = f.Frontier(per)
	}
	s.units.Store(&fr)
	return fr
}

// Search implements Backend: all twins at eps among this subset's
// windows, sorted by start.
func (s *Subset) Search(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	ms, _, err := s.SearchStats(ctx, q, eps)
	return ms, err
}

// SearchStats implements Backend. The whole-tree fast path applies
// only when this subset IS the whole container; see searchStatsUnits.
func (s *Subset) SearchStats(ctx context.Context, q []float64, eps float64) ([]series.Match, core.Stats, error) {
	return searchStatsUnits(ctx, s.ex, s.frozen, s.unitFrontiers, s.byMean, q, eps, s.total == 1)
}

// SearchTopK implements Backend: the k nearest among this subset's
// windows, pruning against bound (see Backend for the seeding
// contract).
func (s *Subset) SearchTopK(ctx context.Context, q []float64, k int, bound float64) ([]series.Match, error) {
	return searchTopKUnits(ctx, s.ex, s.frozen, s.unitFrontiers, q, k, bound)
}

// SearchPrefixTree implements Backend: prefix twins among this subset's
// indexed starts only — the tail windows belong to whoever coordinates.
func (s *Subset) SearchPrefixTree(ctx context.Context, q []float64, eps float64) ([]series.Match, error) {
	return searchPrefixUnits(ctx, s.ex, s.frozen, s.unitFrontiers, s.byMean, q, eps)
}

// SearchApprox implements Backend: at most leafBudget leaf probes
// shared across this subset's shards.
func (s *Subset) SearchApprox(ctx context.Context, q []float64, eps float64, leafBudget int) ([]series.Match, core.Stats, error) {
	return searchApproxUnits(ctx, s.ex, s.frozen, s.byMean, q, eps, leafBudget)
}

// Windows implements Backend.
func (s *Subset) Windows() int {
	total := 0
	for _, f := range s.frozen {
		total += f.Len()
	}
	return total
}

// ShardIDs implements Backend.
func (s *Subset) ShardIDs() []int { return append([]int(nil), s.ids...) }

// TotalShards returns the shard count of the whole container the subset
// was opened from.
func (s *Subset) TotalShards() int { return s.total }

// PartitionByMean reports the container's partition scheme.
func (s *Subset) PartitionByMean() bool { return s.byMean }

// L returns the indexed subsequence length.
func (s *Subset) L() int { return s.l }

// Extractor exposes the extractor the subset verifies against.
func (s *Subset) Extractor() *series.Extractor { return s.ext }

// MemoryBytes implements Backend: heap-resident bytes of the assigned
// arenas only.
func (s *Subset) MemoryBytes() int {
	total := 0
	for _, f := range s.frozen {
		total += f.MemoryBytes()
	}
	return total
}

// MappedBytes implements Backend: the file-mapped footprint of the
// assigned shard arrays alone. Unassigned segments contribute nothing —
// their pages are never viewed or touched — so a selective open of a
// mapped index always reports less than the file size.
func (s *Subset) MappedBytes() int {
	total := 0
	for _, f := range s.frozen {
		total += f.MappedBytes()
	}
	return total
}
