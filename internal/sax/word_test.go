package sax

import (
	"math/rand"
	"testing"
)

func TestNewWord(t *testing.T) {
	q := Standard()
	w := NewWord(q, []float64{-2, 0.1, 2}, 2)
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.Syms[0] != 0 || w.Syms[1] != 2 || w.Syms[2] != 3 {
		t.Fatalf("Syms = %v", w.Syms)
	}
	for _, b := range w.Bits {
		if b != 2 {
			t.Fatalf("Bits = %v", w.Bits)
		}
	}
}

func TestWordKeyAndString(t *testing.T) {
	q := Standard()
	w1 := NewWord(q, []float64{-2, 2}, 1)
	w2 := NewWord(q, []float64{-2, 2}, 1)
	w3 := NewWord(q, []float64{2, 2}, 1)
	if w1.Key() != w2.Key() {
		t.Fatal("equal words must share a key")
	}
	if w1.Key() == w3.Key() {
		t.Fatal("different words must differ in key")
	}
	if w1.String() != "0^2 1^2" {
		t.Fatalf("String = %q", w1.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	q := Standard()
	w := NewWord(q, []float64{0, 0}, 2)
	c := w.Clone()
	c.Syms[0] = 3
	c.Bits[1] = 5
	if w.Syms[0] == 3 || w.Bits[1] == 5 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSplitChildren(t *testing.T) {
	q := Standard()
	w := NewWord(q, []float64{0.1, -0.1}, 1) // syms = [1, 0] at 1 bit
	left, right := w.SplitChildren(0)
	if left.Bits[0] != 2 || right.Bits[0] != 2 {
		t.Fatalf("children bits = %d, %d", left.Bits[0], right.Bits[0])
	}
	if left.Syms[0] != 2 || right.Syms[0] != 3 {
		t.Fatalf("children syms = %d, %d", left.Syms[0], right.Syms[0])
	}
	// Untouched segment unchanged.
	if left.Syms[1] != w.Syms[1] || left.Bits[1] != w.Bits[1] {
		t.Fatal("split must not touch other segments")
	}
}

func TestSplitChildrenPanicsAtMax(t *testing.T) {
	w := Word{Syms: []uint8{0}, Bits: []uint8{MaxBits}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	w.SplitChildren(0)
}

func TestMatchesMaxAfterSplit(t *testing.T) {
	// Every max-cardinality symbol matching the parent must match exactly
	// one of the two children.
	q := Standard()
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 500; iter++ {
		paa := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		symsMax := make([]uint8, len(paa))
		for i, v := range paa {
			symsMax[i] = q.SymbolMax(v)
		}
		parent := WordFromMax(symsMax, []uint8{1, 2, 3})
		if !parent.MatchesMax(symsMax) {
			t.Fatal("WordFromMax must match its own source symbols")
		}
		seg := rng.Intn(3)
		left, right := parent.SplitChildren(seg)
		inLeft := left.MatchesMax(symsMax)
		inRight := right.MatchesMax(symsMax)
		if inLeft == inRight {
			t.Fatalf("iter %d: symbol must fall in exactly one child (left=%v right=%v)", iter, inLeft, inRight)
		}
	}
}

func TestWordFromMax(t *testing.T) {
	syms := []uint8{0b10110011, 0b01000000}
	w := WordFromMax(syms, []uint8{3, 1})
	if w.Syms[0] != 0b101 || w.Syms[1] != 0 {
		t.Fatalf("Syms = %v", w.Syms)
	}
}

func TestPruneTwinSoundness(t *testing.T) {
	// If a sequence's PAA falls under the word and a query is within ε of
	// the sequence per segment, PruneTwin must not prune.
	q := Standard()
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 1000; iter++ {
		m := 2 + rng.Intn(6)
		paa := make([]float64, m)
		symsMax := make([]uint8, m)
		bits := make([]uint8, m)
		for i := range paa {
			paa[i] = rng.NormFloat64()
			symsMax[i] = q.SymbolMax(paa[i])
			bits[i] = uint8(1 + rng.Intn(MaxBits))
		}
		w := WordFromMax(symsMax, bits)
		eps := rng.Float64()
		qPAA := make([]float64, m)
		for i := range qPAA {
			// Query segment mean within ε of the member's mean — a twin
			// of the member could produce exactly this.
			qPAA[i] = paa[i] + (rng.Float64()*2-1)*eps
		}
		if w.PruneTwin(q, qPAA, eps) {
			t.Fatalf("iter %d: pruned a node that contains a potential twin", iter)
		}
	}
}

func TestPruneTwinCuts(t *testing.T) {
	q := Standard()
	// Word at high cardinality around PAA value 0; query far away with
	// tiny ε must prune.
	w := NewWord(q, []float64{0, 0}, MaxBits)
	if !w.PruneTwin(q, []float64{5, 0}, 0.01) {
		t.Fatal("distant query should prune")
	}
	if w.PruneTwin(q, []float64{0, 0}, 0.01) {
		t.Fatal("near query should not prune")
	}
}
