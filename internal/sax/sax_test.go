package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBreakpointsCardinality4(t *testing.T) {
	// Classic SAX table for cardinality 4: {-0.6745, 0, 0.6745}.
	bps := Standard().Breakpoints(2)
	want := []float64{-0.6744897501960817, 0, 0.6744897501960817}
	if len(bps) != 3 {
		t.Fatalf("got %d breakpoints", len(bps))
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-9 {
			t.Fatalf("bp[%d] = %v, want %v", i, bps[i], want[i])
		}
	}
}

func TestBreakpointsMonotone(t *testing.T) {
	q := Standard()
	for b := 1; b <= MaxBits; b++ {
		bps := q.Breakpoints(b)
		if len(bps) != (1<<b)-1 {
			t.Fatalf("bits=%d: %d breakpoints", b, len(bps))
		}
		for i := 1; i < len(bps); i++ {
			if bps[i] <= bps[i-1] {
				t.Fatalf("bits=%d: breakpoints not strictly increasing at %d", b, i)
			}
		}
	}
}

func TestBreakpointSubsetProperty(t *testing.T) {
	// The cardinality-2^b breakpoints must appear verbatim inside the
	// MaxBits table; this is what makes Downgrade a bit shift.
	q := Standard()
	full := q.Breakpoints(MaxBits)
	for b := 1; b < MaxBits; b++ {
		stride := 1 << (MaxBits - b)
		for j, bp := range q.Breakpoints(b) {
			if full[(j+1)*stride-1] != bp {
				t.Fatalf("bits=%d bp[%d] not in full table", b, j)
			}
		}
	}
}

func TestSymbolBasics(t *testing.T) {
	q := Standard()
	if s := q.Symbol(-10, 2); s != 0 {
		t.Fatalf("far-left symbol = %d", s)
	}
	if s := q.Symbol(10, 2); s != 3 {
		t.Fatalf("far-right symbol = %d", s)
	}
	if s := q.Symbol(0.1, 2); s != 2 {
		t.Fatalf("slightly positive = %d, want 2", s)
	}
	if s := q.Symbol(-0.1, 2); s != 1 {
		t.Fatalf("slightly negative = %d, want 1", s)
	}
	// A value exactly on a breakpoint belongs to the upper symbol
	// (half-open intervals).
	if s := q.Symbol(0, 2); s != 2 {
		t.Fatalf("boundary value = %d, want 2", s)
	}
}

func TestSymbolRangeRoundTrip(t *testing.T) {
	q := Standard()
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 2000; iter++ {
		v := rng.NormFloat64() * 2
		bits := 1 + rng.Intn(MaxBits)
		s := q.Symbol(v, bits)
		lo, hi := q.Range(s, bits)
		if v < lo || v >= hi {
			t.Fatalf("v=%v bits=%d: symbol %d range [%v,%v) excludes v", v, bits, s, lo, hi)
		}
	}
}

func TestRangeEdges(t *testing.T) {
	q := Standard()
	lo, hi := q.Range(0, 3)
	if !math.IsInf(lo, -1) || math.IsInf(hi, 0) {
		t.Fatalf("lowest symbol range = [%v, %v)", lo, hi)
	}
	lo, hi = q.Range(7, 3)
	if math.IsInf(lo, 0) || !math.IsInf(hi, 1) {
		t.Fatalf("highest symbol range = [%v, %v)", lo, hi)
	}
}

func TestDowngradeConsistency(t *testing.T) {
	q := Standard()
	f := func(v float64, bitsRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		bits := 1 + int(bitsRaw)%MaxBits
		return Downgrade(q.SymbolMax(v), bits) == q.Symbol(v, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRescaledQuantizer(t *testing.T) {
	q := NewQuantizer(100, 10)
	if q.Mean() != 100 || q.Std() != 10 {
		t.Fatal("params not stored")
	}
	// Symbol of mean+std·z under rescaled == symbol of z under standard.
	std := Standard()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 500; iter++ {
		z := rng.NormFloat64() * 2
		bits := 1 + rng.Intn(MaxBits)
		if q.Symbol(100+10*z, bits) != std.Symbol(z, bits) {
			t.Fatalf("rescaled symbol mismatch at z=%v bits=%d", z, bits)
		}
	}
}

func TestNewQuantizerPanicsOnBadStd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewQuantizer(0, 0)
}

func TestFitQuantizer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = 50 + 5*rng.NormFloat64()
	}
	q := FitQuantizer(data)
	if math.Abs(q.Mean()-50) > 0.5 || math.Abs(q.Std()-5) > 0.5 {
		t.Fatalf("fit = (%v, %v), want ≈(50, 5)", q.Mean(), q.Std())
	}
	if q := FitQuantizer(nil); q.Mean() != 0 || q.Std() != 1 {
		t.Fatal("empty data should fall back to standard")
	}
	if q := FitQuantizer([]float64{3, 3, 3}); q.Std() != 1 {
		t.Fatal("constant data should fall back to standard")
	}
}

func TestSymbolPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Standard().Symbol(0, 9)
}

func TestRangePanicsOnBadSymbol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Standard().Range(4, 2)
}
