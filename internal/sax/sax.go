// Package sax implements the Symbolic Aggregate approXimation
// [Lin et al. 2007] and the multi-resolution iSAX symbols
// [Shieh & Keogh 2008] used by the iSAX index: a PAA segment mean is
// quantized against Gaussian breakpoints into a symbol whose cardinality
// can vary per segment (1..8 bits here, i.e. cardinality 2..256).
//
// Every symbol denotes a half-open value interval [lo, hi); that interval
// is what the twin-search adaptation of iSAX prunes with (paper §4.2):
// a node can contain a twin of Q only if, for every segment, the query's
// segment mean ±ε intersects the node symbol's interval.
//
// Breakpoints assume z-normalized values by default; for raw data they
// are rescaled by the sample mean/σ of the indexed series (the paper's
// "adjusting the breakpoints accordingly").
package sax

import (
	"fmt"
	"math"
	"sort"
)

// MaxBits is the maximum per-segment cardinality exponent: symbols are
// stored in a byte, so cardinality tops out at 256, the iSAX default.
const MaxBits = 8

// MaxCardinality is 2^MaxBits.
const MaxCardinality = 1 << MaxBits

// Quantizer converts values to symbols and symbols to value intervals at
// any cardinality 2^bits, bits ∈ [1, MaxBits]. The zero value is not
// usable; construct with NewQuantizer or Standard.
//
// Breakpoints at lower cardinalities are exact subsets of the
// MaxCardinality table (quantile j/2^b equals quantile j·2^(8−b)/256), so
// a symbol can be downgraded to b bits by shifting right 8−b bits — the
// property iSAX node splits rely on.
type Quantizer struct {
	mean, std float64
	// bp[b] holds the 2^b − 1 breakpoints for cardinality 2^b.
	bp [MaxBits + 1][]float64
}

// Standard returns the quantizer for z-normalized data (N(0,1)
// breakpoints).
func Standard() *Quantizer { return NewQuantizer(0, 1) }

// NewQuantizer returns a quantizer whose breakpoints are Gaussian
// quantiles rescaled to mean + std·z, for indexing raw (non-normalized)
// values. std must be positive.
func NewQuantizer(mean, std float64) *Quantizer {
	if std <= 0 {
		panic(fmt.Sprintf("sax: non-positive std %v", std))
	}
	q := &Quantizer{mean: mean, std: std}
	for b := 1; b <= MaxBits; b++ {
		card := 1 << b
		bps := make([]float64, card-1)
		for j := 1; j < card; j++ {
			p := float64(j) / float64(card)
			bps[j-1] = mean + std*math.Sqrt2*math.Erfinv(2*p-1)
		}
		q.bp[b] = bps
	}
	return q
}

// Mean returns the location parameter the breakpoints are centred on.
func (q *Quantizer) Mean() float64 { return q.mean }

// Std returns the scale parameter of the breakpoints.
func (q *Quantizer) Std() float64 { return q.std }

// Breakpoints returns the breakpoint slice for the given bit width.
// Callers must not modify it.
func (q *Quantizer) Breakpoints(bits int) []float64 {
	q.checkBits(bits)
	return q.bp[bits]
}

// Symbol quantizes v at cardinality 2^bits: the result s satisfies
// bp[s−1] ≤ v < bp[s] with bp[−1] = −∞ and bp[2^bits−1] = +∞.
func (q *Quantizer) Symbol(v float64, bits int) uint8 {
	q.checkBits(bits)
	bps := q.bp[bits]
	// SearchFloat64s returns the first index with bps[i] >= v; symbols
	// use half-open intervals [lo, hi), so a value equal to a breakpoint
	// belongs to the higher symbol.
	i := sort.SearchFloat64s(bps, v)
	if i < len(bps) && bps[i] == v {
		i++
	}
	return uint8(i)
}

// SymbolMax quantizes v at the maximum cardinality.
func (q *Quantizer) SymbolMax(v float64) uint8 { return q.Symbol(v, MaxBits) }

// Downgrade converts a MaxBits symbol to its bits-wide prefix symbol.
func Downgrade(symMax uint8, bits int) uint8 {
	return symMax >> (MaxBits - bits)
}

// Range returns the half-open value interval [lo, hi) denoted by symbol
// sym at cardinality 2^bits; the extreme symbols extend to ±∞.
func (q *Quantizer) Range(sym uint8, bits int) (lo, hi float64) {
	q.checkBits(bits)
	bps := q.bp[bits]
	card := 1 << bits
	if int(sym) >= card {
		panic(fmt.Sprintf("sax: symbol %d out of range for %d bits", sym, bits))
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	if sym > 0 {
		lo = bps[sym-1]
	}
	if int(sym) < card-1 {
		hi = bps[sym]
	}
	return lo, hi
}

func (q *Quantizer) checkBits(bits int) {
	if bits < 1 || bits > MaxBits {
		panic(fmt.Sprintf("sax: bits %d outside [1, %d]", bits, MaxBits))
	}
}

// FitQuantizer estimates (mean, std) from data and returns the rescaled
// quantizer; it falls back to Standard for degenerate (constant) data.
func FitQuantizer(data []float64) *Quantizer {
	var sum, sum2 float64
	for _, v := range data {
		sum += v
		sum2 += v * v
	}
	n := float64(len(data))
	if len(data) == 0 {
		return Standard()
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance <= 0 {
		return Standard()
	}
	return NewQuantizer(mean, math.Sqrt(variance))
}
