package sax

import (
	"fmt"
	"strings"
)

// Word is an iSAX word: one symbol per PAA segment, each at its own
// cardinality. Words label iSAX tree nodes; all entries under a node
// share the node's word as a prefix (in the bit-prefix sense).
type Word struct {
	Syms []uint8 // symbol values, Syms[i] < 2^Bits[i]
	Bits []uint8 // per-segment cardinality exponents, in [1, MaxBits]
}

// NewWord builds the word for the given PAA vector with every segment at
// the same cardinality 2^bits.
func NewWord(q *Quantizer, paa []float64, bits int) Word {
	w := Word{Syms: make([]uint8, len(paa)), Bits: make([]uint8, len(paa))}
	for i, v := range paa {
		w.Syms[i] = q.Symbol(v, bits)
		w.Bits[i] = uint8(bits)
	}
	return w
}

// WordFromMax assembles a word from MaxBits symbols downgraded to the
// given per-segment bit widths.
func WordFromMax(symsMax []uint8, bits []uint8) Word {
	w := Word{Syms: make([]uint8, len(symsMax)), Bits: make([]uint8, len(symsMax))}
	for i, s := range symsMax {
		w.Syms[i] = Downgrade(s, int(bits[i]))
		w.Bits[i] = bits[i]
	}
	return w
}

// Len returns the number of segments.
func (w Word) Len() int { return len(w.Syms) }

// Clone deep-copies the word.
func (w Word) Clone() Word {
	c := Word{Syms: make([]uint8, len(w.Syms)), Bits: make([]uint8, len(w.Bits))}
	copy(c.Syms, w.Syms)
	copy(c.Bits, w.Bits)
	return c
}

// Key returns a compact string key identifying the word, usable as a map
// key (root fan-out in the iSAX index).
func (w Word) Key() string {
	b := make([]byte, 0, 2*len(w.Syms))
	for i := range w.Syms {
		b = append(b, w.Syms[i], w.Bits[i])
	}
	return string(b)
}

// String renders the word as sym^card per segment, e.g. "3^4 0^2".
func (w Word) String() string {
	var sb strings.Builder
	for i := range w.Syms {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d^%d", w.Syms[i], 1<<w.Bits[i])
	}
	return sb.String()
}

// MatchesMax reports whether a sequence whose MaxBits symbols are symsMax
// belongs under this word (every segment downgrades to the word's
// symbol).
func (w Word) MatchesMax(symsMax []uint8) bool {
	for i, s := range symsMax {
		if Downgrade(s, int(w.Bits[i])) != w.Syms[i] {
			return false
		}
	}
	return true
}

// SplitChildren returns the two refinements of the word obtained by
// adding one bit of cardinality to segment seg (the iSAX binary split):
// the child words are identical to w except Syms[seg] gains a 0 or 1
// low-order bit.
func (w Word) SplitChildren(seg int) (left, right Word) {
	if int(w.Bits[seg]) >= MaxBits {
		panic(fmt.Sprintf("sax: segment %d already at max cardinality", seg))
	}
	left = w.Clone()
	right = w.Clone()
	left.Bits[seg]++
	right.Bits[seg]++
	left.Syms[seg] = w.Syms[seg] << 1
	right.Syms[seg] = w.Syms[seg]<<1 | 1
	return left, right
}

// PruneTwin reports whether a node labelled by this word can be pruned
// for a twin query with per-segment PAA means qPAA and threshold eps
// (paper §4.2): the node survives only if every segment's symbol interval
// intersects [qPAA[i]−eps, qPAA[i]+eps]. Using the query's exact segment
// means instead of its own SAX symbols is never looser (no false
// dismissals — the true mean lies inside its symbol's interval) and
// usually tighter.
func (w Word) PruneTwin(q *Quantizer, qPAA []float64, eps float64) bool {
	for i := range w.Syms {
		lo, hi := q.Range(w.Syms[i], int(w.Bits[i]))
		if qPAA[i]+eps < lo || qPAA[i]-eps >= hi {
			return true
		}
	}
	return false
}
