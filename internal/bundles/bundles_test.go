package bundles

import (
	"math/rand"
	"testing"
)

func TestPairsSimple(t *testing.T) {
	// Series 0 and 1 stay within 0.5 during [2, 6); series 2 never
	// approaches either.
	set := [][]float64{
		{0, 0, 1.0, 1.1, 1.2, 1.1, 9, 9},
		{5, 5, 1.2, 1.3, 1.0, 1.4, 5, 5},
		{20, 20, 20, 20, 20, 20, 20, 20},
	}
	got, err := Pairs(set, Config{Eps: 0.5, MinLen: 3, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d pairs: %v", len(got), got)
	}
	p := got[0]
	if p.A != 0 || p.B != 1 || p.Start != 2 || p.End != 6 {
		t.Fatalf("pair = %+v", p)
	}
}

func TestPairsMinLenFilters(t *testing.T) {
	set := [][]float64{
		{0, 9, 0, 0, 9},
		{0, 0, 0, 0, 0},
	}
	// Runs: [0,1) and [2,4) — only the second survives MinLen=2.
	got, err := Pairs(set, Config{Eps: 0.1, MinLen: 2, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 2 || got[0].End != 4 {
		t.Fatalf("pairs = %v", got)
	}
}

func TestPairsRunToEnd(t *testing.T) {
	set := [][]float64{
		{1, 1, 1},
		{1.1, 1.1, 1.1},
	}
	got, err := Pairs(set, Config{Eps: 0.2, MinLen: 3, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].End != 3 {
		t.Fatalf("open run must close at series end: %v", got)
	}
}

// brutePairs recomputes pairs directly from the definition.
func brutePairs(set [][]float64, eps float64, minLen int) []Pair {
	var out []Pair
	k, n := len(set), len(set[0])
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			start := -1
			for t := 0; t <= n; t++ {
				ok := false
				if t < n {
					d := set[a][t] - set[b][t]
					if d < 0 {
						d = -d
					}
					ok = d <= eps
				}
				if ok && start < 0 {
					start = t
				}
				if !ok && start >= 0 {
					if t-start >= minLen {
						out = append(out, Pair{A: a, B: b, Start: start, End: t})
					}
					start = -1
				}
			}
		}
	}
	return out
}

func TestPairsMatchBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		k := 2 + rng.Intn(5)
		n := 5 + rng.Intn(100)
		set := make([][]float64, k)
		for i := range set {
			set[i] = make([]float64, n)
			v := rng.NormFloat64()
			for t := range set[i] {
				v += rng.NormFloat64() * 0.5
				set[i][t] = v
			}
		}
		eps := rng.Float64() * 2
		minLen := 1 + rng.Intn(5)
		got, err := Pairs(set, Config{Eps: eps, MinLen: minLen, MinGroup: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := brutePairs(set, eps, minLen)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d pairs, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: pair %d = %+v, want %+v", iter, i, got[i], want[i])
			}
		}
	}
}

func TestBundlesSimple(t *testing.T) {
	// Three series travel together during [2, 7); a fourth is far away.
	set := [][]float64{
		{0, 0, 1.0, 1.0, 1.0, 1.0, 1.0, 9},
		{5, 5, 1.2, 1.2, 1.2, 1.2, 1.2, 5},
		{9, 9, 1.4, 1.4, 1.4, 1.4, 1.4, 0},
		{30, 30, 30, 30, 30, 30, 30, 30},
	}
	got, err := Bundles(set, Config{Eps: 0.5, MinLen: 3, MinGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d bundles: %v", len(got), got)
	}
	b := got[0]
	if b.Start != 2 || b.End != 7 || len(b.Members) != 3 {
		t.Fatalf("bundle = %+v", b)
	}
	for i, m := range []int{0, 1, 2} {
		if b.Members[i] != m {
			t.Fatalf("members = %v", b.Members)
		}
	}
}

func TestBundlesPairwiseGuarantee(t *testing.T) {
	// Chained series: 0 and 2 are 0.8 apart (> eps), so {0,1,2} is NOT a
	// bundle even though consecutive pairs are within eps.
	set := [][]float64{
		{0.0, 0.0, 0.0, 0.0},
		{0.4, 0.4, 0.4, 0.4},
		{0.8, 0.8, 0.8, 0.8},
	}
	got, err := Bundles(set, Config{Eps: 0.5, MinLen: 2, MinGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("chain must not form a bundle: %v", got)
	}
	// With MinGroup 2, the two overlapping windows appear.
	got, err = Bundles(set, Config{Eps: 0.5, MinLen: 2, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("expected the two maximal windows: %v", got)
	}
}

func TestBundlesSubsetSuppression(t *testing.T) {
	// Four together the whole time: only the 4-member bundle reports.
	set := [][]float64{
		{1, 1, 1, 1},
		{1.1, 1.1, 1.1, 1.1},
		{1.2, 1.2, 1.2, 1.2},
		{1.3, 1.3, 1.3, 1.3},
	}
	got, err := Bundles(set, Config{Eps: 0.5, MinLen: 2, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Members) != 4 {
		t.Fatalf("want one 4-member bundle, got %v", got)
	}
}

func TestBundlesMembershipChange(t *testing.T) {
	// Member 2 joins later: the pair run and the triple run are separate
	// maximal bundles.
	set := [][]float64{
		{1, 1, 1, 1, 1, 1},
		{1.1, 1.1, 1.1, 1.1, 1.1, 1.1},
		{9, 9, 9, 1.2, 1.2, 1.2},
	}
	got, err := Bundles(set, Config{Eps: 0.5, MinLen: 2, MinGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	var pairRun, tripleRun bool
	for _, b := range got {
		if len(b.Members) == 2 && b.Start == 0 && b.End == 3 {
			pairRun = true
		}
		if len(b.Members) == 3 && b.Start == 3 && b.End == 6 {
			tripleRun = true
		}
	}
	if !pairRun || !tripleRun {
		t.Fatalf("membership change not tracked: %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	ok := [][]float64{{1, 2}, {1, 2}}
	if _, err := Pairs(ok, Config{Eps: -1, MinLen: 1, MinGroup: 2}); err == nil {
		t.Fatal("negative eps must fail")
	}
	if _, err := Pairs(ok, Config{Eps: 1, MinLen: 0, MinGroup: 2}); err == nil {
		t.Fatal("MinLen 0 must fail")
	}
	if _, err := Bundles(ok, Config{Eps: 1, MinLen: 1, MinGroup: 1}); err == nil {
		t.Fatal("MinGroup 1 must fail")
	}
	if _, err := Pairs([][]float64{{1}}, Config{Eps: 1, MinLen: 1, MinGroup: 2}); err == nil {
		t.Fatal("single series must fail")
	}
	if _, err := Pairs([][]float64{{1, 2}, {1}}, Config{Eps: 1, MinLen: 1, MinGroup: 2}); err == nil {
		t.Fatal("ragged lengths must fail")
	}
	if _, err := Pairs([][]float64{{}, {}}, Config{Eps: 1, MinLen: 1, MinGroup: 2}); err == nil {
		t.Fatal("empty series must fail")
	}
}

func TestBundleMembersArePairwiseClose(t *testing.T) {
	// Property on random data: every reported bundle satisfies the
	// pairwise bound at every covered timestamp.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		k := 3 + rng.Intn(4)
		n := 20 + rng.Intn(80)
		set := make([][]float64, k)
		for i := range set {
			set[i] = make([]float64, n)
			v := rng.NormFloat64() * 2
			for t := range set[i] {
				v += rng.NormFloat64() * 0.3
				set[i][t] = v
			}
		}
		eps := 0.5 + rng.Float64()
		bs, err := Bundles(set, Config{Eps: eps, MinLen: 2, MinGroup: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			if b.End-b.Start < 2 {
				t.Fatalf("iter %d: interval too short: %+v", iter, b)
			}
			for tt := b.Start; tt < b.End; tt++ {
				for i := 0; i < len(b.Members); i++ {
					for j := i + 1; j < len(b.Members); j++ {
						d := set[b.Members[i]][tt] - set[b.Members[j]][tt]
						if d < 0 {
							d = -d
						}
						if d > eps+1e-12 {
							t.Fatalf("iter %d: bundle %+v violates eps at t=%d", iter, b, tt)
						}
					}
				}
			}
		}
	}
}
