// Package bundles implements local pair and bundle discovery over
// co-evolving time series [Chatzigeorgakidis et al., SSTD 2019] — the
// authors' precursor to twin subsequence search, which the paper's §2
// positions against it: instead of matching a query against one series'
// subsequences, discovery scans a COLLECTION of time-aligned series and
// reports which members move together, where, and for how long.
//
// Definitions (Chebyshev throughout, matching the paper's setting):
//
//   - A local PAIR (i, j, [s, e)) holds when |T_i[t] − T_j[t]| ≤ ε for
//     every t in the interval and the interval is at least δ long;
//     reported pairs are temporally maximal (extending the interval in
//     either direction breaks the bound).
//
//   - A local BUNDLE (G, [s, e)) holds when every two members of G stay
//     within ε of each other — equivalently max(G) − min(G) ≤ ε at each
//     t — for an interval of at least δ, with |G| ≥ µ members. Reported
//     bundles are temporally maximal for their member set and not
//     dominated by a reported bundle with a superset of members over
//     the same interval.
//
// The sweepline runs once over timestamps, maintaining the value-sorted
// order of members incrementally; pair candidacy changes only when
// adjacent sorted values cross the ε gap, so the cost is
// O(n·k log k + output) for k series of length n.
package bundles

import (
	"fmt"
	"sort"
)

// Pair is a maximal interval during which two series stay within ε.
type Pair struct {
	A, B       int // member indices, A < B
	Start, End int // half-open interval [Start, End)
}

// Bundle is a maximal interval during which a group of ≥ µ series stay
// pairwise within ε.
type Bundle struct {
	Members    []int // sorted member indices
	Start, End int   // half-open interval [Start, End)
}

// Config parameterizes discovery.
type Config struct {
	Eps      float64 // pairwise value tolerance ε
	MinLen   int     // minimum interval length δ (≥ 1)
	MinGroup int     // minimum bundle size µ (≥ 2; bundles only)
}

func (c Config) check(k int) error {
	if c.Eps < 0 {
		return fmt.Errorf("bundles: negative eps %v", c.Eps)
	}
	if c.MinLen < 1 {
		return fmt.Errorf("bundles: MinLen %d must be ≥ 1", c.MinLen)
	}
	if c.MinGroup < 2 {
		return fmt.Errorf("bundles: MinGroup %d must be ≥ 2", c.MinGroup)
	}
	if k < 2 {
		return fmt.Errorf("bundles: need at least two series, got %d", k)
	}
	return nil
}

// Pairs reports every temporally-maximal local pair in the collection.
// All series must share one length. Results are ordered by (A, B,
// Start).
func Pairs(set [][]float64, cfg Config) ([]Pair, error) {
	if cfg.MinGroup == 0 {
		cfg.MinGroup = 2
	}
	if err := cfg.check(len(set)); err != nil {
		return nil, err
	}
	n, err := commonLength(set)
	if err != nil {
		return nil, err
	}

	k := len(set)
	// active[a*k+b] = start timestamp of the open run for pair (a, b),
	// or -1 when the pair is currently violated.
	active := make([]int, k*k)
	for i := range active {
		active[i] = -1
	}
	var out []Pair
	closeRun := func(a, b, start, end int) {
		if end-start >= cfg.MinLen {
			out = append(out, Pair{A: a, B: b, Start: start, End: end})
		}
	}
	for t := 0; t < n; t++ {
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				d := set[a][t] - set[b][t]
				if d < 0 {
					d = -d
				}
				idx := a*k + b
				if d <= cfg.Eps {
					if active[idx] < 0 {
						active[idx] = t
					}
				} else if active[idx] >= 0 {
					closeRun(a, b, active[idx], t)
					active[idx] = -1
				}
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if idx := a*k + b; active[idx] >= 0 {
				closeRun(a, b, active[idx], n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].Start < out[j].Start
	})
	return out, nil
}

// Bundles reports maximal local bundles: groups of at least MinGroup
// series pairwise within ε over intervals of at least MinLen. For each
// timestamp the value-sorted members decompose into candidate windows
// (maximal runs with max−min ≤ ε); a group's run is open while the
// group stays inside one window. Results are ordered by (Start, first
// member); groups that are subsets of another reported group over the
// same interval are suppressed.
func Bundles(set [][]float64, cfg Config) ([]Bundle, error) {
	if err := cfg.check(len(set)); err != nil {
		return nil, err
	}
	n, err := commonLength(set)
	if err != nil {
		return nil, err
	}
	k := len(set)

	type run struct {
		start int
	}
	open := map[string]run{}      // group key → open run
	members := map[string][]int{} // group key → member slice
	var out []Bundle

	closeRun := func(key string, start, end int) {
		if end-start >= cfg.MinLen {
			out = append(out, Bundle{Members: members[key], Start: start, End: end})
		}
	}

	order := make([]int, k)
	vals := make([]float64, k)
	for t := 0; t < n; t++ {
		for i := range order {
			order[i] = i
			vals[i] = set[i][t]
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		// Maximal ε-windows over the sorted values: two-pointer sweep
		// emitting each window that is not contained in a larger one.
		seen := map[string]bool{}
		lo := 0
		for hi := 0; hi < k; hi++ {
			for vals[order[hi]]-vals[order[lo]] > cfg.Eps {
				lo++
			}
			// The window [lo, hi] is maximal on the right at hi; emit it
			// only if hi is the last index or extending right would
			// shrink the left edge (i.e. it is not a strict subset of
			// the next window).
			if hi == k-1 || vals[order[hi+1]]-vals[order[lo]] > cfg.Eps {
				if hi-lo+1 >= cfg.MinGroup {
					g := append([]int(nil), order[lo:hi+1]...)
					sort.Ints(g)
					key := groupKey(g)
					seen[key] = true
					if _, ok := open[key]; !ok {
						open[key] = run{start: t}
						members[key] = g
					}
				}
			}
		}
		// Close runs whose group is no longer a maximal window.
		for key, r := range open {
			if !seen[key] {
				closeRun(key, r.start, t)
				delete(open, key)
				delete(members, key)
			}
		}
	}
	for key, r := range open {
		closeRun(key, r.start, n)
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return less(out[i].Members, out[j].Members)
	})
	return dedupeSubsets(out), nil
}

// dedupeSubsets removes bundles whose member set is a subset of another
// bundle covering the same (or a wider) interval.
func dedupeSubsets(bs []Bundle) []Bundle {
	keep := make([]bool, len(bs))
	for i := range keep {
		keep[i] = true
	}
	for i := range bs {
		if !keep[i] {
			continue
		}
		for j := range bs {
			if i == j || !keep[i] {
				continue
			}
			if bs[j].Start <= bs[i].Start && bs[j].End >= bs[i].End &&
				len(bs[j].Members) > len(bs[i].Members) && isSubset(bs[i].Members, bs[j].Members) {
				keep[i] = false
			}
		}
	}
	out := bs[:0]
	for i, b := range bs {
		if keep[i] {
			out = append(out, b)
		}
	}
	return out
}

func isSubset(a, b []int) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
	}
	return true
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func groupKey(g []int) string {
	b := make([]byte, 0, len(g)*3)
	for _, v := range g {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

func commonLength(set [][]float64) (int, error) {
	n := len(set[0])
	for i, s := range set {
		if len(s) != n {
			return 0, fmt.Errorf("bundles: series %d has length %d, expected %d", i, len(s), n)
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("bundles: empty series")
	}
	return n, nil
}
