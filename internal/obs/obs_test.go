package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := NewTrace("query")
	ctx := WithSpan(context.Background(), tr.Root)

	ctx2, v := StartSpan(ctx, "validate")
	if v == nil {
		t.Fatal("StartSpan returned nil span under an active trace")
	}
	v.Set("plan_cache", "miss")
	v.End()

	_, tv := StartSpan(ctx2, "traverse")
	tv.Set("nodes_visited", 7)
	tv.End()
	tr.Finish()

	root := tr.Root
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.Children))
	}
	val := root.Children[0]
	if val.Name != "validate" || val.Attrs["plan_cache"] != "miss" {
		t.Fatalf("unexpected validate span: %+v", val)
	}
	if len(val.Children) != 1 || val.Children[0].Name != "traverse" {
		t.Fatalf("traverse span not nested under validate: %+v", val.Children)
	}
	if root.DurUs < 0 {
		t.Fatalf("root DurUs = %d", root.DurUs)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.Set("k", 1)
	s.End()
	s.Attach(nil)
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil StartChild returned non-nil")
	}
	if s.Clone() != nil {
		t.Fatal("nil Clone returned non-nil")
	}
	ctx, sp := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("StartSpan without a trace returned a span")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("SpanFrom on plain context returned a span")
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := NewTrace("q")
	c := tr.Root.StartChild("shard[0]")
	c.Set("leaves", 3)
	c.End()
	tr.Finish()

	b, err := json.Marshal(tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "q" || len(back.Children) != 1 || back.Children[0].Name != "shard[0]" {
		t.Fatalf("round trip lost structure: name=%q children=%d", back.Name, len(back.Children))
	}
	// Attaching a decoded subtree (the cross-node graft) must work and
	// ending a decoded span must not fabricate timings.
	host := NewTrace("coordinator")
	host.Root.Attach(&back)
	back.End()
	if back.DurUs != back.Children[0].DurUs && back.Children[0].DurUs < 0 {
		t.Fatal("decoded span timing mutated")
	}
	if len(host.Root.Children) != 1 {
		t.Fatal("Attach failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := NewTrace("q")
	c := tr.Root.StartChild("child")
	c.Set("k", "v")
	snap := tr.Root.Clone()
	c.Set("k", "changed")
	tr.Root.StartChild("late")
	if snap.Children[0].Attrs["k"] != "v" {
		t.Fatalf("clone shares attrs: %v", snap.Children[0].Attrs)
	}
	if len(snap.Children) != 1 {
		t.Fatalf("clone shares children: %d", len(snap.Children))
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTrace("query")
	c := tr.Root.StartChild("validate")
	c.Set("plan_cache", "hit")
	c.End()
	tr.Finish()
	var buf bytes.Buffer
	WriteTree(&buf, tr.Root)
	out := buf.String()
	if !strings.Contains(out, "query") || !strings.Contains(out, "  validate") ||
		!strings.Contains(out, "plan_cache=hit") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Fatal("disabled sampler fired")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler fired")
	}
	s := NewSampler(4)
	fired := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			fired++
		}
	}
	if fired != 100 {
		t.Fatalf("1-in-4 sampler fired %d/400", fired)
	}
}

func TestStartSpanDisabledAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "x")
		sp.Set("k", 1)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan path allocates %v/op, want 0", allocs)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, time.Millisecond)
	if l.Threshold() != time.Millisecond {
		t.Fatal("threshold lost")
	}
	for i := 0; i < 5; i++ {
		l.Add(SlowEntry{Path: "search", DurationMs: float64(i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Newest first: durations 4, 3, 2.
	for i, want := range []float64{4, 3, 2} {
		if got[i].DurationMs != want {
			t.Fatalf("entry %d duration = %v, want %v", i, got[i].DurationMs, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}

	var disabled *SlowLog = NewSlowLog(0, 0)
	disabled.Add(SlowEntry{})
	if disabled.Snapshot() != nil || disabled.Threshold() != 0 || disabled.Total() != 0 {
		t.Fatal("disabled slowlog not inert")
	}
}
