package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(`twinsearch_queries_total{path="search"}`)
	c.Add(3)
	r.Counter(`twinsearch_queries_total{path="topk"}`).Inc()
	r.GaugeFunc("twinsearch_epoch", func() float64 { return 7 })
	r.CounterFunc("twinsearch_steals_total", func() float64 { return 11 })
	h := r.Histogram(`twinsearch_query_seconds{path="search"}`, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE twinsearch_queries_total counter",
		`twinsearch_queries_total{path="search"} 3`,
		`twinsearch_queries_total{path="topk"} 1`,
		"# TYPE twinsearch_epoch gauge",
		"twinsearch_epoch 7",
		"twinsearch_steals_total 11",
		"# TYPE twinsearch_query_seconds histogram",
		`twinsearch_query_seconds_bucket{path="search",le="0.001"} 1`,
		`twinsearch_query_seconds_bucket{path="search",le="0.1"} 2`,
		`twinsearch_query_seconds_bucket{path="search",le="+Inf"} 3`,
		`twinsearch_query_seconds_count{path="search"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The two labeled counters share one family: its TYPE line must
	// appear exactly once.
	if strings.Count(out, "# TYPE twinsearch_queries_total") != 1 {
		t.Fatalf("family TYPE line duplicated:\n%s", out)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d", got)
	}
	if s := h.Sum(); s < 3.05 || s > 3.06 {
		t.Fatalf("histogram sum = %v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	h1 := r.Histogram("h", []float64{1})
	h2 := r.Histogram("h", []float64{5}) // buckets of first registration win
	if h1 != h2 {
		t.Fatal("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Histogram("x_total", []float64{1})
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v/op", allocs)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE x counter\nx{le=0.1} 1\n",           // unquoted label value
		"# TYPE x counter\n# TYPE x counter\nx 1\n", // duplicate TYPE
		"# TYPE x counter\nx one\n",                 // non-numeric value
		"",                                          // no samples at all
	}
	for _, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted invalid exposition %q", in)
		}
	}
}

// TestObsRaceHammer pounds the registry, a shared histogram, and the
// slow-query log from concurrent writers while readers scrape — the
// -race acceptance gate for the metrics layer.
func TestObsRaceHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", DefLatencyBuckets)
	c := r.Counter("hammer_total")
	l := NewSlowLog(16, time.Nanosecond)
	tr := NewTrace("hammer")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				sp := tr.Root.StartChild("w")
				sp.Set("i", i)
				sp.End()
				l.Add(SlowEntry{Path: "search", DurationMs: 1, Trace: tr.Root.Clone()})
			}
		}(w)
	}
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
					t.Error(err)
					return
				}
				_ = l.Snapshot()
				_ = l.Total()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(r.sortedNames()) != 2 {
		t.Fatalf("names = %v", r.sortedNames())
	}
}
