// Package obs is the engine's stdlib-only observability layer: per-query
// span traces threaded through context.Context, a Prometheus-style
// metrics registry (metrics.go), and a ring-buffer slow-query log
// (slowlog.go).
//
// Tracing is opt-in per query. A caller that wants a trace creates one
// with NewTrace and installs its root span into the context with
// WithSpan; every instrumented layer below then grows the span tree via
// StartSpan / StartChild. When no span is installed — the overwhelmingly
// common case — StartSpan returns (ctx, nil) after a single allocation-
// free ctx.Value lookup, and every *Span method is a nil-safe no-op, so
// the disabled path costs nothing (enforced by BenchmarkTraceDisabled).
//
// Span trees serialize to JSON for the HTTP response envelope
// (?trace=1), for cross-node stitching (a shard node returns its
// subtree in the RPC response and the coordinator grafts it under the
// replica-attempt span), and for the slow-query log. StartUs values are
// microseconds relative to the span's own trace epoch; a remote subtree
// is therefore relative to the *node's* trace start, not the
// coordinator's — readers should treat remote timings as node-local.
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a query, with optional attributes and
// child spans. The exported fields are the wire shape (JSON); Name,
// StartUs and DurUs are stable once End has run. Methods are safe for
// concurrent use and are no-ops on a nil receiver, so call sites never
// need a tracing-enabled check.
type Span struct {
	Name     string         `json:"name"`
	StartUs  int64          `json:"start_us"`           // microseconds since the trace epoch
	DurUs    int64          `json:"dur_us"`             // microseconds; 0 until End
	Attrs    map[string]any `json:"attrs,omitempty"`    // small scalar annotations
	Children []*Span        `json:"children,omitempty"` // sub-spans, in start order

	mu    sync.Mutex
	t0    time.Time // this span's start instant (zero for decoded spans)
	epoch time.Time // the trace epoch children stamp StartUs against
}

// Trace is one query's span tree: a root span plus the epoch every
// StartUs in the tree is relative to.
type Trace struct {
	Root *Span
	t0   time.Time
}

// NewTrace starts a trace whose root span carries name.
func NewTrace(name string) *Trace {
	t0 := time.Now()
	return &Trace{
		Root: &Span{Name: name, t0: t0, epoch: t0},
		t0:   t0,
	}
}

// Finish ends the root span. Idempotent in effect: a second call merely
// restamps the duration.
func (t *Trace) Finish() {
	if t != nil {
		t.Root.End()
	}
}

// StartChild opens a sub-span under s and returns it. Nil-safe: a nil
// receiver returns nil, so chains of StartChild/Set/End cost nothing
// when tracing is off.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, t0: now, epoch: s.epoch}
	if !s.epoch.IsZero() {
		c.StartUs = now.Sub(s.epoch).Microseconds()
	}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration. Nil-safe; a span without a start
// instant (decoded from the wire) is left untouched.
func (s *Span) End() {
	if s == nil || s.t0.IsZero() {
		return
	}
	d := time.Since(s.t0).Microseconds()
	s.mu.Lock()
	s.DurUs = d
	s.mu.Unlock()
}

// Set records one attribute on the span. Values should be small
// scalars (string, int, float64, bool) so the tree stays cheap to
// serialize. Nil-safe.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any, 4)
	}
	s.Attrs[key] = v
	s.mu.Unlock()
}

// Attach grafts child (typically a subtree decoded from a remote node)
// under s. Nil-safe on both sides.
func (s *Span) Attach(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.mu.Lock()
	s.Children = append(s.Children, child)
	s.mu.Unlock()
}

// Clone deep-copies the span tree under each span's lock — the snapshot
// the slow-query log stores, safe to serialize while the original tree
// is still being finished.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := &Span{Name: s.Name, StartUs: s.StartUs, DurUs: s.DurUs}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	kids := make([]*Span, len(s.Children))
	copy(kids, s.Children)
	s.mu.Unlock()
	if len(kids) > 0 {
		c.Children = make([]*Span, 0, len(kids))
		for _, k := range kids {
			c.Children = append(c.Children, k.Clone())
		}
	}
	return c
}

// WriteTree pretty-prints the span tree, one line per span, indented by
// depth — the renderer behind tsquery -trace.
func WriteTree(w io.Writer, s *Span) {
	writeTree(w, s, 0)
}

func writeTree(w io.Writer, s *Span, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	name, start, dur := s.Name, s.StartUs, s.DurUs
	attrs := make([]string, 0, len(s.Attrs))
	for k, v := range s.Attrs {
		attrs = append(attrs, fmt.Sprintf("%s=%v", k, v))
	}
	kids := make([]*Span, len(s.Children))
	copy(kids, s.Children)
	s.mu.Unlock()
	sort.Strings(attrs)
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%s +%dus %dus", name, start, dur)
	for _, a := range attrs {
		io.WriteString(w, " "+a)
	}
	io.WriteString(w, "\n")
	for _, k := range kids {
		writeTree(w, k, depth+1)
	}
}

// spanKey is the context key the current span travels under. A
// zero-size key type keeps the disabled-path ctx.Value lookup
// allocation-free.
type spanKey struct{}

// WithSpan installs s as the context's current span. Installing nil is
// a no-op returning ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, nil when the query is
// untraced (or ctx itself is nil). Allocation-free.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying it. When the query is untraced it returns
// (ctx, nil) without allocating — the fast path every instrumented
// layer takes by default.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := SpanFrom(ctx)
	if s == nil {
		return ctx, nil
	}
	c := s.StartChild(name)
	return context.WithValue(ctx, spanKey{}, c), c
}

// Sampler implements 1-in-N trace sampling with a single atomic
// counter. The zero value (or every <= 0) never samples.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler firing once every `every` calls; every
// <= 0 disables sampling.
func NewSampler(every int) *Sampler {
	s := &Sampler{}
	if every > 0 {
		s.every = uint64(every)
	}
	return s
}

// Sample reports whether this call is the 1-in-N sampled one.
// Allocation-free; false without touching the counter when disabled.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}
