package obs

import (
	"sync"
	"time"
)

// SlowEntry is one slow-query record: what ran, how long it took, and —
// when the query was traced — a snapshot of its span tree.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	Path       string    `json:"path"`
	DurationMs float64   `json:"duration_ms"`
	Err        string    `json:"error,omitempty"`
	Trace      *Span     `json:"trace,omitempty"`
}

// SlowLog is a fixed-size ring buffer of the most recent above-
// threshold queries. The threshold check belongs to the caller and is
// a plain duration compare before any lock or allocation, so the
// fast path (queries under the threshold — almost all of them) costs
// one branch. Add and Snapshot are safe for concurrent use.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	ring    []SlowEntry
	next    int  // ring slot the next entry lands in
	wrapped bool // ring has gone around at least once
	total   uint64
}

// NewSlowLog returns a slow-query log keeping the last size entries
// whose duration reached threshold. size <= 0 disables it (returns
// nil; all methods are nil-safe).
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size <= 0 {
		return nil
	}
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, size)}
}

// Threshold returns the slow-query cutoff (0 when the log is disabled).
// Callers compare against it before building an entry, keeping the
// fast path allocation- and lock-free.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Add records one slow query. Nil-safe.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.wrapped = true
	}
	l.total++
	l.mu.Unlock()
}

// Total returns how many slow queries have been recorded since start
// (including ones the ring has since evicted).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, newest first. Nil-safe.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.wrapped {
		n = len(l.ring)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent slot.
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}
