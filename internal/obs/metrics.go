package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Names may carry baked-in labels —
// `twinsearch_query_seconds{path="search"}` registers one time series
// of the twinsearch_query_seconds family — so the hot path never
// formats label strings; callers resolve each labeled metric once at
// construction and keep the pointer. Methods are safe for concurrent
// use; the observe/inc fast paths are lock-free atomics.
type Registry struct {
	mu      sync.Mutex
	order   []string // registration order, for stable output
	entries map[string]*entry
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

type entry struct {
	name string // full name including any {label="..."} suffix
	kind metricKind
	c    *Counter
	f    func() float64 // kindCounter funcs and kindGauge
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter returns the counter registered under name, creating it on
// first use. Panics if the name is already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindCounter || e.c == nil {
			panic("obs: metric " + name + " already registered as " + e.kind.String())
		}
		return e.c
	}
	c := &Counter{}
	r.add(&entry{name: name, kind: kindCounter, c: c})
	return c
}

// CounterFunc registers (or replaces) a counter whose value is read
// from f at scrape time — the bridge for counters that already live
// elsewhere (cache hit totals, executor steals, admission sheds).
func (r *Registry) CounterFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.add(&entry{name: name, kind: kindCounter, f: f})
}

// GaugeFunc registers (or replaces) a gauge read from f at scrape time.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.add(&entry{name: name, kind: kindGauge, f: f})
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given ascending upper bounds on first use (a
// trailing +Inf bucket is implicit). Panics on a kind mismatch.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic("obs: metric " + name + " already registered as " + e.kind.String())
		}
		return e.h
	}
	h := newHistogram(buckets)
	r.add(&entry{name: name, kind: kindHistogram, h: h})
	return h
}

// add inserts or replaces under r.mu.
func (r *Registry) add(e *entry) {
	if _, ok := r.entries[e.name]; !ok {
		r.order = append(r.order, e.name)
	}
	r.entries[e.name] = e
}

// DefLatencyBuckets are the default latency histogram bounds, in
// seconds: 100µs to 10s, roughly geometric.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// baseName strips a {label} suffix: families group by base name in the
// exposition output.
func baseName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one `# TYPE` line per family
// followed by all of the family's samples, families in first-
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ordered := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		ordered = append(ordered, r.entries[name])
	}
	r.mu.Unlock()

	// Group by family (base name), preserving first-seen family order:
	// the format requires a family's samples to be contiguous.
	famOrder := make([]string, 0, len(ordered))
	fams := make(map[string][]*entry, len(ordered))
	for _, e := range ordered {
		base, _ := baseName(e.name)
		if _, ok := fams[base]; !ok {
			famOrder = append(famOrder, base)
		}
		fams[base] = append(fams[base], e)
	}

	for _, base := range famOrder {
		es := fams[base]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, es[0].kind); err != nil {
			return err
		}
		for _, e := range es {
			if err := writeEntry(w, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeEntry(w io.Writer, e *entry) error {
	base, labels := baseName(e.name)
	switch e.kind {
	case kindHistogram:
		return e.h.write(w, base, labels)
	default:
		var v float64
		if e.f != nil {
			v = e.f()
		} else {
			v = float64(e.c.Value())
		}
		_, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(v))
		return err
	}
}

// formatFloat renders a sample value; Prometheus accepts Go's shortest
// 'g' form plus the special +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram with lock-free observation:
// counts[i] holds observations ≤ bounds[i], the final slot the +Inf
// overflow. Observe allocates nothing.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Allocation-free and safe for concurrent
// use.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// write renders the histogram's cumulative _bucket series plus _sum and
// _count, merging the le label into any baked-in labels.
func (h *Histogram) write(w io.Writer, base, labels string) error {
	prefix := ""
	if labels != "" {
		prefix = labels + ","
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, prefix, le, cum); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count())
	return err
}

// sortedNames returns registered names sorted — test helper surface.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
