package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// Exposition-format line shapes (Prometheus text format 0.0.4). Kept
// deliberately simple — a line-oriented checker, not a full parser —
// so tests and the CI smoke can validate /metrics without external
// dependencies.
var (
	expTypeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	expSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)( [0-9]+)?$`)
)

// ValidateExposition checks that r holds well-formed Prometheus text
// exposition output: every line is a comment, a valid `# TYPE` line, or
// a valid sample; each sample's family was TYPE-declared first; and no
// family is declared twice. Returns the first violation.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	declared := map[string]string{} // family -> kind
	samples := 0
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				m := expTypeLine.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("line %d: malformed TYPE line: %q", n, line)
				}
				if _, dup := declared[m[1]]; dup {
					return fmt.Errorf("line %d: family %s TYPE-declared twice", n, m[1])
				}
				declared[m[1]] = m[2]
			}
			// Other comments (# HELP, free-form) are legal.
			continue
		}
		m := expSampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", n, line)
		}
		fam := m[1]
		// Histogram series carry _bucket/_sum/_count suffixes on the
		// declared family name.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(fam, suf)
			if base != fam && declared[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := declared[fam]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE declaration", n, fam)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition output")
	}
	return nil
}
