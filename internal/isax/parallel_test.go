package isax

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func TestBuildParallelEquivalentToSerial(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.InsectN(51, 8000)
		ext := series.NewExtractor(ts, mode)
		cfg := Config{L: 80, Segments: 8, LeafCapacity: 128}

		serial, err := Build(ext, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 3, 16} {
			par, err := BuildParallel(ext, cfg, workers)
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			if err := par.CheckInvariants(); err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			if par.Len() != serial.Len() {
				t.Fatalf("mode=%v workers=%d: Len %d vs %d", mode, workers, par.Len(), serial.Len())
			}
			if par.NodeCount() != serial.NodeCount() {
				t.Fatalf("mode=%v workers=%d: NodeCount %d vs %d (structure diverged)",
					mode, workers, par.NodeCount(), serial.NodeCount())
			}
			q := ext.ExtractCopy(2000, 80)
			for _, eps := range []float64{0.2, 0.8} {
				a := serial.Search(q, eps)
				b := par.Search(q, eps)
				if len(a) != len(b) {
					t.Fatalf("mode=%v workers=%d eps=%v: %d vs %d results", mode, workers, eps, len(a), len(b))
				}
				for i := range a {
					if a[i].Start != b[i].Start {
						t.Fatalf("mode=%v workers=%d: result %d differs", mode, workers, i)
					}
				}
			}
		}
	}
}

func TestBuildParallelMatchesSweepline(t *testing.T) {
	ts := datasets.EEGN(52, 10000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := BuildParallel(ext, Config{L: 100, Segments: 10, LeafCapacity: 256}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sw := sweepline.New(ext)
	q := ext.ExtractCopy(4000, 100)
	got := ix.Search(q, 0.4)
	want := sw.Search(q, 0.4)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d results", len(got), len(want))
	}
}

func TestBuildParallelRejectsBadConfig(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	if _, err := BuildParallel(ext, Config{L: 0, Segments: 5}, 4); err == nil {
		t.Fatal("L=0 must fail")
	}
	if _, err := BuildParallel(ext, Config{L: 200, Segments: 5}, 4); err == nil {
		t.Fatal("L > n must fail")
	}
}
