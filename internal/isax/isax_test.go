package isax

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func buildOver(t *testing.T, ts []float64, mode series.NormMode, cfg Config) (*Index, *series.Extractor) {
	t.Helper()
	ext := series.NewExtractor(ts, mode)
	ix, err := Build(ext, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return ix, ext
}

func TestRejectsBadConfig(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 200), series.NormGlobal)
	if _, err := Build(ext, Config{L: 0, Segments: 5}); err == nil {
		t.Fatal("L=0 must fail")
	}
	if _, err := Build(ext, Config{L: 50, Segments: 0}); err == nil {
		t.Fatal("Segments=0 must fail")
	}
	if _, err := Build(ext, Config{L: 50, Segments: 51}); err == nil {
		t.Fatal("Segments > L must fail")
	}
	if _, err := Build(ext, Config{L: 300, Segments: 5}); err == nil {
		t.Fatal("L > n must fail")
	}
	if _, err := Build(ext, Config{L: 50, Segments: 5, BaseBits: 9}); err == nil {
		t.Fatal("BaseBits > MaxBits must fail")
	}
}

func TestMatchesSweeplineAllModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		ts   []float64
		mode series.NormMode
		eps  []float64
	}{
		{"walk-raw", datasets.RandomWalk(2, 4000), series.NormNone, []float64{0.5, 2, 5}},
		{"walk-global", datasets.RandomWalk(2, 4000), series.NormGlobal, []float64{0.1, 0.3, 0.6}},
		{"walk-persub", datasets.RandomWalk(2, 4000), series.NormPerSubsequence, []float64{0.2, 0.5}},
		{"sine-global", datasets.Sine(4, 4000, 150, 2, 0.1), series.NormGlobal, []float64{0.1, 0.3}},
		{"eeg-persub", datasets.EEGN(6, 6000), series.NormPerSubsequence, []float64{0.3, 0.8}},
	} {
		// Small leaf capacity forces deep splits, exercising the
		// cardinality-refinement machinery.
		ix, ext := buildOver(t, tc.ts, tc.mode, Config{L: 80, Segments: 8, LeafCapacity: 64})
		sw := sweepline.New(ext)
		q := ext.ExtractCopy(1000, 80)
		for _, eps := range tc.eps {
			got := ix.Search(q, eps)
			want := sw.Search(q, eps)
			if len(got) != len(want) {
				t.Fatalf("%s eps=%v: %d matches, want %d", tc.name, eps, len(got), len(want))
			}
			for i := range want {
				if got[i].Start != want[i].Start {
					t.Fatalf("%s eps=%v: position mismatch at %d", tc.name, eps, i)
				}
			}
		}
	}
}

func TestSplitsHappen(t *testing.T) {
	ts := datasets.RandomWalk(3, 8000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 64, Segments: 4, LeafCapacity: 32})
	if ix.NodeCount() <= len(ts)/1000 {
		t.Fatalf("expected many nodes with tiny capacity, got %d", ix.NodeCount())
	}
	if ix.Len() != series.NumSubsequences(len(ts), 64) {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestPruningEffective(t *testing.T) {
	ts := datasets.EEGN(8, 20000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 100, Segments: 10, LeafCapacity: 128})
	q := ext.ExtractCopy(5000, 100)
	_, st := ix.SearchStats(q, 0.2)
	if st.NodesPruned == 0 {
		t.Fatal("no pruning on a tight threshold")
	}
	if st.Candidates >= ix.Len() {
		t.Fatal("filter admitted every window; index is useless")
	}
	if st.Results > st.Candidates {
		t.Fatal("funnel violated")
	}
}

func TestStatsLooseThresholdHitsEverything(t *testing.T) {
	ts := datasets.RandomWalk(4, 2000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 50, Segments: 5, LeafCapacity: 64})
	q := ext.ExtractCopy(100, 50)
	ms, st := ix.SearchStats(q, 1e6)
	if len(ms) != ix.Len() {
		t.Fatalf("huge eps must match every window: %d vs %d", len(ms), ix.Len())
	}
	if st.NodesPruned != 0 {
		t.Fatal("nothing should be pruned at huge eps")
	}
}

func TestRawModeUsesFittedQuantizer(t *testing.T) {
	// Raw values far from N(0,1): with standard breakpoints every symbol
	// would saturate; the fitted quantizer must spread them.
	ts := make([]float64, 3000)
	walk := datasets.RandomWalk(5, 3000)
	for i := range ts {
		ts[i] = 500 + 20*walk[i]
	}
	ix, ext := buildOver(t, ts, series.NormNone, Config{L: 60, Segments: 6, LeafCapacity: 64})
	if ix.Quantizer().Mean() == 0 && ix.Quantizer().Std() == 1 {
		t.Fatal("raw build should fit the quantizer to the data")
	}
	q := ext.ExtractCopy(777, 60)
	got := ix.Search(q, 15)
	want := sweepline.New(ext).Search(q, 15)
	if len(got) != len(want) {
		t.Fatalf("raw search: %d matches, want %d", len(got), len(want))
	}
}

func TestIdenticalWindowsOversizedLeaf(t *testing.T) {
	// A constant series makes every window identical: no segment can
	// separate entries, so the index must fall back to one oversized
	// leaf rather than loop forever.
	ts := make([]float64, 300)
	for i := range ts {
		ts[i] = 1
	}
	ix, ext := buildOver(t, ts, series.NormNone, Config{L: 20, Segments: 4, LeafCapacity: 8})
	q := ext.ExtractCopy(0, 20)
	ms := ix.Search(q, 0.1)
	if len(ms) != series.NumSubsequences(300, 20) {
		t.Fatalf("got %d matches", len(ms))
	}
}

func TestQueryLengthPanic(t *testing.T) {
	ix, _ := buildOver(t, datasets.RandomWalk(1, 500), series.NormGlobal, Config{L: 50, Segments: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ix.Search(make([]float64, 10), 1)
}

func TestMemoryBytesGrowsWithData(t *testing.T) {
	small, _ := buildOver(t, datasets.RandomWalk(1, 1000), series.NormGlobal, Config{L: 50, Segments: 5})
	large, _ := buildOver(t, datasets.RandomWalk(1, 10000), series.NormGlobal, Config{L: 50, Segments: 5})
	if small.MemoryBytes() >= large.MemoryBytes() {
		t.Fatalf("memory accounting flat: %d vs %d", small.MemoryBytes(), large.MemoryBytes())
	}
}

func TestSelfQueryAlwaysFound(t *testing.T) {
	ts := datasets.InsectN(7, 10000)
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ix, ext := buildOver(t, ts, mode, Config{L: 100, Segments: 10, LeafCapacity: 256})
		for _, p := range []int{0, 1234, 9900} {
			q := ext.ExtractCopy(p, 100)
			found := false
			for _, m := range ix.Search(q, 0) {
				if m.Start == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("mode=%v: window %d not found by its own query", mode, p)
			}
		}
	}
}
