package isax

import (
	"sync"

	"twinsearch/internal/paa"
	"twinsearch/internal/series"
)

// Adaptive is an ADS+-style adaptive variant of the iSAX index
// [Zoumpatianos, Idreos & Palpanas 2014], cited by the paper among the
// iSAX family: construction does only the cheap work (one
// summarization pass and the root fan-out), leaving every root child as
// one large unsplit leaf. Leaves are refined lazily, one binary split
// at a time, when — and only where — queries actually descend, so the
// index "pays" for structure exactly in the regions the workload cares
// about. Query results are identical to the fully built index at every
// point in time.
//
// Adaptive refinement mutates the tree during queries, so Adaptive
// serializes searches internally; it trades per-query concurrency for
// a ~100× cheaper construction phase.
type Adaptive struct {
	mu sync.Mutex
	ix *Index
}

// BuildAdaptive constructs the adaptive index: summarization plus root
// partitioning only.
func BuildAdaptive(ext *series.Extractor, cfg Config) (*Adaptive, error) {
	// Reuse the serial builder with an unbounded leaf capacity: without
	// splits it degenerates to exactly the cheap phase. The real
	// capacity is restored for query-time refinement.
	want := cfg.LeafCapacity
	if want <= 0 {
		want = DefaultLeafCapacity
	}
	cfg.LeafCapacity = 1 << 30
	ix, err := Build(ext, cfg)
	if err != nil {
		return nil, err
	}
	ix.cfg.LeafCapacity = want
	return &Adaptive{ix: ix}, nil
}

// Search returns all twin subsequences of q at threshold eps, refining
// any oversized leaf the traversal reaches before scanning it.
func (a *Adaptive) Search(q []float64, eps float64) []series.Match {
	ms, _ := a.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters.
func (a *Adaptive) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	a.mu.Lock()
	defer a.mu.Unlock()

	ix := a.ix
	if len(q) != ix.cfg.L {
		panic("isax: query length mismatch")
	}
	qPAA := make([]float64, ix.cfg.Segments)
	paa.TransformTo(qPAA, q)
	ver := series.NewVerifier(ix.ext, q, eps)

	var st Stats
	var out []series.Match
	stack := make([]*node, 0, 64)
	for _, n := range ix.root {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		if n.word.PruneTwin(ix.quant, qPAA, eps) {
			st.NodesPruned++
			continue
		}
		if !n.leaf {
			stack = append(stack, n.left, n.right)
			continue
		}
		// Adaptive step: a qualifying oversized leaf is split one level
		// and re-examined, so only query-relevant regions refine — and
		// the refinement persists for future queries.
		if len(n.positions) > ix.cfg.LeafCapacity && ix.splitLeafOnce(n) {
			stack = append(stack, n.left, n.right)
			continue
		}
		st.LeavesReached++
		for _, p := range n.positions {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// Index exposes the underlying index for inspection (node counts,
// memory accounting). The caller must not mutate it.
func (a *Adaptive) Index() *Index {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix
}
