package isax

import (
	"sync"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func TestAdaptiveMatchesSweeplineAlways(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.InsectN(61, 8000)
		ext := series.NewExtractor(ts, mode)
		ad, err := BuildAdaptive(ext, Config{L: 80, Segments: 8, LeafCapacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		sw := sweepline.New(ext)
		// A sequence of queries: every one must be exact, including the
		// very first (before any refinement).
		for i, p := range []int{100, 3000, 3005, 5000, 100, 7000} {
			q := ext.ExtractCopy(p, 80)
			got := ad.Search(q, 0.5)
			want := sw.Search(q, 0.5)
			if len(got) != len(want) {
				t.Fatalf("mode=%v query %d: %d vs %d results", mode, i, len(got), len(want))
			}
			for j := range want {
				if got[j].Start != want[j].Start {
					t.Fatalf("mode=%v query %d: result %d differs", mode, i, j)
				}
			}
		}
		if err := ad.Index().CheckInvariants(); err != nil {
			t.Fatalf("mode=%v: invariants after refinement: %v", mode, err)
		}
	}
}

func TestAdaptiveRefinesOnlyOnQueries(t *testing.T) {
	ts := datasets.EEGN(62, 20000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ad, err := BuildAdaptive(ext, Config{L: 100, Segments: 10, LeafCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	before := ad.Index().NodeCount()

	q := ext.ExtractCopy(5000, 100)
	ad.Search(q, 0.3)
	afterOne := ad.Index().NodeCount()
	if afterOne <= before {
		t.Fatalf("first query should refine the touched region (%d → %d nodes)", before, afterOne)
	}

	// The same query again refines nothing new (its region is built).
	ad.Search(q, 0.3)
	afterTwo := ad.Index().NodeCount()
	if afterTwo != afterOne {
		t.Fatalf("repeat query should not refine further (%d → %d nodes)", afterOne, afterTwo)
	}

	// A fully built index for comparison: the adaptive one stays far
	// smaller after a single localized query.
	full, err := Build(ext, Config{L: 100, Segments: 10, LeafCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	if afterTwo >= full.NodeCount() {
		t.Fatalf("adaptive index (%d nodes) should be lazier than the full build (%d)", afterTwo, full.NodeCount())
	}
}

func TestAdaptiveBuildIsCheap(t *testing.T) {
	ts := datasets.InsectN(63, 30000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ad, err := BuildAdaptive(ext, Config{L: 100, Segments: 10, LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Before any query: exactly the root fan-out, no splits.
	if got, rootChildren := ad.Index().NodeCount(), len(ad.Index().root); got != rootChildren {
		t.Fatalf("fresh adaptive index has %d nodes but %d root children", got, rootChildren)
	}
}

func TestAdaptiveConcurrentSearches(t *testing.T) {
	// Concurrency is serialized internally; results must stay exact
	// under simultaneous callers (run with -race).
	ts := datasets.EEGN(64, 10000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ad, err := BuildAdaptive(ext, Config{L: 100, Segments: 10, LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	sw := sweepline.New(ext)
	queries := make([][]float64, 6)
	want := make([]int, len(queries))
	for i := range queries {
		queries[i] = ext.ExtractCopy(500+1500*i, 100)
		want[i] = len(sw.Search(queries[i], 0.4))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 24)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got := len(ad.Search(q, 0.4)); got != want[i] {
					errs <- "mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

func TestAdaptiveRejectsBadConfig(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	if _, err := BuildAdaptive(ext, Config{L: 0, Segments: 5}); err == nil {
		t.Fatal("L=0 must fail")
	}
}
