package isax

import (
	"runtime"

	"twinsearch/internal/exec"
	"twinsearch/internal/paa"
	"twinsearch/internal/sax"
	"twinsearch/internal/series"
)

// BuildParallel constructs the same index Build does, using multiple
// cores — the direction ParIS and MESSI (both cited by the paper) take
// iSAX indexing. The root of an iSAX tree partitions entries by their
// base-cardinality word, and subtrees under different root children
// never interact, so construction parallelizes in two phases with no
// locking on the hot path:
//
//  1. summarization: range-chunk work units compute each window's PAA
//     and max-cardinality symbols;
//  2. subtree building: one work unit per root child inserts that
//     partition's entries serially.
//
// Both phases run on a work-stealing executor (internal/exec) — the
// engine's one sanctioned source of parallelism — so build work shares
// the same bounded, parked-when-idle worker discipline as queries.
// The resulting tree is structurally identical to Build's for the same
// input (insertion order within a partition is preserved), so queries
// and invariants are unaffected. workers ≤ 0 selects GOMAXPROCS.
func BuildParallel(ext *series.Extractor, cfg Config, workers int) (*Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	quant, count, err := prepare(ext, &cfg)
	if err != nil {
		return nil, err
	}
	m := cfg.Segments
	ex := exec.New(workers)

	// Phase 1: per-window max-cardinality symbols, sharded by range.
	symsMax := make([]uint8, count*m)
	chunk := (count + workers - 1) / workers
	chunks := (count + chunk - 1) / chunk
	ex.ForEach(chunks, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, count)
		winBuf := make([]float64, cfg.L)
		paaBuf := make([]float64, m)
		for p := lo; p < hi; p++ {
			win := ext.Extract(p, cfg.L, winBuf)
			paa.TransformTo(paaBuf, win)
			for i, v := range paaBuf {
				symsMax[p*m+i] = quant.SymbolMax(v)
			}
		}
	})

	// Phase 2: partition by base word, then build partitions in
	// parallel. Partition membership is the root-child key, so no two
	// workers ever touch the same subtree.
	baseBits := make([]uint8, m)
	for i := range baseBits {
		baseBits[i] = uint8(cfg.BaseBits)
	}
	partitions := map[string][]int32{}
	var keys []string
	for p := 0; p < count; p++ {
		w := sax.WordFromMax(symsMax[p*m:p*m+m], baseBits)
		k := w.Key()
		if _, seen := partitions[k]; !seen {
			keys = append(keys, k)
		}
		partitions[k] = append(partitions[k], int32(p))
	}

	ix := &Index{ext: ext, cfg: cfg, quant: quant, root: make(map[string]*node, len(keys))}
	type result struct {
		key   string
		node  *node
		nodes int
	}
	results := make([]result, len(keys))
	ex.ForEach(len(keys), func(i int) {
		key := keys[i]
		sub := &subBuilder{cfg: cfg}
		for _, p := range partitions[key] {
			sub.insert(p, symsMax[int(p)*m:int(p)*m+m], baseBits)
		}
		results[i] = result{key: key, node: sub.root, nodes: sub.nodes}
	})

	for _, r := range results {
		ix.root[r.key] = r.node
		ix.nodes += r.nodes
	}
	ix.size = count
	return ix, nil
}

// subBuilder grows one root subtree with the same insert/split logic as
// the serial index (duplicated in miniature to avoid locking ix state).
type subBuilder struct {
	cfg   Config
	root  *node
	nodes int
}

func (sb *subBuilder) insert(p int32, symsMax []uint8, baseBits []uint8) {
	if sb.root == nil {
		base := sax.WordFromMax(symsMax, baseBits)
		sb.root = &node{word: base, leaf: true}
		sb.nodes++
	}
	n := sb.root
	for !n.leaf {
		if n.left.word.MatchesMax(symsMax) {
			n = n.left
		} else {
			n = n.right
		}
	}
	m := len(baseBits)
	n.positions = append(n.positions, p)
	n.symsMax = append(n.symsMax, symsMax...)
	if len(n.positions) > sb.cfg.LeafCapacity {
		sb.splitLeaf(n, m)
	}
}

func (sb *subBuilder) splitLeaf(n *node, m int) {
	ix := &Index{cfg: sb.cfg}
	before := ix.nodes
	ix.splitLeaf(n)
	sb.nodes += ix.nodes - before
}
