// Package isax implements the iSAX tree index [Shieh & Keogh 2008;
// Camerra et al. 2014] over all ℓ-length subsequences of a series, and
// the twin-search adaptation of the paper's §4.2.
//
// Structure: the root fans out to one child per base-cardinality SAX
// word actually observed. An internal node holds an iSAX word (one
// symbol per PAA segment, each with its own cardinality) and exactly two
// children obtained by adding one bit of cardinality to one segment (the
// iSAX binary split). Leaves store the start positions of their
// subsequences together with each subsequence's max-cardinality symbols,
// so splits never touch the raw series.
//
// Twin search traverses top-down, pruning a node as soon as one
// segment's symbol interval fails to intersect [µq_i − ε, µq_i + ε]
// (see sax.Word.PruneTwin); surviving leaves hand their positions to the
// shared verifier.
package isax

import (
	"fmt"

	"twinsearch/internal/paa"
	"twinsearch/internal/sax"
	"twinsearch/internal/series"
)

// DefaultLeafCapacity matches the paper's setup: "the maximum node
// capacity is set to 10,000" (§6.1).
const DefaultLeafCapacity = 10000

// DefaultBaseBits is the root fan-out cardinality exponent (cardinality 2).
const DefaultBaseBits = 1

// Config parameterizes index construction.
type Config struct {
	// L is the indexed subsequence length.
	L int
	// Segments is the PAA/SAX word length m (paper Table 2; default 10).
	Segments int
	// LeafCapacity bounds leaf occupancy (DefaultLeafCapacity when 0).
	LeafCapacity int
	// BaseBits is the per-segment cardinality exponent at the root
	// (DefaultBaseBits when 0).
	BaseBits int
	// Quantizer overrides the value quantizer. When nil, Build uses the
	// standard N(0,1) breakpoints for normalized extractors and fits
	// breakpoints to the data for raw extractors (paper §4.2:
	// "non-normalized values can also be handled by adjusting the
	// breakpoints accordingly").
	Quantizer *sax.Quantizer
}

// Index is a built iSAX index.
type Index struct {
	ext   *series.Extractor
	cfg   Config
	quant *sax.Quantizer
	root  map[string]*node
	size  int
	nodes int
}

type node struct {
	word sax.Word
	leaf bool

	// Leaf payload: positions[i] pairs with symsMax[i*m : (i+1)*m].
	positions []int32
	symsMax   []uint8

	// Internal payload: the two children of a binary split.
	left, right *node
	splitSeg    int
}

// Stats describes the work a search performed.
type Stats struct {
	NodesVisited  int
	NodesPruned   int
	LeavesReached int
	Candidates    int
	Results       int
}

// prepare validates cfg, fills defaults, and resolves the quantizer;
// shared by Build and BuildParallel.
func prepare(ext *series.Extractor, cfg *Config) (*sax.Quantizer, int, error) {
	if cfg.L <= 0 {
		return nil, 0, fmt.Errorf("isax: invalid subsequence length %d", cfg.L)
	}
	if err := paa.Check(cfg.L, cfg.Segments); err != nil {
		return nil, 0, err
	}
	count := series.NumSubsequences(ext.Len(), cfg.L)
	if count == 0 {
		return nil, 0, fmt.Errorf("isax: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	if cfg.LeafCapacity <= 0 {
		cfg.LeafCapacity = DefaultLeafCapacity
	}
	if cfg.BaseBits <= 0 {
		cfg.BaseBits = DefaultBaseBits
	}
	if cfg.BaseBits > sax.MaxBits {
		return nil, 0, fmt.Errorf("isax: base bits %d exceeds max %d", cfg.BaseBits, sax.MaxBits)
	}
	quant := cfg.Quantizer
	if quant == nil {
		if ext.Mode() == series.NormNone {
			quant = sax.FitQuantizer(ext.Data())
		} else {
			quant = sax.Standard()
		}
	}
	return quant, count, nil
}

// Build constructs an iSAX index over all ℓ-length windows of the
// extractor's series.
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	quant, count, err := prepare(ext, &cfg)
	if err != nil {
		return nil, err
	}

	ix := &Index{ext: ext, cfg: cfg, quant: quant, root: make(map[string]*node)}
	m := cfg.Segments
	winBuf := make([]float64, cfg.L)
	paaBuf := make([]float64, m)
	syms := make([]uint8, m)
	baseBits := make([]uint8, m)
	for i := range baseBits {
		baseBits[i] = uint8(cfg.BaseBits)
	}

	for p := 0; p < count; p++ {
		w := ext.Extract(p, cfg.L, winBuf)
		paa.TransformTo(paaBuf, w)
		for i, v := range paaBuf {
			syms[i] = quant.SymbolMax(v)
		}
		ix.insert(int32(p), syms, baseBits)
	}
	return ix, nil
}

func (ix *Index) insert(p int32, symsMax []uint8, baseBits []uint8) {
	base := sax.WordFromMax(symsMax, baseBits)
	key := base.Key()
	n := ix.root[key]
	if n == nil {
		n = &node{word: base, leaf: true}
		ix.root[key] = n
		ix.nodes++
	}
	for !n.leaf {
		if n.left.word.MatchesMax(symsMax) {
			n = n.left
		} else {
			n = n.right
		}
	}
	n.positions = append(n.positions, p)
	n.symsMax = append(n.symsMax, symsMax...)
	ix.size++
	if len(n.positions) > ix.cfg.LeafCapacity {
		ix.splitLeaf(n)
	}
}

// splitLeafOnce performs a single binary split of a full leaf, adding
// one bit of cardinality to a segment that actually separates the
// entries. Segments are tried from the lowest current cardinality
// upward (the iSAX round-robin refinement order). It reports false when
// no segment separates the entries — all of them share identical
// max-cardinality words — in which case the leaf stays oversized, the
// standard iSAX fallback.
func (ix *Index) splitLeafOnce(n *node) bool {
	m := ix.cfg.Segments
	for _, seg := range splitOrder(n.word) {
		if int(n.word.Bits[seg]) >= sax.MaxBits {
			continue
		}
		left, right := n.word.SplitChildren(seg)
		nL, nR := 0, 0
		for i := range n.positions {
			if left.MatchesMax(n.symsMax[i*m : i*m+m]) {
				nL++
			} else {
				nR++
			}
		}
		if nL == 0 || nR == 0 {
			continue
		}
		lc := &node{word: left, leaf: true,
			positions: make([]int32, 0, nL), symsMax: make([]uint8, 0, nL*m)}
		rc := &node{word: right, leaf: true,
			positions: make([]int32, 0, nR), symsMax: make([]uint8, 0, nR*m)}
		for i, pos := range n.positions {
			entry := n.symsMax[i*m : i*m+m]
			if left.MatchesMax(entry) {
				lc.positions = append(lc.positions, pos)
				lc.symsMax = append(lc.symsMax, entry...)
			} else {
				rc.positions = append(rc.positions, pos)
				rc.symsMax = append(rc.symsMax, entry...)
			}
		}
		n.leaf = false
		n.positions, n.symsMax = nil, nil
		n.left, n.right, n.splitSeg = lc, rc, seg
		ix.nodes += 2
		return true
	}
	return false
}

// splitLeaf splits a full leaf and keeps splitting any oversized child
// until every descendant leaf fits (or cannot be separated).
func (ix *Index) splitLeaf(n *node) {
	if !ix.splitLeafOnce(n) {
		return
	}
	if len(n.left.positions) > ix.cfg.LeafCapacity {
		ix.splitLeaf(n.left)
	}
	if len(n.right.positions) > ix.cfg.LeafCapacity {
		ix.splitLeaf(n.right)
	}
}

// splitOrder returns segment indices ordered by (current bits, index):
// refine the coarsest segment first, matching iSAX's round-robin policy.
func splitOrder(w sax.Word) []int {
	m := w.Len()
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (bits, index) — m is small.
	for i := 1; i < m; i++ {
		j := i
		for j > 0 && w.Bits[order[j]] < w.Bits[order[j-1]] {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	return order
}

// Search returns all twin subsequences of q at threshold eps, in start
// order. q must be in the extractor's value space and len(q) must equal
// the indexed length.
func (ix *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := ix.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters.
func (ix *Index) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	if len(q) != ix.cfg.L {
		panic(fmt.Sprintf("isax: query length %d, index built for %d", len(q), ix.cfg.L))
	}
	qPAA := paa.Transform(q, ix.cfg.Segments)
	ver := series.NewVerifier(ix.ext, q, eps)

	var st Stats
	var out []series.Match
	stack := make([]*node, 0, 64)
	for _, n := range ix.root {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		if n.word.PruneTwin(ix.quant, qPAA, eps) {
			st.NodesPruned++
			continue
		}
		if !n.leaf {
			stack = append(stack, n.left, n.right)
			continue
		}
		st.LeavesReached++
		for _, p := range n.positions {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	// Root children are visited in map order and leaf position runs
	// interleave; restore the canonical ordering.
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// Len returns the number of indexed windows.
func (ix *Index) Len() int { return ix.size }

// NodeCount returns the number of tree nodes (root children included).
func (ix *Index) NodeCount() int { return ix.nodes }

// Quantizer exposes the quantizer in use (tests and tools).
func (ix *Index) Quantizer() *sax.Quantizer { return ix.quant }

// MemoryBytes estimates the heap footprint of the index structure: node
// overhead, per-node words, and leaf payloads (position + max-cardinality
// symbols per entry) — the paper's observation that an iSAX node stores
// "one SAX word per node" is what keeps this 2–3× below TS-Index.
func (ix *Index) MemoryBytes() int {
	total := 48 * len(ix.root) // map buckets (rough)
	var walk func(n *node)
	walk = func(n *node) {
		total += 96                   // node struct
		total += 2 * len(n.word.Syms) // word payload
		if n.leaf {
			total += 4*len(n.positions) + len(n.symsMax)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	for _, n := range ix.root {
		walk(n)
	}
	return total
}

// CheckInvariants validates the structural invariants of the tree; tests
// call it after builds. It returns an error describing the first
// violation found.
func (ix *Index) CheckInvariants() error {
	m := ix.cfg.Segments
	total := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.leaf {
			if len(n.symsMax) != m*len(n.positions) {
				return fmt.Errorf("isax: leaf %q payload length mismatch", n.word.String())
			}
			for i := range n.positions {
				if !n.word.MatchesMax(n.symsMax[i*m : i*m+m]) {
					return fmt.Errorf("isax: leaf %q holds foreign entry", n.word.String())
				}
			}
			total += len(n.positions)
			return nil
		}
		if n.left == nil || n.right == nil {
			return fmt.Errorf("isax: internal %q missing child", n.word.String())
		}
		for _, c := range []*node{n.left, n.right} {
			if c.word.Bits[n.splitSeg] != n.word.Bits[n.splitSeg]+1 {
				return fmt.Errorf("isax: child of %q did not gain a bit on segment %d", n.word.String(), n.splitSeg)
			}
		}
		if err := walk(n.left); err != nil {
			return err
		}
		return walk(n.right)
	}
	for _, n := range ix.root {
		if err := walk(n); err != nil {
			return err
		}
	}
	if total != ix.size {
		return fmt.Errorf("isax: %d entries reachable, %d inserted", total, ix.size)
	}
	return nil
}
