package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tempSeries(t *testing.T, n int) ([]float64, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	path := filepath.Join(t.TempDir(), "series.f64")
	if err := WriteFile(path, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return data, path
}

func TestMemStore(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	m := NewMem(data)
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	dst := make([]float64, 3)
	if err := m.ReadAt(dst, 1); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if dst[0] != 2 || dst[2] != 4 {
		t.Fatalf("ReadAt = %v", dst)
	}
	if err := m.ReadAt(dst, 3); err == nil {
		t.Fatal("want bounds error")
	}
	if err := m.ReadAt(dst, -1); err == nil {
		t.Fatal("want bounds error for negative start")
	}
	if m.Values()[0] != 1 {
		t.Fatal("Values mismatch")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	data, path := tempSeries(t, 1000)
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	if d.Len() != len(data) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(data))
	}
	dst := make([]float64, 100)
	for _, p := range []int{0, 1, 450, 900} {
		if err := d.ReadAt(dst, p); err != nil {
			t.Fatalf("ReadAt(%d): %v", p, err)
		}
		for i := range dst {
			if dst[i] != data[p+i] {
				t.Fatalf("value mismatch at %d+%d", p, i)
			}
		}
	}
	if err := d.ReadAt(dst, 950); err == nil {
		t.Fatal("want bounds error")
	}
}

func TestDiskSpecialValues(t *testing.T) {
	data := []float64{0, -0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.NaN()}
	path := filepath.Join(t.TempDir(), "special.f64")
	if err := WriteFile(path, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for i := range data {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("bit mismatch at %d", i)
		}
	}
}

func TestCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.f64")
	if err := os.WriteFile(path, []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("OpenDisk should reject truncated file")
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile should reject truncated file")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := OpenDisk(filepath.Join(t.TempDir(), "nope.f64")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestWriteStream(t *testing.T) {
	data := make([]float64, 10000)
	for i := range data {
		data[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := Write(&buf, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if buf.Len() != len(data)*8 {
		t.Fatalf("wrote %d bytes, want %d", buf.Len(), len(data)*8)
	}
}

func TestWriteFileUnwritable(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.f64"), []float64{1}); err == nil {
		t.Fatal("want error for unwritable path")
	}
}

func TestWriteEmptySeries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.f64")
	if err := WriteFile(path, nil); err != nil {
		t.Fatalf("empty series should write fine: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestLoad(t *testing.T) {
	data, path := tempSeries(t, 256)
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := Load(d)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("Load mismatch at %d", i)
		}
	}
	empty, err := Load(NewMem(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("Load(empty) = %v, %v", empty, err)
	}
}
