// Package store provides the storage substrate the paper's evaluation
// describes: the index structure lives in memory while the input time
// series resides on disk, and leaf hits are resolved by random-access
// reads of the original file. An in-memory store with the same interface
// removes I/O from shape comparisons when desired.
//
// The on-disk format is a flat stream of little-endian IEEE-754 float64
// values, one per timestamp, with no header; the length is the file size
// divided by 8.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// ErrCorrupt is returned when a series file's size is not a multiple of
// the 8-byte sample width.
var ErrCorrupt = errors.New("store: file size is not a multiple of 8 bytes")

// ErrBounds is returned when a requested window lies outside the series.
var ErrBounds = errors.New("store: read out of bounds")

// Store is random access to a time series. Positions are 0-based.
type Store interface {
	// Len returns the number of timestamps.
	Len() int
	// ReadAt fills dst with the l=len(dst) values starting at position p.
	ReadAt(dst []float64, p int) error
	// Close releases any underlying resources.
	Close() error
}

// Mem is an in-memory Store backed by a slice.
type Mem struct {
	data []float64
}

// NewMem wraps data in a Store without copying.
func NewMem(data []float64) *Mem { return &Mem{data: data} }

// Len implements Store.
func (m *Mem) Len() int { return len(m.data) }

// ReadAt implements Store.
func (m *Mem) ReadAt(dst []float64, p int) error {
	if p < 0 || p+len(dst) > len(m.data) {
		return fmt.Errorf("%w: start=%d len=%d series=%d", ErrBounds, p, len(dst), len(m.data))
	}
	copy(dst, m.data[p:])
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Values returns the underlying slice; callers must not modify it.
func (m *Mem) Values() []float64 { return m.data }

// Disk is a Store over a binary float64 file, reading windows with
// pread-style random access exactly as the paper's query path does when a
// qualifying leaf is reached. ReadAt is safe for concurrent use (the
// sharded fan-out and batched search paths verify candidates from
// multiple goroutines against one attached store).
type Disk struct {
	f    *os.File
	n    int
	bufs sync.Pool // ReadAt scratch, one buffer per concurrent reader
}

// OpenDisk opens path as a series file.
func OpenDisk(path string) (*Disk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat: %w", err)
	}
	if info.Size()%8 != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s has %d bytes", ErrCorrupt, path, info.Size())
	}
	return &Disk{f: f, n: int(info.Size() / 8)}, nil
}

// Len implements Store.
func (d *Disk) Len() int { return d.n }

// ReadAt implements Store. It is safe for concurrent use: the pread
// itself is positional, and each call borrows its decode scratch from a
// pool instead of sharing one buffer.
func (d *Disk) ReadAt(dst []float64, p int) error {
	if p < 0 || p+len(dst) > d.n {
		return fmt.Errorf("%w: start=%d len=%d series=%d", ErrBounds, p, len(dst), d.n)
	}
	nb := len(dst) * 8
	var buf []byte
	if b, ok := d.bufs.Get().(*[]byte); ok && cap(*b) >= nb {
		buf = (*b)[:nb]
	} else {
		buf = make([]byte, nb)
	}
	defer d.bufs.Put(&buf)
	if _, err := d.f.ReadAt(buf, int64(p)*8); err != nil {
		return fmt.Errorf("store: read: %w", err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// Close implements Store.
func (d *Disk) Close() error { return d.f.Close() }

// WriteFile writes a series to path in the on-disk format.
func WriteFile(path string, data []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: create: %w", err)
	}
	if err := Write(f, data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Write streams a series to w in the on-disk format.
func Write(w io.Writer, data []float64) error {
	const chunk = 8192
	buf := make([]byte, 0, chunk*8)
	for i, v := range data {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
		if len(buf) == cap(buf) || i == len(data)-1 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("store: write: %w", err)
			}
			buf = buf[:0]
		}
	}
	return nil
}

// ReadFile loads an entire series file into memory.
func ReadFile(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read file: %w", err)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("%w: %s has %d bytes", ErrCorrupt, path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

// Load materializes any Store into memory. It is the bridge used by the
// harness: indexes are always built from an in-memory pass over the
// series (a single sequential read), while query-time leaf verification
// may go back to the Store.
func Load(s Store) ([]float64, error) {
	out := make([]float64, s.Len())
	if s.Len() == 0 {
		return out, nil
	}
	if err := s.ReadAt(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}
