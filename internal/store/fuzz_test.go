package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadFile feeds arbitrary bytes through the series-file reader:
// any 8-byte-multiple must round-trip value-for-value; any other length
// must be rejected; nothing may panic.
func FuzzReadFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 8))
	f.Add(make([]byte, 24))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // NaN bits

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.f64")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		data, err := ReadFile(path)
		if len(raw)%8 != 0 {
			if err == nil {
				t.Fatalf("accepted %d-byte file", len(raw))
			}
			return
		}
		if err != nil {
			t.Fatalf("rejected valid %d-byte file: %v", len(raw), err)
		}
		if len(data) != len(raw)/8 {
			t.Fatalf("%d values from %d bytes", len(data), len(raw))
		}
		// Disk store agrees with the bulk reader.
		d, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if d.Len() != len(data) {
			t.Fatalf("Disk.Len %d vs %d", d.Len(), len(data))
		}
	})
}
