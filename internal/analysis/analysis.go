// Package analysis is tsvet's analyzer framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface the suite needs (the container image carries no module proxy,
// so the real package is unavailable; the types here keep the analyzers
// source-compatible with it should it ever land).
//
// The suite encodes the engine's six load-bearing invariants — rules
// PRs 3–5 and 10 established by convention and differential test, now
// enforced mechanically on every build:
//
//   - unsafeview: unsafe stays inside internal/arena, and every view
//     constructed there is dominated by a bounds/alignment check.
//   - frozenwrite: core.Frozen's slice fields are written only by the
//     sanctioned freeze/load files — everywhere else they may be views
//     into a read-only mmap'd region.
//   - nogoroutine: raw go statements are forbidden outside
//     internal/exec and package main — query parallelism flows through
//     the work-stealing executor.
//   - ctxflow: functions holding a context must not re-root work on
//     context.Background/TODO, and the cluster/server/shard library
//     tiers never call them at all.
//   - closedguard: exported Engine/Collection methods that can touch
//     index state check the closed flag before doing so.
//   - obsflow: exported *Ctx entry points that start an observability
//     span end it on every return path (defer sp.End() preferred).
//
// A finding can be suppressed with an explicit escape hatch:
//
//	//tsvet:ignore <reason>
//
// on the offending line, or alone on the line above it. The reason is
// mandatory; a bare directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PathBase returns the final segment of the package's import path with
// any test-variant suffix ("pkg [pkg.test]") stripped — the identity
// the analyzers key their package scoping on. Matching on the final
// segment (not the full path) keeps the rules checkable against small
// fixture trees; the names involved (arena, core, exec, cluster,
// server, shard) are project-reserved.
func (p *Pass) PathBase() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileBase returns the basename of the file containing pos.
func (p *Pass) FileBase(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// IsPkgCall reports whether call is pkg.name(...) for a package-level
// function (or builtin-like member) of the package named pkgName,
// resolved through the type info — aliased imports are seen through,
// shadowed identifiers are not miscounted.
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgName string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Name() != pkgName {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// NamedBase unwraps pointers and aliases and returns the named type's
// (package name, type name), or ("", "") for unnamed types.
func NamedBase(t types.Type) (pkg, name string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Name(), obj.Name()
}

// RunAnalyzers applies every analyzer to one package and returns the
// raw (unsuppressed) diagnostics in file/position order.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
