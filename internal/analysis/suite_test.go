package analysis_test

import (
	"path/filepath"
	"testing"

	"twinsearch/internal/analysis"
	"twinsearch/internal/analysis/analysistest"
)

// testdata returns the fixture root.
func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUnsafeview(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Unsafeview, "notarena", "arena")
}

func TestFrozenwrite(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Frozenwrite, "core")
}

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Nogoroutine, "pool", "exec", "mainprog")
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Ctxflow, "cluster", "libother", "retryhedge")
}

func TestClosedguard(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Closedguard, "twinsearch")
}

func TestObsflow(t *testing.T) {
	analysistest.Run(t, testdata(t), analysis.Obsflow, "obsflow")
}

// TestSuiteComplete pins the shipped analyzer set: CI runs exactly
// these six, so a new invariant must be registered to count.
func TestSuiteComplete(t *testing.T) {
	want := []string{"unsafeview", "frozenwrite", "nogoroutine", "ctxflow", "closedguard", "obsflow"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
