package analysis

// Suite returns every tsvet analyzer, in reporting order. cmd/tsvet
// runs exactly this set; adding an invariant means adding it here and
// wiring fixtures under testdata/src/<name>/.
func Suite() []*Analyzer {
	return []*Analyzer{
		Unsafeview,
		Frozenwrite,
		Nogoroutine,
		Ctxflow,
		Closedguard,
		Obsflow,
	}
}
