package analysis

import (
	"go/ast"
	"go/types"
)

// Frozenwrite enforces the PR 3/4 arena invariant: a core.Frozen is a
// read-only view — its slice fields may point into an mmap'd,
// PROT_READ file region, so a write through them is silent corruption
// on a heap copy and a SIGSEGV on a mapping. Only the sanctioned
// builder/loader files (frozen.go, which allocates fresh heap arrays in
// Freeze/Thaw, and frozen_persist.go, which fills arrays it just
// allocated or validated) may assign, append to, copy into, or
// increment through those fields. Test files are exempt: they operate
// on heap fixtures.
var Frozenwrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "core.Frozen slice fields are written only by the sanctioned freeze/load files",
	Run:  runFrozenwrite,
}

// frozenSliceFields are the arena-backed arrays of core.Frozen.
var frozenSliceFields = map[string]bool{
	"first":     true,
	"count":     true,
	"positions": true,
	"upper":     true,
	"lower":     true,
}

// frozenWriteFiles are the only files allowed to write through them.
var frozenWriteFiles = map[string]bool{
	"frozen.go":         true,
	"frozen_persist.go": true,
}

func runFrozenwrite(pass *Pass) error {
	for _, f := range pass.Files {
		pos := f.Pos()
		if pass.InTestFile(pos) || frozenWriteFiles[pass.FileBase(pos)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if field, ok := frozenFieldRoot(pass, lhs); ok {
						pass.Reportf(lhs.Pos(), "write to core.Frozen.%s outside frozen.go/frozen_persist.go; frozen arrays may be views into a read-only mapped region", field)
					}
				}
			case *ast.IncDecStmt:
				if field, ok := frozenFieldRoot(pass, n.X); ok {
					pass.Reportf(n.Pos(), "write to core.Frozen.%s outside frozen.go/frozen_persist.go; frozen arrays may be views into a read-only mapped region", field)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "append" || id.Name == "copy") {
						if field, ok := frozenFieldRoot(pass, n.Args[0]); ok {
							pass.Reportf(n.Args[0].Pos(), "%s through core.Frozen.%s outside frozen.go/frozen_persist.go; it may write through spare capacity of a read-only mapped region", id.Name, field)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// frozenFieldRoot unwraps index/slice/paren chains and reports whether
// the expression roots at a core.Frozen slice field (f.positions,
// f.first[i], f.upper[a:b], ...).
func frozenFieldRoot(pass *Pass, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if !frozenSliceFields[x.Sel.Name] {
				return "", false
			}
			t := pass.Info.TypeOf(x.X)
			if pkg, name := NamedBase(t); pkg == "core" && name == "Frozen" {
				return x.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}
