package analysis

import (
	"go/ast"
	"go/token"
)

// Unsafeview enforces the PR 4 memory invariant: the pointer-forming
// half of package unsafe may be used only by internal/arena (the one
// place byte regions are reinterpreted as typed slices), and inside
// arena every unsafe view construction must be dominated by a
// bounds/alignment check — either a prior call to the sanctioned
// (*Arena).view checker or an explicit len()-based guard earlier in the
// same function. An unchecked reinterpretation of an mmap'd region is
// an out-of-bounds read waiting for a hostile stream header.
//
// Outside arena, importing unsafe is permitted for its compile-time
// constant members alone (Sizeof/Alignof/Offsetof — layout accounting,
// no pointers involved): a file whose every unsafe use is one of those
// passes; any pointer-forming use is flagged at the use, and an import
// with no unsafe selector uses at all (the //go:linkname blank-import
// idiom) is flagged at the import.
var Unsafeview = &Analyzer{
	Name: "unsafeview",
	Doc:  "pointer-forming unsafe is confined to internal/arena, and views there are bounds/alignment checked",
	Run:  runUnsafeview,
}

// unsafeViewFuncs are the unsafe members that materialize or move
// pointers — the dangerous half of the package. Sizeof/Alignof/Offsetof
// are compile-time constants and exempt.
var unsafeViewFuncs = map[string]bool{
	"Pointer":    true,
	"Slice":      true,
	"SliceData":  true,
	"String":     true,
	"StringData": true,
	"Add":        true,
}

func runUnsafeview(pass *Pass) error {
	inArena := pass.PathBase() == "arena"
	for _, f := range pass.Files {
		if !inArena {
			checkUnsafeOutsideArena(pass, f)
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnsafeDominance(pass, fd)
		}
		// Unsafe uses at package scope (var initializers) have no
		// guard to precede them; flag them all.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if pos, name, ok := unsafeUse(pass, n); ok {
					pass.Reportf(pos, "unsafe.%s in a package-scope initializer cannot be bounds-checked; construct views inside a guarded function", name)
				}
				return true
			})
		}
	}
	return nil
}

// checkUnsafeOutsideArena applies the non-arena policy to one file:
// pointer-forming unsafe uses are violations at the use site, and an
// unsafe import whose members are never selected (so the import exists
// only for a side effect such as //go:linkname) is a violation at the
// import. Files whose every unsafe use is a Sizeof/Alignof/Offsetof
// constant pass clean.
func checkUnsafeOutsideArena(pass *Pass, f *ast.File) {
	imports := false
	for _, imp := range f.Imports {
		if imp.Path.Value == `"unsafe"` {
			imports = true
		}
	}
	if !imports {
		return
	}
	uses := 0
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "unsafe" {
			return true
		}
		uses++
		if unsafeViewFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "unsafe.%s outside internal/arena; typed views over raw bytes must go through the arena package", sel.Sel.Name)
		}
		return true
	})
	if uses == 0 {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"unsafe"` {
				pass.Reportf(imp.Pos(), "import of unsafe outside internal/arena with no Sizeof/Alignof/Offsetof use; pointer-forming unsafe must go through the arena package")
			}
		}
	}
}

// checkUnsafeDominance walks one function body in source order and
// requires every unsafe view construction to be preceded by a guard:
// a call to the (*Arena).view checker, or an if statement whose
// condition inspects len(...) — the shape of every bounds check in the
// arena package. (This is a source-order approximation of dominance;
// the fixtures pin the cases that matter.)
func checkUnsafeDominance(pass *Pass, fd *ast.FuncDecl) {
	type use struct {
		pos  token.Pos
		name string
	}
	var uses []use
	var guards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if condHasLen(pass, n.Cond) {
				guards = append(guards, n.Pos())
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "view" {
				guards = append(guards, n.Pos())
			}
		}
		if pos, name, ok := unsafeUse(pass, n); ok {
			uses = append(uses, use{pos, name})
		}
		return true
	})
	for _, u := range uses {
		dominated := false
		for _, g := range guards {
			if g < u.pos {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(u.pos, "unsafe.%s without a dominating bounds/alignment check; validate against len() or go through (*Arena).view first", u.name)
		}
	}
}

// unsafeUse reports whether n is a use of one of the pointer-forming
// unsafe members.
func unsafeUse(pass *Pass, n ast.Node) (token.Pos, string, bool) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "unsafe" {
		return token.NoPos, "", false
	}
	if !unsafeViewFuncs[sel.Sel.Name] {
		return token.NoPos, "", false
	}
	return sel.Pos(), sel.Sel.Name, true
}

// condHasLen reports whether a len(...) call appears in the condition
// expression.
func condHasLen(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
