package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignorePrefix is the escape-hatch directive. Usage:
//
//	//tsvet:ignore <reason>
//
// The directive suppresses every tsvet diagnostic on its own line; when
// it stands alone on a line (only whitespace before it), it suppresses
// the line below instead — the two comment placements gofmt produces.
// The reason is mandatory: the point of the hatch is a reviewable
// record of why the invariant does not apply, so a bare directive is
// itself a diagnostic.
const ignorePrefix = "tsvet:ignore"

// IgnoreSet records which (file, line) pairs are suppressed.
type IgnoreSet struct {
	lines map[string]map[int]bool
}

// ParseIgnores scans the files' comments for ignore directives. It
// returns the suppression set plus one diagnostic per malformed
// (reason-less) directive — those are never suppressible.
func ParseIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Diagnostic) {
	set := &IgnoreSet{lines: map[string]map[int]bool{}}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				reason = strings.TrimSuffix(reason, "*/")
				if strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "tsvet",
						Message:  "tsvet:ignore directive without a reason; write //tsvet:ignore <why this invariant does not apply here>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if aloneOnLine(pos) {
					line++
				}
				if set.lines[pos.Filename] == nil {
					set.lines[pos.Filename] = map[int]bool{}
				}
				set.lines[pos.Filename][line] = true
			}
		}
	}
	return set, bad
}

// aloneOnLine reports whether only whitespace precedes the comment on
// its source line, by inspecting the file bytes. On any read error it
// answers false, which degrades to same-line suppression only.
func aloneOnLine(pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	// Offset points at the '/' of the comment; scan back to the
	// previous newline.
	if pos.Offset > len(data) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch data[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// Filter drops diagnostics landing on suppressed lines and returns the
// survivors.
func (s *IgnoreSet) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if s.lines[pos.Filename][pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
