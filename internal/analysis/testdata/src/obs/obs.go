// Package obs is a fixture stub of internal/obs: just enough surface
// (Span, StartSpan, SpanFrom, StartChild, End) for obsflow fixtures to
// type-check against.
package obs

import "context"

// Span mimics the real span node.
type Span struct{}

// StartChild mimics span creation off a parent.
func (s *Span) StartChild(name string) *Span { return &Span{} }

// Set mimics attribute recording.
func (s *Span) Set(key string, v interface{}) {}

// End mimics closing the span.
func (s *Span) End() {}

// StartSpan mimics the context-based entry: (ctx, span).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// SpanFrom mimics span extraction from a context.
func SpanFrom(ctx context.Context) *Span { return nil }
