// Package twinsearch is a fixture for closedguard, mirroring the root
// package's Engine/Collection shapes.
package twinsearch

import (
	"errors"
	"sync/atomic"
)

var errClosed = errors.New("closed")

// Engine mimics the real engine: closed guards the index fields.
type Engine struct {
	closed atomic.Bool
	fz     *int
	sh     *int
	cl     *int
}

// Search is guarded before the touch: no diagnostic.
func (e *Engine) Search(q []float64) ([]int, error) {
	if e.closed.Load() {
		return nil, errClosed
	}
	_ = e.fz
	return nil, nil
}

// SearchTopK never checks closed.
func (e *Engine) SearchTopK(q []float64, k int) ([]int, error) { // want `exported method SearchTopK touches index state \(sh\) without checking e\.closed`
	_ = e.sh
	return nil, nil
}

// Append reads the index before its guard.
func (e *Engine) Append(v float64) error {
	_ = e.cl // want `exported method Append touches index state \(cl\) before its e\.closed check`
	if e.closed.Load() {
		return errClosed
	}
	return nil
}

// Shards cannot return an error — metadata accessors are exempt.
func (e *Engine) Shards() int {
	if e.sh != nil {
		return *e.sh
	}
	return 1
}

// Close is the lifecycle method itself: exempt.
func (e *Engine) Close() error {
	e.closed.Store(true)
	_ = e.fz
	return nil
}

// tsFrozen marks delegated index access.
func (e *Engine) tsFrozen() *int { return e.fz }

// Delegating touches the index only through tsFrozen: still guarded.
func (e *Engine) Delegating() (int, error) { // want `exported method Delegating touches index state \(tsFrozen\(\)\) without checking e\.closed`
	return *e.tsFrozen(), nil
}

// searchCached mimics the serving-tier cache wrapper: index access is
// hidden inside the run closure, so the wrapper itself is guarded.
func (e *Engine) searchCached(run func() (int, error)) (int, error) { return run() }

// searchPreparedCtx mimics the post-validation dispatch helper.
func (e *Engine) searchPreparedCtx(q []float64) ([]int, error) { return nil, nil }

// SearchCached routes through the cache wrapper without a guard.
func (e *Engine) SearchCached(q []float64) (int, error) { // want `exported method SearchCached touches index state \(searchCached\(\)\) without checking e\.closed`
	return e.searchCached(func() (int, error) { return 0, nil })
}

// SearchCachedGuarded is the guarded shape: no diagnostic.
func (e *Engine) SearchCachedGuarded(q []float64) (int, error) {
	if e.closed.Load() {
		return 0, errClosed
	}
	return e.searchCached(func() (int, error) { return 0, nil })
}

// SearchPreparedCtx dispatches without a guard.
func (e *Engine) SearchPreparedCtx(q []float64) ([]int, error) { // want `exported method SearchPreparedCtx touches index state \(searchPreparedCtx\(\)\) without checking e\.closed`
	return e.searchPreparedCtx(q)
}

// Collection mimics the multi-series wrapper.
type Collection struct {
	closed  atomic.Bool
	engines []*Engine
}

// Search must guard the engines fan-out.
func (c *Collection) Search(q []float64) ([]int, error) { // want `exported method Search touches index state \(engines\) without checking c\.closed`
	for range c.engines {
	}
	return nil, nil
}

// SearchTopK is the guarded shape: no diagnostic.
func (c *Collection) SearchTopK(q []float64, k int) ([]int, error) {
	if c.closed.Load() {
		return nil, errClosed
	}
	_ = c.engines
	return nil, nil
}
