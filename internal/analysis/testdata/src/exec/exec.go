// Package exec is a fixture standing in for internal/exec: the one
// library package allowed to create goroutines — it IS the executor.
package exec

// Spawn models the worker launch.
func Spawn(fn func()) {
	go fn()
}
