// Package obsflow exercises the obsflow analyzer: exported *Ctx entry
// points that start a span must end it on every return path.
package obsflow

import (
	"context"

	"obs"
)

// SearchCtx defers the End immediately — the blessed shape.
func SearchCtx(ctx context.Context) error {
	ctx, sp := obs.StartSpan(ctx, "search")
	defer sp.End()
	if ctx == nil {
		return nil
	}
	return nil
}

// StatsCtx ends the span explicitly before each return — also fine.
func StatsCtx(ctx context.Context) (int, error) {
	ctx, sp := obs.StartSpan(ctx, "stats")
	if ctx == nil {
		sp.End()
		return 0, nil
	}
	sp.Set("path", "stats")
	sp.End()
	return 1, nil
}

// TopKCtx starts a child off the incoming span and defers the End.
func TopKCtx(ctx context.Context) error {
	child := obs.SpanFrom(ctx).StartChild("topk")
	defer child.End()
	return nil
}

// LeakyCtx returns early without ending the span.
func LeakyCtx(ctx context.Context) error {
	ctx, sp := obs.StartSpan(ctx, "leaky") // want `span "sp" started in exported LeakyCtx is not ended on every return path`
	if ctx == nil {
		return nil
	}
	sp.End()
	return nil
}

// OrphanCtx starts a child and never ends it at all.
func OrphanCtx(ctx context.Context) {
	child := obs.SpanFrom(ctx).StartChild("orphan") // want `span "child" started in exported OrphanCtx is not ended on every return path`
	child.Set("k", 1)
}

// DroppedCtx discards the span outright.
func DroppedCtx(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "dropped") // want `span discarded with _ in exported DroppedCtx`
}

// ClosureCtx hands span lifecycle to a closure: returns inside the
// literal are not entry-point return paths, and the deferred End inside
// it still counts for nothing — the outer defer is what satisfies the
// check.
func ClosureCtx(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "closure")
	defer sp.End()
	f := func() error {
		inner := sp.StartChild("inner")
		defer inner.End()
		return nil
	}
	return f()
}

// helperCtx is unexported: out of scope even when it leaks.
func helperCtx(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "helper")
	_ = sp
}

// Search is exported but not a *Ctx entry point: out of scope.
func Search(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "plain")
	_ = sp
}
