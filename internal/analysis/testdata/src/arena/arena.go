// Package arena is a fixture mirroring internal/arena: unsafe is
// allowed here, but every view construction must be dominated by a
// bounds/alignment check.
package arena

import (
	"errors"
	"unsafe"
)

// Arena mimics the real byte region owner.
type Arena struct {
	buf []byte
}

var errBounds = errors.New("out of bounds")

// view is the sanctioned checker: len()-guarded.
func (a *Arena) view(off, n int) (unsafe.Pointer, error) {
	if off < 0 || n < 0 || off+n*4 > len(a.buf) {
		return nil, errBounds
	}
	return unsafe.Pointer(&a.buf[off]), nil
}

// Int32s goes through view first: dominated, no diagnostic.
func (a *Arena) Int32s(off, n int) ([]int32, error) {
	p, err := a.view(off, n)
	if err != nil {
		return nil, err
	}
	return unsafe.Slice((*int32)(p), n), nil
}

// InlineGuard checks bounds itself before reinterpreting: fine.
func (a *Arena) InlineGuard(n int) []int32 {
	if n*4 > len(a.buf) {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&a.buf[0])), n)
}

// Unchecked builds a view with no guard at all.
func (a *Arena) Unchecked(n int) []int32 {
	return unsafe.Slice((*int32)(unsafe.Pointer(&a.buf[0])), n) // want `unsafe\.Slice without a dominating bounds/alignment check` `unsafe\.Pointer without a dominating bounds/alignment check`
}

// GuardTooLate checks after the view exists: still a violation for the
// construction itself.
func (a *Arena) GuardTooLate(n int) []int32 {
	s := unsafe.Slice((*int32)(unsafe.Pointer(&a.buf[0])), n) // want `unsafe\.Slice without a dominating bounds/alignment check` `unsafe\.Pointer without a dominating bounds/alignment check`
	if n*4 > len(a.buf) {
		return nil
	}
	return s
}

// Suppressed carries the explicit escape hatch.
func Suppressed() bool {
	x := uint16(1)
	//tsvet:ignore probes a 2-byte local, nothing to bounds-check
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
