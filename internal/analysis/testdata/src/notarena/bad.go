// Package notarena is a fixture: any other package importing unsafe is
// a violation, whatever it does with it.
package notarena

import "unsafe" // want `import of unsafe outside internal/arena`

// Cast reinterprets without the arena's checks.
func Cast(b []byte) *int32 {
	return (*int32)(unsafe.Pointer(&b[0]))
}
