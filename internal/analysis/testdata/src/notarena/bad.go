// Package notarena is a fixture: pointer-forming unsafe in any other
// package is a violation, wherever it appears.
package notarena

import "unsafe"

// Cast reinterprets without the arena's checks.
func Cast(b []byte) *int32 {
	return (*int32)(unsafe.Pointer(&b[0])) // want `unsafe.Pointer outside internal/arena`
}

// Shift moves a pointer arithmetically — also confined to arena.
func Shift(p unsafe.Pointer) unsafe.Pointer { // want `unsafe.Pointer outside internal/arena` `unsafe.Pointer outside internal/arena`
	return unsafe.Add(p, 8) // want `unsafe.Add outside internal/arena`
}
