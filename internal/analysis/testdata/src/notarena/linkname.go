// Fixture: an unsafe import with no selector uses exists only for a
// side effect (the //go:linkname blank-import idiom) — still flagged.
package notarena

import _ "unsafe" // want `import of unsafe outside internal/arena with no Sizeof/Alignof/Offsetof use`
