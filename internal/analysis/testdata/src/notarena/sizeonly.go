// Fixture: unsafe imported for its compile-time constants alone is
// allowed anywhere — Sizeof-based layout accounting forms no pointers.
// This file must produce no diagnostics.
package notarena

import "unsafe"

type header struct {
	upper []float64
	lower []float64
}

// HeaderBytes is the sanctioned pattern (mbts.MemoryBytes): sizes come
// from the compiler, not hardcoded word counts.
func HeaderBytes(n int) int {
	return int(unsafe.Sizeof(header{})) + n*int(unsafe.Sizeof(float64(0)))
}

// Alignment constants are equally harmless.
const wordAlign = unsafe.Alignof(uintptr(0))
const upperOff = unsafe.Offsetof(header{}.upper)
