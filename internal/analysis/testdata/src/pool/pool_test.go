package pool

// Test files are roots: goroutines are fine here.
func spawnInTest() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
