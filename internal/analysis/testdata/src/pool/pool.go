// Package pool is a fixture for nogoroutine: a library package where
// raw go statements are forbidden.
package pool

import "sync"

func work() {}

// Fan spawns raw goroutines instead of using the executor.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `raw go statement outside internal/exec`
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Ignored demonstrates the escape hatch, in both placements.
func Ignored() {
	//tsvet:ignore network-bound fan-out must not occupy CPU executor workers
	go work()
	go work() //tsvet:ignore same: blocking RPC, not query CPU work
}

// Bare directives do not suppress and are themselves reported.
func BareDirective() {
	go work() /*tsvet:ignore*/ // want `raw go statement outside internal/exec` `directive without a reason`
}
