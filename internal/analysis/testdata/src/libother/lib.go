// Package libother is a fixture for ctxflow rules 1 and 2 in a package
// outside the cluster/server/shard tiers.
package libother

import (
	"context"
	"net/http"
)

func use(ctx context.Context) { _ = ctx }

// WithCtx holds a context and must thread it.
func WithCtx(ctx context.Context, n int) {
	use(context.Background()) // want `WithCtx receives a context\.Context but re-roots on context\.Background\(\)`
}

// Handler holds a request whose context must be threaded.
func Handler(w http.ResponseWriter, r *http.Request) {
	use(context.Background()) // want `HTTP handler Handler calls context\.Background\(\); thread r\.Context\(\)`
}

// GoodHandler threads the request context: no diagnostic.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	use(r.Context())
}

// Root has neither: outside the library tiers, Background at a root is
// legitimate.
func Root() {
	use(context.Background())
}
