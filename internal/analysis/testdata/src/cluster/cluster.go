// Package cluster is a fixture for ctxflow rule 3: the cluster tier is
// library code and never roots its own contexts.
package cluster

import (
	"context"
	"time"
)

func use(ctx context.Context) { _ = ctx }

// Dial has no ctx parameter, but the tier rule still forbids rooting
// one here.
func Dial(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout) // want `context\.Background\(\) in the cluster tier`
	defer cancel()
	use(ctx)
}

// Fan receives a context and re-roots anyway: rule 1 wins the message.
func Fan(ctx context.Context) {
	use(context.TODO()) // want `Fan receives a context\.Context but re-roots on context\.TODO\(\)`
}

// Propagated is the correct shape: no diagnostic.
func Propagated(ctx context.Context, timeout time.Duration) {
	nctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	use(nctx)
}
