// Package retryhedge is a fixture for ctxflow rule 1 on function
// literals: retry/failover/hedging helpers are closures that take the
// unit's context, and the goroutine attempt paths they spawn must keep
// propagating it — re-rooting on Background would detach a hedged RPC
// from its cancellation.
package retryhedge

import (
	"context"
	"time"
)

func use(ctx context.Context) { _ = ctx }

// BadHedge re-roots inside a ctx-taking closure: the hedged attempt
// outlives the unit's cancellation.
func BadHedge() {
	launch := func(ctx context.Context) {
		go func() {
			use(context.Background()) // want `function literal in BadHedge receives a context\.Context but re-roots on context\.Background\(\)`
		}()
	}
	launch(context.Background())
}

// BadRetry re-roots on TODO inside the retry closure.
func BadRetry() {
	retry := func(ctx context.Context, attempts int) {
		for i := 0; i < attempts; i++ {
			use(context.TODO()) // want `function literal in BadRetry receives a context\.Context but re-roots on context\.TODO\(\)`
		}
	}
	retry(context.Background(), 2)
}

// InheritedScope: a closure without its own ctx parameter inside a
// ctx-taking function is still that function's call chain.
func InheritedScope(ctx context.Context) {
	go func() {
		use(context.Background()) // want `InheritedScope receives a context\.Context but re-roots on context\.Background\(\)`
	}()
}

// GoodHedge is the correct shape: every attempt derives from the
// unit's ctx; no diagnostic.
func GoodHedge(ctx context.Context, timeout time.Duration) {
	launch := func(ctx context.Context) {
		actx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		go func() {
			use(actx)
		}()
	}
	launch(ctx)
}

// GoodDetach: a supervised background loop detaches from the caller's
// deadline with WithoutCancel, never Background; no diagnostic.
func GoodDetach(ctx context.Context) {
	sctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	defer cancel()
	go func() {
		use(sctx)
	}()
}

// RootClosure: a literal with no ctx parameter at a true root may
// still root a context (outside the library tiers); no diagnostic.
func RootClosure() {
	run := func() {
		use(context.Background())
	}
	run()
}
