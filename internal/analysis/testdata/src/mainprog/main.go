// Command mainprog is a fixture: package main owns its process, so
// goroutines (signal watchers, servers) are allowed.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
