package core

// Walk only reads the arrays — always allowed.
func Walk(f *Frozen) int32 {
	var sum int32
	for i := range f.first {
		sum += f.first[i] + f.count[i]
	}
	for _, p := range f.positions {
		sum += p
	}
	return sum
}

// Mutate breaks the invariant in every recognized way.
func Mutate(f *Frozen, g Frozen) {
	f.positions[0] = 9              // want `write to core\.Frozen\.positions`
	f.first = nil                   // want `write to core\.Frozen\.first`
	g.count[1] = 2                  // want `write to core\.Frozen\.count`
	f.upper[0] += 1                 // want `write to core\.Frozen\.upper`
	f.count[0]++                    // want `write to core\.Frozen\.count`
	_ = append(f.positions, 4)      // want `append through core\.Frozen\.positions`
	copy(f.lower[1:], []float64{1}) // want `copy through core\.Frozen\.lower`
	other := []int32{1}
	copy(other, f.positions) // reading as copy source is fine
	_ = other
}
