// Package core is a fixture mirroring internal/core: Frozen's slice
// fields may be written only here (frozen.go) and in frozen_persist.go.
package core

// Frozen mimics the real flat arena layout.
type Frozen struct {
	first, count []int32
	positions    []int32
	upper, lower []float64
}

// Freeze is the sanctioned builder: writes here are fine.
func Freeze(n int) *Frozen {
	f := &Frozen{}
	f.first = make([]int32, n)
	f.count = make([]int32, n)
	f.positions = append(f.positions, 1, 2, 3)
	f.upper = make([]float64, n)
	f.lower = make([]float64, n)
	for i := range f.first {
		f.first[i] = int32(i)
	}
	copy(f.upper, f.lower)
	return f
}
