package analysis

import (
	"go/ast"
)

// Nogoroutine enforces the PR 2 concurrency invariant: all query
// parallelism flows through the work-stealing executor (internal/exec),
// which bounds worker count, keeps (shard, subtree) work units in one
// pool, and parks idle workers. A raw go statement anywhere else is
// unaccounted parallelism — unbounded under load, invisible to the
// executor's budgets, and a leak risk on early-return error paths.
// Exempt: internal/exec itself (it implements the workers), package
// main (process roots own their goroutines: servers, signal watchers),
// and _test.go files. Network-bound fan-out that must not occupy CPU
// workers carries an explicit //tsvet:ignore.
var Nogoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "raw go statements are forbidden outside internal/exec and package main",
	Run:  runNogoroutine,
}

func runNogoroutine(pass *Pass) error {
	if pass.PathBase() == "exec" {
		return nil
	}
	for _, f := range pass.Files {
		if f.Name.Name == "main" || pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement outside internal/exec; schedule the work on the executor (exec.Group.Go / Executor.ForEach) so parallelism stays bounded and accounted")
			}
			return true
		})
	}
	return nil
}
