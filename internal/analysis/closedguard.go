package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Closedguard enforces the PR 5 lifetime invariant: after Engine.Close
// the index arenas may point into an unmapped file region, so every
// exported entry point that can reach them must observe the closed flag
// first and fail with ErrClosed instead of faulting. Mechanically: an
// exported method on a guarded type whose body touches an index-bearing
// field (or calls tsFrozen) and whose signature can return an error must
// check <recv>.closed.Load() before the first such touch. Methods that
// cannot return an error (metadata accessors: Shards, MemoryBytes, …)
// only read slice headers and counters — heap state that survives
// Close — so they are exempt, as is Close itself.
var Closedguard = &Analyzer{
	Name: "closedguard",
	Doc:  "exported Engine/Collection methods that touch the index check the closed flag before use",
	Run:  runClosedguard,
}

// closedGuardedTypes maps a guarded receiver type to its index-bearing
// fields: state that Close invalidates (or that leads to such state).
var closedGuardedTypes = map[string]map[string]bool{
	"Engine":     {"fz": true, "ts": true, "sh": true, "cl": true, "ar": true},
	"Collection": {"engines": true},
}

// closedGuardedCalls are receiver methods whose call counts as touching
// the index (they dereference the fields internally). The unexported
// dispatch helpers behind the serving-tier entry points are listed so
// any new exported method routing through them — including via the
// result cache's run closure — must still check closed first.
var closedGuardedCalls = map[string]bool{
	"tsFrozen":                 true,
	"searchCached":             true,
	"searchPreparedCtx":        true,
	"searchStatsPreparedCtx":   true,
	"searchTopKPreparedCtx":    true,
	"searchShorterPreparedCtx": true,
	"searchApproxPreparedCtx":  true,
}

func runClosedguard(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() || fd.Name.Name == "Close" {
				continue
			}
			recvName, fields := guardedReceiver(pass, fd)
			if fields == nil || !returnsError(pass, fd) {
				continue
			}
			checkClosedGuard(pass, fd, recvName, fields)
		}
	}
	return nil
}

// guardedReceiver resolves fd's receiver: the receiver identifier name
// and, when the receiver type is guarded, its index field set.
func guardedReceiver(pass *Pass, fd *ast.FuncDecl) (string, map[string]bool) {
	if len(fd.Recv.List) == 0 {
		return "", nil
	}
	field := fd.Recv.List[0]
	_, typeName := NamedBase(pass.Info.TypeOf(field.Type))
	fields, ok := closedGuardedTypes[typeName]
	if !ok {
		return "", nil
	}
	name := ""
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	return name, fields
}

// returnsError reports whether fd's results include an error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		t := pass.Info.TypeOf(r.Type)
		if t != nil && types.Identical(t, types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// checkClosedGuard walks the body in source order: the first touch of
// an index field must come after a <recv>.closed.Load() check.
func checkClosedGuard(pass *Pass, fd *ast.FuncDecl, recvName string, fields map[string]bool) {
	var firstTouch token.Pos
	var touchedField string
	var guardPos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			if n.Sel.Name == "closed" {
				// Looking for <recv>.closed.Load(): the parent selector
				// is matched below, but recording the field selector is
				// enough — any read of the flag is the guard.
				if !guardPos.IsValid() {
					guardPos = n.Pos()
				}
				return true
			}
			if fields[n.Sel.Name] && !firstTouch.IsValid() {
				firstTouch = n.Pos()
				touchedField = n.Sel.Name
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && closedGuardedCalls[sel.Sel.Name] {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName && !firstTouch.IsValid() {
					firstTouch = n.Pos()
					touchedField = sel.Sel.Name + "()"
				}
			}
		}
		return true
	})
	if !firstTouch.IsValid() {
		return
	}
	if !guardPos.IsValid() {
		pass.Reportf(fd.Name.Pos(), "exported method %s touches index state (%s) without checking %s.closed; guard with ErrClosed before reaching arenas that Close may unmap", fd.Name.Name, touchedField, recvName)
		return
	}
	if guardPos > firstTouch {
		pass.Reportf(firstTouch, "exported method %s touches index state (%s) before its %s.closed check; move the guard first", fd.Name.Name, touchedField, recvName)
	}
}
