package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obsflow enforces the observability-span discipline PR 10 introduced
// on the public context-taking API surface: an exported function whose
// name ends in "Ctx" that starts a span — the second result of
// obs.StartSpan, or any call returning *obs.Span such as StartChild —
// must end it on every return path, either with an immediate
// `defer sp.End()` or with an `sp.End()` preceding each later return.
// A span left open serializes with a zero duration, silently corrupting
// every trace that flows through the endpoint; nothing at runtime
// notices, so the invariant is enforced here.
//
// The check is branch-insensitive like the rest of the suite: an
// End() call lexically between the binding and a return satisfies that
// return, whatever the control flow — the cheap discipline it demands
// (prefer defer) is exactly the one the engine's entry points follow.
// Discarding the span result with `_` is reported too: a span that
// cannot be ended should not be started.
var Obsflow = &Analyzer{
	Name: "obsflow",
	Doc:  "exported *Ctx entry points that start a span end it on every return path (defer sp.End(), or sp.End() before each later return)",
	Run:  runObsflow,
}

func runObsflow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Ctx") {
				continue
			}
			checkObsflow(pass, fd)
		}
	}
	return nil
}

// spanBinding is one identifier a span was assigned to, at the
// assignment's position.
type spanBinding struct {
	name string
	pos  token.Pos
}

func checkObsflow(pass *Pass, fd *ast.FuncDecl) {
	var bindings []spanBinding
	ends := map[string][]token.Pos{}
	deferred := map[string]bool{}
	var returns []token.Pos

	// Function literals are skipped entirely: a return inside a closure
	// is not a return path of the entry point, and a span handed to a
	// closure is the closure author's to end.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, b := range spanBindingsOf(pass, n) {
				if b.name == "_" {
					pass.Reportf(b.pos, "span discarded with _ in exported %s; bind it and end it (or don't start it)", fd.Name.Name)
					continue
				}
				bindings = append(bindings, b)
			}
		case *ast.DeferStmt:
			if name, ok := endCallTarget(n.Call); ok {
				deferred[name] = true
			}
		case *ast.CallExpr:
			if name, ok := endCallTarget(n); ok {
				ends[name] = append(ends[name], n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	for _, b := range bindings {
		if deferred[b.name] {
			continue
		}
		endedBefore := func(r token.Pos) bool {
			for _, e := range ends[b.name] {
				if e > b.pos && e < r {
					return true
				}
			}
			return false
		}
		ok := true
		covered := false
		for _, r := range returns {
			if r < b.pos {
				continue
			}
			covered = true
			if !endedBefore(r) {
				ok = false
				break
			}
		}
		if !covered {
			// No return after the binding: the function falls off its
			// end, which still needs an End on the way.
			ok = len(ends[b.name]) > 0
		}
		if !ok {
			pass.Reportf(b.pos, "span %q started in exported %s is not ended on every return path; add defer %s.End()", b.name, fd.Name.Name, b.name)
		}
	}
}

// spanBindingsOf returns the identifiers stmt binds to spans: the
// second result of obs.StartSpan, or the sole result of any call whose
// type is *obs.Span (StartChild and friends).
func spanBindingsOf(pass *Pass, stmt *ast.AssignStmt) []spanBinding {
	if len(stmt.Rhs) != 1 {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if pass.IsPkgCall(call, "obs", "StartSpan") && len(stmt.Lhs) == 2 {
		if id, ok := stmt.Lhs[1].(*ast.Ident); ok {
			return []spanBinding{{id.Name, id.Pos()}}
		}
		return nil
	}
	if len(stmt.Lhs) == 1 && isObsSpanPtr(pass.Info.Types[call].Type) {
		if id, ok := stmt.Lhs[0].(*ast.Ident); ok {
			return []spanBinding{{id.Name, id.Pos()}}
		}
	}
	return nil
}

// isObsSpanPtr reports whether t is *Span of a package whose path ends
// in "obs" — matching on the basename keeps the rule checkable against
// the fixture tree, like the rest of the suite's package scoping.
func isObsSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Span" {
		return false
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path == "obs"
}

// endCallTarget reports call as `<ident>.End()`, returning the
// identifier's name.
func endCallTarget(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}
