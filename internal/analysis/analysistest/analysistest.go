// Package analysistest runs a tsvet analyzer over fixture packages and
// checks its diagnostics against // want annotations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the stdlib so it works without the module proxy.
//
// Fixtures live under <dir>/src/<pkgpath>/*.go. A line expecting
// diagnostics carries a trailing comment:
//
//	f.positions[0] = 1 // want `write to core\.Frozen\.positions`
//
// Every diagnostic must match a want pattern on its line and every want
// pattern must be matched, or the test fails. Suppression via
// //tsvet:ignore is applied exactly as cmd/tsvet applies it, so
// fixtures can also pin the escape hatch's behavior; malformed (bare)
// directives surface as "tsvet" diagnostics and can be want-ed too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"twinsearch/internal/analysis"
	"twinsearch/internal/analysis/load"
)

// Run loads each fixture package under dir/src, applies a to it, and
// reports mismatches between diagnostics and // want annotations on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

// runOne handles a single fixture package.
func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	env := &fixtureEnv{root: filepath.Join(dir, "src"), fset: fset, checked: map[string]*checkedPkg{}}
	cp, err := env.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: load fixture %s: %v", a.Name, pkgPath, err)
	}

	diags, err := analysis.RunAnalyzers(fset, cp.files, cp.pkg, cp.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	ignores, badDirectives := analysis.ParseIgnores(fset, cp.files)
	diags = append(ignores.Filter(fset, diags), badDirectives...)

	checkWants(t, a.Name, fset, cp.files, diags)
}

// checkWants matches diagnostics against the fixture's expectations.
func checkWants(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, pat := range parseWants(t, fset, c) {
					pos := fset.Position(c.Pos())
					wants[wantKey{pos.Filename, pos.Line}] = append(wants[wantKey{pos.Filename, pos.Line}], pat)
				}
			}
		}
	}
	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		found := false
		for _, pat := range wants[key] {
			if !matched[pat] && pat.MatchString(d.Message) {
				matched[pat] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", name, pos, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, pat := range wants[k] {
			if !matched[pat] {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", name, pat, k.file, k.line)
			}
		}
	}
}

// wantRe pulls the quoted patterns out of a // want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the regexps from a single comment, if it is a
// want annotation.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*regexp.Regexp {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	var pats []*regexp.Regexp
	for _, q := range wantRe.FindAllString(text[len("want "):], -1) {
		body := q[1 : len(q)-1]
		if q[0] == '"' {
			body = strings.ReplaceAll(body, `\"`, `"`)
		}
		pat, err := regexp.Compile(body)
		if err != nil {
			t.Fatalf("bad want pattern %s at %s: %v", q, fset.Position(c.Pos()), err)
		}
		pats = append(pats, pat)
	}
	if len(pats) == 0 {
		t.Fatalf("want comment with no quoted pattern at %s", fset.Position(c.Pos()))
	}
	return pats
}

// --- fixture loading ---

// fixtureEnv type-checks fixture packages: stdlib imports resolve via
// the build cache's export data (compiled on demand by go list),
// sibling fixture imports resolve recursively under root.
type fixtureEnv struct {
	root       string
	fset       *token.FileSet
	checked    map[string]*checkedPkg
	stdExports map[string]string
	std        types.Importer
}

type checkedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (e *fixtureEnv) load(pkgPath string) (*checkedPkg, error) {
	if cp, ok := e.checked[pkgPath]; ok {
		return cp, nil
	}
	dir := filepath.Join(e.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(e.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Fixture-sibling imports are type-checked first so the importer
	// can serve them from the cache; everything else is stdlib.
	var std []string
	for _, imp := range imports {
		if imp == "unsafe" {
			continue
		}
		if _, err := os.Stat(filepath.Join(e.root, filepath.FromSlash(imp))); err == nil {
			if _, err := e.load(imp); err != nil {
				return nil, err
			}
			continue
		}
		std = append(std, imp)
	}
	if err := e.ensureStdExports(std); err != nil {
		return nil, err
	}

	// The gc importer is shared across the whole env: it caches the
	// *types.Package per stdlib path, so a sibling fixture and its
	// importer agree on type identity (obs's context.Context IS
	// obsflow's context.Context). A per-load importer would mint
	// distinct package instances and fail cross-fixture type checks.
	if e.std == nil {
		e.std = importer.ForCompiler(e.fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := e.stdExports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
	}
	conf := types.Config{
		Importer: &fixtureImporter{env: e, std: e.std},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(pkgPath, e.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	cp := &checkedPkg{files: files, pkg: pkg, info: info}
	e.checked[pkgPath] = cp
	return cp, nil
}

// ensureStdExports resolves export data files for stdlib imports by
// asking go list once per new batch (compiling into the build cache on
// first use — no network involved).
func (e *fixtureEnv) ensureStdExports(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := e.stdExports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	exp, err := load.StdExports(missing)
	if err != nil {
		return err
	}
	if e.stdExports == nil {
		e.stdExports = map[string]string{}
	}
	for k, v := range exp {
		e.stdExports[k] = v
	}
	return nil
}

// fixtureImporter serves sibling fixture packages from the env and
// defers everything else to the gc export-data importer.
type fixtureImporter struct {
	env *fixtureEnv
	std types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if cp, ok := fi.env.checked[path]; ok {
		return cp.pkg, nil
	}
	return fi.std.Import(path)
}
