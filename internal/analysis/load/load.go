// Package load turns `go list -export` output into type-checked
// packages for tsvet's standalone mode. It is the offline counterpart
// of golang.org/x/tools/go/packages: the go command resolves the build
// (module graph, build tags, test variants) and compiles export data
// into the build cache; this package parses the target sources and
// type-checks them against that export data with the stock go/importer
// — no network, no third-party dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string // import path as listed; test variants keep the bracketed form
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg mirrors the go list -json fields the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Imports    []string
	Error      *struct{ Err string }
}

// Packages lists patterns in dir (a module root or below), type-checks
// every non-dep target, and returns them with full type info. With
// tests true the go list walk includes test variants, so _test.go files
// are analyzed too (matching what `go vet` covers). Packages that fail
// to list or type-check produce an error — tsvet refuses to bless a
// tree it could not fully see.
func Packages(fset *token.FileSet, dir string, patterns []string, tests bool) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,ForTest,Imports,Error"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			// .test mains are generated harnesses in the build cache —
			// nothing of ours to check.
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by tsvet", p.ImportPath)
		}
		targets = append(targets, p)
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// StdExports resolves export-data files for the given stdlib import
// paths and their transitive dependencies (the gc importer follows
// imports while reading export data, so the closure is required).
// go list compiles anything missing into the build cache — offline.
func StdExports(paths []string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export,Error"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", paths, err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// check parses and type-checks one listed package against the export
// data of its (already compiled) dependencies.
func check(fset *token.FileSet, t listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}

	// Source imports name the plain path; a test variant's dependency
	// may resolve to a bracketed test build ("pkg [root.test]"). The
	// listed Imports are the resolved names — map plain to resolved,
	// preferring the variant when both exist.
	resolve := map[string]string{}
	for _, imp := range t.Imports {
		plain := imp
		if i := strings.Index(plain, " ["); i >= 0 {
			plain = plain[:i]
		}
		if cur, ok := resolve[plain]; !ok || len(imp) > len(cur) {
			resolve[plain] = imp
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if r, ok := resolve[path]; ok {
			path = r
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{Path: t.ImportPath, Dir: t.Dir, Files: files, Pkg: pkg, Info: info}, nil
}
