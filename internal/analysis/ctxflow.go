package analysis

import (
	"go/ast"
	"go/token"
)

// Ctxflow enforces the PR 5 cancellation invariant: once a context
// enters a call chain it stays the root of that chain. Re-rooting work
// on context.Background()/TODO() detaches it from the caller's deadline
// and the server's drain path — a wedged remote then hangs a query that
// the client already abandoned. Three rules, test files exempt:
//
//  1. A function that receives a context.Context must not call
//     context.Background or context.TODO in its body.
//  2. An HTTP handler (any function with an *http.Request parameter)
//     must not either — the request carries its context.
//  3. The library tiers internal/cluster, internal/server, and
//     internal/shard never call Background/TODO at all: their roots
//     (mains, tests, the bench harness) pass contexts in.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts propagate: no Background/TODO under a ctx parameter, in handlers, or in the cluster/server/shard tiers",
	Run:  runCtxflow,
}

// ctxflowLibPkgs are the package basenames rule 3 covers.
var ctxflowLibPkgs = map[string]bool{
	"cluster": true,
	"server":  true,
	"shard":   true,
}

func runCtxflow(pass *Pass) error {
	libPkg := ctxflowLibPkgs[pass.PathBase()]
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := hasParamType(pass, fd, "context", "Context")
			hasReq := hasParamType(pass, fd, "http", "Request")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !pass.IsPkgCall(call, "context", "Background", "TODO") {
					return true
				}
				if seen[call.Pos()] {
					return true
				}
				switch {
				case hasCtx:
					seen[call.Pos()] = true
					pass.Reportf(call.Pos(), "%s receives a context.Context but re-roots on %s; propagate the parameter instead", fd.Name.Name, callName(call))
				case hasReq:
					seen[call.Pos()] = true
					pass.Reportf(call.Pos(), "HTTP handler %s calls %s; thread r.Context() into the work it fans out", fd.Name.Name, callName(call))
				case libPkg:
					seen[call.Pos()] = true
					pass.Reportf(call.Pos(), "%s in the %s tier; this package is library code — accept a ctx from the caller (Background belongs only at true roots: mains, tests, harness)", callName(call), pass.PathBase())
				}
				return true
			})
		}
	}
	return nil
}

// callName renders context.Background/TODO for messages.
func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name + "()"
	}
	return "context.Background()"
}

// hasParamType reports whether fd takes a parameter whose type is the
// named type pkg.name, possibly behind a pointer.
func hasParamType(pass *Pass, fd *ast.FuncDecl, pkg, name string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if p, n := NamedBase(t); p == pkg && n == name {
			return true
		}
	}
	return false
}
