package analysis

import (
	"go/ast"
)

// Ctxflow enforces the PR 5 cancellation invariant: once a context
// enters a call chain it stays the root of that chain. Re-rooting work
// on context.Background()/TODO() detaches it from the caller's deadline
// and the server's drain path — a wedged remote then hangs a query that
// the client already abandoned. Three rules, test files exempt:
//
//  1. A function that receives a context.Context must not call
//     context.Background or context.TODO in its body. This applies to
//     function literals too: a retry/hedge helper closure that takes
//     the unit's ctx must keep propagating it — the goroutine paths the
//     cluster tier spawns per replica attempt are exactly where a
//     silent re-root would detach a hedged RPC from its cancellation.
//     (Detaching a supervised background loop from a caller's deadline
//     is done with context.WithoutCancel, which keeps values and stays
//     visible to this analyzer's users.)
//  2. An HTTP handler (any function with an *http.Request parameter)
//     must not either — the request carries its context.
//  3. The library tiers internal/cluster, internal/server, and
//     internal/shard never call Background/TODO at all: their roots
//     (mains, tests, the bench harness) pass contexts in.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts propagate: no Background/TODO under a ctx parameter (functions or literals), in handlers, or in the cluster/server/shard tiers",
	Run:  runCtxflow,
}

// ctxflowLibPkgs are the package basenames rule 3 covers.
var ctxflowLibPkgs = map[string]bool{
	"cluster": true,
	"server":  true,
	"shard":   true,
}

// ctxScope names the innermost enclosing function (declaration or
// literal) that binds a context the walk below holds violations
// against.
type ctxScope struct {
	name   string // for messages
	lit    bool   // the binder is a function literal
	hasCtx bool
	hasReq bool
}

func runCtxflow(pass *Pass) error {
	libPkg := ctxflowLibPkgs[pass.PathBase()]
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := ctxScope{
				name:   fd.Name.Name,
				hasCtx: hasParamType(pass, fd.Type, "context", "Context"),
				hasReq: hasParamType(pass, fd.Type, "http", "Request"),
			}
			walkCtxflow(pass, fd.Body, sc, libPkg)
		}
	}
	return nil
}

// walkCtxflow reports Background/TODO calls in body against the
// innermost context-binding scope sc. Function literals that bind their
// own context (or request) start a fresh scope; literals that don't
// inherit the enclosing one — a closure inside a ctx-taking function is
// still that function's call chain.
func walkCtxflow(pass *Pass, body ast.Node, sc ctxScope, libPkg bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := sc
			if hasParamType(pass, n.Type, "context", "Context") || hasParamType(pass, n.Type, "http", "Request") {
				inner = ctxScope{
					name:   "function literal in " + sc.name,
					lit:    true,
					hasCtx: hasParamType(pass, n.Type, "context", "Context"),
					hasReq: hasParamType(pass, n.Type, "http", "Request"),
				}
			}
			walkCtxflow(pass, n.Body, inner, libPkg)
			return false // the recursive walk covered the literal
		case *ast.CallExpr:
			if !pass.IsPkgCall(n, "context", "Background", "TODO") {
				return true
			}
			switch {
			case sc.hasCtx && sc.lit:
				pass.Reportf(n.Pos(), "%s receives a context.Context but re-roots on %s; propagate the parameter into the work it spawns", sc.name, callName(n))
			case sc.hasCtx:
				pass.Reportf(n.Pos(), "%s receives a context.Context but re-roots on %s; propagate the parameter instead", sc.name, callName(n))
			case sc.hasReq:
				pass.Reportf(n.Pos(), "HTTP handler %s calls %s; thread r.Context() into the work it fans out", sc.name, callName(n))
			case libPkg:
				pass.Reportf(n.Pos(), "%s in the %s tier; this package is library code — accept a ctx from the caller (Background belongs only at true roots: mains, tests, harness)", callName(n), pass.PathBase())
			}
		}
		return true
	})
}

// callName renders context.Background/TODO for messages.
func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name + "()"
	}
	return "context.Background()"
}

// hasParamType reports whether ft takes a parameter whose type is the
// named type pkg.name, possibly behind a pointer.
func hasParamType(pass *Pass, ft *ast.FuncType, pkg, name string) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if p, n := NamedBase(t); p == pkg && n == name {
			return true
		}
	}
	return false
}
