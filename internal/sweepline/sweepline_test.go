package sweepline

import (
	"math"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// brute is an independent, unoptimized reference (no early abandoning,
// no reordering) used to validate the sweepline itself.
func brute(ext *series.Extractor, q []float64, eps float64) []int {
	var out []int
	buf := make([]float64, len(q))
	for p := 0; p+len(q) <= ext.Len(); p++ {
		w := ext.Extract(p, len(q), buf)
		if series.Chebyshev(q, w) <= eps {
			out = append(out, p)
		}
	}
	return out
}

func TestSearchMatchesBrute(t *testing.T) {
	ts := datasets.Sine(3, 3000, 120, 2, 0.15)
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ext := series.NewExtractor(ts, mode)
		q := ext.TransformQuery(ts[500:580])
		for _, eps := range []float64{0.05, 0.2, 0.5, 1.0} {
			got, stats := New(ext).SearchStats(q, eps)
			want := brute(ext, q, eps)
			if len(got) != len(want) {
				t.Fatalf("mode=%v eps=%v: %d matches, want %d", mode, eps, len(got), len(want))
			}
			for i := range want {
				if got[i].Start != want[i] {
					t.Fatalf("mode=%v eps=%v: match %d at %d, want %d", mode, eps, i, got[i].Start, want[i])
				}
			}
			if stats.Candidates != series.NumSubsequences(ext.Len(), len(q)) {
				t.Fatalf("sweepline must verify every window, got %d", stats.Candidates)
			}
			if stats.Results != len(got) {
				t.Fatalf("stats.Results = %d, want %d", stats.Results, len(got))
			}
		}
	}
}

func TestSelfMatch(t *testing.T) {
	ts := datasets.RandomWalk(9, 2000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	q := ext.ExtractCopy(700, 100)
	ms := New(ext).Search(q, 0)
	found := false
	for _, m := range ms {
		if m.Start == 700 {
			found = true
		}
	}
	if !found {
		t.Fatal("query's own window must match at eps=0")
	}
}

func TestPeriodicSeriesFindsAllPeriods(t *testing.T) {
	// Noise-free sine: every window one period apart is an exact twin.
	ts := datasets.Sine(1, 2000, 100, 1, 0)
	ext := series.NewExtractor(ts, series.NormNone)
	q := ext.ExtractCopy(300, 100)
	ms := New(ext).Search(q, 1e-9)
	if len(ms) != len(ts)/100-1+1-1 && len(ms) < 15 {
		t.Fatalf("expected ~19 periodic matches, got %d", len(ms))
	}
	for _, m := range ms {
		if (m.Start-300)%100 != 0 {
			t.Fatalf("unexpected match at %d", m.Start)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	ext := series.NewExtractor([]float64{1, 2, 3}, series.NormNone)
	if ms := New(ext).Search(nil, 1); ms != nil {
		t.Fatal("empty query should return nil")
	}
	if ms := New(ext).Search([]float64{1, 2, 3, 4}, 1); ms != nil {
		t.Fatal("query longer than series should return nil")
	}
}

func TestEuclideanSupersetProperty(t *testing.T) {
	// Paper §1/§3.1: Euclidean search at ε√l returns a superset of the
	// Chebyshev twins at ε.
	ts := datasets.EEGN(5, 30000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	q := ext.ExtractCopy(1234, 100)
	eps := 0.3
	sw := New(ext)
	twins := sw.Search(q, eps)
	euclid := sw.SearchEuclidean(q, series.EuclideanThresholdFor(eps, len(q)))
	starts := map[int]bool{}
	for _, m := range euclid {
		starts[m.Start] = true
	}
	for _, m := range twins {
		if !starts[m.Start] {
			t.Fatalf("twin at %d missing from Euclidean superset", m.Start)
		}
	}
	if len(euclid) < len(twins) {
		t.Fatal("superset smaller than subset")
	}
}

func TestEuclideanDegenerate(t *testing.T) {
	ext := series.NewExtractor([]float64{1, 2}, series.NormNone)
	if ms := New(ext).SearchEuclidean([]float64{1, 2, 3}, 1); ms != nil {
		t.Fatal("long query should return nil")
	}
}

func TestRawModeThresholds(t *testing.T) {
	// Raw values: matches depend on absolute scale.
	ts := []float64{0, 10, 0, 10, 0, 10.4, 0.5, 10, 0}
	ext := series.NewExtractor(ts, series.NormNone)
	q := []float64{0, 10}
	ms := New(ext).Search(q, 0.5)
	wantStarts := map[int]bool{0: true, 2: true, 4: true, 6: true}
	if len(ms) != len(wantStarts) {
		t.Fatalf("got %d matches: %v", len(ms), ms)
	}
	for _, m := range ms {
		if !wantStarts[m.Start] {
			t.Fatalf("unexpected match at %d", m.Start)
		}
	}
	if math.Abs(ts[5]-10.4) > 1e-12 {
		t.Fatal("fixture changed")
	}
}
