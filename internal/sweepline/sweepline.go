// Package sweepline implements the index-free baseline of the paper
// (§1, §3.2): slide a window of length |Q| across the whole series and
// verify every position against the threshold, with UCR-style reordering
// early abandoning. It is exact by construction and serves as the ground
// truth every index's result set is tested against.
package sweepline

import (
	"twinsearch/internal/series"
)

// Sweepline scans a series through an extractor (which fixes the
// normalization mode once for build and verification alike).
type Sweepline struct {
	ext *series.Extractor
}

// New returns a sweepline searcher over ext.
func New(ext *series.Extractor) *Sweepline {
	return &Sweepline{ext: ext}
}

// Search returns all twin subsequences of q at threshold eps, in start
// order. q must already be expressed in the extractor's value space
// (use Extractor.NormalizeQuery).
func (s *Sweepline) Search(q []float64, eps float64) []series.Match {
	ms, _ := s.SearchStats(q, eps)
	return ms
}

// SearchStats is Search plus the number of candidates verified (always
// every window position: the sweepline has no filter step).
func (s *Sweepline) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	n := s.ext.Len()
	l := len(q)
	var out []series.Match
	if l == 0 || n < l {
		return out, Stats{}
	}
	ver := series.NewVerifier(s.ext, q, eps)
	last := n - l
	for p := 0; p <= last; p++ {
		if ver.Verify(p) {
			out = append(out, series.Match{Start: p, Dist: -1})
		}
	}
	cands, ops := ver.Stats()
	return out, Stats{Candidates: cands, PointOps: ops, Results: len(out)}
}

// SearchEuclidean returns all subsequences with Euclidean distance ≤ eps
// to q. It exists for the paper's introductory experiment: searching
// with the Euclidean threshold ε·√|Q| retrieves a strict superset of the
// Chebyshev twins, roughly two orders of magnitude larger on EEG-like
// data.
func (s *Sweepline) SearchEuclidean(q []float64, eps float64) []series.Match {
	n := s.ext.Len()
	l := len(q)
	var out []series.Match
	if l == 0 || n < l {
		return out
	}
	buf := make([]float64, l)
	last := n - l
	for p := 0; p <= last; p++ {
		w := s.ext.Extract(p, l, buf)
		if series.WithinEuclidean(q, w, eps) {
			out = append(out, series.Match{Start: p, Dist: -1})
		}
	}
	return out
}

// Stats describes the work a search performed.
type Stats struct {
	Candidates int // windows verified
	PointOps   int // pointwise comparisons
	Results    int // twins found
}
