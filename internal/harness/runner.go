package harness

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"time"

	"twinsearch/internal/arena"
	"twinsearch/internal/cluster"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
	"twinsearch/internal/store"
	"twinsearch/internal/sweepline"
)

// Row is one measurement: a (figure, dataset, method, parameter) cell in
// the paper's evaluation.
type Row struct {
	Figure  string
	Dataset string
	Method  string
	Param   string

	AvgQueryMs    float64
	AvgResults    float64
	AvgCandidates float64
	BuildMs       float64
	MemBytes      int

	// Latency-distribution fields, populated by the figures that report
	// tails (failover): per-query p50/p99 and the count of queries that
	// returned an error.
	P50Ms  float64
	P99Ms  float64
	Errors int
}

// Runner executes the paper's experiments. The zero value is not usable;
// construct with NewRunner.
type Runner struct {
	// Scale shrinks the EEG dataset (1 = the paper's 1.8M points).
	Scale float64
	// Queries is the workload size per experiment (paper: 100).
	Queries int
	// Seed drives dataset generation and workload sampling.
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// DiskVerify reproduces the paper's storage setup (§6.1): index
	// structures in memory, the raw series on disk, and every candidate
	// verification performing a random-access file read. Off, everything
	// stays in memory — faster, but per-candidate cost shrinks enough
	// that fixed traversal overheads distort the paper's shapes at
	// loose thresholds.
	DiskVerify bool
	// Workers sizes the query executor used by the sharded experiments
	// (FigureShard, FigureSkew); ≤ 0 selects one worker per CPU.
	Workers int

	insect, eeg *Dataset // lazily materialized
	diskStores  []*store.Disk
	diskFiles   []string
}

// NewRunner returns a runner with the paper's workload size and storage
// setup (disk-resident data).
func NewRunner(scale float64, seed int64) *Runner {
	return &Runner{Scale: scale, Queries: WorkloadSize, Seed: seed, DiskVerify: true}
}

// Close removes the temporary series files disk verification created.
func (r *Runner) Close() {
	for _, s := range r.diskStores {
		s.Close()
	}
	for _, f := range r.diskFiles {
		os.Remove(f)
	}
	r.diskStores, r.diskFiles = nil, nil
}

// attachDisk writes the dataset's raw series to a temporary file and
// routes the extractor's verification reads through it.
func (r *Runner) attachDisk(d *Dataset, ext *series.Extractor) error {
	f, err := os.CreateTemp("", "twinsearch-"+d.Name+"-*.f64")
	if err != nil {
		return err
	}
	path := f.Name()
	f.Close()
	if err := store.WriteFile(path, d.Data); err != nil {
		os.Remove(path)
		return err
	}
	disk, err := store.OpenDisk(path)
	if err != nil {
		os.Remove(path)
		return err
	}
	r.diskStores = append(r.diskStores, disk)
	r.diskFiles = append(r.diskFiles, path)
	ext.AttachStore(disk)
	return nil
}

// extractor builds the (dataset, mode) extractor, wiring in the disk
// store when DiskVerify is set.
func (r *Runner) extractor(d *Dataset, mode series.NormMode) *series.Extractor {
	ext := series.NewExtractor(d.Data, mode)
	if r.DiskVerify {
		if err := r.attachDisk(d, ext); err != nil {
			// Fall back to in-memory verification rather than failing
			// the whole experiment; the log records the substitution.
			r.logf("  disk verify unavailable (%v); falling back to memory", err)
		}
	}
	return ext
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// Insect returns the runner's Insect dataset, materializing it once.
func (r *Runner) Insect() *Dataset {
	if r.insect == nil {
		d := Insect(r.Seed, 1)
		r.insect = &d
	}
	return r.insect
}

// EEG returns the runner's EEG dataset, materializing it once.
func (r *Runner) EEG() *Dataset {
	if r.eeg == nil {
		d := EEG(r.Seed+1, r.Scale)
		r.eeg = &d
	}
	return r.eeg
}

// Datasets returns both datasets in presentation order.
func (r *Runner) Datasets() []*Dataset { return []*Dataset{r.Insect(), r.EEG()} }

// workload samples the query set for a dataset and maps it into the
// extractor's value space.
func (r *Runner) workload(d *Dataset, ext *series.Extractor, l int) [][]float64 {
	raw := datasets.Queries(d.Data, r.Seed+7, r.Queries, l)
	out := make([][]float64, len(raw))
	for i, q := range raw {
		out[i] = ext.TransformQuery(q)
	}
	return out
}

// measure times the workload over one built method at one threshold.
func measure(b built, queries [][]float64, eps float64) (avgMs, avgResults, avgCands float64) {
	var results, cands int
	start := time.Now()
	for _, q := range queries {
		res, c := b.s.search(q, eps)
		results += res
		cands += c
	}
	elapsed := time.Since(start)
	n := float64(len(queries))
	return elapsed.Seconds() * 1000 / n, float64(results) / n, float64(cands) / n
}

// sweep runs every method over every threshold for one dataset/mode,
// building each index once and reusing it across the grid — the way the
// paper's per-figure sweeps are structured.
func (r *Runner) sweep(figure string, d *Dataset, mode series.NormMode, methods []MethodID, epsGrid []float64, l, segments int, paramName string) []Row {
	ext := r.extractor(d, mode)
	queries := r.workload(d, ext, l)
	var rows []Row
	for _, m := range methods {
		b, err := buildMethod(m, ext, l, segments)
		if err != nil {
			// KV-Index under per-subsequence normalization, etc.:
			// recorded as absent, exactly like the paper's Fig. 6.
			r.logf("  %s: skipped (%v)", m, err)
			continue
		}
		r.logf("  %s built in %v", m, b.buildTime.Round(time.Millisecond))
		for _, eps := range epsGrid {
			avgMs, avgRes, avgCands := measure(b, queries, eps)
			rows = append(rows, Row{
				Figure:  figure,
				Dataset: d.Name,
				Method:  m.String(),
				Param:   fmt.Sprintf("%s=%.4g", paramName, eps),

				AvgQueryMs:    avgMs,
				AvgResults:    avgRes,
				AvgCandidates: avgCands,
				BuildMs:       b.buildTime.Seconds() * 1000,
				MemBytes:      b.memBytes,
			})
		}
	}
	return rows
}

// epsGridFor returns the threshold grid for a dataset under a mode,
// rescaling raw grids to the synthetic data's σ (see RawEps).
func epsGridFor(d *Dataset, mode series.NormMode) []float64 {
	if mode == series.NormNone {
		_, std := series.MeanStd(d.Data)
		return RawEps(d.EpsNorm, std)
	}
	return d.EpsNorm
}

func defaultEpsFor(d *Dataset, mode series.NormMode) float64 {
	if mode == series.NormNone {
		_, std := series.MeanStd(d.Data)
		return d.DefaultEpsNorm * std
	}
	return d.DefaultEpsNorm
}

// Figure4 — query time vs ε on globally z-normalized data, all methods
// (paper Fig. 4).
func (r *Runner) Figure4() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Figure 4: %s", d.Name)
		rows = append(rows, r.sweep("4", d, series.NormGlobal, AllMethods, d.EpsNorm, DefaultL, DefaultM, "eps")...)
	}
	return rows
}

// Figure5 — query time vs subsequence length ℓ at the default ε
// (paper Fig. 5). Each ℓ requires a fresh set of indices.
func (r *Runner) Figure5() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Figure 5: %s", d.Name)
		ext := r.extractor(d, series.NormGlobal)
		for _, l := range LengthGrid {
			queries := r.workload(d, ext, l)
			for _, m := range AllMethods {
				b, err := buildMethod(m, ext, l, DefaultM)
				if err != nil {
					r.logf("  l=%d %s: skipped (%v)", l, m, err)
					continue
				}
				avgMs, avgRes, avgCands := measure(b, queries, d.DefaultEpsNorm)
				rows = append(rows, Row{
					Figure: "5", Dataset: d.Name, Method: m.String(),
					Param:      fmt.Sprintf("l=%d", l),
					AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands,
					BuildMs: b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
				})
			}
			r.logf("  l=%d done", l)
		}
	}
	return rows
}

// Figure6 — query time vs ε with per-subsequence z-normalization
// (paper Fig. 6; KV-Index inapplicable).
func (r *Runner) Figure6() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Figure 6: %s", d.Name)
		rows = append(rows, r.sweep("6", d, series.NormPerSubsequence,
			[]MethodID{ISAX, TSIndex}, d.EpsNorm, DefaultL, DefaultM, "eps")...)
	}
	return rows
}

// Figure7 — query time vs ε on raw (non-normalized) data, all methods
// (paper Fig. 7).
func (r *Runner) Figure7() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Figure 7: %s", d.Name)
		rows = append(rows, r.sweep("7", d, series.NormNone, AllMethods,
			epsGridFor(d, series.NormNone), DefaultL, DefaultM, "eps")...)
	}
	return rows
}

// Figure8 — memory footprint (8a) and build time (8b) per index at the
// default parameters (paper Fig. 8). The sweepline is excluded: it has
// no index.
func (r *Runner) Figure8() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Figure 8: %s", d.Name)
		// Figure 8 measures build cost and structure size only; no disk
		// store is needed.
		ext := series.NewExtractor(d.Data, series.NormGlobal)
		for _, m := range []MethodID{KVIndex, ISAX, TSIndex} {
			b, err := buildMethod(m, ext, DefaultL, DefaultM)
			if err != nil {
				r.logf("  %s: skipped (%v)", m, err)
				continue
			}
			r.logf("  %s built in %v", m, b.buildTime.Round(time.Millisecond))
			rows = append(rows, Row{
				Figure: "8", Dataset: d.Name, Method: m.String(), Param: "defaults",
				BuildMs: b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
			})
		}
	}
	return rows
}

// FigureShard — beyond the paper: TS-Index construction and query time
// versus shard count (the ParIS/MESSI data-partitioning direction).
// Shard count 1 is the unchanged single-index baseline; "auto" is one
// shard per CPU. Results are identical across rows — only the time
// changes — so AvgResults doubles as a built-in parity check.
func (r *Runner) FigureShard() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Shard experiment: %s", d.Name)
		ext := r.extractor(d, series.NormGlobal)
		queries := r.workload(d, ext, DefaultL)
		for _, p := range []int{1, 2, 4, 0} {
			b, err := buildSharded(ext, DefaultL, p, r.Workers, nil, false)
			if err != nil {
				r.logf("  shards=%d: skipped (%v)", p, err)
				continue
			}
			label := fmt.Sprintf("shards=%d", p)
			if p <= 0 {
				label = "shards=auto"
			}
			r.logf("  %s built in %v", label, b.buildTime.Round(time.Millisecond))
			avgMs, avgRes, avgCands := measure(b, queries, d.DefaultEpsNorm)
			rows = append(rows, Row{
				Figure: "shard", Dataset: d.Name, Method: "TS-Index", Param: label,
				AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands,
				BuildMs: b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
			})
		}
	}
	return rows
}

// FigureFrozen — beyond the paper: the same TS-Index under its two
// memory layouts. "pointer" is the paper-shaped tree of heap-allocated
// nodes; "frozen" compiles that tree into the flat structure-of-arrays
// arena (packed bounds, index-range children) every production query
// path actually runs on; the sharded rows add mean-sorted versus
// contiguous partitioning on top (tighter per-shard bounds versus a
// concatenation merge). Results are identical across rows — AvgResults
// doubles as a parity check; the columns of interest are query time
// and index bytes.
func (r *Runner) FigureFrozen() []Row {
	var rows []Row
	for _, d := range r.Datasets() {
		r.logf("Frozen-layout experiment: %s", d.Name)
		ext := r.extractor(d, series.NormGlobal)
		queries := r.workload(d, ext, DefaultL)
		type variant struct {
			label string
			build func() (built, error)
		}
		variants := []variant{
			{"layout=pointer", func() (built, error) { return buildMethod(TSIndex, ext, DefaultL, DefaultM) }},
			{"layout=frozen", func() (built, error) { return buildFrozen(ext, DefaultL) }},
			{"layout=frozen/shards=auto", func() (built, error) {
				return buildSharded(ext, DefaultL, 0, r.Workers, nil, false)
			}},
			{"layout=frozen/meanshards=auto", func() (built, error) {
				return buildSharded(ext, DefaultL, 0, r.Workers, nil, true)
			}},
		}
		for _, v := range variants {
			b, err := v.build()
			if err != nil {
				r.logf("  %s: skipped (%v)", v.label, err)
				continue
			}
			r.logf("  %s built in %v", v.label, b.buildTime.Round(time.Millisecond))
			avgMs, avgRes, avgCands := measure(b, queries, d.DefaultEpsNorm)
			rows = append(rows, Row{
				Figure: "frozen", Dataset: d.Name, Method: "TS-Index", Param: v.label,
				AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands,
				BuildMs: b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
			})
		}
	}
	return rows
}

// FigureSkew — beyond the paper: query latency under deliberately
// imbalanced shards (the last of four holding ~90% of the windows),
// with one executor worker versus a full pool. One goroutine per shard
// would leave a skewed partition's latency bounded by the hottest
// shard; the work-stealing executor splits every shard into subtree
// units, so the skewed rows should track the balanced rows once
// workers > 1 — the latency is bounded by total work, not by the
// largest partition. Result counts are identical across all rows (a
// built-in parity check, like FigureShard).
func (r *Runner) FigureSkew() []Row {
	const shards = 4
	d := r.EEG()
	r.logf("Skew experiment: %s", d.Name)
	ext := r.extractor(d, series.NormGlobal)
	queries := r.workload(d, ext, DefaultL)
	count := series.NumSubsequences(len(d.Data), DefaultL)
	parts := []struct {
		name   string
		bounds []int
	}{
		{"balanced", nil},
		{"skew90", SkewedBoundaries(count, shards, 0.9)},
	}
	ws := []int{1}
	if r.Workers != 1 {
		ws = append(ws, r.Workers)
	}
	var rows []Row
	for _, part := range parts {
		for _, w := range ws {
			label := fmt.Sprintf("%s/workers=%d", part.name, w)
			if w <= 0 {
				label = part.name + "/workers=auto"
			}
			b, err := buildSharded(ext, DefaultL, shards, w, part.bounds, false)
			if err != nil {
				r.logf("  %s: skipped (%v)", label, err)
				continue
			}
			r.logf("  %s built in %v", label, b.buildTime.Round(time.Millisecond))
			avgMs, avgRes, avgCands := measure(b, queries, d.DefaultEpsNorm)
			rows = append(rows, Row{
				Figure: "skew", Dataset: d.Name, Method: "TS-Index", Param: label,
				AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands,
				BuildMs: b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
			})
		}
	}
	return rows
}

// FigureColdOpen — beyond the paper: the cost of bringing a saved
// sharded index back to life, copy loader versus mmap. The copy rows
// decode the whole stream into heap arenas up front (open time and
// resident bytes are O(index)); the mmap rows validate the header,
// point the arenas at the mapping, and let queries fault pages in on
// demand (open is O(header), residency is whatever the workload
// touches, shared across processes). AvgResults is the parity check;
// MemBytes reports heap-resident bytes, where the two open paths
// differ most.
func (r *Runner) FigureColdOpen() []Row {
	const shards = 4
	d := r.EEG()
	r.logf("Cold-open experiment: %s", d.Name)
	ext := r.extractor(d, series.NormGlobal)
	queries := r.workload(d, ext, DefaultL)

	ix, err := shard.Build(ext, shard.Config{
		Config: core.Config{L: DefaultL}, Shards: shards, Executor: exec.New(r.Workers)})
	if err != nil {
		r.logf("  build failed (%v)", err)
		return nil
	}
	f, err := os.CreateTemp("", "twinsearch-coldopen-*.tsidx")
	if err != nil {
		r.logf("  temp index file unavailable (%v)", err)
		return nil
	}
	path := f.Name()
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		os.Remove(path)
		r.logf("  save failed (%v)", err)
		return nil
	}
	f.Close()
	defer os.Remove(path)

	open := func(mmap, warm bool) (*shard.Index, func(), error) {
		if !mmap {
			sf, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			defer sf.Close()
			re, err := shard.Load(sf, ext, exec.New(r.Workers))
			return re, func() {}, err
		}
		ar, err := arena.Map(path)
		if err != nil {
			return nil, nil, err
		}
		re, err := shard.OpenArena(ar, ext, exec.New(r.Workers))
		if err != nil {
			ar.Close()
			return nil, nil, err
		}
		if warm {
			// The prefetch knob (Options.Prefetch): pay a bounded warmup
			// inside the open instead of page faults during the queries.
			ar.Prefetch(0)
		}
		return re, func() { ar.Close() }, nil
	}

	var rows []Row
	for _, label := range []string{"open=copy", "open=mmap", "open=mmap+warm"} {
		mmap := label != "open=copy"
		warm := label == "open=mmap+warm"
		start := time.Now()
		re, release, err := open(mmap, warm)
		if err != nil {
			r.logf("  %s: skipped (%v)", label, err)
			continue
		}
		openTime := time.Since(start)
		r.logf("  %s in %v (heap %d B, mapped %d B)", label, openTime.Round(time.Microsecond),
			re.MemoryBytes(), re.MappedBytes())
		avgMs, avgRes, avgCands := measure(built{method: TSIndex, s: shardAdapter{re}},
			queries, d.DefaultEpsNorm)
		rows = append(rows, Row{
			Figure: "coldopen", Dataset: d.Name, Method: "TS-Index", Param: label,
			AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands,
			BuildMs: openTime.Seconds() * 1000, MemBytes: re.MemoryBytes(),
		})
		release()
	}
	return rows
}

// clusterAdapter measures the distributed tier through the harness's
// searcher interface.
type clusterAdapter struct{ cl *cluster.Coordinator }

func (a clusterAdapter) search(q []float64, eps float64) (int, int) {
	ms, st, err := a.cl.SearchStats(context.Background(), q, eps)
	if err != nil {
		return 0, 0
	}
	return len(ms), st.Candidates
}

// FigureCluster — beyond the paper: the distributed shard tier
// (internal/cluster) against the local engine it must answer
// identically to. One saved 4-shard index is served by N in-process
// HTTP nodes (real wire format, loopback transport), each selectively
// mapping only its assigned segments; a coordinator fans every query
// out and merges. The "local" row is the same index searched in
// process; the nodes=N rows carry the per-query RPC + merge overhead
// (the price of horizontal memory scaling), BuildMs reports
// cluster-assembly time, and AvgResults is the cross-check — every row
// must agree.
func (r *Runner) FigureCluster() []Row {
	const shards = 4
	d := r.EEG()
	r.logf("Cluster experiment: %s", d.Name)
	ext := r.extractor(d, series.NormGlobal)
	queries := r.workload(d, ext, DefaultL)
	eps := d.DefaultEpsNorm

	ix, err := shard.Build(ext, shard.Config{
		Config: core.Config{L: DefaultL}, Shards: shards, Executor: exec.New(r.Workers)})
	if err != nil {
		r.logf("  build failed (%v)", err)
		return nil
	}
	f, err := os.CreateTemp("", "twinsearch-cluster-*.tsidx")
	if err != nil {
		r.logf("  temp index file unavailable (%v)", err)
		return nil
	}
	path := f.Name()
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		os.Remove(path)
		r.logf("  save failed (%v)", err)
		return nil
	}
	f.Close()
	defer os.Remove(path)

	var rows []Row
	avgMs, avgRes, avgCands := measure(built{method: TSIndex, s: shardAdapter{ix}}, queries, eps)
	rows = append(rows, Row{Figure: "cluster", Dataset: d.Name, Method: "TS-Index",
		Param: "local", AvgQueryMs: avgMs, AvgResults: avgRes, AvgCandidates: avgCands})
	r.logf("  local: %.3f ms/query", avgMs)

	for _, nodes := range []int{1, 2, 4} {
		start := time.Now()
		topo := &cluster.Topology{Index: path}
		for i := 0; i < nodes; i++ {
			var run []int
			for s := i * shards / nodes; s < (i+1)*shards/nodes; s++ {
				run = append(run, s)
			}
			topo.Nodes = append(topo.Nodes, cluster.NodeSpec{
				Name: fmt.Sprintf("n%d", i), Addr: "pending", Shards: run})
		}
		var cleanup []func()
		fail := false
		for i := range topo.Nodes {
			n, err := cluster.OpenNode(topo, topo.Nodes[i].Name, ext, cluster.NodeOptions{Workers: r.Workers})
			if err != nil {
				r.logf("  nodes=%d: open failed (%v)", nodes, err)
				fail = true
				break
			}
			srv := httptest.NewServer(cluster.NewNodeRPC(n))
			topo.Nodes[i].Addr = srv.URL
			// Reverse-order release: the server must stop routing
			// requests into the subset before its arena unmaps.
			cleanup = append(cleanup, func() { n.Close() }, srv.Close)
		}
		release := func() {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
		}
		if fail {
			release()
			continue
		}
		cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, DefaultL, cluster.Options{Workers: r.Workers})
		if err != nil {
			r.logf("  nodes=%d: coordinator failed (%v)", nodes, err)
			release()
			continue
		}
		openMs := time.Since(start).Seconds() * 1000
		avgMs, avgRes, avgCands := measure(built{method: TSIndex, s: clusterAdapter{cl}}, queries, eps)
		r.logf("  nodes=%d: %.3f ms/query (cluster up in %.1f ms)", nodes, avgMs, openMs)
		rows = append(rows, Row{Figure: "cluster", Dataset: d.Name, Method: "TS-Index",
			Param: fmt.Sprintf("nodes=%d", nodes), AvgQueryMs: avgMs,
			AvgResults: avgRes, AvgCandidates: avgCands, BuildMs: openMs})
		cl.Close()
		release()
	}
	return rows
}

// FigureIntro — the paper's §1 indicative experiment: on EEG, count
// twin results at ε versus Euclidean-range results at the no-false-
// negative threshold ε·√ℓ. The paper reports 1,034 vs 127,887 (≈124×)
// for one query; the harness reports workload totals and the ratio.
func (r *Runner) FigureIntro() []Row {
	d := r.EEG()
	r.logf("Intro experiment: %s", d.Name)
	// The intro experiment compares result-set sizes; it runs in memory
	// (SearchEuclidean does not route through the verifier).
	ext := series.NewExtractor(d.Data, series.NormGlobal)
	queries := r.workload(d, ext, DefaultL)
	sw := sweepline.New(ext)
	// The paper's intro experiment sits at a loose setting (its single
	// query returned 1,034 twins on the full series); use the top of
	// the ε grid so the twin set is non-trivial at reduced scales too.
	eps := d.EpsNorm[len(d.EpsNorm)-1]
	edThreshold := series.EuclideanThresholdFor(eps, DefaultL)

	var cheb, euc int
	startC := time.Now()
	for _, q := range queries {
		cheb += len(sw.Search(q, eps))
	}
	chebMs := time.Since(startC).Seconds() * 1000 / float64(len(queries))
	startE := time.Now()
	for _, q := range queries {
		euc += len(sw.SearchEuclidean(q, edThreshold))
	}
	eucMs := time.Since(startE).Seconds() * 1000 / float64(len(queries))

	n := float64(len(queries))
	return []Row{
		{Figure: "intro", Dataset: d.Name, Method: "Chebyshev",
			Param: fmt.Sprintf("eps=%g", eps), AvgQueryMs: chebMs, AvgResults: float64(cheb) / n},
		{Figure: "intro", Dataset: d.Name, Method: "Euclidean",
			Param: fmt.Sprintf("eps=%g*sqrt(%d)", eps, DefaultL), AvgQueryMs: eucMs, AvgResults: float64(euc) / n},
	}
}
