package harness

import (
	"twinsearch/internal/series"

	"strings"
	"testing"
)

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{500, "500 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := humanBytes(c.in); got != c.want {
			t.Errorf("humanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestShapeReportKVCheckOnlyFig4(t *testing.T) {
	rows := []Row{
		{Figure: "7", Dataset: "X", Method: "TS-Index", AvgQueryMs: 1},
		{Figure: "7", Dataset: "X", Method: "iSAX", AvgQueryMs: 10},
		{Figure: "7", Dataset: "X", Method: "KV-Index", AvgQueryMs: 5}, // faster than iSAX
		{Figure: "7", Dataset: "X", Method: "Sweepline", AvgQueryMs: 100},
	}
	report := strings.Join(ShapeReport(rows), "\n")
	if strings.Contains(report, "weakest index") {
		t.Fatal("the KV-weakest check must not apply to Figure 7")
	}
	if !strings.Contains(report, "PASS  Fig 7/X: TS-Index fastest") {
		t.Fatalf("missing fastest check:\n%s", report)
	}
}

func TestShapeReportEmptyAndPartial(t *testing.T) {
	if got := ShapeReport(nil); len(got) != 0 {
		t.Fatalf("empty rows should yield empty report, got %v", got)
	}
	// A figure with only TS-Index rows: no comparative checks beyond
	// "fastest" (trivially true with no competitors).
	rows := []Row{{Figure: "4", Dataset: "Y", Method: "TS-Index", AvgQueryMs: 2}}
	report := strings.Join(ShapeReport(rows), "\n")
	if strings.Contains(report, "FAIL") {
		t.Fatalf("no competitors should mean no failures:\n%s", report)
	}
}

func TestMethodIDString(t *testing.T) {
	if Sweepline.String() != "Sweepline" || KVIndex.String() != "KV-Index" ||
		ISAX.String() != "iSAX" || TSIndex.String() != "TS-Index" {
		t.Fatal("method names changed")
	}
	if MethodID(42).String() != "MethodID(42)" {
		t.Fatal("fallback name changed")
	}
}

func TestBuildMethodUnknown(t *testing.T) {
	d := Insect(1, 0)
	ext := series.NewExtractor(d.Data[:2000], series.NormGlobal)
	if _, err := buildMethod(MethodID(99), ext, 100, 10); err == nil {
		t.Fatal("unknown method must fail")
	}
}
