package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrintTable renders rows as an aligned text table grouped by figure and
// dataset, in the spirit of the paper's plots: one line per
// (method, parameter) with mean query latency and workload statistics.
func PrintTable(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no rows)")
		return
	}
	type key struct{ fig, ds string }
	groups := map[key][]Row{}
	var order []key
	for _, r := range rows {
		k := key{r.Figure, r.Dataset}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	for _, k := range order {
		fmt.Fprintf(w, "\n== Figure %s — %s ==\n", k.fig, k.ds)
		g := groups[k]
		if k.fig == "8" {
			printFig8(w, g)
			continue
		}
		if k.fig == "kernel" {
			printFigKernel(w, g)
			continue
		}
		if k.fig == "failover" || k.fig == "serving" {
			printFigFailover(w, g)
			continue
		}
		fmt.Fprintf(w, "%-12s %-14s %14s %12s %14s\n",
			"method", "param", "avg query ms", "avg results", "avg candidates")
		for _, r := range g {
			fmt.Fprintf(w, "%-12s %-14s %14.3f %12.1f %14.1f\n",
				r.Method, r.Param, r.AvgQueryMs, r.AvgResults, r.AvgCandidates)
		}
	}
}

func printFig8(w io.Writer, g []Row) {
	fmt.Fprintf(w, "%-12s %16s %14s\n", "method", "memory", "build time")
	for _, r := range g {
		fmt.Fprintf(w, "%-12s %16s %11.0f ms\n", r.Method, humanBytes(r.MemBytes), r.BuildMs)
	}
}

// printFigKernel renders the kernel microbenchmark rows at their
// natural scale (per-call nanoseconds, not workload milliseconds).
func printFigKernel(w io.Writer, g []Row) {
	fmt.Fprintf(w, "%-10s %-22s %12s %12s\n", "impl", "op", "ns/call", "Mlanes/s")
	for _, r := range g {
		fmt.Fprintf(w, "%-10s %-22s %12.0f %12.0f\n",
			r.Method, r.Param, r.AvgQueryMs*1e6, r.AvgResults)
	}
}

// printFigFailover renders the fault-injection rows with the latency
// tail (p50/p99) and the availability column (errored queries).
func printFigFailover(w io.Writer, g []Row) {
	fmt.Fprintf(w, "%-12s %-20s %10s %10s %12s %8s\n",
		"method", "scenario", "p50 ms", "p99 ms", "avg ms", "errors")
	for _, r := range g {
		fmt.Fprintf(w, "%-12s %-20s %10.3f %10.3f %12.3f %8d\n",
			r.Method, r.Param, r.P50Ms, r.P99Ms, r.AvgQueryMs, r.Errors)
	}
}

func humanBytes(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// PrintCSV renders rows as CSV for downstream plotting.
func PrintCSV(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "figure,dataset,method,param,avg_query_ms,avg_results,avg_candidates,build_ms,mem_bytes,p50_ms,p99_ms,errors")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%s,%s,%s,%.6f,%.2f,%.2f,%.3f,%d,%.6f,%.6f,%d\n",
			r.Figure, r.Dataset, r.Method, csvEscape(r.Param), r.AvgQueryMs, r.AvgResults, r.AvgCandidates, r.BuildMs, r.MemBytes, r.P50Ms, r.P99Ms, r.Errors)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ShapeReport summarizes whether the measured rows reproduce the
// paper's qualitative claims, figure by figure. It returns one line per
// check, prefixed PASS/FAIL — the evidence EXPERIMENTS.md records.
func ShapeReport(rows []Row) []string {
	var out []string
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("%s  %s — %s", status, name, detail))
	}

	// Index rows by figure/dataset/method.
	byFig := map[string][]Row{}
	for _, r := range rows {
		byFig[r.Figure] = append(byFig[r.Figure], r)
	}

	// timesBy collects, per method, the latency series over the grid in
	// row order (the grids are emitted tightest-ε first).
	timesBy := func(rs []Row) map[string][]float64 {
		m := map[string][]float64{}
		for _, r := range rs {
			m[r.Method] = append(m[r.Method], r.AvgQueryMs)
		}
		return m
	}

	for _, fig := range []string{"4", "6", "7"} {
		rs := byFig[fig]
		if len(rs) == 0 {
			continue
		}
		perDS := map[string][]Row{}
		for _, r := range rs {
			perDS[r.Dataset] = append(perDS[r.Dataset], r)
		}
		for _, ds := range sortedKeys(perDS) {
			g := timesBy(perDS[ds])
			ts := g["TS-Index"]
			if len(ts) == 0 {
				continue
			}
			// §6.2.1: "TS-Index outperforms the rest in every setting".
			winsEverywhere := true
			for m, series := range g {
				if m == "TS-Index" {
					continue
				}
				for i := range series {
					if i < len(ts) && ts[i] >= series[i] {
						winsEverywhere = false
					}
				}
			}
			check(fmt.Sprintf("Fig %s/%s: TS-Index fastest at every ε", fig, ds), winsEverywhere,
				fmt.Sprintf("TS-Index %.3f–%.3f ms across grid", ts[0], ts[len(ts)-1]))
			// §6.2.1: "at least an order of magnitude more efficient …
			// compared to the KV-Index and Sweepline approaches" — the
			// gap is widest at tight thresholds.
			if sw := g["Sweepline"]; len(sw) > 0 {
				check(fmt.Sprintf("Fig %s/%s: TS-Index ≥10x vs Sweepline (tight ε)", fig, ds), sw[0]/ts[0] >= 10,
					fmt.Sprintf("speedup %.1fx at the tightest threshold", sw[0]/ts[0]))
			}
			// KV-Index "performs poorly compared to other indices" — a
			// §6.2.1 (Fig. 4) claim; on raw data (Fig. 7) the paper only
			// claims TS-Index wins, and KV/iSAX are close.
			if kv, is := g["KV-Index"], g["iSAX"]; fig == "4" && len(kv) > 0 && len(is) > 0 {
				var kvSum, isSum float64
				for i := range kv {
					kvSum += kv[i]
					if i < len(is) {
						isSum += is[i]
					}
				}
				check(fmt.Sprintf("Fig %s/%s: KV-Index is the weakest index", fig, ds), kvSum > isSum,
					fmt.Sprintf("grid mean KV-Index %.3f ms vs iSAX %.3f ms", kvSum/float64(len(kv)), isSum/float64(len(is))))
			}
		}
	}

	// Fig. 5: TS-Index improves (or stays flat) as ℓ grows while others
	// do not collapse below it.
	if rs := byFig["5"]; len(rs) > 0 {
		perDS := map[string][]Row{}
		for _, r := range rs {
			perDS[r.Dataset] = append(perDS[r.Dataset], r)
		}
		for _, ds := range sortedKeys(perDS) {
			var first, last float64
			var seen bool
			for _, r := range perDS[ds] {
				if r.Method != "TS-Index" {
					continue
				}
				if !seen {
					first, seen = r.AvgQueryMs, true
				}
				last = r.AvgQueryMs
			}
			if seen {
				check(fmt.Sprintf("Fig 5/%s: TS-Index not slower at max ℓ", ds), last <= first*1.5,
					fmt.Sprintf("ℓ=min %.3f ms → ℓ=max %.3f ms", first, last))
			}
		}
	}

	// Fig. 8a: KV < iSAX < TS-Index; Fig. 8b: KV fastest build.
	if rs := byFig["8"]; len(rs) > 0 {
		perDS := map[string]map[string]Row{}
		for _, r := range rs {
			if perDS[r.Dataset] == nil {
				perDS[r.Dataset] = map[string]Row{}
			}
			perDS[r.Dataset][r.Method] = r
		}
		for _, ds := range sortedKeys(perDS) {
			g := perDS[ds]
			kv, okK := g["KV-Index"]
			is, okI := g["iSAX"]
			ts, okT := g["TS-Index"]
			if okK && okI && okT {
				check(fmt.Sprintf("Fig 8a/%s: size order KV < iSAX < TS-Index", ds),
					kv.MemBytes < is.MemBytes && is.MemBytes < ts.MemBytes,
					fmt.Sprintf("KV %s, iSAX %s, TS %s", humanBytes(kv.MemBytes), humanBytes(is.MemBytes), humanBytes(ts.MemBytes)))
				// The paper reports 2–3×; our Go iSAX leaves pack an
				// entry into 14 bytes where the Java baseline pays
				// object headers, so the measured ratio runs higher.
				// The check bounds it to "same small-constant ballpark".
				ratio := float64(ts.MemBytes) / float64(is.MemBytes)
				check(fmt.Sprintf("Fig 8a/%s: TS-Index within ~2-8x iSAX", ds), ratio >= 1.5 && ratio <= 8,
					fmt.Sprintf("ratio %.1fx (paper: 2-3x on Java)", ratio))
				check(fmt.Sprintf("Fig 8b/%s: KV-Index builds fastest", ds),
					kv.BuildMs < is.BuildMs && kv.BuildMs < ts.BuildMs,
					fmt.Sprintf("KV %.0f ms, iSAX %.0f ms, TS %.0f ms", kv.BuildMs, is.BuildMs, ts.BuildMs))
			}
		}
	}

	// Serving tier (beyond the paper): the result cache must turn a
	// repeated query into a lookup — hot p50 an order of magnitude below
	// cold — and overload must shed with 429 instead of queueing.
	if rs := byFig["serving"]; len(rs) > 0 {
		per := map[string]Row{}
		for _, r := range rs {
			per[r.Param] = r
		}
		cold, okC := per["cold"]
		hot, okH := per["hot"]
		if okC && okH && hot.P50Ms > 0 {
			check("Serving: cache-hit p50 ≥10x below cold p50", hot.P50Ms*10 <= cold.P50Ms,
				fmt.Sprintf("cold %.3f ms vs hot %.3f ms (%.0fx)", cold.P50Ms, hot.P50Ms, cold.P50Ms/hot.P50Ms))
		}
		if ov, ok := per["overload"]; ok {
			check("Serving: overload sheds with 429", ov.Errors > 0,
				fmt.Sprintf("%d request(s) shed, admitted p99 %.3f ms", ov.Errors, ov.P99Ms))
		}
	}

	// Intro: Euclidean superset roughly two orders of magnitude larger.
	if rs := byFig["intro"]; len(rs) == 2 {
		var cheb, euc float64
		for _, r := range rs {
			if r.Method == "Chebyshev" {
				cheb = r.AvgResults
			} else {
				euc = r.AvgResults
			}
		}
		if cheb > 0 {
			check("Intro: Euclidean ε√l result set ≫ Chebyshev", euc/cheb >= 10,
				fmt.Sprintf("ratio %.0fx (paper: ~124x)", euc/cheb))
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
