package harness

// FigureObs — beyond the paper: the observability tier's cost
// (internal/obs). Three cells over the EEG workload, all on uncached
// engines so every query is a real traversal:
//
//   - off: tracing disabled — the baseline every production query pays.
//     The claim (enforced at 0 allocs/op by BenchmarkTraceDisabled) is
//     that the disabled path is free.
//   - forced: every query carries a root span, as with ?trace=1 — the
//     full span tree (validate, traverse with per-shard children,
//     merge) is built and timed per query.
//   - sampled-128: -trace-sample 128 — the production sampling
//     configuration, where 1 in 128 queries pays the forced cost and
//     the rest run the disabled path.
//
// Comparing off vs sampled-128 bounds the steady-state overhead of
// leaving observability on; off vs forced prices a single trace.

import (
	"context"
	"sort"
	"time"

	"twinsearch"
	"twinsearch/internal/datasets"
	"twinsearch/internal/obs"
)

const obsPasses = 3

func (r *Runner) FigureObs() []Row {
	d := r.EEG()
	r.logf("Observability experiment: %s (trace off / forced / sampled)", d.Name)
	queries := datasets.Queries(d.Data, r.Seed+9, r.Queries, DefaultL)
	eps := d.DefaultEpsNorm

	open := func(sample int) (*twinsearch.Engine, error) {
		return twinsearch.Open(d.Data, twinsearch.Options{
			L: DefaultL, Workers: r.Workers, TraceSample: sample})
	}
	eng, err := open(0)
	if err != nil {
		r.logf("  engine open failed (%v)", err)
		return nil
	}
	defer eng.Close()

	var rows []Row
	cell := func(param string, e *twinsearch.Engine, traced bool) {
		p50, p99, avg, res, errs := measureObs(e, queries, eps, traced)
		r.logf("  %-11s p50 %.3f ms, p99 %.3f ms", param+":", p50, p99)
		rows = append(rows, Row{Figure: "obs", Dataset: d.Name, Method: "TS-Index",
			Param: param, AvgQueryMs: avg, AvgResults: res, P50Ms: p50, P99Ms: p99, Errors: errs})
	}

	cell("off", eng, false)
	cell("forced", eng, true)

	sampled, err := open(128)
	if err != nil {
		r.logf("  sampled engine open failed (%v)", err)
		return rows
	}
	defer sampled.Close()
	cell("sampled-128", sampled, false)
	return rows
}

// measureObs runs the workload obsPasses times and returns per-query
// p50/p99/mean latency in milliseconds plus the error count. With
// traced set, each query carries its own forced root span, like
// ?trace=1 does.
func measureObs(eng *twinsearch.Engine, queries [][]float64, eps float64, traced bool) (p50, p99, avg, avgResults float64, errs int) {
	// One untimed pass warms the engine (lazy frontier computation, page
	// faults) so the first measured cell isn't charged the cold start the
	// others skip.
	for _, q := range queries {
		if _, err := eng.SearchCtx(context.Background(), q, eps); err != nil {
			errs++
		}
	}
	var lat []float64
	var sum, results float64
	for p := 0; p < obsPasses; p++ {
		for _, q := range queries {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				tr = obs.NewTrace("bench")
				ctx = obs.WithSpan(ctx, tr.Root)
			}
			start := time.Now()
			ms, err := eng.SearchCtx(ctx, q, eps)
			tr.Finish()
			elapsed := time.Since(start).Seconds() * 1000
			if err != nil {
				errs++
				continue
			}
			lat = append(lat, elapsed)
			sum += elapsed
			results += float64(len(ms))
		}
	}
	if len(lat) == 0 {
		return 0, 0, 0, 0, errs
	}
	sort.Float64s(lat)
	quantile := func(p float64) float64 {
		return lat[int(p*float64(len(lat)-1))]
	}
	return quantile(0.50), quantile(0.99), sum / float64(len(lat)), results / float64(len(lat)), errs
}
