package harness

// FigureServing — beyond the paper: the serving tier's caching and
// admission behavior (internal/qcache + internal/server). Three cells
// over the EEG workload:
//
//   - cold: every query's first arrival at a cache-enabled engine —
//     full traversals, answers filling the plan and result caches.
//   - hot: the same workload repeated — every query served from the
//     result cache, so the hit path is a striped-map lookup plus one
//     match-slice copy. The serving claim is hot p50 ≥10× below cold.
//   - overload: an admission-controlled HTTP server (MaxInflight 2,
//     MaxQueue 2) hammered by far more concurrent clients than it
//     admits — the Errors column counts 429 sheds, the latencies are
//     the admitted requests'. The claim is that overload sheds instead
//     of queueing unboundedly.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"twinsearch"
	"twinsearch/internal/datasets"
	"twinsearch/internal/server"
)

const (
	servingHotPasses      = 5
	servingOverloadConc   = 16 // concurrent clients, ≫ inflight+queue
	servingOverloadRounds = 8  // requests per client
)

func (r *Runner) FigureServing() []Row {
	d := r.EEG()
	r.logf("Serving experiment: %s (plan + result caches, admission)", d.Name)
	// Raw-space queries: the engine applies normalization itself, unlike
	// the method-level figures that pre-transform via Runner.workload.
	queries := datasets.Queries(d.Data, r.Seed+7, r.Queries, DefaultL)
	eps := d.DefaultEpsNorm

	eng, err := twinsearch.Open(d.Data, twinsearch.Options{
		L: DefaultL, PlanCache: -1, ResultCacheBytes: -1, Workers: r.Workers})
	if err != nil {
		r.logf("  engine open failed (%v)", err)
		return nil
	}
	defer eng.Close()

	var rows []Row
	p50, p99, avg, errs := measureServing(eng, queries, eps, 1)
	r.logf("  cold: p50 %.3f ms, p99 %.3f ms", p50, p99)
	rows = append(rows, Row{Figure: "serving", Dataset: d.Name, Method: "TS-Index",
		Param: "cold", AvgQueryMs: avg, P50Ms: p50, P99Ms: p99, Errors: errs})

	p50, p99, avg, errs = measureServing(eng, queries, eps, servingHotPasses)
	st := eng.ServingStats()
	r.logf("  hot:  p50 %.3f ms, p99 %.3f ms (%d hit(s), %d miss(es))",
		p50, p99, st.Result.Hits, st.Result.Misses)
	rows = append(rows, Row{Figure: "serving", Dataset: d.Name, Method: "TS-Index",
		Param: "hot", AvgQueryMs: avg, P50Ms: p50, P99Ms: p99, Errors: errs})

	if row, ok := r.servingOverload(d, queries, eps); ok {
		rows = append(rows, row)
	}
	return rows
}

// measureServing runs the workload through the engine `passes` times
// and returns per-query p50/p99/mean latency in milliseconds plus the
// error count.
func measureServing(eng *twinsearch.Engine, queries [][]float64, eps float64, passes int) (p50, p99, avg float64, errs int) {
	var lat []float64
	var sum float64
	for p := 0; p < passes; p++ {
		for _, q := range queries {
			start := time.Now()
			_, err := eng.Search(q, eps)
			ms := time.Since(start).Seconds() * 1000
			if err != nil {
				errs++
				continue
			}
			lat = append(lat, ms)
			sum += ms
		}
	}
	if len(lat) == 0 {
		return 0, 0, 0, errs
	}
	sort.Float64s(lat)
	quantile := func(p float64) float64 {
		return lat[int(p*float64(len(lat)-1))]
	}
	return quantile(0.50), quantile(0.99), sum / float64(len(lat)), errs
}

// servingOverload drives an admission-controlled server far past its
// capacity and reports the admitted requests' latency tail with the
// shed count in the Errors column. The engine runs uncached and the
// queries use a wide threshold, so every admitted request holds its
// in-flight slot across a real traversal plus a many-match response —
// long enough that the burst actually stacks up even on one CPU.
func (r *Runner) servingOverload(d *Dataset, queries [][]float64, eps float64) (Row, bool) {
	eps *= 20 // wide threshold: thousands of matches per answer
	eng, err := twinsearch.Open(d.Data, twinsearch.Options{L: DefaultL, Workers: r.Workers})
	if err != nil {
		r.logf("  overload: engine open failed (%v)", err)
		return Row{}, false
	}
	defer eng.Close()
	srv := httptest.NewServer(server.NewWithConfig(eng, server.Config{
		MaxInflight: 2, MaxQueue: 2, RetryAfter: time.Second}))
	defer srv.Close()

	type searchReq struct {
		Query []float64 `json:"query"`
		Eps   float64   `json:"eps"`
	}
	var (
		mu   sync.Mutex
		lat  []float64
		sum  float64
		shed atomic.Int64
		wg   sync.WaitGroup
	)
	// Clients rendezvous at a round gate so each burst of
	// servingOverloadConc requests genuinely arrives together —
	// loopback queries are fast enough that unsynchronized clients
	// drift apart and never exceed the in-flight cap.
	rounds := make([]chan struct{}, servingOverloadRounds)
	for i := range rounds {
		rounds[i] = make(chan struct{})
	}
	//tsvet:ignore round pacer for the overload clients, not executor work
	go func() {
		for _, gate := range rounds {
			close(gate)
			time.Sleep(5 * time.Millisecond) // let the burst drain
		}
	}()
	for c := 0; c < servingOverloadConc; c++ {
		wg.Add(1)
		//tsvet:ignore overload clients are network-bound HTTP callers, not executor work
		go func(c int) {
			defer wg.Done()
			client := srv.Client()
			for i, gate := range rounds {
				<-gate
				q := queries[(c+i)%len(queries)]
				body, _ := json.Marshal(searchReq{Query: q, Eps: eps})
				start := time.Now()
				resp, err := client.Post(srv.URL+"/search", "application/json", bytes.NewReader(body))
				ms := time.Since(start).Seconds() * 1000
				if err != nil {
					continue
				}
				// Drain the body: the server streams the match list, and
				// the admission slot is held until the write completes.
				_, _ = io.Copy(io.Discard, resp.Body)
				ms = time.Since(start).Seconds() * 1000
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusOK:
					mu.Lock()
					lat = append(lat, ms)
					sum += ms
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	if len(lat) == 0 {
		r.logf("  overload: no request was admitted")
		return Row{}, false
	}
	sort.Float64s(lat)
	quantile := func(p float64) float64 {
		return lat[int(p*float64(len(lat)-1))]
	}
	p50, p99 := quantile(0.50), quantile(0.99)
	r.logf("  overload: p50 %.3f ms, p99 %.3f ms, %d shed (429) of %d sent",
		p50, p99, shed.Load(), servingOverloadConc*servingOverloadRounds)
	return Row{Figure: "serving", Dataset: d.Name, Method: "TS-Index", Param: "overload",
		AvgQueryMs: sum / float64(len(lat)), P50Ms: p50, P99Ms: p99,
		Errors: int(shed.Load())}, true
}
