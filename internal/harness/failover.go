package harness

// FigureFailover — beyond the paper: latency and availability of the
// replicated cluster tier under injected faults. One saved 4-shard
// index is served by two replica groups × 2 owners (R = 2) over
// in-process HTTP nodes; a Chaos transport injects the faults at the
// wire seam, so the coordinator's failover, hedging, and breaker logic
// run exactly as in production. Scenarios: all nodes healthy, one
// replica dead (connections refused), and one replica slow (fixed
// added latency), each with hedging off and on. Reported per cell:
// p50/p99 query latency and the error count — the availability claim
// is that 1-dead completes every query.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"time"

	"twinsearch/internal/cluster"
	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
)

// failoverHedgeDelay approximates a healthy p99 on loopback; the slow
// rule dwarfs it so the hedged sibling always wins the slow unit.
const (
	failoverHedgeDelay = 2 * time.Millisecond
	failoverSlowDelay  = 25 * time.Millisecond
)

func (r *Runner) FigureFailover() []Row {
	const shards = 4
	d := r.EEG()
	r.logf("Failover experiment: %s (R=2, chaos transport)", d.Name)
	ext := r.extractor(d, series.NormGlobal)
	queries := r.workload(d, ext, DefaultL)
	eps := d.DefaultEpsNorm

	ix, err := shard.Build(ext, shard.Config{
		Config: core.Config{L: DefaultL}, Shards: shards, Executor: exec.New(r.Workers)})
	if err != nil {
		r.logf("  build failed (%v)", err)
		return nil
	}
	f, err := os.CreateTemp("", "twinsearch-failover-*.tsidx")
	if err != nil {
		r.logf("  temp index file unavailable (%v)", err)
		return nil
	}
	path := f.Name()
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		os.Remove(path)
		r.logf("  save failed (%v)", err)
		return nil
	}
	f.Close()
	defer os.Remove(path)

	// Two replica groups × two owners, every owner its own node process
	// (in-process HTTP). The nodes stay up for the whole figure; the
	// chaos rules change per scenario.
	topo := &cluster.Topology{Index: path, Replicas: 2}
	groups := [][]int{{0, 1}, {2, 3}}
	var cleanup []func()
	release := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	var hosts []string
	for gi, run := range groups {
		for ri := 0; ri < 2; ri++ {
			name := fmt.Sprintf("g%dr%d", gi, ri)
			topo.Nodes = append(topo.Nodes, cluster.NodeSpec{Name: name, Addr: "pending", Shards: run})
		}
	}
	for i := range topo.Nodes {
		n, err := cluster.OpenNode(topo, topo.Nodes[i].Name, ext, cluster.NodeOptions{Workers: r.Workers})
		if err != nil {
			r.logf("  node open failed (%v)", err)
			release()
			return nil
		}
		srv := httptest.NewServer(cluster.NewNodeRPC(n))
		topo.Nodes[i].Addr = srv.URL
		cleanup = append(cleanup, func() { n.Close() }, srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			r.logf("  bad node URL (%v)", err)
			release()
			return nil
		}
		hosts = append(hosts, u.Host)
	}
	defer release()

	chaos := cluster.NewChaos(nil)
	// victim g0r0 is first in topology order, so while healthy it
	// absorbs its group's first attempts — the fault is on the hot path.
	victim := hosts[0]

	scenarios := []struct {
		name string
		rule *cluster.ChaosRule
	}{
		{"healthy", nil},
		{"1-dead", &cluster.ChaosRule{Refuse: true}},
		{"1-slow", &cluster.ChaosRule{Delay: failoverSlowDelay}},
	}

	var rows []Row
	for _, hedged := range []bool{false, true} {
		hedge := time.Duration(0)
		label := "hedge=off"
		if hedged {
			hedge = failoverHedgeDelay
			label = "hedge=on"
		}
		for _, sc := range scenarios {
			// A fresh coordinator per cell: breaker and health state from
			// one scenario must not leak into the next measurement.
			cl, err := cluster.OpenCoordinator(context.Background(), topo, ext, DefaultL, cluster.Options{
				Workers:         r.Workers,
				HedgeDelay:      hedge,
				RefreshInterval: -1,
				Client:          &http.Client{Transport: chaos},
			})
			if err != nil {
				r.logf("  %s/%s: coordinator failed (%v)", sc.name, label, err)
				continue
			}
			if sc.rule != nil {
				chaos.Set(victim, *sc.rule)
			}
			p50, p99, avg, errs := measureTail(cl, queries, eps)
			chaos.Clear(victim)
			cl.Close()
			r.logf("  %-8s %s: p50 %.3f ms, p99 %.3f ms, %d error(s)", sc.name, label, p50, p99, errs)
			rows = append(rows, Row{Figure: "failover", Dataset: d.Name, Method: "TS-Index",
				Param: sc.name + "/" + label, AvgQueryMs: avg, P50Ms: p50, P99Ms: p99, Errors: errs})
		}
	}
	return rows
}

// measureTail runs the workload through the coordinator and returns
// per-query p50/p99/mean latency in milliseconds plus the error count.
func measureTail(cl *cluster.Coordinator, queries [][]float64, eps float64) (p50, p99, avg float64, errs int) {
	ctx := context.Background()
	lat := make([]float64, 0, len(queries))
	var sum float64
	for _, q := range queries {
		start := time.Now()
		_, _, err := cl.SearchStats(ctx, q, eps)
		ms := time.Since(start).Seconds() * 1000
		if err != nil {
			errs++
			continue
		}
		lat = append(lat, ms)
		sum += ms
	}
	if len(lat) == 0 {
		return 0, 0, 0, errs
	}
	sort.Float64s(lat)
	quantile := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return quantile(0.50), quantile(0.99), sum / float64(len(lat)), errs
}
