package harness

// FigureKernel — beyond the paper: the engine-side cost model. Two row
// groups come out of one run:
//
//   - "kernel": per-call latency of the Eq. 2 distance kernels for every
//     registered implementation (scalar oracle, branch-free portable,
//     AVX2 when the host supports it). Calls cycle through 64 distinct
//     node-bound sets with a fixed query — a descent evaluates the same
//     query against a different node on every call, so the rotation
//     keeps the branch predictor from memorizing one lane sequence
//     (replaying a single input flatters the branchy scalar by ~4x).
//     Row semantics: AvgQueryMs is mean milliseconds per kernel call,
//     AvgCandidates is lanes per call, AvgResults is throughput in
//     Mlanes/s.
//
//   - "kernel-batch": the batch-frontier traversal against per-query
//     traversals on a real index — B range queries issued one at a time
//     versus one SearchStatsBatch call. AvgQueryMs is per-query mean
//     milliseconds, AvgResults/AvgCandidates the usual workload stats.
//
// tsbench -figure kernel -json BENCH_kernel.json records the trajectory
// point the README references.

import (
	"fmt"
	"math/rand"
	"time"

	"twinsearch/internal/mbts/kernel"
	"twinsearch/internal/series"
)

var kernelSink float64

// kernelBenchData builds the rotation set: nodes bound pairs and one
// query, all N(0,1)-shaped like normalized series.
func kernelBenchData(seed int64, nodes, n int) (us, ls [][]float64, s []float64) {
	rng := rand.New(rand.NewSource(seed))
	s = make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 1.5
	}
	us, ls = make([][]float64, nodes), make([][]float64, nodes)
	for k := range us {
		u, l := make([]float64, n), make([]float64, n)
		for i := range u {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			if a < b {
				a, b = b, a
			}
			u[i], l[i] = a, b
		}
		us[k], ls[k] = u, l
	}
	return
}

// timeKernel measures mean ns per call of f over the rotation set,
// running for at least minDur after a warmup pass.
func timeKernel(f func(u, l, s []float64) float64, us, ls [][]float64, s []float64, minDur time.Duration) float64 {
	mask := len(us) - 1
	k := 0
	for i := 0; i < 2000; i++ { // warmup: fault pages, settle turbo
		kernelSink = f(us[k], ls[k], s)
		k = (k + 1) & mask
	}
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < minDur {
		for i := 0; i < 1000; i++ {
			kernelSink = f(us[k], ls[k], s)
			k = (k + 1) & mask
		}
		iters += 1000
		elapsed = time.Since(start)
	}
	return float64(elapsed.Nanoseconds()) / float64(iters)
}

func (r *Runner) FigureKernel() []Row {
	const nodes = 64
	var rows []Row
	r.logf("Kernel experiment: active dispatch = %s", kernel.Active())
	for _, n := range []int{128, 1024} {
		us, ls, s := kernelBenchData(r.Seed, nodes, n)
		for _, im := range kernel.Impls() {
			ops := []struct {
				name string
				f    func(u, l, s []float64) float64
			}{
				{"DistFlat", im.DistFlat},
				{"DistAbandonFlat", func(u, l, s []float64) float64 {
					// A limit no excursion reaches: the descent's common
					// case, where the node survives and pays full length.
					m, _ := im.DistAbandonFlat(u, l, s, 1e30)
					return m
				}},
			}
			for _, op := range ops {
				ns := timeKernel(op.f, us, ls, s, 50*time.Millisecond)
				rows = append(rows, Row{
					Figure: "kernel", Dataset: "synthetic", Method: im.Name,
					Param:         fmt.Sprintf("%s/n=%d", op.name, n),
					AvgQueryMs:    ns / 1e6,
					AvgCandidates: float64(n),
					AvgResults:    float64(n) / ns * 1e3, // Mlanes/s
				})
				r.logf("  %-8s %-20s %8.0f ns/call  %7.0f Mlanes/s",
					im.Name, fmt.Sprintf("%s/n=%d", op.name, n), ns, float64(n)/ns*1e3)
			}
		}
	}
	rows = append(rows, r.figureKernelBatch()...)
	return rows
}

// figureKernelBatch times B per-query traversals against one batch
// traversal of the same B queries on the frozen Insect index.
func (r *Runner) figureKernelBatch() []Row {
	d := r.Insect()
	r.logf("Kernel batch experiment: %s", d.Name)
	ext := r.extractor(d, series.NormGlobal)
	b, err := buildFrozen(ext, DefaultL)
	if err != nil {
		r.logf("  skipped (%v)", err)
		return nil
	}
	f := b.s.(frozenAdapter).f
	eps := d.DefaultEpsNorm
	all := r.workload(d, ext, DefaultL)

	var rows []Row
	for _, batch := range []int{8, 16} {
		if batch > len(all) {
			r.logf("  B=%d: skipped (workload has %d queries)", batch, len(all))
			continue
		}
		qs := all[:batch]
		const rounds = 5
		var perDur, batchDur time.Duration
		var perRes, batchRes int
		for round := 0; round < rounds; round++ {
			start := time.Now()
			for _, q := range qs {
				ms, _ := f.SearchStats(q, eps)
				perRes += len(ms)
			}
			perDur += time.Since(start)

			start = time.Now()
			out, _ := f.SearchStatsBatch(qs, eps)
			batchDur += time.Since(start)
			for _, ms := range out {
				batchRes += len(ms)
			}
		}
		if perRes != batchRes {
			// The parity tests enforce this; a mismatch here means the
			// benchmark itself is broken, which must not go unnoticed.
			panic(fmt.Sprintf("harness: batch results diverged (%d vs %d)", batchRes, perRes))
		}
		n := float64(batch * rounds)
		mk := func(method string, dur time.Duration) Row {
			return Row{
				Figure: "kernel-batch", Dataset: d.Name, Method: method,
				Param:      fmt.Sprintf("B=%d", batch),
				AvgQueryMs: dur.Seconds() * 1000 / n,
				AvgResults: float64(perRes) / n,
				BuildMs:    b.buildTime.Seconds() * 1000, MemBytes: b.memBytes,
			}
		}
		rows = append(rows, mk("per-query", perDur), mk("batch", batchDur))
		r.logf("  B=%d: per-query %.3f ms/q, batch %.3f ms/q (%.2fx)",
			batch, perDur.Seconds()*1000/n, batchDur.Seconds()*1000/n,
			perDur.Seconds()/batchDur.Seconds())
	}
	return rows
}
