// Package harness regenerates the paper's evaluation (§6): it
// materializes the datasets and parameter grids of Tables 1–2, runs the
// query workloads of Figures 4–7 over all four methods, and the index
// size / build time comparison of Figure 8, printing rows in the shape
// the paper reports.
package harness

import (
	"twinsearch/internal/datasets"
)

// Table 1 — datasets and distance-threshold grids. Default values were
// bold in the paper's table; the bold markers do not survive text
// extraction, so the defaults below are the grid midpoints, recorded as
// an assumption in EXPERIMENTS.md.
var (
	InsectEpsNorm        = []float64{0.5, 0.75, 1, 1.25, 1.5}
	InsectEpsRaw         = []float64{50, 100, 150, 200, 250}
	InsectDefaultEpsNorm = 0.75
	InsectDefaultEpsRaw  = 100.0

	EEGEpsNorm        = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	EEGEpsRaw         = []float64{20, 40, 60, 80, 100}
	EEGDefaultEpsNorm = 0.2
	EEGDefaultEpsRaw  = 40.0
)

// Table 2 — common parameters (defaults in bold in the paper: m = 10,
// ℓ = 100).
var (
	SegmentGrid    = []int{5, 10, 20, 25, 50}
	DefaultM       = 10
	LengthGrid     = []int{50, 100, 150, 200, 250}
	DefaultL       = 100
	WorkloadSize   = 100 // queries per experiment (§6.1)
	WorkloadLength = 100 // sampled query length (§6.1)
)

// Dataset bundles a series with its Table 1 parameters.
type Dataset struct {
	Name string
	Data []float64

	EpsNorm, EpsRaw               []float64
	DefaultEpsNorm, DefaultEpsRaw float64
}

// Insect materializes the Insect Movement stand-in. scale ≤ 0 or ≥ 1
// yields the paper's full 64,436 points; smaller values truncate
// proportionally (the series is short enough that scaling is rarely
// needed).
func Insect(seed int64, scale float64) Dataset {
	n := scaledLen(datasets.InsectLen, scale)
	return Dataset{
		Name:           "Insect",
		Data:           datasets.InsectN(seed, n),
		EpsNorm:        InsectEpsNorm,
		EpsRaw:         InsectEpsRaw,
		DefaultEpsNorm: InsectDefaultEpsNorm,
		DefaultEpsRaw:  InsectDefaultEpsRaw,
	}
}

// EEG materializes the EEG stand-in; scale shrinks the paper's
// 1,801,999 points for laptop-scale sweeps (shape, not absolute
// numbers, is what the harness reproduces).
func EEG(seed int64, scale float64) Dataset {
	n := scaledLen(datasets.EEGLen, scale)
	return Dataset{
		Name:           "EEG",
		Data:           datasets.EEGN(seed, n),
		EpsNorm:        EEGEpsNorm,
		EpsRaw:         EEGEpsRaw,
		DefaultEpsNorm: EEGDefaultEpsNorm,
		DefaultEpsRaw:  EEGDefaultEpsRaw,
	}
}

func scaledLen(full int, scale float64) int {
	if scale <= 0 || scale >= 1 {
		return full
	}
	n := int(float64(full) * scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// RawEps rescales a raw-value threshold grid to a generated dataset.
// The paper's raw thresholds (e.g. 20–100 on EEG) are calibrated to the
// value range of its recordings; our synthetic stand-ins have their own
// scale, so raw grids are expressed as the normalized grid multiplied by
// the sample σ of the data — preserving the paper's selectivity rather
// than its absolute units. Documented in EXPERIMENTS.md.
func RawEps(normEps []float64, dataStd float64) []float64 {
	out := make([]float64, len(normEps))
	for i, e := range normEps {
		out[i] = e * dataStd
	}
	return out
}
