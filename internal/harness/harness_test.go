package harness

import (
	"bytes"
	"strings"
	"testing"

	"twinsearch/internal/series"
)

// tinyRunner shrinks everything so harness tests run in seconds; the
// disk-resident verification path has its own dedicated test.
func tinyRunner() *Runner {
	r := NewRunner(0.002, 42) // EEG ≈ 3.6k points
	r.Queries = 5
	r.DiskVerify = false
	insect := Insect(42, 0)
	insect.Data = insect.Data[:4000]
	r.insect = &insect
	return r
}

func TestDiskVerifyAgreesWithMemory(t *testing.T) {
	mem := tinyRunner()
	disk := tinyRunner()
	disk.DiskVerify = true
	defer disk.Close()

	memRows := mem.Figure4()
	diskRows := disk.Figure4()
	if len(memRows) != len(diskRows) {
		t.Fatalf("row count differs: %d vs %d", len(memRows), len(diskRows))
	}
	for i := range memRows {
		a, b := memRows[i], diskRows[i]
		if a.Method != b.Method || a.Param != b.Param || a.Dataset != b.Dataset {
			t.Fatalf("row %d identity mismatch", i)
		}
		if a.AvgResults != b.AvgResults || a.AvgCandidates != b.AvgCandidates {
			t.Fatalf("row %d (%s %s %s): disk results/candidates %v/%v differ from memory %v/%v",
				i, a.Dataset, a.Method, a.Param, b.AvgResults, b.AvgCandidates, a.AvgResults, a.AvgCandidates)
		}
	}
	disk.Close()
	if len(disk.diskStores) != 0 || len(disk.diskFiles) != 0 {
		t.Fatal("Close did not clear disk state")
	}
}

func TestDatasetsMaterializeOnce(t *testing.T) {
	r := tinyRunner()
	if r.EEG() != r.EEG() {
		t.Fatal("EEG should be cached")
	}
	if r.Insect() != r.Insect() {
		t.Fatal("Insect should be cached")
	}
	if len(r.Datasets()) != 2 {
		t.Fatal("want two datasets")
	}
}

func TestFigure4ShapesAndCoverage(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure4()
	// 2 datasets × 4 methods × 5 thresholds.
	if len(rows) != 2*4*5 {
		t.Fatalf("got %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		if row.Figure != "4" {
			t.Fatalf("row figure = %q", row.Figure)
		}
		if row.AvgQueryMs < 0 {
			t.Fatal("negative latency")
		}
		seen[row.Method] = true
		// The workload samples queries from the series itself, so every
		// query matches at least itself.
		if row.AvgResults < 1 {
			t.Fatalf("%s %s %s: avg results %v < 1 (self-match missing)",
				row.Dataset, row.Method, row.Param, row.AvgResults)
		}
	}
	for _, m := range AllMethods {
		if !seen[m.String()] {
			t.Fatalf("method %v missing from Figure 4", m)
		}
	}
}

func TestFigure4ResultCountsAgreeAcrossMethods(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure4()
	// All methods answer the same queries: per (dataset, param) the
	// result counts must agree exactly.
	type key struct{ ds, param string }
	counts := map[key]float64{}
	for _, row := range rows {
		k := key{row.Dataset, row.Param}
		if prev, ok := counts[k]; ok {
			if prev != row.AvgResults {
				t.Fatalf("%v: %s reports %v results, earlier method reported %v",
					k, row.Method, row.AvgResults, prev)
			}
		} else {
			counts[k] = row.AvgResults
		}
	}
}

func TestFigure5Coverage(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure5()
	if len(rows) != 2*4*len(LengthGrid) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if !strings.HasPrefix(row.Param, "l=") {
			t.Fatalf("param %q", row.Param)
		}
	}
}

func TestFigure6ExcludesKV(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure6()
	if len(rows) != 2*2*5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Method == "KV-Index" || row.Method == "Sweepline" {
			t.Fatalf("unexpected method %s in Figure 6", row.Method)
		}
	}
}

func TestFigure7RawGridRescaled(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure7()
	if len(rows) != 2*4*5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Raw thresholds are σ-scaled, so they must differ from the
	// normalized grid.
	for _, row := range rows {
		if row.Param == "eps=0.5" && row.Dataset == "Insect" {
			t.Fatal("raw grid was not rescaled")
		}
	}
}

func TestFigure8Coverage(t *testing.T) {
	r := tinyRunner()
	rows := r.Figure8()
	if len(rows) != 2*3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MemBytes <= 0 {
			t.Fatalf("%s %s: no memory recorded", row.Dataset, row.Method)
		}
		if row.BuildMs < 0 {
			t.Fatal("negative build time")
		}
	}
}

func TestFigureIntro(t *testing.T) {
	r := tinyRunner()
	rows := r.FigureIntro()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var cheb, euc float64
	for _, row := range rows {
		switch row.Method {
		case "Chebyshev":
			cheb = row.AvgResults
		case "Euclidean":
			euc = row.AvgResults
		}
	}
	if euc < cheb {
		t.Fatalf("Euclidean set (%v) must be a superset of Chebyshev (%v)", euc, cheb)
	}
}

func TestEpsGridFor(t *testing.T) {
	d := Insect(1, 0)
	d.Data = d.Data[:5000]
	norm := epsGridFor(&d, series.NormGlobal)
	if len(norm) != 5 || norm[0] != 0.5 {
		t.Fatalf("norm grid = %v", norm)
	}
	raw := epsGridFor(&d, series.NormNone)
	if len(raw) != 5 || raw[0] == norm[0] {
		t.Fatalf("raw grid must be σ-scaled: %v", raw)
	}
	if defaultEpsFor(&d, series.NormGlobal) != d.DefaultEpsNorm {
		t.Fatal("default norm eps")
	}
	if defaultEpsFor(&d, series.NormNone) == d.DefaultEpsNorm {
		t.Fatal("default raw eps must be σ-scaled")
	}
}

func TestScaledLen(t *testing.T) {
	if scaledLen(1000000, 0) != 1000000 || scaledLen(1000000, 1) != 1000000 || scaledLen(1000000, 2) != 1000000 {
		t.Fatal("degenerate scales must give full length")
	}
	if scaledLen(1000000, 0.5) != 500000 {
		t.Fatal("scaling broken")
	}
	if scaledLen(100000, 0.000001) != 1000 {
		t.Fatal("floor at 1000 points")
	}
}

func TestPrintTableAndCSV(t *testing.T) {
	r := tinyRunner()
	rows := append(r.Figure8(), r.FigureIntro()...)
	var buf bytes.Buffer
	PrintTable(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Figure 8", "TS-Index", "memory", "Chebyshev"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	PrintTable(&buf, nil)
	if !strings.Contains(buf.String(), "no rows") {
		t.Fatal("empty table should say so")
	}
	buf.Reset()
	PrintCSV(&buf, rows)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", len(lines), len(rows))
	}
	if !strings.HasPrefix(lines[0], "figure,dataset,method") {
		t.Fatal("CSV header missing")
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain strings unchanged")
	}
	if csvEscape(`a,"b"`) != `"a,""b"""` {
		t.Fatalf("got %q", csvEscape(`a,"b"`))
	}
}

func TestShapeReport(t *testing.T) {
	rows := []Row{
		{Figure: "4", Dataset: "EEG", Method: "TS-Index", AvgQueryMs: 1},
		{Figure: "4", Dataset: "EEG", Method: "iSAX", AvgQueryMs: 3},
		{Figure: "4", Dataset: "EEG", Method: "Sweepline", AvgQueryMs: 50},
		{Figure: "4", Dataset: "EEG", Method: "KV-Index", AvgQueryMs: 40},
		{Figure: "8", Dataset: "EEG", Method: "KV-Index", MemBytes: 10, BuildMs: 1},
		{Figure: "8", Dataset: "EEG", Method: "iSAX", MemBytes: 100, BuildMs: 30},
		{Figure: "8", Dataset: "EEG", Method: "TS-Index", MemBytes: 250, BuildMs: 20},
		{Figure: "intro", Dataset: "EEG", Method: "Chebyshev", AvgResults: 10},
		{Figure: "intro", Dataset: "EEG", Method: "Euclidean", AvgResults: 1200},
	}
	report := ShapeReport(rows)
	if len(report) == 0 {
		t.Fatal("empty report")
	}
	joined := strings.Join(report, "\n")
	if strings.Contains(joined, "FAIL") {
		t.Fatalf("synthetic rows satisfy every claim, got:\n%s", joined)
	}
	// Now flip one ordering and expect a FAIL.
	rows[0].AvgQueryMs = 10
	report = ShapeReport(rows)
	if !strings.Contains(strings.Join(report, "\n"), "FAIL") {
		t.Fatal("expected a FAIL after inverting the ordering")
	}
}

// TestSkewedBoundariesAlwaysValid: the helper must return a partition
// shard.Build accepts for any plausible inputs, including tiny counts
// and extreme fractions.
func TestSkewedBoundariesAlwaysValid(t *testing.T) {
	for _, tc := range []struct {
		count, shards int
		frac          float64
	}{
		{20, 4, 0.9}, {1000, 4, 0.9}, {10, 4, 0.99}, {100, 2, 0.5},
		{5, 4, 0.9}, {100, 1, 0.9}, {100, 8, 1.0},
	} {
		b := SkewedBoundaries(tc.count, tc.shards, tc.frac)
		if b[0] != 0 || b[len(b)-1] != tc.count {
			t.Fatalf("%+v: boundaries %v don't span [0, count]", tc, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("%+v: boundaries %v not strictly increasing at %d", tc, b, i)
			}
		}
	}
}
