package harness

import (
	"fmt"
	"time"

	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/isax"
	"twinsearch/internal/kvindex"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
	"twinsearch/internal/sweepline"
)

// MethodID identifies a search method in result rows.
type MethodID int

// The four compared methods, in the paper's presentation order.
const (
	Sweepline MethodID = iota
	KVIndex
	ISAX
	TSIndex
)

// AllMethods lists every method, in presentation order.
var AllMethods = []MethodID{Sweepline, KVIndex, ISAX, TSIndex}

// String implements fmt.Stringer.
func (m MethodID) String() string {
	switch m {
	case Sweepline:
		return "Sweepline"
	case KVIndex:
		return "KV-Index"
	case ISAX:
		return "iSAX"
	case TSIndex:
		return "TS-Index"
	default:
		return fmt.Sprintf("MethodID(%d)", int(m))
	}
}

// searcher is the minimal query interface the runner drives.
type searcher interface {
	// search returns (results, candidates verified).
	search(q []float64, eps float64) (int, int)
}

// built couples a constructed method with its build cost.
type built struct {
	method    MethodID
	s         searcher
	buildTime time.Duration
	memBytes  int
}

type sweepAdapter struct{ s *sweepline.Sweepline }

func (a sweepAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.s.SearchStats(q, eps)
	return len(ms), st.Candidates
}

type kvAdapter struct{ ix *kvindex.Index }

func (a kvAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.ix.SearchStats(q, eps)
	return len(ms), st.Candidates
}

type isaxAdapter struct{ ix *isax.Index }

func (a isaxAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.ix.SearchStats(q, eps)
	return len(ms), st.Candidates
}

type tsAdapter struct{ ix *core.Index }

func (a tsAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.ix.SearchStats(q, eps)
	return len(ms), st.Candidates
}

type shardAdapter struct{ ix *shard.Index }

func (a shardAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.ix.SearchStats(q, eps)
	return len(ms), st.Candidates
}

type frozenAdapter struct{ f *core.Frozen }

func (a frozenAdapter) search(q []float64, eps float64) (int, int) {
	ms, st := a.f.SearchStats(q, eps)
	return len(ms), st.Candidates
}

// buildSharded constructs the sharded TS-Index with the given partition
// count (≤ 0 = one shard per CPU), executor width (≤ 0 = one worker per
// CPU), and optional explicit boundaries (nil = even split) or
// mean-sorted partitioning, timing construction like buildMethod.
func buildSharded(ext *series.Extractor, l, shards, workers int, boundaries []int, byMean bool) (built, error) {
	start := time.Now()
	ix, err := shard.Build(ext, shard.Config{
		Config: core.Config{L: l}, Shards: shards,
		Boundaries: boundaries, PartitionByMean: byMean, Executor: exec.New(workers),
	})
	if err != nil {
		return built{}, err
	}
	return built{method: TSIndex, s: shardAdapter{ix}, buildTime: time.Since(start),
		memBytes: ix.MemoryBytes()}, nil
}

// buildFrozen constructs a single TS-Index and compiles it into the
// flat arena, timing the whole pipeline; the pointer tree is dropped.
func buildFrozen(ext *series.Extractor, l int) (built, error) {
	start := time.Now()
	ix, err := core.Build(ext, core.Config{L: l})
	if err != nil {
		return built{}, err
	}
	f := ix.Freeze()
	return built{method: TSIndex, s: frozenAdapter{f}, buildTime: time.Since(start),
		memBytes: f.MemoryBytes()}, nil
}

// SkewedBoundaries builds a deliberately imbalanced partition over
// count windows: the last shard owns frac of them, and the remaining
// shards split what's left evenly (shards < 2 degenerates to a single
// shard owning everything). The skewed-shard experiments use it to
// show executor latency is bounded by total work, not by the hottest
// shard.
func SkewedBoundaries(count, shards int, frac float64) []int {
	if shards < 2 {
		return []int{0, count}
	}
	// Clamp so every shard keeps at least one window: the head shards
	// need shards-1 windows between them, the tail shard needs one.
	head := count - int(float64(count)*frac)
	if head < shards-1 {
		head = shards - 1
	}
	if head > count-1 {
		head = count - 1
	}
	starts := make([]int, shards+1)
	for i := 0; i < shards; i++ {
		starts[i] = i * head / (shards - 1)
	}
	starts[shards] = count
	return starts
}

// buildMethod constructs one method over ext with the paper's default
// structural parameters (§6.1) and the given ℓ and m.
func buildMethod(m MethodID, ext *series.Extractor, l, segments int) (built, error) {
	start := time.Now()
	switch m {
	case Sweepline:
		s := sweepline.New(ext)
		return built{method: m, s: sweepAdapter{s}, buildTime: time.Since(start)}, nil
	case KVIndex:
		ix, err := kvindex.Build(ext, kvindex.Config{L: l})
		if err != nil {
			return built{}, err
		}
		return built{method: m, s: kvAdapter{ix}, buildTime: time.Since(start),
			memBytes: ix.MemoryBytes() + ix.AuxiliaryBytes()}, nil
	case ISAX:
		ix, err := isax.Build(ext, isax.Config{L: l, Segments: segments})
		if err != nil {
			return built{}, err
		}
		return built{method: m, s: isaxAdapter{ix}, buildTime: time.Since(start),
			memBytes: ix.MemoryBytes()}, nil
	case TSIndex:
		ix, err := core.Build(ext, core.Config{L: l})
		if err != nil {
			return built{}, err
		}
		return built{method: m, s: tsAdapter{ix}, buildTime: time.Since(start),
			memBytes: ix.MemoryBytes()}, nil
	default:
		return built{}, fmt.Errorf("harness: unknown method %v", m)
	}
}
