package core

import "fmt"

// CheckInvariants validates the structural invariants the paper's
// construction guarantees; tests call it after builds and mutation
// sequences. It verifies:
//
//   - all leaves sit at the same level (§5.2: "this procedure ensures
//     that all leaves are placed on the same level");
//   - every non-root node holds between MinCap and MaxCap entries and
//     the root holds at most MaxCap;
//   - every node's MBTS encloses its children's MBTS (internal) or the
//     exact windows of its positions (leaf);
//   - every inserted window is reachable exactly once.
func (ix *Index) CheckInvariants() error {
	if ix.root == nil {
		if ix.size != 0 {
			return fmt.Errorf("core: empty tree with size %d", ix.size)
		}
		return nil
	}
	total := 0
	buf := make([]float64, ix.cfg.L)
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if n.leaf {
			if depth != ix.height {
				return fmt.Errorf("core: leaf at depth %d, height %d", depth, ix.height)
			}
			if !isRoot && (len(n.positions) < ix.cfg.MinCap || len(n.positions) > ix.cfg.MaxCap) {
				return fmt.Errorf("core: leaf occupancy %d outside [%d, %d]", len(n.positions), ix.cfg.MinCap, ix.cfg.MaxCap)
			}
			if isRoot && len(n.positions) > ix.cfg.MaxCap {
				return fmt.Errorf("core: root leaf occupancy %d exceeds %d", len(n.positions), ix.cfg.MaxCap)
			}
			for _, p := range n.positions {
				w := ix.ext.Extract(int(p), ix.cfg.L, buf)
				if !n.bounds.ContainsSequence(w) {
					return fmt.Errorf("core: leaf MBTS does not enclose window %d", p)
				}
			}
			total += len(n.positions)
			return nil
		}
		if !isRoot && (len(n.children) < ix.cfg.MinCap || len(n.children) > ix.cfg.MaxCap) {
			return fmt.Errorf("core: internal occupancy %d outside [%d, %d]", len(n.children), ix.cfg.MinCap, ix.cfg.MaxCap)
		}
		if isRoot && (len(n.children) < 2 || len(n.children) > ix.cfg.MaxCap) {
			return fmt.Errorf("core: root occupancy %d outside [2, %d]", len(n.children), ix.cfg.MaxCap)
		}
		for _, c := range n.children {
			if !n.bounds.ContainsMBTS(c.bounds) {
				return fmt.Errorf("core: parent MBTS does not enclose child at depth %d", depth)
			}
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(ix.root, 1, true); err != nil {
		return err
	}
	if total != ix.size {
		return fmt.Errorf("core: %d entries reachable, %d inserted", total, ix.size)
	}
	return nil
}

// LeafFill returns the mean leaf occupancy, an index-quality diagnostic
// used by the ablation benchmarks.
func (ix *Index) LeafFill() float64 {
	leaves, entries := 0, 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			leaves++
			entries += len(n.positions)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	if leaves == 0 {
		return 0
	}
	return float64(entries) / float64(leaves)
}

// MeanLeafWidth returns the average MBTS width across leaves, a
// tightness diagnostic (smaller bands prune more).
func (ix *Index) MeanLeafWidth() float64 {
	leaves := 0
	var sum float64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			leaves++
			sum += n.bounds.Width() / float64(ix.cfg.L)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	if leaves == 0 {
		return 0
	}
	return sum / float64(leaves)
}

// verifyReachable is a test helper: it confirms position p is indexed.
func (ix *Index) verifyReachable(p int) bool {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return false
		}
		if n.leaf {
			for _, q := range n.positions {
				if int(q) == p {
					return true
				}
			}
			return false
		}
		for _, c := range n.children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(ix.root)
}
