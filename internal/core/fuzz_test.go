package core

import (
	"bytes"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// FuzzLoad feeds arbitrary byte streams to the index deserializer; it
// must reject garbage with an error, never panic, and never accept a
// stream whose tree contradicts the series. Run with `go test -fuzz
// FuzzLoad ./internal/core` for exploration; the seed corpus (a valid
// stream plus mutations) runs as part of the normal test suite.
func FuzzLoad(f *testing.F) {
	ts := datasets.RandomWalk(91, 600)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: 40})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:10])
	f.Add([]byte("TSIX garbage"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid.Bytes()...)
	if len(mutated) > 100 {
		mutated[50] ^= 0xFF
		mutated[99] ^= 0x0F
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, stream []byte) {
		got, err := Load(bytes.NewReader(stream), ext)
		if err != nil {
			return // rejected: fine
		}
		// Accepted streams must describe a consistent index.
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("Load accepted an inconsistent stream: %v", err)
		}
	})
}
