package core

import (
	"bytes"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// FuzzLoad feeds arbitrary byte streams to the index deserializer; it
// must reject garbage with an error, never panic, and never accept a
// stream whose tree contradicts the series. Run with `go test -fuzz
// FuzzLoad ./internal/core` for exploration; the seed corpus (a valid
// stream plus mutations) runs as part of the normal test suite.
func FuzzLoad(f *testing.F) {
	ts := datasets.RandomWalk(91, 600)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: 40})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:10])
	f.Add([]byte("TSIX garbage"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid.Bytes()...)
	if len(mutated) > 100 {
		mutated[50] ^= 0xFF
		mutated[99] ^= 0x0F
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, stream []byte) {
		got, err := Load(bytes.NewReader(stream), ext)
		if err != nil {
			return // rejected: fine
		}
		// Accepted streams must describe a consistent index.
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("Load accepted an inconsistent stream: %v", err)
		}
	})
}

// FuzzLoadFrozen is FuzzLoad for the flat-arena deserializers — the
// copy loader (LoadFrozen, v1+v2 streams) and the zero-copy one
// (FrozenFromArena, aligned v2): arbitrary byte streams must be
// rejected with an error or yield an arena that traverses safely —
// never a panic or an out-of-range index. The copy loader additionally
// guarantees full invariants (bound containment included); the
// zero-copy path guarantees the structural half, so its accepted
// arenas are checked against CheckStructure and then traversed.
func FuzzLoadFrozen(f *testing.F) {
	ts := datasets.RandomWalk(91, 600)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: 40})
	if err != nil {
		f.Fatal(err)
	}
	fz := ix.Freeze()
	var valid bytes.Buffer
	if _, err := fz.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	var validV1 bytes.Buffer
	if _, err := fz.WriteLegacyV1(&validV1); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(validV1.Bytes())
	f.Add(valid.Bytes()[:20])
	f.Add(valid.Bytes()[:frozenHeaderSize])
	f.Add([]byte("TSFZ garbage"))
	f.Add([]byte{})
	for _, off := range []int{6, 24, 48, 90, 99} { // mode, size, offsets, sections
		mutated := append([]byte(nil), valid.Bytes()...)
		if len(mutated) > off {
			mutated[off] ^= 0xFF
		}
		f.Add(mutated)
	}

	f.Fuzz(func(t *testing.T, stream []byte) {
		got, err := LoadFrozen(bytes.NewReader(stream), ext)
		if err == nil {
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("LoadFrozen accepted an inconsistent stream: %v", err)
			}
			// An accepted arena must also traverse safely end to end.
			q := ext.ExtractCopy(0, got.L())
			got.Search(q, 0.5)
			got.SearchTopK(q, 5)
		}

		mapped, _, err := FrozenFromArena(arena.FromBytes(stream), 0, ext)
		if err != nil {
			return // rejected: fine
		}
		if err := mapped.CheckStructure(); err != nil {
			t.Fatalf("FrozenFromArena accepted a structurally invalid stream: %v", err)
		}
		q := ext.ExtractCopy(0, mapped.L())
		mapped.Search(q, 0.5)
		mapped.SearchTopK(q, 5)
		mapped.SearchApprox(q, 0.5, 3)
	})
}

// FuzzFrozenTraversal derives a series and query parameters from the
// fuzz input, builds the pointer tree and its frozen compilation, and
// requires every search path to agree byte for byte — fuzzing the
// frozen traversal itself rather than the decoder.
func FuzzFrozenTraversal(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(0), uint8(40))
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1}, uint8(1), uint8(130))
	f.Add(bytes.Repeat([]byte{7, 250}, 40), uint8(2), uint8(90))

	f.Fuzz(func(t *testing.T, raw []byte, modeByte, epsByte uint8) {
		if len(raw) < 8 {
			return
		}
		// Each input byte becomes a step of a bounded walk; L is small so
		// even short inputs index several windows.
		const l = 6
		ts := make([]float64, len(raw))
		v := 0.0
		for i, b := range raw {
			v += (float64(b) - 127.5) / 64
			ts[i] = v
		}
		mode := series.NormMode(modeByte % 3)
		if mode == series.NormPerSubsequence {
			// Constant windows have σ = 0; the extractor rejects them, so
			// nudge values apart deterministically.
			for i := range ts {
				ts[i] += float64(i%l) * 1e-3
			}
		}
		eps := float64(epsByte) / 100
		ext := series.NewExtractor(ts, mode)
		ix, err := Build(ext, Config{L: l, MinCap: 2, MaxCap: 4})
		if err != nil {
			return // series too short etc.
		}
		fz := ix.Freeze()
		if err := fz.CheckInvariants(); err != nil {
			t.Fatalf("Freeze produced an inconsistent arena: %v", err)
		}
		q := ext.ExtractCopy(len(ts)%ix.Len(), l)

		wantM, wantS := ix.SearchStats(q, eps)
		gotM, gotS := fz.SearchStats(q, eps)
		if !matchesEqual(wantM, gotM) || wantS != gotS {
			t.Fatalf("SearchStats diverged: %v/%+v vs %v/%+v", wantM, wantS, gotM, gotS)
		}
		if want, got := ix.SearchTopK(q, 3), fz.SearchTopK(q, 3); !matchesEqual(want, got) {
			t.Fatalf("SearchTopK diverged: %v vs %v", want, got)
		}
		wantA, wantAS := ix.SearchApprox(q, eps, 2)
		gotA, gotAS := fz.SearchApprox(q, eps, 2)
		if !matchesEqual(wantA, gotA) || wantAS != gotAS {
			t.Fatalf("SearchApprox diverged: %v vs %v", wantA, gotA)
		}
		if mode != series.NormPerSubsequence {
			want, err1 := ix.SearchPrefix(q[:l/2], eps)
			got, err2 := fz.SearchPrefix(q[:l/2], eps)
			if (err1 == nil) != (err2 == nil) || !matchesEqual(want, got) {
				t.Fatalf("SearchPrefix diverged: %v/%v vs %v/%v", want, err1, got, err2)
			}
		}
	})
}
