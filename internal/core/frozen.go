package core

// The frozen TS-Index: a read-only compilation of the pointer tree into
// a contiguous structure-of-arrays arena. Descent through the pointer
// tree chases a heap allocation per node plus two more for the MBTS
// bound slices; at query time the per-node cost of that pointer chasing
// dominates (the actual Eq. 2 arithmetic streams two short arrays). The
// frozen form packs every node's bounds into two flat []float64 backing
// slices, children into (firstChild, count) index ranges, and all leaf
// positions into one flat []int32 — the database-style flat layout that
// Relational E-Matching applies to e-graph traversal, applied to MBTS
// descent. Traversal touches consecutive cache lines instead of
// scattered heap objects, and persistence becomes a handful of
// sequential array reads (the stepping stone to mmap-resident nodes).
//
// Layout: nodes are numbered in BFS order, node 0 the root. The tree is
// height-balanced with all leaves on the last level (§5.2), so in BFS
// order every internal node precedes every leaf: nodes [0, leafStart)
// are internal, [leafStart, n) are leaves. BFS numbering also makes both
// index ranges prefix-contiguous — node i+1's children start where node
// i's ended — which Freeze exploits and CheckInvariants enforces.
//
// Every search path of the pointer index has a frozen counterpart that
// replicates its traversal step for step (same child order, same heap
// disciplines), so results are byte-identical — the parity tests in
// frozen_test.go and the shard layer's merges rely on that.

import (
	"container/heap"
	"fmt"

	"twinsearch/internal/arena"
	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

// Frozen is the flat, read-only form of a built TS-Index. Construct
// with Index.Freeze, LoadFrozen, or FrozenFromArena; mutate by Thaw-ing
// back to a pointer Index, inserting, and re-freezing (Thaw copies, so
// mutation never writes through a file mapping).
type Frozen struct {
	ext    *series.Extractor
	cfg    Config
	size   int
	height int

	// backing, when non-nil, is the byte region the arrays below are
	// views into (FrozenFromArena); nil means they are ordinary heap
	// slices. The backing's owner (the Engine) controls its lifetime —
	// views die with it, so a Frozen must not outlive its backing.
	backing *arena.Arena

	// leafStart splits the BFS node numbering: [0, leafStart) internal,
	// [leafStart, len(first)) leaves.
	leafStart int32
	// first[i] is the first child's node id (internal) or the offset of
	// the node's run in positions (leaf); count[i] is the run length.
	// Both ranges are prefix-contiguous in BFS order.
	first, count []int32
	// positions holds every leaf's start positions, leaf runs
	// back to back.
	positions []int32
	// upper and lower pack all MBTS bounds: node i's bounds live at
	// [i*L, (i+1)*L) of each.
	upper, lower []float64
}

// Freeze compiles the pointer tree into its flat arena form. The index
// must not be mutated while freezing; the result shares nothing with
// the source tree and stays valid across later Inserts into it.
func (ix *Index) Freeze() *Frozen {
	f := &Frozen{ext: ix.ext, cfg: ix.cfg, size: ix.size, height: ix.height}
	if ix.root == nil {
		return f
	}
	// BFS walk: count nodes per kind first so the arenas allocate once.
	order := []*node{ix.root}
	for at := 0; at < len(order); at++ {
		if n := order[at]; !n.leaf {
			order = append(order, n.children...)
		}
	}
	nn := len(order)
	internal := 0
	npos := 0
	for _, n := range order {
		if n.leaf {
			npos += len(n.positions)
		} else {
			internal++
		}
	}
	l := ix.cfg.L
	f.leafStart = int32(internal)
	f.first = make([]int32, nn)
	f.count = make([]int32, nn)
	f.positions = make([]int32, 0, npos)
	f.upper = make([]float64, nn*l)
	f.lower = make([]float64, nn*l)

	childAt := int32(1) // node 0 is the root; its children start at 1
	for i, n := range order {
		copy(f.upper[i*l:(i+1)*l], n.bounds.Upper)
		copy(f.lower[i*l:(i+1)*l], n.bounds.Lower)
		if n.leaf {
			f.first[i] = int32(len(f.positions))
			f.count[i] = int32(len(n.positions))
			f.positions = append(f.positions, n.positions...)
			continue
		}
		f.first[i] = childAt
		f.count[i] = int32(len(n.children))
		childAt += int32(len(n.children))
	}
	return f
}

// Thaw reconstructs a mutable pointer Index from the arena — the
// insertion path for frozen or loaded indexes: thaw, Insert, re-Freeze.
func (f *Frozen) Thaw() *Index {
	ix := &Index{ext: f.ext, cfg: f.cfg, size: f.size, height: f.height,
		winBuf: make([]float64, f.cfg.L)}
	if len(f.first) == 0 {
		return ix
	}
	nodes := make([]*node, len(f.first))
	for i := range nodes {
		b := mbts.New(f.cfg.L)
		copy(b.Upper, f.boundsUpper(int32(i)))
		copy(b.Lower, f.boundsLower(int32(i)))
		nodes[i] = &node{bounds: b}
	}
	for i, n := range nodes {
		lo, c := f.first[i], f.count[i]
		if int32(i) >= f.leafStart {
			n.leaf = true
			n.positions = append([]int32(nil), f.positions[lo:lo+c]...)
			continue
		}
		n.children = make([]*node, c)
		for j := int32(0); j < c; j++ {
			n.children[j] = nodes[lo+j]
		}
	}
	ix.root = nodes[0]
	return ix
}

func (f *Frozen) boundsUpper(i int32) []float64 {
	l := int32(f.cfg.L)
	return f.upper[i*l : (i+1)*l]
}

func (f *Frozen) boundsLower(i int32) []float64 {
	l := int32(f.cfg.L)
	return f.lower[i*l : (i+1)*l]
}

func (f *Frozen) isLeaf(i int32) bool { return i >= f.leafStart }

// Len returns the number of indexed windows.
func (f *Frozen) Len() int { return f.size }

// Height returns the number of levels (1 = the root is a leaf).
func (f *Frozen) Height() int { return f.height }

// L returns the indexed subsequence length.
func (f *Frozen) L() int { return f.cfg.L }

// Extractor exposes the extractor the index was built over.
func (f *Frozen) Extractor() *series.Extractor { return f.ext }

// NodeCount returns the total number of arena nodes.
func (f *Frozen) NodeCount() int { return len(f.first) }

// Positions exposes the flat start-position array (every indexed
// window exactly once, in leaf-run order). Callers must not modify it;
// the shard layer reads it to validate partitions.
func (f *Frozen) Positions() []int32 { return f.positions }

// arrayBytes is the byte footprint of the flat arrays themselves,
// wherever they live.
func (f *Frozen) arrayBytes() int {
	return 8*(len(f.upper)+len(f.lower)) + // bounds
		4*(len(f.first)+len(f.count)+len(f.positions)) // structure
}

// MemoryBytes reports the heap-resident bytes of the arena. For a heap
// frozen index the flat bound arrays dominate (per-node structural
// overhead is 8 bytes — two int32 — against the pointer tree's per-node
// struct + slice headers); for a file-mapped one the arrays live in the
// page cache, not the heap, and only the struct and slice headers
// remain (see MappedBytes for the other half).
func (f *Frozen) MemoryBytes() int {
	const headers = 96 // struct + slice headers
	if f.Mapped() {
		return headers
	}
	return f.arrayBytes() + headers
}

// MappedBytes reports the file-mapped footprint of the arena: the flat
// arrays' size when they are views into an mmap'd region, 0 for a heap
// frozen index. Mapped pages are shared with every other process
// mapping the same index and reclaimable by the kernel, so they are
// accounted separately from MemoryBytes.
func (f *Frozen) MappedBytes() int {
	if f.Mapped() {
		return f.arrayBytes()
	}
	return 0
}

// Mapped reports whether the arrays are views into an mmap'd file
// region rather than heap slices.
func (f *Frozen) Mapped() bool { return f.backing != nil && f.backing.Mapped() }

// FrozenSubtree is the frozen counterpart of Subtree: an opaque handle
// to one disjoint piece of the arena, produced by Frontier and consumed
// by the *From search variants. Frozen arenas are immutable, so handles
// never go stale.
type FrozenSubtree struct {
	id int32
	ok bool // distinguishes node 0 from the zero value / empty index
}

// Root returns the whole index as a single work unit.
func (f *Frozen) Root() FrozenSubtree {
	if len(f.first) == 0 {
		return FrozenSubtree{}
	}
	return FrozenSubtree{id: 0, ok: true}
}

// Frontier splits the arena into at least min(target, leaves) disjoint
// subtrees covering all indexed positions, expanding breadth-first
// until the target is met — the same expansion rule as Index.Frontier,
// so the shard layer's work-unit merges behave identically on either
// form.
func (f *Frozen) Frontier(target int) []FrozenSubtree {
	if len(f.first) == 0 {
		return nil
	}
	nodes := []int32{0}
	for len(nodes) < target {
		split := false
		for i := 0; i < len(nodes) && len(nodes) < target; i++ {
			n := nodes[i]
			if f.isLeaf(n) {
				continue
			}
			lo, c := f.first[n], f.count[n]
			nodes[i] = lo
			for j := int32(1); j < c; j++ {
				nodes = append(nodes, lo+j)
			}
			split = true
		}
		if !split {
			break // all leaves: nothing left to expand
		}
	}
	out := make([]FrozenSubtree, len(nodes))
	for i, n := range nodes {
		out[i] = FrozenSubtree{id: n, ok: true}
	}
	return out
}

// Search returns all twin subsequences of q at threshold eps, in start
// order (Algorithm 1) — byte-identical to Index.Search on the source
// tree.
func (f *Frozen) Search(q []float64, eps float64) []series.Match {
	ms, _ := f.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters.
func (f *Frozen) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	if len(q) != f.cfg.L {
		panic(fmt.Sprintf("core: query length %d, index built for %d", len(q), f.cfg.L))
	}
	out, st := f.SearchStatsFrom(f.Root(), q, eps)
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// frozenStackCap sizes the explicit traversal stacks. A constant
// capacity lets escape analysis keep the whole stack on the goroutine
// stack for typical trees (fanout × depth rarely exceeds a few dozen
// pending nodes); deeper trees spill to the heap transparently.
const frozenStackCap = 256

// SearchStatsFrom is the range-search work unit over the arena — the
// frozen counterpart of Index.SearchStatsFrom, with the same contract:
// matches in traversal order, Stats.Results left zero.
func (f *Frozen) SearchStatsFrom(sub FrozenSubtree, q []float64, eps float64) ([]series.Match, Stats) {
	var st Stats
	if !sub.ok {
		return nil, st
	}
	// A by-value verifier and a constant-capacity stack keep this unit
	// allocation-free until the first match (both stay on the caller's
	// stack; the traversal stack only spills to the heap past
	// frozenStackCap pending nodes).
	ver := series.MakeVerifier(f.ext, q, eps)
	var out []series.Match
	stack := make([]int32, 0, frozenStackCap)
	stack = append(stack, sub.id)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		if _, ok := mbts.DistAbandonFlat(f.boundsUpper(n), f.boundsLower(n), q, eps); !ok {
			st.NodesPruned++
			continue
		}
		lo, c := f.first[n], f.count[n]
		if !f.isLeaf(n) {
			for j := int32(0); j < c; j++ {
				stack = append(stack, lo+j)
			}
			continue
		}
		st.LeavesReached++
		for _, p := range f.positions[lo : lo+c] {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			} else {
				st.Abandons++
			}
		}
	}
	return out, st
}

// SearchTopK returns the k subsequences nearest to q under Chebyshev
// distance — the frozen counterpart of Index.SearchTopK.
func (f *Frozen) SearchTopK(q []float64, k int) []series.Match {
	return f.SearchTopKSharedFrom(f.Root(), q, k, nil)
}

// SearchTopKShared is SearchTopK with an optional cross-traversal
// pruning bound (see SharedBound).
func (f *Frozen) SearchTopKShared(q []float64, k int, shared *SharedBound) []series.Match {
	return f.SearchTopKSharedFrom(f.Root(), q, k, shared)
}

// SearchTopKSharedFrom is the top-k work unit over the arena: the
// best-first traversal restricted to one subtree, mirroring
// Index.SearchTopKSharedFrom (pruning on strict inequality only, so
// merged results are deterministic however the tree is split or which
// form runs it).
func (f *Frozen) SearchTopKSharedFrom(sub FrozenSubtree, q []float64, k int, shared *SharedBound) []series.Match {
	if len(q) != f.cfg.L {
		panic("core: query length mismatch")
	}
	if k <= 0 || !sub.ok {
		return nil
	}

	best := &resultHeap{}
	kth := func() float64 { return kthThreshold(best, k, shared) }
	buf := make([]float64, f.cfg.L)

	rootLB, ok := boundLB(f.boundsUpper(sub.id), f.boundsLower(sub.id), q, kth())
	if !ok {
		return nil // a shared bound has already excluded this subtree
	}
	pq := &frozenQueue{{id: sub.id, lb: rootLB}}

	for pq.Len() > 0 {
		item := heap.Pop(pq).(frozenItem)
		if t := kth(); t >= 0 && item.lb > t {
			break // every remaining node is at least this far
		}
		first, c := f.first[item.id], f.count[item.id]
		if !f.isLeaf(item.id) {
			for j := int32(0); j < c; j++ {
				child := first + j
				// Same early-abandoned child bound as the pointer form.
				lb, ok := boundLB(f.boundsUpper(child), f.boundsLower(child), q, kth())
				if !ok {
					continue
				}
				heap.Push(pq, frozenItem{id: child, lb: lb})
			}
			continue
		}
		for _, p := range f.positions[first : first+c] {
			w := f.ext.Extract(int(p), f.cfg.L, buf)
			d := series.Chebyshev(q, w)
			m := series.Match{Start: int(p), Dist: d}
			if best.Len() >= k {
				if !matchLess(m, (*best)[0]) {
					continue
				}
				heap.Pop(best)
			}
			heap.Push(best, m)
			if shared != nil && best.Len() >= k {
				shared.Tighten((*best)[0].Dist)
			}
		}
	}

	out := make([]series.Match, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(series.Match)
	}
	return out
}

// SearchPrefix answers twin queries shorter than the indexed length —
// the frozen counterpart of Index.SearchPrefix (see that method for the
// truncation argument).
func (f *Frozen) SearchPrefix(q []float64, eps float64) ([]series.Match, error) {
	out, err := f.SearchPrefixTree(q, eps)
	if err != nil {
		return nil, err
	}
	return ScanPrefixTail(f.ext, f.cfg.L, q, eps, out), nil
}

// ValidatePrefix checks a prefix query against the index parameters.
func (f *Frozen) ValidatePrefix(q []float64) error {
	l := len(q)
	if l > f.cfg.L {
		return fmt.Errorf("core: prefix query length %d exceeds indexed length %d", l, f.cfg.L)
	}
	if l == 0 {
		return fmt.Errorf("core: empty query")
	}
	if f.ext.Mode() == series.NormPerSubsequence {
		return fmt.Errorf("core: prefix queries are unsupported under per-subsequence normalization")
	}
	return nil
}

// SearchPrefixTree is the tree-traversal half of SearchPrefix over the
// arena, reporting prefix twins among the indexed starts only.
func (f *Frozen) SearchPrefixTree(q []float64, eps float64) ([]series.Match, error) {
	if err := f.ValidatePrefix(q); err != nil {
		return nil, err
	}
	out := f.SearchPrefixTreeFrom(f.Root(), q, eps)
	series.SortMatches(out)
	return out, nil
}

// SearchPrefixTreeFrom is the prefix-search work unit over the arena —
// the frozen counterpart of Index.SearchPrefixTreeFrom. The truncated
// Lemma 1 check reads only the first len(q) entries of each node's
// bound rows, which the flat layout serves from the same two backing
// arrays.
func (f *Frozen) SearchPrefixTreeFrom(sub FrozenSubtree, q []float64, eps float64) []series.Match {
	if !sub.ok {
		return nil
	}
	var out []series.Match
	ver := series.MakeVerifier(f.ext, q, eps)
	l := len(q)
	stack := make([]int32, 0, frozenStackCap)
	stack = append(stack, sub.id)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		up, lo := f.boundsUpper(n)[:l], f.boundsLower(n)[:l]
		if _, ok := mbts.DistAbandonFlat(up, lo, q, eps); !ok {
			continue
		}
		first, c := f.first[n], f.count[n]
		if !f.isLeaf(n) {
			for j := int32(0); j < c; j++ {
				stack = append(stack, first+j)
			}
			continue
		}
		for _, p := range f.positions[first : first+c] {
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	return out
}

// SearchApprox is the best-first leaf probe over the arena — the frozen
// counterpart of Index.SearchApprox, with the same (lack of)
// guarantees.
func (f *Frozen) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, Stats) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	return f.SearchApproxShared(q, eps, NewLeafBudget(leafBudget))
}

// SearchApproxShared is SearchApprox drawing leaves from a budget the
// caller may share across several traversals (see
// Index.SearchApproxShared).
func (f *Frozen) SearchApproxShared(q []float64, eps float64, budget *LeafBudget) ([]series.Match, Stats) {
	if len(q) != f.cfg.L {
		panic("core: query length mismatch")
	}
	var st Stats
	if len(f.first) == 0 {
		return nil, st
	}

	ver := series.NewVerifier(f.ext, q, eps)
	var out []series.Match
	pq := &frozenQueue{{id: 0, lb: mbts.DistFlat(f.boundsUpper(0), f.boundsLower(0), q)}}
	for pq.Len() > 0 && !budget.Exhausted() {
		item := heap.Pop(pq).(frozenItem)
		st.NodesVisited++
		if item.lb > eps {
			st.NodesPruned++
			break
		}
		first, c := f.first[item.id], f.count[item.id]
		if !f.isLeaf(item.id) {
			for j := int32(0); j < c; j++ {
				child := first + j
				heap.Push(pq, frozenItem{id: child,
					lb: mbts.DistFlat(f.boundsUpper(child), f.boundsLower(child), q)})
			}
			continue
		}
		if !budget.TryAcquire() {
			break // another traversal spent the last probe
		}
		st.LeavesReached++
		for _, p := range f.positions[first : first+c] {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			} else {
				st.Abandons++
			}
		}
	}
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// frozenItem pairs an arena node id with its Eq. 2 lower bound.
type frozenItem struct {
	id int32
	lb float64
}

// frozenQueue is a min-heap on lower bound, mirroring nodeQueue so both
// forms break lower-bound ties identically.
type frozenQueue []frozenItem

func (q frozenQueue) Len() int            { return len(q) }
func (q frozenQueue) Less(i, j int) bool  { return q[i].lb < q[j].lb }
func (q frozenQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *frozenQueue) Push(x interface{}) { *q = append(*q, x.(frozenItem)) }
func (q *frozenQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// CheckInvariants validates the arena against the series and the
// structural invariants Freeze guarantees. LoadFrozen runs it so a
// corrupt or hostile stream is rejected before any traversal indexes
// into the arrays:
//
//   - first/count ranges are prefix-contiguous and in-bounds for both
//     the child numbering and the positions array;
//   - occupancy respects MinCap/MaxCap (root exempt as in the pointer
//     form) and every leaf sits at depth == height;
//   - every node's bounds enclose its children's bounds (internal) or
//     the exact windows of its positions (leaf);
//   - positions are valid window starts and total exactly size.
//
// The first two bullets and the position range check are CheckStructure
// — together they make every traversal memory-safe. The containment
// bullet (CheckContainment) additionally guarantees the bounds are
// truthful, i.e. searches return the right answers; it extracts every
// indexed window, so it costs O(size·L). The zero-copy open path runs
// CheckStructure only — pointing at a multi-gigabyte mapping must not
// re-read the whole series — and trusts containment to the writer, as
// every database trusts its own files' payloads once the framing
// checks out.
func (f *Frozen) CheckInvariants() error {
	if err := f.CheckStructure(); err != nil {
		return err
	}
	return f.CheckContainment()
}

// CheckStructure validates every invariant needed for traversals to be
// memory-safe — array sizes, prefix-contiguity, occupancy, leaf depth,
// and position ranges — without extracting windows. Allocation-free, so
// the mmap open path can run it on arbitrarily large arenas at
// O(header) heap cost (it does stream the structure arrays once, which
// doubles as page-cache warmup for the index skeleton).
func (f *Frozen) CheckStructure() error {
	nn := len(f.first)
	if len(f.count) != nn {
		return fmt.Errorf("core: frozen: %d first entries, %d count entries", nn, len(f.count))
	}
	if len(f.upper) != nn*f.cfg.L || len(f.lower) != nn*f.cfg.L {
		return fmt.Errorf("core: frozen: bound arrays sized %d/%d, want %d", len(f.upper), len(f.lower), nn*f.cfg.L)
	}
	if nn == 0 {
		if f.size != 0 {
			return fmt.Errorf("core: frozen: empty arena with size %d", f.size)
		}
		return nil
	}
	if f.leafStart < 0 || int(f.leafStart) > nn {
		return fmt.Errorf("core: frozen: leafStart %d outside [0, %d]", f.leafStart, nn)
	}
	maxPos := series.NumSubsequences(f.ext.Len(), f.cfg.L)

	// Structural pass: prefix-contiguity of both index spaces.
	childAt := int32(1)
	posAt := int32(0)
	for i := 0; i < nn; i++ {
		c := f.count[i]
		if c < 0 {
			return fmt.Errorf("core: frozen: node %d has negative count", i)
		}
		occLo, occHi := int32(f.cfg.MinCap), int32(f.cfg.MaxCap)
		if i == 0 {
			occLo = 1
			if !f.isLeaf(0) {
				occLo = 2
			}
		}
		if c < occLo || c > occHi {
			return fmt.Errorf("core: frozen: node %d occupancy %d outside [%d, %d]", i, c, occLo, occHi)
		}
		if f.isLeaf(int32(i)) {
			if f.first[i] != posAt {
				return fmt.Errorf("core: frozen: leaf %d positions start at %d, want %d", i, f.first[i], posAt)
			}
			posAt += c
			continue
		}
		if f.first[i] != childAt {
			return fmt.Errorf("core: frozen: node %d children start at %d, want %d", i, f.first[i], childAt)
		}
		childAt += c
	}
	if int(childAt) != nn {
		return fmt.Errorf("core: frozen: children cover %d nodes, arena has %d", childAt, nn)
	}
	if int(posAt) != len(f.positions) {
		return fmt.Errorf("core: frozen: leaves cover %d positions, array has %d", posAt, len(f.positions))
	}
	if int(posAt) != f.size {
		return fmt.Errorf("core: frozen: %d entries reachable, %d recorded", posAt, f.size)
	}

	// Depth pass: BFS numbering makes every level a contiguous id range
	// ([0,1) is the root; a level's children form the next range), so
	// walking level ranges needs no per-node depth array. All leaves
	// must form exactly the last level, at depth == height.
	lo, hi := int32(0), int32(1)
	for d := 1; ; d++ {
		if lo >= f.leafStart {
			// Leaf level: must cover every leaf and sit at height.
			if int(lo) != int(f.leafStart) || int(hi) != nn || d != f.height {
				return fmt.Errorf("core: frozen: leaf level [%d, %d) at depth %d, want [%d, %d) at height %d", lo, hi, d, f.leafStart, nn, f.height)
			}
			break
		}
		if int(hi) > int(f.leafStart) {
			return fmt.Errorf("core: frozen: level [%d, %d) at depth %d mixes internal nodes and leaves", lo, hi, d)
		}
		if d >= f.height {
			return fmt.Errorf("core: frozen: internal level [%d, %d) at depth %d, height is %d", lo, hi, d, f.height)
		}
		// Prefix-contiguity (verified above) makes the children of a
		// level range exactly the next range.
		lo, hi = f.first[lo], f.first[hi-1]+f.count[hi-1]
	}

	// Position range pass: every leaf entry must be a valid window
	// start, or a traversal's verification would index past the series.
	for _, p := range f.positions {
		if p < 0 || int(p) >= maxPos {
			return fmt.Errorf("core: frozen: corrupt position %d (max %d)", p, maxPos)
		}
	}
	return nil
}

// CheckContainment validates the semantic half of the invariants: every
// node's bounds enclose its children's bounds (internal) or the exact
// windows of its positions (leaf). Requires a structurally valid arena;
// costs O(size·L) window extractions.
func (f *Frozen) CheckContainment() error {
	nn := len(f.first)
	if nn == 0 {
		return nil
	}
	maxPos := series.NumSubsequences(f.ext.Len(), f.cfg.L)
	buf := make([]float64, f.cfg.L)
	for i := 0; i < nn; i++ {
		up, lo := f.boundsUpper(int32(i)), f.boundsLower(int32(i))
		first, c := f.first[i], f.count[i]
		if f.isLeaf(int32(i)) {
			for _, p := range f.positions[first : first+c] {
				if p < 0 || int(p) >= maxPos {
					return fmt.Errorf("core: frozen: corrupt position %d (max %d)", p, maxPos)
				}
				w := f.ext.Extract(int(p), f.cfg.L, buf)
				if d := mbts.DistFlat(up, lo, w); d > 0 {
					return fmt.Errorf("core: frozen: leaf %d bounds do not enclose window %d", i, p)
				}
			}
			continue
		}
		for j := int32(0); j < c; j++ {
			cu, cl := f.boundsUpper(first+j), f.boundsLower(first+j)
			for t := 0; t < f.cfg.L; t++ {
				if cu[t] > up[t] || cl[t] < lo[t] {
					return fmt.Errorf("core: frozen: node %d bounds do not enclose child %d", i, first+j)
				}
			}
		}
	}
	return nil
}
