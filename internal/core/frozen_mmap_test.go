package core

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// mmapWriteChildEnv carries the saved-index path into the re-exec'd
// child that performs the forbidden write.
const mmapWriteChildEnv = "TWINSEARCH_MMAP_WRITE_CHILD"

// TestMmapFrozenWriteFaults pins the memory-protection half of the
// frozenwrite invariant: the arrays of a mapped Frozen are views into a
// PROT_READ mapping, so a write through them must fault the process —
// loudly and immediately — rather than silently corrupt the index file.
// The write runs in a re-exec'd child; the parent checks that the child
// died with a memory fault and that the file bytes are untouched.
func TestMmapFrozenWriteFaults(t *testing.T) {
	if path := os.Getenv(mmapWriteChildEnv); path != "" {
		mmapWriteChild(path)
		return
	}
	if !arena.MapSupported() || !arena.LittleEndianHost() {
		t.Skip("needs mmap support and a little-endian host")
	}
	ts := datasets.RandomWalk(61, 1500)
	fz, _ := frozenOver(t, ts, series.NormGlobal, Config{L: 40})
	path := filepath.Join(t.TempDir(), "frozen.tsfz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fz.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestMmapFrozenWriteFaults$", "-test.v")
	cmd.Env = append(os.Environ(), mmapWriteChildEnv+"="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child wrote through a mapped Frozen and lived:\n%s", out)
	}
	if !bytes.Contains(out, []byte("fault")) {
		t.Fatalf("child died, but not from a memory fault:\n%s", out)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, after) {
		t.Fatal("mapped index file changed after the faulting write")
	}
}

// mmapWriteChild maps the saved index and stores through the Frozen's
// positions view. The mapping is read-only, so the store must kill the
// process before either fmt line below can run.
func mmapWriteChild(path string) {
	ar, err := arena.Map(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: map:", err)
		os.Exit(3)
	}
	ext := series.NewExtractor(datasets.RandomWalk(61, 1500), series.NormGlobal)
	fz, _, err := FrozenFromArena(ar, 0, ext)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(3)
	}
	fz.Positions()[0]++ // store into PROT_READ memory: SIGSEGV expected here
	fmt.Fprintln(os.Stderr, "child: write through a read-only mapping survived")
	os.Exit(4)
}
