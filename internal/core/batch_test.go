package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// matchesEq is bit-level equality of two match lists: Start and the
// exact Dist bit pattern, so −0/NaN drift would be caught too.
func matchesEq(a, b []series.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start ||
			math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// TestSearchStatsBatchParity requires the batch-frontier range search
// to reproduce per-query traversals exactly: same matches, same Stats
// (visit/prune/leaf/candidate counters pin down that each query's
// active-node set is precisely the node set its own descent visits).
func TestSearchStatsBatchParity(t *testing.T) {
	ts := datasets.RandomWalk(11, 2600)
	const l = 48
	for _, m := range frozenModes {
		t.Run(m.name, func(t *testing.T) {
			ix, ext := buildOver(t, ts, m.mode, Config{L: l})
			f := ix.Freeze()
			qs := [][]float64{
				ext.ExtractCopy(5, l),
				ext.ExtractCopy(700, l),
				ext.ExtractCopy(1900, l),
				ext.ExtractCopy(ix.Len()-1, l),
			}
			for _, eps := range []float64{0, 0.15, 0.6, 3} {
				gotM, gotS := f.SearchStatsBatch(qs, eps)
				for qi, q := range qs {
					wantM, wantS := f.SearchStats(q, eps)
					if !matchesEq(gotM[qi], wantM) {
						t.Fatalf("eps=%v query %d: batch matches differ (%d vs %d)",
							eps, qi, len(gotM[qi]), len(wantM))
					}
					if !reflect.DeepEqual(gotS[qi], wantS) {
						t.Fatalf("eps=%v query %d: batch stats %+v, per-query %+v",
							eps, qi, gotS[qi], wantS)
					}
				}
			}
		})
	}
}

// TestSearchStatsBatchFromUnits checks the work-unit form over every
// frontier subtree: per unit, the batch results for query i equal a
// per-query SearchStatsFrom on the same subtree (match SET equality —
// batch traversal order within a unit is not the per-query order).
func TestSearchStatsBatchFromUnits(t *testing.T) {
	ts := datasets.EEGN(13, 2200)
	const l = 40
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: l})
	f := ix.Freeze()
	qs := [][]float64{
		ext.ExtractCopy(100, l),
		ext.ExtractCopy(1500, l),
	}
	const eps = 0.4
	for _, u := range f.Frontier(6) {
		gotM, gotS := f.SearchStatsBatchFrom(u, qs, eps)
		for qi, q := range qs {
			wantM, wantS := f.SearchStatsFrom(u, q, eps)
			series.SortMatches(gotM[qi])
			series.SortMatches(wantM)
			wantS.Results = 0 // the unit form leaves Results to the merger
			if !matchesEq(gotM[qi], wantM) {
				t.Fatalf("unit %v query %d: match sets differ", u, qi)
			}
			if !reflect.DeepEqual(gotS[qi], wantS) {
				t.Fatalf("unit %v query %d: stats %+v, want %+v", u, qi, gotS[qi], wantS)
			}
		}
	}
}

// TestSearchTopKBatchParity requires the DFS batch top-k to return the
// same final (dist, start)-ordered k results as per-query best-first
// descents, with and without shared cross-unit bounds.
func TestSearchTopKBatchParity(t *testing.T) {
	ts := datasets.InsectN(17, 2600)
	const l = 48
	for _, m := range frozenModes {
		t.Run(m.name, func(t *testing.T) {
			ix, ext := buildOver(t, ts, m.mode, Config{L: l})
			f := ix.Freeze()
			qs := [][]float64{
				ext.ExtractCopy(60, l),
				ext.ExtractCopy(1200, l),
				ext.ExtractCopy(2000, l),
			}
			for _, k := range []int{1, 7, 40} {
				got := f.SearchTopKBatch(qs, k)
				for qi, q := range qs {
					want := f.SearchTopK(q, k)
					if !matchesEq(got[qi], want) {
						t.Fatalf("k=%d query %d: batch top-k differs", k, qi)
					}
				}
				// Fresh per-query shared bounds must not change answers.
				shared := make([]*SharedBound, len(qs))
				for i := range shared {
					shared[i] = NewSharedBound()
				}
				got = f.SearchTopKBatchFrom(f.Root(), qs, k, shared)
				for qi, q := range qs {
					want := f.SearchTopK(q, k)
					if !matchesEq(got[qi], want) {
						t.Fatalf("k=%d query %d: shared-bound batch top-k differs", k, qi)
					}
				}
			}
			// k beyond the index returns everything, still in order.
			all := f.SearchTopKBatch(qs[:1], f.Len()+10)
			if len(all[0]) != f.Len() {
				t.Fatalf("k>len returned %d of %d", len(all[0]), f.Len())
			}
		})
	}
}

// TestBatchGuards pins the batch entry points' contract violations.
func TestBatchGuards(t *testing.T) {
	ix, ext := buildOver(t, datasets.RandomWalk(19, 600), series.NormGlobal, Config{L: 32})
	f := ix.Freeze()
	q := ext.ExtractCopy(10, 32)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("range length mismatch", func() {
		f.SearchStatsBatch([][]float64{q[:10]}, 0.5)
	})
	mustPanic("topk length mismatch", func() {
		f.SearchTopKBatch([][]float64{q[:10]}, 3)
	})
	mustPanic("shared length mismatch", func() {
		f.SearchTopKBatchFrom(f.Root(), [][]float64{q}, 3, make([]*SharedBound, 2))
	})

	// Degenerate but legal inputs.
	if out, st := f.SearchStatsBatch(nil, 0.5); len(out) != 0 || len(st) != 0 {
		t.Fatal("empty batch must be empty")
	}
	if out := f.SearchTopKBatch([][]float64{q}, 0); out[0] != nil {
		t.Fatal("k=0 must return no matches")
	}
	for i := 0; i < 3; i++ {
		// Repeated identical queries in one batch stay independent.
		out := f.SearchTopKBatch([][]float64{q, q}, 5)
		if !matchesEq(out[0], out[1]) {
			t.Fatal(fmt.Sprint("duplicate queries disagree: ", out[0], out[1]))
		}
	}
}
