package core

import (
	"bytes"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

func TestPersistRoundTrip(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.InsectN(31, 5000)
		ix, ext := buildOver(t, ts, mode, Config{L: 80})

		var buf bytes.Buffer
		n, err := ix.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}

		got, err := Load(&buf, ext)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if got.Len() != ix.Len() || got.Height() != ix.Height() || got.L() != ix.L() {
			t.Fatalf("metadata mismatch after round trip")
		}
		q := ext.ExtractCopy(777, 80)
		for _, eps := range []float64{0.1, 0.5, 2} {
			a := ix.Search(q, eps)
			b := got.Search(q, eps)
			if len(a) != len(b) {
				t.Fatalf("mode=%v eps=%v: %d vs %d results", mode, eps, len(a), len(b))
			}
			for i := range a {
				if a[i].Start != b[i].Start {
					t.Fatalf("mode=%v: result %d differs", mode, i)
				}
			}
		}
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	ix, err := NewEmpty(ext, Config{L: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, ext)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Search(make([]float64, 20), 1) != nil {
		t.Fatal("empty index did not survive round trip")
	}
}

func TestLoadRejectsWrongMode(t *testing.T) {
	ts := datasets.RandomWalk(2, 1000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 50})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := series.NewExtractor(ts, series.NormNone)
	if _, err := Load(&buf, wrong); err == nil {
		t.Fatal("want mode-mismatch error")
	}
}

func TestLoadRejectsWrongSeries(t *testing.T) {
	ts := datasets.RandomWalk(2, 1000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 50})

	// Different length: rejected by the header check.
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	short := series.NewExtractor(ts[:900], series.NormGlobal)
	if _, err := Load(&buf, short); err == nil {
		t.Fatal("want length-mismatch error")
	}

	// Same length, different values: rejected by the invariant check
	// (the recorded MBTS no longer enclose the windows).
	buf.Reset()
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := series.NewExtractor(datasets.RandomWalk(99, 1000), series.NormGlobal)
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("want invariant error for mismatched data")
	}
}

func TestLoadRejectsCorruptStreams(t *testing.T) {
	ts := datasets.RandomWalk(3, 800)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 40})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), full[4:]...),
		"truncated": full[:len(full)/2],
		"bad version": func() []byte {
			c := append([]byte(nil), full...)
			c[4] = 0xFF
			return c
		}(),
	}
	for name, stream := range cases {
		if _, err := Load(bytes.NewReader(stream), ext); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
