package core

import (
	"fmt"

	"twinsearch/internal/series"
)

// SearchPrefix answers twin queries SHORTER than the indexed length —
// the direction ULISSE takes data-series indexing, derived here from
// the paper's own closure property (§3.1): time-aligned subsequences of
// twins are twins. Consequently, for a query of length l ≤ L:
//
//   - the first l timestamps of a node's MBTS bound the first l values
//     of every indexed window beneath it, so the Eq. 2 distance computed
//     over that prefix still lower-bounds d∞(Q, T[p,l]) for every
//     indexed start p — Lemma 1 survives truncation;
//   - indexed starts cover p ∈ [0, n−L]; the remaining starts
//     p ∈ (n−L, n−l] exist only at the shorter length and are verified
//     by a bounded tail scan of at most L−l windows.
//
// The combination is exact. Per-subsequence normalization is
// unsupported: z-normalizing T[p,l] is not a prefix of z-normalizing
// T[p,L], so the stored bounds do not transfer.
func (ix *Index) SearchPrefix(q []float64, eps float64) ([]series.Match, error) {
	out, err := ix.SearchPrefixTree(q, eps)
	if err != nil {
		return nil, err
	}
	// Tail starts are generated ascending and all exceed every indexed
	// start, so appending them keeps the result sorted.
	return ScanPrefixTail(ix.ext, ix.cfg.L, q, eps, out), nil
}

// ScanPrefixTail verifies the windows that exist only at the shorter
// query length — starts in (n−L, n−len(q)], empty when len(q) == L —
// appending matches to out in ascending start order. Shared by
// Index.SearchPrefix and the sharded fan-out (which must run it once,
// not once per shard).
func ScanPrefixTail(ext *series.Extractor, indexedL int, q []float64, eps float64, out []series.Match) []series.Match {
	if len(q) >= indexedL {
		return out
	}
	ver := series.NewVerifier(ext, q, eps)
	n := ext.Len()
	for p := n - indexedL + 1; p <= n-len(q); p++ {
		if p < 0 {
			continue
		}
		if ver.Verify(p) {
			out = append(out, series.Match{Start: p, Dist: -1})
		}
	}
	return out
}

// ValidatePrefix checks a prefix query against the index parameters —
// the validation half of SearchPrefixTree, hoisted out so the sharded
// fan-out can validate once before enqueueing per-subtree work units.
func (ix *Index) ValidatePrefix(q []float64) error {
	l := len(q)
	if l > ix.cfg.L {
		return fmt.Errorf("core: prefix query length %d exceeds indexed length %d", l, ix.cfg.L)
	}
	if l == 0 {
		return fmt.Errorf("core: empty query")
	}
	if ix.ext.Mode() == series.NormPerSubsequence {
		return fmt.Errorf("core: prefix queries are unsupported under per-subsequence normalization")
	}
	return nil
}

// SearchPrefixTree is the tree-traversal half of SearchPrefix: it
// reports prefix twins among the INDEXED starts only, leaving the tail
// starts that exist solely at the shorter length to the caller.
// internal/shard fans this across subtree work units and runs the tail
// scan once; most callers want SearchPrefix.
func (ix *Index) SearchPrefixTree(q []float64, eps float64) ([]series.Match, error) {
	if err := ix.ValidatePrefix(q); err != nil {
		return nil, err
	}
	out := ix.SearchPrefixTreeFrom(ix.Root(), q, eps)
	series.SortMatches(out)
	return out, nil
}

// prefixBounds adapts a node's MBTS to prefix distance checks.
type prefixBounds struct {
	n *node
	l int
}

// within reports whether the prefix Eq. 2 distance is ≤ eps, with early
// abandoning.
func (pb prefixBounds) within(q []float64, eps float64) bool {
	up, lo := pb.n.bounds.Upper[:pb.l], pb.n.bounds.Lower[:pb.l]
	for i, v := range q {
		if v > up[i] {
			if v-up[i] > eps {
				return false
			}
		} else if v < lo[i] {
			if lo[i]-v > eps {
				return false
			}
		}
	}
	return true
}
