// Package core implements TS-Index, the paper's contribution (§5): a
// height-balanced tree over all ℓ-length subsequences of a time series,
// in which every node carries a Minimum Bounding Time Series (MBTS)
// enclosing everything indexed beneath it and leaves store the start
// positions of their subsequences.
//
// Construction (§5.2) inserts subsequences top-down, descending at each
// level into the child whose MBTS is closest under the paper's Eq. 2
// distance; overflowing nodes split with farthest-pair seeds and
// minimum-expansion assignment, and splits propagate upward so all
// leaves stay on one level.
//
// Search (§5.3, Algorithm 1) walks the tree pruning every subtree whose
// MBTS is farther than ε from the query — sound by Lemma 1: for any
// sequence S enclosed by MBTS B, d(Q, B) ≤ d∞(Q, S).
package core

import (
	"fmt"
	"math"

	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

// Paper defaults (§6.1): "minimum and maximum node capacity in TS-Index
// are set to µc = 10 and Mc = 30".
const (
	DefaultMinCap = 10
	DefaultMaxCap = 30
)

// Config parameterizes index construction.
type Config struct {
	// L is the indexed subsequence length.
	L int
	// MinCap (µc) and MaxCap (Mc) bound node occupancy. Defaults apply
	// when 0. MaxCap must be ≥ 2·MinCap−1 so that splits and bulk
	// loading can always satisfy the minimum on both sides.
	MinCap, MaxCap int
}

func (c *Config) fill() error {
	if c.L <= 0 {
		return fmt.Errorf("core: invalid subsequence length %d", c.L)
	}
	if c.MinCap == 0 {
		c.MinCap = DefaultMinCap
	}
	if c.MaxCap == 0 {
		c.MaxCap = DefaultMaxCap
	}
	if c.MinCap < 1 {
		return fmt.Errorf("core: MinCap %d must be ≥ 1", c.MinCap)
	}
	if c.MaxCap < 2*c.MinCap-1 {
		return fmt.Errorf("core: MaxCap %d must be ≥ 2·MinCap−1 = %d", c.MaxCap, 2*c.MinCap-1)
	}
	return nil
}

// Index is a built TS-Index.
type Index struct {
	ext    *series.Extractor
	cfg    Config
	root   *node
	height int // levels from root to leaves; 1 when the root is a leaf
	size   int

	winBuf []float64 // reusable insertion window
}

type node struct {
	bounds    *mbts.MBTS
	children  []*node // internal nodes
	positions []int32 // leaves
	leaf      bool
}

// Stats describes the work a search performed. Abandons counts the
// candidate windows whose point-by-point verification was cut short by
// early abandoning (Chebyshev running max exceeded ε before the window
// ended) — i.e. Candidates minus the windows verified to the end; since
// every verified-to-the-end candidate under L∞ is a match, Abandons =
// Candidates − Results for the range paths. It is tracked explicitly so
// the trace layer can report kernel-level abandoning per shard, and so
// the differential suites pin it identical across pointer/frozen/batch/
// cluster forms.
type Stats struct {
	NodesVisited  int
	NodesPruned   int
	LeavesReached int
	Candidates    int
	Abandons      int
	Results       int
}

// Build constructs a TS-Index over all ℓ-length windows of the
// extractor's series by sequential insertion (§5.2).
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	count := series.NumSubsequences(ext.Len(), cfg.L)
	return BuildRange(ext, cfg, 0, count)
}

// BuildRange constructs a TS-Index over only the windows starting in
// [lo, hi) by sequential insertion — the per-shard build primitive used
// by internal/shard, where each shard owns one contiguous slice of the
// position space (the data-partitioning scheme of ParIS/MESSI applied
// to TS-Index).
func BuildRange(ext *series.Extractor, cfg Config, lo, hi int) (*Index, error) {
	ix, err := NewEmpty(ext, cfg)
	if err != nil {
		return nil, err
	}
	count := series.NumSubsequences(ext.Len(), ix.cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("core: series length %d shorter than subsequence length %d", ext.Len(), ix.cfg.L)
	}
	if lo < 0 || hi > count || lo >= hi {
		return nil, fmt.Errorf("core: position range [%d, %d) invalid for %d windows", lo, hi, count)
	}
	for p := lo; p < hi; p++ {
		ix.Insert(p)
	}
	return ix, nil
}

// BuildPositions constructs a TS-Index over exactly the given window
// start positions by sequential insertion — the per-shard build
// primitive for mean-sorted partitioning (shard.Config.PartitionByMean),
// where a shard owns a run of the mean-ordered position space rather
// than a contiguous range. Positions are inserted in the order given.
func BuildPositions(ext *series.Extractor, cfg Config, ps []int32) (*Index, error) {
	ix, err := NewEmpty(ext, cfg)
	if err != nil {
		return nil, err
	}
	count := series.NumSubsequences(ext.Len(), ix.cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("core: series length %d shorter than subsequence length %d", ext.Len(), ix.cfg.L)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("core: empty position set")
	}
	for _, p := range ps {
		if p < 0 || int(p) >= count {
			return nil, fmt.Errorf("core: position %d invalid for %d windows", p, count)
		}
		ix.Insert(int(p))
	}
	return ix, nil
}

// NewEmpty returns an index with no entries; callers insert positions
// explicitly (used by tests and by incremental ingestion).
func NewEmpty(ext *series.Extractor, cfg Config) (*Index, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ext.Len() < cfg.L {
		return nil, fmt.Errorf("core: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	return &Index{ext: ext, cfg: cfg, winBuf: make([]float64, cfg.L)}, nil
}

// Insert adds the window starting at position p to the index.
func (ix *Index) Insert(p int) {
	w := ix.ext.Extract(p, ix.cfg.L, ix.winBuf)
	if ix.root == nil {
		ix.root = &node{bounds: mbts.FromSequence(w), leaf: true, positions: []int32{int32(p)}}
		ix.height = 1
		ix.size = 1
		return
	}
	a, b := ix.insert(ix.root, w, int32(p))
	ix.size++
	if a != nil {
		// Root split: a new root adopts the two halves and the tree
		// grows by one level (paper Fig. 3b).
		root := &node{bounds: a.bounds.Clone(), children: []*node{a, b}}
		root.bounds.ExpandToMBTS(b.bounds)
		ix.root = root
		ix.height++
	}
}

// insert descends into n, expanding bounds on the way, and returns the
// two replacement nodes when n overflowed and split, or (nil, nil).
func (ix *Index) insert(n *node, w []float64, p int32) (*node, *node) {
	n.bounds.ExpandToSequence(w)
	if n.leaf {
		n.positions = append(n.positions, p)
		if len(n.positions) > ix.cfg.MaxCap {
			return ix.splitLeaf(n)
		}
		return nil, nil
	}

	best := ix.chooseChild(n, w)
	a, b := ix.insert(best, w, p)
	if a == nil {
		return nil, nil
	}
	// Replace the split child with its two halves.
	for i, c := range n.children {
		if c == best {
			n.children[i] = a
			break
		}
	}
	n.children = append(n.children, b)
	if len(n.children) > ix.cfg.MaxCap {
		return ix.splitInternal(n)
	}
	return nil, nil
}

// chooseChild selects the child whose MBTS has the smallest Eq. 2
// distance from w, breaking ties by least width increase (DESIGN.md §5).
func (ix *Index) chooseChild(n *node, w []float64) *node {
	var best *node
	bestDist := math.Inf(1)
	bestInc := -1.0 // lazily computed on the first tie
	for _, c := range n.children {
		d, ok := c.bounds.DistSequenceAbandon(w, bestDist)
		if !ok {
			continue
		}
		switch {
		case best == nil || d < bestDist:
			best, bestDist, bestInc = c, d, -1
		case d == bestDist:
			if bestInc < 0 {
				bestInc = best.bounds.WidthIncreaseSequence(w)
			}
			if inc := c.bounds.WidthIncreaseSequence(w); inc < bestInc {
				best, bestInc = c, inc
			}
		}
	}
	return best
}

// Search returns all twin subsequences of q at threshold eps, in start
// order (Algorithm 1). q must be in the extractor's value space and
// len(q) must equal the indexed length.
func (ix *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := ix.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with traversal counters.
func (ix *Index) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	if len(q) != ix.cfg.L {
		panic(fmt.Sprintf("core: query length %d, index built for %d", len(q), ix.cfg.L))
	}
	out, st := ix.SearchStatsFrom(ix.Root(), q, eps)
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// Len returns the number of indexed windows.
func (ix *Index) Len() int { return ix.size }

// Height returns the number of levels (1 = the root is a leaf).
func (ix *Index) Height() int { return ix.height }

// L returns the indexed subsequence length.
func (ix *Index) L() int { return ix.cfg.L }

// Extractor exposes the extractor the index was built over.
func (ix *Index) Extractor() *series.Extractor { return ix.ext }

// NodeCount returns the total number of tree nodes.
func (ix *Index) NodeCount() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		total := 1
		for _, c := range n.children {
			total += walk(c)
		}
		return total
	}
	return walk(ix.root)
}

// MemoryBytes estimates the heap footprint of the index structure: per
// node, the struct, the MBTS (two ℓ-length bounds — the reason Fig. 8a
// shows TS-Index 2–3× larger than iSAX), and leaf position payloads.
func (ix *Index) MemoryBytes() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		total := 80 + n.bounds.MemoryBytes()
		if n.leaf {
			total += 4 * len(n.positions)
		} else {
			total += 8 * len(n.children)
			for _, c := range n.children {
				total += walk(c)
			}
		}
		return total
	}
	return walk(ix.root)
}
