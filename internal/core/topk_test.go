package core

import (
	"sort"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// bruteTopK computes the exact k nearest windows by full scan.
func bruteTopK(ext *series.Extractor, q []float64, k int) []series.Match {
	var all []series.Match
	buf := make([]float64, len(q))
	for p := 0; p+len(q) <= ext.Len(); p++ {
		w := ext.Extract(p, len(q), buf)
		all = append(all, series.Match{Start: p, Dist: series.Chebyshev(q, w)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Start < all[j].Start
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestTopKMatchesBrute(t *testing.T) {
	for _, tc := range []struct {
		name string
		ts   []float64
		mode series.NormMode
	}{
		{"walk-global", datasets.RandomWalk(2, 3000), series.NormGlobal},
		{"sine-global", datasets.Sine(4, 3000, 150, 2, 0.1), series.NormGlobal},
		{"insect-raw", datasets.InsectN(5, 3000), series.NormNone},
		{"eeg-persub", datasets.EEGN(6, 3000), series.NormPerSubsequence},
	} {
		ix, ext := buildOver(t, tc.ts, tc.mode, Config{L: 60})
		q := ext.ExtractCopy(800, 60)
		for _, k := range []int{1, 5, 25} {
			got := ix.SearchTopK(q, k)
			want := bruteTopK(ext, q, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: %d results, want %d", tc.name, k, len(got), len(want))
			}
			for i := range want {
				// Distances must agree exactly; tie order is normalized
				// by start in both implementations.
				if got[i].Dist != want[i].Dist {
					t.Fatalf("%s k=%d rank %d: dist %v, want %v", tc.name, k, i, got[i].Dist, want[i].Dist)
				}
				if got[i].Start != want[i].Start {
					t.Fatalf("%s k=%d rank %d: start %d, want %d", tc.name, k, i, got[i].Start, want[i].Start)
				}
			}
		}
	}
}

func TestTopKSelfNearest(t *testing.T) {
	ts := datasets.RandomWalk(9, 2000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 80})
	q := ext.ExtractCopy(555, 80)
	got := ix.SearchTopK(q, 1)
	if len(got) != 1 || got[0].Start != 555 || got[0].Dist != 0 {
		t.Fatalf("nearest to a window must be itself: %+v", got)
	}
}

func TestTopKDegenerate(t *testing.T) {
	ts := datasets.RandomWalk(1, 500)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 50})
	q := ext.ExtractCopy(0, 50)
	if ms := ix.SearchTopK(q, 0); ms != nil {
		t.Fatal("k=0 should return nil")
	}
	if ms := ix.SearchTopK(q, -3); ms != nil {
		t.Fatal("k<0 should return nil")
	}
	// k larger than the index returns everything, sorted.
	all := ix.SearchTopK(q, 10_000)
	if len(all) != ix.Len() {
		t.Fatalf("k>n should return all %d, got %d", ix.Len(), len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Dist < all[i-1].Dist {
			t.Fatal("results must be sorted by distance")
		}
	}
}

func TestTopKEmptyIndex(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	ix, _ := NewEmpty(ext, Config{L: 20})
	if ms := ix.SearchTopK(make([]float64, 20), 5); ms != nil {
		t.Fatal("empty index should return nil")
	}
}

func TestTopKConsistentWithThresholdSearch(t *testing.T) {
	// The k-th distance defines a threshold; threshold search at that
	// distance must return at least k results.
	ts := datasets.EEGN(10, 5000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 100})
	q := ext.ExtractCopy(2000, 100)
	top := ix.SearchTopK(q, 10)
	if len(top) != 10 {
		t.Fatalf("got %d", len(top))
	}
	eps := top[len(top)-1].Dist
	ms := ix.Search(q, eps)
	if len(ms) < 10 {
		t.Fatalf("threshold search at k-th distance returned %d < 10", len(ms))
	}
}
