package core

import (
	"testing"

	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

func TestPickSideTieBreaks(t *testing.T) {
	wide, _ := mbts.Enclose([]float64{0, 0}, []float64{4, 4})
	tight, _ := mbts.Enclose([]float64{0, 0}, []float64{1, 1})

	// Different increases: the smaller increase wins regardless of the
	// rest.
	if !pickSide(1, 2, wide, tight, 9, 1) {
		t.Fatal("smaller width increase must win")
	}
	if pickSide(2, 1, tight, wide, 1, 9) {
		t.Fatal("smaller width increase must win (other side)")
	}
	// Equal increases: the tighter MBTS wins.
	if pickSide(1, 1, wide, tight, 1, 9) {
		t.Fatal("equal increase: tighter band must win")
	}
	if !pickSide(1, 1, tight, wide, 9, 1) {
		t.Fatal("equal increase: tighter band must win (other side)")
	}
	// Equal increases and widths: fewer entries wins; full tie goes to A.
	if !pickSide(1, 1, tight, tight, 2, 5) {
		t.Fatal("fewer entries must win")
	}
	if pickSide(1, 1, tight, tight, 5, 2) {
		t.Fatal("fewer entries must win (other side)")
	}
	if !pickSide(1, 1, tight, tight, 3, 3) {
		t.Fatal("full tie must go to side A")
	}
}

func TestSplitPreservesEntriesExactly(t *testing.T) {
	// Build with pathological duplicate windows: a constant series makes
	// every window identical, exercising seed selection and forced
	// assignment under total ties.
	ts := make([]float64, 200)
	for i := range ts {
		ts[i] = 1
	}
	ix, _ := buildOver(t, ts, series.NormNone, Config{L: 20, MinCap: 2, MaxCap: 4})
	if ix.Len() != 181 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, p := range []int{0, 90, 180} {
		if !ix.verifyReachable(p) {
			t.Fatalf("position %d lost through splits", p)
		}
	}
}
