package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"twinsearch/internal/arena"
	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

// frozenOver builds and freezes an index for persistence tests.
func frozenOver(t *testing.T, ts []float64, mode series.NormMode, cfg Config) (*Frozen, *series.Extractor) {
	t.Helper()
	ix, ext := buildOver(t, ts, mode, cfg)
	return ix.Freeze(), ext
}

// checkFrozenParity requires every search path of got to agree with
// want byte for byte, counters included.
func checkFrozenParity(t *testing.T, want, got *Frozen, q []float64, eps float64) {
	t.Helper()
	wm, ws := want.SearchStats(q, eps)
	gm, gs := got.SearchStats(q, eps)
	if !matchesEqual(wm, gm) || ws != gs {
		t.Fatalf("SearchStats diverged: %d/%+v vs %d/%+v", len(wm), ws, len(gm), gs)
	}
	if w, g := want.SearchTopK(q, 7), got.SearchTopK(q, 7); !matchesEqual(w, g) {
		t.Fatalf("SearchTopK diverged: %v vs %v", w, g)
	}
	wp, werr := want.SearchPrefix(q[:len(q)/2], eps)
	gp, gerr := got.SearchPrefix(q[:len(q)/2], eps)
	if (werr == nil) != (gerr == nil) || !matchesEqual(wp, gp) {
		t.Fatalf("SearchPrefix diverged: %v/%v vs %v/%v", len(wp), werr, len(gp), gerr)
	}
	wa, was := want.SearchApprox(q, eps, 4)
	ga, gas := got.SearchApprox(q, eps, 4)
	if !matchesEqual(wa, ga) || was != gas {
		t.Fatalf("SearchApprox diverged: %d vs %d", len(wa), len(ga))
	}
}

func TestFrozenV2RoundTrip(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.InsectN(41, 4000)
		fz, ext := frozenOver(t, ts, mode, Config{L: 60})

		var buf bytes.Buffer
		n, err := fz.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != int64(buf.Len()) || n != fz.StreamLen() {
			t.Fatalf("WriteTo reported %d bytes, wrote %d, StreamLen says %d", n, buf.Len(), fz.StreamLen())
		}
		if n%8 != 0 {
			t.Fatalf("v2 stream length %d not 8-byte aligned", n)
		}
		got, err := LoadFrozen(bytes.NewReader(buf.Bytes()), ext)
		if err != nil {
			t.Fatalf("LoadFrozen: %v", err)
		}
		q := ext.ExtractCopy(321, 60)
		checkFrozenParity(t, fz, got, q, 0.4)
	}
}

func TestLoadFrozenV1BackCompat(t *testing.T) {
	ts := datasets.RandomWalk(47, 2500)
	fz, ext := frozenOver(t, ts, series.NormGlobal, Config{L: 50})
	var legacy bytes.Buffer
	if _, err := fz.WriteLegacyV1(&legacy); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrozen(bytes.NewReader(legacy.Bytes()), ext)
	if err != nil {
		t.Fatalf("legacy v1 stream rejected: %v", err)
	}
	q := ext.ExtractCopy(100, 50)
	checkFrozenParity(t, fz, got, q, 0.5)
}

func TestFrozenFromArenaDifferential(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.InsectN(43, 4000)
		fz, ext := frozenOver(t, ts, mode, Config{L: 60})
		var buf bytes.Buffer
		if _, err := fz.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		ar := arena.FromBytes(buf.Bytes())
		got, n, err := FrozenFromArena(ar, 0, ext)
		if err != nil {
			t.Fatalf("FrozenFromArena: %v", err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("FrozenFromArena consumed %d bytes of %d", n, buf.Len())
		}
		if got.Mapped() {
			t.Fatal("heap-arena views claim to be mapped")
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("zero-copy arena fails full invariants: %v", err)
		}
		q := ext.ExtractCopy(321, 60)
		checkFrozenParity(t, fz, got, q, 0.4)
	}
}

// TestFrozenFromArenaAtOffset exercises the container-format use: the
// stream does not start at byte 0 of the region (TSSH v3 places each
// shard segment at an 8-aligned offset).
func TestFrozenFromArenaAtOffset(t *testing.T) {
	ts := datasets.RandomWalk(48, 1500)
	fz, ext := frozenOver(t, ts, series.NormGlobal, Config{L: 40})
	var buf bytes.Buffer
	buf.Write(make([]byte, 64)) // leading padding
	if _, err := fz.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, _, err := FrozenFromArena(arena.FromBytes(buf.Bytes()), 64, ext)
	if err != nil {
		t.Fatalf("FrozenFromArena at offset: %v", err)
	}
	q := ext.ExtractCopy(50, 40)
	checkFrozenParity(t, fz, got, q, 0.5)
}

// TestFrozenV2StreamErrors feeds systematically damaged v2 streams to
// both loaders: every case must fail cleanly — an error, no panic, no
// out-of-bounds read.
func TestFrozenV2StreamErrors(t *testing.T) {
	ts := datasets.RandomWalk(49, 1200)
	fz, ext := frozenOver(t, ts, series.NormGlobal, Config{L: 40})
	var buf bytes.Buffer
	if _, err := fz.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	mutate := func(off int, val byte) []byte {
		c := append([]byte(nil), full...)
		c[off] = val
		return c
	}
	put64 := func(off int, v uint64) []byte {
		c := append([]byte(nil), full...)
		binary.LittleEndian.PutUint64(c[off:], v)
		return c
	}
	cases := map[string][]byte{
		"empty":            {},
		"magic only":       full[:4],
		"header truncated": full[:50],
		"body truncated":   full[:len(full)-9],
		"bad magic":        append([]byte("NOPE"), full[4:]...),
		"bad version":      mutate(4, 0xFF),
		"bad mode":         mutate(6, 0xEE),
		"huge node count":  put64(40, 0xFFFFFFFFFFFFFFFF), // nodeCount+leafStart
		"huge size":        put64(24, 1<<60),
		"huge height":      mutate(20, 0xFF),
		"misaligned first": put64(48, 97),    // off-by-one section offset
		"aliased sections": put64(56, 96),    // countOff == firstOff
		"shifted offsets":  put64(64, 1<<40), // positionsOff far past the stream
	}
	for name, stream := range cases {
		if _, err := LoadFrozen(bytes.NewReader(stream), ext); err == nil {
			t.Errorf("LoadFrozen accepted %s", name)
		}
		if _, _, err := FrozenFromArena(arena.FromBytes(stream), 0, ext); err == nil {
			t.Errorf("FrozenFromArena accepted %s", name)
		}
	}

	// Truncation sweep: no prefix of a valid stream may load (the
	// shortest prefixes exercise the header paths, the rest the section
	// readers and the bounds-of-region checks).
	for n := 0; n < len(full); n += 7 {
		if _, err := LoadFrozen(bytes.NewReader(full[:n]), ext); err == nil {
			t.Fatalf("LoadFrozen accepted a %d-byte prefix of a %d-byte stream", n, len(full))
		}
		if _, _, err := FrozenFromArena(arena.FromBytes(full[:n:n]), 0, ext); err == nil {
			t.Fatalf("FrozenFromArena accepted a %d-byte prefix of a %d-byte stream", n, len(full))
		}
	}
}
