package core

import "twinsearch/internal/series"

// This file splits one index's traversals into subtree work units for
// the work-stealing executor (internal/exec): instead of one goroutine
// walking a whole shard, the shard layer enqueues one unit per frontier
// subtree, so a hot shard's work spreads across idle workers.
//
// Soundness is unchanged from whole-tree traversal: a frontier is a set
// of disjoint subtrees covering every indexed position exactly once,
// and each *From search applies the same MBTS pruning (Lemma 1) it
// would have applied on reaching that node top-down. The only pruning
// lost is an ancestor check that would have discarded several subtrees
// at once — each subtree re-discovers the rejection at its own root.

// Subtree is an opaque handle to one disjoint piece of the tree,
// produced by Frontier and consumed by the *From search variants.
// Handles are invalidated by Insert (splits restructure nodes); the
// shard layer recomputes its frontiers after every insertion batch.
type Subtree struct {
	n *node
}

// Root returns the whole index as a single work unit.
func (ix *Index) Root() Subtree { return Subtree{ix.root} }

// Frontier splits the tree into at least min(target, leaves) disjoint
// subtrees covering all indexed positions, expanding breadth-first
// until the target is met. Node fan-out is bounded by MaxCap, so the
// result overshoots the target by at most MaxCap−1 units. A target
// ≤ 1 (or a root that is a leaf) yields the root itself.
func (ix *Index) Frontier(target int) []Subtree {
	if ix.root == nil {
		return nil
	}
	nodes := []*node{ix.root}
	for len(nodes) < target {
		split := false
		for i := 0; i < len(nodes) && len(nodes) < target; i++ {
			n := nodes[i]
			if n.leaf {
				continue
			}
			nodes[i] = n.children[0]
			nodes = append(nodes, n.children[1:]...)
			split = true
		}
		if !split {
			break // all leaves: nothing left to expand
		}
	}
	out := make([]Subtree, len(nodes))
	for i, n := range nodes {
		out[i] = Subtree{n}
	}
	return out
}

// SearchStatsFrom is the range-search work unit: the Algorithm 1
// traversal restricted to one subtree. Matches are returned in
// traversal order (unsorted) and Stats.Results is left zero — the
// caller merging several units sorts once per shard and sets the
// total. SearchStats is the whole-tree, sorted entry point.
func (ix *Index) SearchStatsFrom(sub Subtree, q []float64, eps float64) ([]series.Match, Stats) {
	var st Stats
	if sub.n == nil {
		return nil, st
	}
	ver := series.NewVerifier(ix.ext, q, eps)
	var out []series.Match
	stack := []*node{sub.n}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		// Lemma 1 check with early abandoning: prune as soon as any
		// timestamp pushes the Eq. 2 distance beyond ε.
		if _, ok := n.bounds.DistSequenceAbandon(q, eps); !ok {
			st.NodesPruned++
			continue
		}
		if !n.leaf {
			stack = append(stack, n.children...)
			continue
		}
		st.LeavesReached++
		for _, p := range n.positions {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			} else {
				st.Abandons++
			}
		}
	}
	return out, st
}

// SearchPrefixTreeFrom is the prefix-search work unit: the truncated-
// bounds traversal of SearchPrefixTree restricted to one subtree, with
// validation hoisted to the caller (see ValidatePrefix). Matches come
// back in traversal order; callers sort after merging units, and the
// tail windows that exist only at the shorter length are scanned once,
// outside the units (ScanPrefixTail).
func (ix *Index) SearchPrefixTreeFrom(sub Subtree, q []float64, eps float64) []series.Match {
	if sub.n == nil {
		return nil
	}
	var out []series.Match
	ver := series.NewVerifier(ix.ext, q, eps)
	l := len(q)
	stack := []*node{sub.n}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Prefix Lemma 1 check: Eq. 2 over the first l timestamps.
		pb := prefixBounds{n: n, l: l}
		if !pb.within(q, eps) {
			continue
		}
		if !n.leaf {
			stack = append(stack, n.children...)
			continue
		}
		for _, p := range n.positions {
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	return out
}
