package core

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func TestBulkInvariantsAndEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		ts   []float64
		mode series.NormMode
		eps  float64
	}{
		{"walk-global", datasets.RandomWalk(2, 4000), series.NormGlobal, 0.3},
		{"insect-raw", datasets.InsectN(5, 4000), series.NormNone, 2},
		{"eeg-persub", datasets.EEGN(6, 4000), series.NormPerSubsequence, 0.5},
	} {
		ext := series.NewExtractor(tc.ts, tc.mode)
		ix, err := BuildBulk(ext, Config{L: 80})
		if err != nil {
			t.Fatalf("%s: BuildBulk: %v", tc.name, err)
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", tc.name, err)
		}
		q := ext.ExtractCopy(1000, 80)
		got := ix.Search(q, tc.eps)
		want := sweepline.New(ext).Search(q, tc.eps)
		if len(got) != len(want) {
			t.Fatalf("%s: %d matches, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i].Start != want[i].Start {
				t.Fatalf("%s: position mismatch at %d", tc.name, i)
			}
		}
	}
}

func TestBulkSmallInputs(t *testing.T) {
	// Fewer windows than MinCap: a single root leaf.
	ts := datasets.RandomWalk(3, 25)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := BuildBulk(ext, Config{L: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Height() != 1 || ix.Len() != 6 {
		t.Fatalf("height=%d len=%d", ix.Height(), ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkRejectsBadInput(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 10), series.NormGlobal)
	if _, err := BuildBulk(ext, Config{L: 50}); err == nil {
		t.Fatal("L > n must fail")
	}
}

func TestBulkHighLeafFill(t *testing.T) {
	// Bulk loading packs leaves full; insertion averages ~65% fill.
	ts := datasets.RandomWalk(4, 10000)
	ext := series.NewExtractor(ts, series.NormGlobal)
	bulk, err := BuildBulk(ext, Config{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Build(ext, Config{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	if bulk.LeafFill() <= ins.LeafFill() {
		t.Fatalf("bulk fill %v should exceed insert fill %v", bulk.LeafFill(), ins.LeafFill())
	}
}

func TestPackGroups(t *testing.T) {
	for _, c := range []struct{ count, max int }{
		{1, 30}, {30, 30}, {31, 30}, {100, 30}, {901, 30}, {7, 4},
	} {
		groups := packGroups(c.count, c.max)
		sum := 0
		for _, g := range groups {
			sum += g
			if g > c.max || g <= 0 {
				t.Fatalf("count=%d max=%d: bad group %d", c.count, c.max, g)
			}
			if len(groups) > 1 && g < (c.max+1)/2 {
				t.Fatalf("count=%d max=%d: group %d below half-full", c.count, c.max, g)
			}
		}
		if sum != c.count {
			t.Fatalf("count=%d max=%d: groups sum to %d", c.count, c.max, sum)
		}
	}
}
