package core

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
)

var frozenModes = []struct {
	name string
	mode series.NormMode
}{
	{"raw", series.NormNone},
	{"global", series.NormGlobal},
	{"persub", series.NormPerSubsequence},
}

// TestFrozenParity drives all five search paths over the pointer tree
// and its frozen compilation and requires byte-identical results (and
// identical traversal statistics, which pin down that the arena
// replays the exact same traversal, not just the same answer set).
func TestFrozenParity(t *testing.T) {
	ts := datasets.RandomWalk(3, 2400)
	const l = 48
	for _, m := range frozenModes {
		for _, bulk := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/bulk=%v", m.name, bulk), func(t *testing.T) {
				ext := series.NewExtractor(ts, m.mode)
				var ix *Index
				var err error
				if bulk {
					ix, err = BuildBulk(ext, Config{L: l})
				} else {
					ix, err = Build(ext, Config{L: l})
				}
				if err != nil {
					t.Fatal(err)
				}
				f := ix.Freeze()
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("frozen invariants: %v", err)
				}
				if f.Len() != ix.Len() || f.Height() != ix.Height() || f.NodeCount() != ix.NodeCount() {
					t.Fatalf("frozen shape (%d, %d, %d) != pointer shape (%d, %d, %d)",
						f.Len(), f.Height(), f.NodeCount(), ix.Len(), ix.Height(), ix.NodeCount())
				}

				queries := [][]float64{
					ext.ExtractCopy(37, l),
					ext.ExtractCopy(1200, l),
					ext.ExtractCopy(ix.Len()-1, l),
				}
				for qi, q := range queries {
					for _, eps := range []float64{0, 0.1, 0.5, 2.0} {
						wantM, wantS := ix.SearchStats(q, eps)
						gotM, gotS := f.SearchStats(q, eps)
						if !matchesEqual(wantM, gotM) {
							t.Fatalf("q%d eps=%g: Search mismatch: %d vs %d matches", qi, eps, len(wantM), len(gotM))
						}
						if wantS != gotS {
							t.Fatalf("q%d eps=%g: Stats mismatch: %+v vs %+v", qi, eps, wantS, gotS)
						}

						wantA, wantAS := ix.SearchApprox(q, eps, 3)
						gotA, gotAS := f.SearchApprox(q, eps, 3)
						if !matchesEqual(wantA, gotA) || wantAS != gotAS {
							t.Fatalf("q%d eps=%g: SearchApprox mismatch", qi, eps)
						}
					}
					for _, k := range []int{1, 7, 50} {
						want := ix.SearchTopK(q, k)
						got := f.SearchTopK(q, k)
						if !matchesEqual(want, got) {
							t.Fatalf("q%d k=%d: SearchTopK mismatch: %v vs %v", qi, k, want, got)
						}
					}
					if m.mode != series.NormPerSubsequence {
						short := q[:l/2]
						want, err := ix.SearchPrefix(short, 0.4)
						if err != nil {
							t.Fatal(err)
						}
						got, err := f.SearchPrefix(short, 0.4)
						if err != nil {
							t.Fatal(err)
						}
						if !matchesEqual(want, got) {
							t.Fatalf("q%d: SearchPrefix mismatch", qi)
						}
					}
				}
			})
		}
	}
}

// TestFrozenFrontierParity splits both forms into frontiers and checks
// the per-unit range search covers the same total set.
func TestFrozenFrontierParity(t *testing.T) {
	ts := datasets.RandomWalk(11, 1500)
	const l = 40
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Freeze()
	q := ext.ExtractCopy(500, l)
	want := ix.Search(q, 0.6)
	for _, target := range []int{1, 3, 16, 1000} {
		units := f.Frontier(target)
		punits := ix.Frontier(target)
		if len(units) != len(punits) {
			t.Fatalf("target %d: frozen frontier has %d units, pointer %d", target, len(units), len(punits))
		}
		var got []series.Match
		for _, u := range units {
			ms, _ := f.SearchStatsFrom(u, q, 0.6)
			got = append(got, ms...)
		}
		series.SortMatches(got)
		if !matchesEqual(want, got) {
			t.Fatalf("target %d: frontier union mismatch", target)
		}
	}
}

// TestFrozenThawRoundTrip freezes, thaws, and compares: the thawed tree
// must satisfy the pointer invariants and answer identically, and
// re-freezing it must reproduce the arena exactly.
func TestFrozenThawRoundTrip(t *testing.T) {
	ts := datasets.RandomWalk(5, 1200)
	const l = 32
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Freeze()
	th := f.Thaw()
	if err := th.CheckInvariants(); err != nil {
		t.Fatalf("thawed invariants: %v", err)
	}
	q := ext.ExtractCopy(100, l)
	if !matchesEqual(ix.Search(q, 0.5), th.Search(q, 0.5)) {
		t.Fatal("thawed tree answers differently")
	}
	f2 := th.Freeze()
	if !reflect.DeepEqual(f.first, f2.first) || !reflect.DeepEqual(f.count, f2.count) ||
		!reflect.DeepEqual(f.positions, f2.positions) ||
		!reflect.DeepEqual(f.upper, f2.upper) || !reflect.DeepEqual(f.lower, f2.lower) {
		t.Fatal("freeze∘thaw is not the identity on the arena")
	}

	// Thaw supports further insertion: append-style inserts keep the
	// structure valid and searchable.
	// (Positions beyond the original range are not available here; just
	// re-insert coverage is exercised by the shard layer.)
}

// TestFrozenPersistRoundTrip writes the arena and loads it back.
func TestFrozenPersistRoundTrip(t *testing.T) {
	ts := datasets.RandomWalk(7, 1800)
	const l = 40
	for _, m := range frozenModes {
		t.Run(m.name, func(t *testing.T) {
			ext := series.NewExtractor(ts, m.mode)
			ix, err := Build(ext, Config{L: l})
			if err != nil {
				t.Fatal(err)
			}
			f := ix.Freeze()
			var buf bytes.Buffer
			n, err := f.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := LoadFrozen(bytes.NewReader(buf.Bytes()), ext)
			if err != nil {
				t.Fatal(err)
			}
			q := ext.ExtractCopy(64, l)
			if !matchesEqual(f.Search(q, 0.5), got.Search(q, 0.5)) {
				t.Fatal("reloaded arena answers differently")
			}
			if got.Len() != f.Len() || got.Height() != f.Height() || got.NodeCount() != f.NodeCount() {
				t.Fatal("reloaded arena shape differs")
			}
		})
	}
}

// TestLoadFrozenRejects covers the validation paths: wrong extractor,
// wrong series length, truncated and corrupted streams.
func TestLoadFrozenRejects(t *testing.T) {
	ts := datasets.RandomWalk(9, 900)
	const l = 30
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := Build(ext, Config{L: l})
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Freeze()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	if _, err := LoadFrozen(bytes.NewReader(stream), series.NewExtractor(ts, series.NormNone)); err == nil {
		t.Fatal("accepted a mode mismatch")
	}
	other := series.NewExtractor(datasets.RandomWalk(10, 900), series.NormGlobal)
	if _, err := LoadFrozen(bytes.NewReader(stream), other); err == nil {
		t.Fatal("accepted a different series of the same length")
	}
	if _, err := LoadFrozen(bytes.NewReader(stream[:60]), ext); err == nil {
		t.Fatal("accepted a truncated stream")
	}
	// Corrupt the structure arrays just past the 47-byte header: a
	// mangled child index breaks prefix-contiguity, which validation
	// must catch. (A flipped bound byte may merely loosen an MBTS,
	// which is still a consistent index — the fuzz target covers that
	// spectrum.)
	corrupt := append([]byte(nil), stream...)
	corrupt[50] ^= 0xFF
	if _, err := LoadFrozen(bytes.NewReader(corrupt), ext); err == nil {
		t.Fatal("accepted a stream with corrupted structure arrays")
	}
}

// TestFrozenEmpty exercises the zero-entry arena.
func TestFrozenEmpty(t *testing.T) {
	ts := datasets.RandomWalk(2, 200)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := NewEmpty(ext, Config{L: 20})
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Freeze()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 20)
	if got := f.Search(q, math.Inf(1)); len(got) != 0 {
		t.Fatalf("empty arena returned %d matches", len(got))
	}
	if got := f.SearchTopK(q, 3); len(got) != 0 {
		t.Fatalf("empty arena returned %d top-k results", len(got))
	}
	if len(f.Frontier(8)) != 0 {
		t.Fatal("empty arena yielded frontier units")
	}
}

func matchesEqual(a, b []series.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
