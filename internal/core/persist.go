package core

// Index persistence: a built TS-Index serializes to a compact binary
// stream and reloads in milliseconds, against the same series — an
// extension beyond the paper (whose indexes live for one experiment),
// but table stakes for using TS-Index as an actual storage component:
// construction is the expensive phase (tens of seconds for millions of
// windows), queries are not.
//
// Format (little-endian):
//
//	magic "TSIX", version u16
//	mode u8, L u32, MinCap u32, MaxCap u32
//	size u64, height u32, seriesLen u64
//	tree: pre-order; per node:
//	  tag u8 (0 leaf, 1 internal)
//	  bounds: L×f64 upper, L×f64 lower
//	  leaf:     count u32, count×u32 positions
//	  internal: count u32, then children recursively
//
// The stream does not embed the series itself; Load verifies that the
// supplied extractor matches the recorded mode and length and that the
// root MBTS still encloses a sample of windows, rejecting mismatched
// data early.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

const (
	IndexMagic     = "TSIX"
	persistVersion = 1
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write([]byte(IndexMagic)); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint16(persistVersion),
		uint8(ix.ext.Mode()),
		uint32(ix.cfg.L), uint32(ix.cfg.MinCap), uint32(ix.cfg.MaxCap),
		uint64(ix.size), uint32(ix.height), uint64(ix.ext.Len()),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if ix.root != nil {
		if err := writeNode(cw, ix.root, ix.cfg.L); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func writeNode(w io.Writer, n *node, l int) error {
	tag := uint8(1)
	if n.leaf {
		tag = 0
	}
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, n.bounds.Upper); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, n.bounds.Lower); err != nil {
		return err
	}
	if n.leaf {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(n.positions))); err != nil {
			return err
		}
		buf := make([]uint32, len(n.positions))
		for i, p := range n.positions {
			buf[i] = uint32(p)
		}
		return binary.Write(w, binary.LittleEndian, buf)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(n.children))); err != nil {
		return err
	}
	for _, c := range n.children {
		if err := writeNode(w, c, l); err != nil {
			return err
		}
	}
	return nil
}

// Load reconstructs an index from r against ext. The extractor must
// present the same series (length) and normalization mode the index was
// built with.
func Load(r io.Reader, ext *series.Extractor) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if string(magic) != IndexMagic {
		return nil, fmt.Errorf("core: load: bad magic %q", magic)
	}
	var (
		version           uint16
		mode              uint8
		l, minCap, maxCap uint32
		size              uint64
		height            uint32
		seriesLen         uint64
	)
	for _, v := range []interface{}{&version, &mode, &l, &minCap, &maxCap, &size, &height, &seriesLen} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: load header: %w", err)
		}
	}
	if version != persistVersion {
		return nil, fmt.Errorf("core: load: unsupported version %d", version)
	}
	if series.NormMode(mode) != ext.Mode() {
		return nil, fmt.Errorf("core: load: index built under %v, extractor is %v", series.NormMode(mode), ext.Mode())
	}
	if int(seriesLen) != ext.Len() {
		return nil, fmt.Errorf("core: load: index built over %d points, series has %d", seriesLen, ext.Len())
	}

	ix, err := NewEmpty(ext, Config{L: int(l), MinCap: int(minCap), MaxCap: int(maxCap)})
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	ix.size = int(size)
	ix.height = int(height)
	if size > 0 {
		count := series.NumSubsequences(ext.Len(), int(l))
		ix.root, err = readNode(br, int(l), count)
		if err != nil {
			return nil, fmt.Errorf("core: load tree: %w", err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: load: reconstructed index is inconsistent with the supplied series: %w", err)
	}
	return ix, nil
}

func readNode(r io.Reader, l, maxPos int) (*node, error) {
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	if tag > 1 {
		return nil, fmt.Errorf("corrupt node tag %d", tag)
	}
	b := mbts.New(l)
	if err := binary.Read(r, binary.LittleEndian, b.Upper); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, b.Lower); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > uint32(maxPos) {
		return nil, fmt.Errorf("corrupt node: %d entries for a series with %d windows", count, maxPos)
	}
	n := &node{bounds: b}
	if tag == 0 {
		n.leaf = true
		buf := make([]uint32, count)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		n.positions = make([]int32, count)
		for i, p := range buf {
			if p >= uint32(maxPos) {
				return nil, fmt.Errorf("corrupt position %d (max %d)", p, maxPos)
			}
			n.positions[i] = int32(p)
		}
		return n, nil
	}
	n.children = make([]*node, count)
	for i := range n.children {
		c, err := readNode(r, l, maxPos)
		if err != nil {
			return nil, err
		}
		n.children[i] = c
	}
	return n, nil
}

// countWriter tracks bytes written for WriteTo's contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
