package core

// Batch-frontier traversal: B queries descend the frozen arena together,
// so each visited node's bounds are loaded once and amortized across the
// whole batch (the query-batch counterpart of the arena's node-batch
// layout — MESSI batches work units over one query, this batches queries
// over one work unit). A traversal frame is (node, active query set):
// a query is active at a node exactly when it survived the Lemma 1 test
// at every ancestor, which is precisely the set of nodes its own
// traversal would visit — so per-query Stats come out identical to B
// separate traversals, and the match sets are identical too (the order
// within a unit differs; every caller sorts or merges by start).
//
// The top-k batch descends depth-first rather than best-first. That is
// safe for exactness: pruning is on strict inequality (lb > t) against
// thresholds that never undershoot the final k-th distance, so a node
// containing a true top-k member can never be pruned under ANY
// exploration order — the final (dist, start)-ordered result set is the
// same k matches best-first would return. Only the amount of pruning
// (work), not the answer, depends on visit order.

import (
	"container/heap"
	"fmt"
	"math"

	"twinsearch/internal/mbts/kernel"
	"twinsearch/internal/series"
)

// batchFrame is one step of a batch descent: an arena node and the
// segment [lo, hi) of the shared active-query arena that survived every
// ancestor. Segments are append-only and shared by sibling frames.
type batchFrame struct {
	node   int32
	lo, hi int
}

// SearchStatsBatch answers B range queries (one shared threshold) over
// the whole arena — per-query matches sorted by start with Results set,
// exactly what B calls to SearchStats would return.
func (f *Frozen) SearchStatsBatch(qs [][]float64, eps float64) ([][]series.Match, []Stats) {
	for _, q := range qs {
		if len(q) != f.cfg.L {
			panic(fmt.Sprintf("core: query length %d, index built for %d", len(q), f.cfg.L))
		}
	}
	out, st := f.SearchStatsBatchFrom(f.Root(), qs, eps)
	for i := range out {
		series.SortMatches(out[i])
		st[i].Results = len(out[i])
	}
	return out, st
}

// SearchStatsBatchFrom is the batch range-search work unit: every query
// in qs against one subtree at threshold eps. out[i] and st[i] cover
// query i alone — the same visit set, counters, and match set as
// SearchStatsFrom(sub, qs[i], eps), with Results left zero and matches
// in batch traversal order (callers sort or merge by start).
func (f *Frozen) SearchStatsBatchFrom(sub FrozenSubtree, qs [][]float64, eps float64) ([][]series.Match, []Stats) {
	nq := len(qs)
	out := make([][]series.Match, nq)
	st := make([]Stats, nq)
	if !sub.ok || nq == 0 {
		return out, st
	}

	vers := make([]*series.Verifier, nq)
	for i, q := range qs {
		vers[i] = series.NewVerifier(f.ext, q, eps)
	}

	// Scratch for the batch kernel calls, reused at every node.
	sq := make([][]float64, nq)
	limits := make([]float64, nq)
	dists := make([]float64, nq)
	oks := make([]bool, nq)
	for i := range limits {
		limits[i] = eps
	}

	// active is the shared segment arena; the root frame holds all B.
	active := make([]int32, nq, 4*nq)
	for i := range active {
		active[i] = int32(i)
	}
	stack := []batchFrame{{node: sub.id, lo: 0, hi: nq}}

	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		act := active[fr.lo:fr.hi]

		// One pass of the node's bounds serves the whole active set.
		for i, qi := range act {
			sq[i] = qs[qi]
		}
		b := len(act)
		kernel.DistAbandonFlatBatch(f.boundsUpper(fr.node), f.boundsLower(fr.node),
			sq[:b], limits[:b], dists[:b], oks[:b])

		lo := len(active)
		for i, qi := range act {
			st[qi].NodesVisited++
			if !oks[i] {
				st[qi].NodesPruned++
				continue
			}
			active = append(active, qi)
		}
		hi := len(active)
		if lo == hi {
			continue // every query pruned this subtree
		}

		first, c := f.first[fr.node], f.count[fr.node]
		if !f.isLeaf(fr.node) {
			for j := int32(0); j < c; j++ {
				stack = append(stack, batchFrame{node: first + j, lo: lo, hi: hi})
			}
			continue
		}
		for _, qi := range active[lo:hi] {
			st[qi].LeavesReached++
			for _, p := range f.positions[first : first+c] {
				st[qi].Candidates++
				if vers[qi].Verify(int(p)) {
					out[qi] = append(out[qi], series.Match{Start: int(p), Dist: -1})
				} else {
					st[qi].Abandons++
				}
			}
		}
	}
	return out, st
}

// SearchTopKBatch answers B top-k queries over the whole arena, each
// result in ascending (dist, start) order — the same k matches B calls
// to SearchTopK would return.
func (f *Frozen) SearchTopKBatch(qs [][]float64, k int) [][]series.Match {
	return f.SearchTopKBatchFrom(f.Root(), qs, k, nil)
}

// SearchTopKBatchFrom is the batch top-k work unit: every query in qs
// against one subtree, each maintaining its own result heap and pruning
// threshold. shared, when non-nil, carries one cross-unit bound per
// query (len(shared) == len(qs)); nil entries and a nil slice mean
// unshared. Per-query results match SearchTopKSharedFrom's contract:
// exactly the subtree's k best under the (dist, start) total order when
// unshared, and under shared bounds possibly missing matches that
// cannot survive the global merge — the merged top-k is unaffected.
// The batch wins twice: each node's bounds stream once for the whole
// active set, and each candidate window is extracted once for every
// query still alive at its leaf.
func (f *Frozen) SearchTopKBatchFrom(sub FrozenSubtree, qs [][]float64, k int, shared []*SharedBound) [][]series.Match {
	nq := len(qs)
	for _, q := range qs {
		if len(q) != f.cfg.L {
			panic("core: query length mismatch")
		}
	}
	if shared != nil && len(shared) != nq {
		panic("core: SearchTopKBatchFrom: len(shared) != len(qs)")
	}
	out := make([][]series.Match, nq)
	if k <= 0 || !sub.ok || nq == 0 {
		return out
	}
	sharedAt := func(qi int32) *SharedBound {
		if shared == nil {
			return nil
		}
		return shared[qi]
	}

	best := make([]*resultHeap, nq)
	for i := range best {
		best[i] = &resultHeap{}
	}
	buf := make([]float64, f.cfg.L)

	sq := make([][]float64, nq)
	limits := make([]float64, nq)
	dists := make([]float64, nq)
	oks := make([]bool, nq)

	active := make([]int32, nq, 4*nq)
	for i := range active {
		active[i] = int32(i)
	}
	stack := []batchFrame{{node: sub.id, lo: 0, hi: nq}}

	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		act := active[fr.lo:fr.hi]

		// boundLB for the batch: abandoning against a query's current
		// threshold when it has one, a full Eq. 2 pass otherwise (a +Inf
		// limit never abandons, so one batch call serves both cases).
		for i, qi := range act {
			sq[i] = qs[qi]
			if t := kthThreshold(best[qi], k, sharedAt(qi)); t >= 0 {
				limits[i] = t
			} else {
				limits[i] = math.Inf(1)
			}
		}
		b := len(act)
		kernel.DistAbandonFlatBatch(f.boundsUpper(fr.node), f.boundsLower(fr.node),
			sq[:b], limits[:b], dists[:b], oks[:b])

		lo := len(active)
		for i, qi := range act {
			if oks[i] {
				active = append(active, qi)
			}
		}
		hi := len(active)
		if lo == hi {
			continue
		}

		first, c := f.first[fr.node], f.count[fr.node]
		if !f.isLeaf(fr.node) {
			for j := int32(0); j < c; j++ {
				stack = append(stack, batchFrame{node: first + j, lo: lo, hi: hi})
			}
			continue
		}
		for _, p := range f.positions[first : first+c] {
			w := f.ext.Extract(int(p), f.cfg.L, buf)
			for _, qi := range active[lo:hi] {
				d := series.Chebyshev(qs[qi], w)
				m := series.Match{Start: int(p), Dist: d}
				h := best[qi]
				if h.Len() >= k {
					if !matchLess(m, (*h)[0]) {
						continue
					}
					heap.Pop(h)
				}
				heap.Push(h, m)
				if sb := sharedAt(qi); sb != nil && h.Len() >= k {
					sb.Tighten((*h)[0].Dist)
				}
			}
		}
	}

	for qi, h := range best {
		ms := make([]series.Match, h.Len())
		for i := len(ms) - 1; i >= 0; i-- {
			ms[i] = heap.Pop(h).(series.Match)
		}
		out[qi] = ms
	}
	return out
}
