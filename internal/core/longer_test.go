package core

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func TestSearchLongerMatchesSweepline(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal} {
		ts := datasets.EEGN(43, 6000)
		ix, ext := buildOver(t, ts, mode, Config{L: 80})
		sw := sweepline.New(ext)
		for _, l := range []int{80, 120, 200} {
			q := ext.ExtractCopy(2500, l)
			for _, eps := range []float64{0.1, 0.4, 1.0} {
				got, err := ix.SearchLonger(q, eps)
				if err != nil {
					t.Fatalf("mode=%v l=%d: %v", mode, l, err)
				}
				want := sw.Search(q, eps)
				if len(got) != len(want) {
					t.Fatalf("mode=%v l=%d eps=%v: %d vs %d results", mode, l, eps, len(got), len(want))
				}
				for i := range want {
					if got[i].Start != want[i].Start {
						t.Fatalf("mode=%v l=%d: result %d differs", mode, l, i)
					}
				}
			}
		}
	}
}

func TestSearchLongerEdges(t *testing.T) {
	ts := datasets.RandomWalk(44, 1000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 100})
	if _, err := ix.SearchLonger(make([]float64, 50), 1); err == nil {
		t.Fatal("shorter query must be rejected")
	}
	// Longer than the whole series: no possible match.
	ms, err := ix.SearchLonger(make([]float64, 1001), 1)
	if err != nil || ms != nil {
		t.Fatalf("over-long query: %v, %v", ms, err)
	}
	per, _ := buildOver(t, ts, series.NormPerSubsequence, Config{L: 100})
	if _, err := per.SearchLonger(make([]float64, 200), 1); err == nil {
		t.Fatal("per-subsequence mode must be rejected")
	}
	// Exactly series-length query: at most one candidate (start 0).
	q := ext.ExtractCopy(0, 1000)
	ms, err = ix.SearchLonger(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Start != 0 {
		t.Fatalf("series-length self query: %v", ms)
	}
}
