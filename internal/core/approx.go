package core

import (
	"container/heap"
	"sync/atomic"

	"twinsearch/internal/series"
)

// LeafBudget is a shared, atomically drawn allowance of leaf probes.
// The sharded approximate search hands one budget to every shard's
// traversal instead of pre-splitting the allowance: whichever shards
// hold the nearest leaves draw more of it, so a skewed partition no
// longer wastes budget on shards with nothing close to the query. The
// total number of leaves probed across all holders never exceeds the
// allowance.
type LeafBudget struct {
	n atomic.Int64
}

// NewLeafBudget returns a budget of n leaf probes (n ≤ 0 means none).
func NewLeafBudget(n int) *LeafBudget {
	b := &LeafBudget{}
	b.n.Store(int64(n))
	return b
}

// TryAcquire draws one leaf probe; it reports false once the budget is
// spent.
func (b *LeafBudget) TryAcquire() bool {
	for {
		v := b.n.Load()
		if v <= 0 {
			return false
		}
		if b.n.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Exhausted reports whether no probes remain.
func (b *LeafBudget) Exhausted() bool { return b.n.Load() <= 0 }

// Remaining returns the probes left.
func (b *LeafBudget) Remaining() int {
	if v := b.n.Load(); v > 0 {
		return int(v)
	}
	return 0
}

// SearchApprox is the iSAX-style approximate query transplanted onto
// TS-Index: a best-first probe that visits at most leafBudget leaves in
// order of their Eq. 2 distance to the query and verifies only their
// candidates. With leafBudget·MaxCap candidates inspected it costs
// microseconds instead of a full traversal, and returns a subset of the
// exact result set — possibly missing twins that live in unvisited
// leaves (there is no guarantee, not even for the query's own source
// window, though the nearest-leaf ordering makes misses rare for small
// budgets ≥ 2). Use it for interactive "show me something similar now"
// flows, with Search as the exact fallback; the returned statistics
// tell the caller how much was examined. leafBudget ≤ 0 means 1.
func (ix *Index) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, Stats) {
	if leafBudget <= 0 {
		leafBudget = 1
	}
	return ix.SearchApproxShared(q, eps, NewLeafBudget(leafBudget))
}

// SearchApproxShared is SearchApprox drawing leaves from a budget the
// caller may share across several traversals (the sharded fan-out
// passes one LeafBudget to every shard). With a private budget it is
// exactly SearchApprox. Which traversal spends a shared unit depends
// on scheduling, so the sharded result set may vary between runs —
// inherent to an approximate, globally budgeted probe — but every
// returned match is a true twin and total leaves probed stay within
// the allowance.
func (ix *Index) SearchApproxShared(q []float64, eps float64, budget *LeafBudget) ([]series.Match, Stats) {
	if len(q) != ix.cfg.L {
		panic("core: query length mismatch")
	}
	var st Stats
	if ix.root == nil {
		return nil, st
	}

	ver := series.NewVerifier(ix.ext, q, eps)
	var out []series.Match
	pq := &nodeQueue{{n: ix.root, lb: ix.root.bounds.DistSequence(q)}}
	for pq.Len() > 0 && !budget.Exhausted() {
		item := heap.Pop(pq).(nodeItem)
		st.NodesVisited++
		if item.lb > eps {
			// Everything remaining is farther than ε; Lemma 1 says no
			// unvisited leaf can contribute.
			st.NodesPruned++
			break
		}
		if !item.n.leaf {
			for _, c := range item.n.children {
				heap.Push(pq, nodeItem{n: c, lb: c.bounds.DistSequence(q)})
			}
			continue
		}
		if !budget.TryAcquire() {
			break // another traversal spent the last probe
		}
		st.LeavesReached++
		for _, p := range item.n.positions {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			} else {
				st.Abandons++
			}
		}
	}
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}
