package core

import (
	"container/heap"

	"twinsearch/internal/series"
)

// SearchApprox is the iSAX-style approximate query transplanted onto
// TS-Index: a best-first probe that visits at most leafBudget leaves in
// order of their Eq. 2 distance to the query and verifies only their
// candidates. With leafBudget·MaxCap candidates inspected it costs
// microseconds instead of a full traversal, and returns a subset of the
// exact result set — possibly missing twins that live in unvisited
// leaves (there is no guarantee, not even for the query's own source
// window, though the nearest-leaf ordering makes misses rare for small
// budgets ≥ 2). Use it for interactive "show me something similar now"
// flows, with Search as the exact fallback; the returned statistics
// tell the caller how much was examined. leafBudget ≤ 0 means 1.
func (ix *Index) SearchApprox(q []float64, eps float64, leafBudget int) ([]series.Match, Stats) {
	if len(q) != ix.cfg.L {
		panic("core: query length mismatch")
	}
	if leafBudget <= 0 {
		leafBudget = 1
	}
	var st Stats
	if ix.root == nil {
		return nil, st
	}

	ver := series.NewVerifier(ix.ext, q, eps)
	var out []series.Match
	pq := &nodeQueue{{n: ix.root, lb: ix.root.bounds.DistSequence(q)}}
	for pq.Len() > 0 && st.LeavesReached < leafBudget {
		item := heap.Pop(pq).(nodeItem)
		st.NodesVisited++
		if item.lb > eps {
			// Everything remaining is farther than ε; Lemma 1 says no
			// unvisited leaf can contribute.
			st.NodesPruned++
			break
		}
		if !item.n.leaf {
			for _, c := range item.n.children {
				heap.Push(pq, nodeItem{n: c, lb: c.bounds.DistSequence(q)})
			}
			continue
		}
		st.LeavesReached++
		for _, p := range item.n.positions {
			st.Candidates++
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}
