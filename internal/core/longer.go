package core

import (
	"fmt"

	"twinsearch/internal/series"
)

// SearchLonger answers twin queries LONGER than the indexed length L
// with the existing index: by the paper's closure property (§3.1), if
// T[p, l] is a twin of Q (l > L), then T[p, L] is a twin of Q[0:L] —
// so the index filters on the query's L-prefix and each surviving
// candidate is verified over the full l values (candidates whose window
// would run past the end of the series are rejected outright). Exact.
//
// Per-subsequence normalization is unsupported for the same reason as
// SearchPrefix: the normalization of T[p, l] does not restrict to the
// normalization of T[p, L].
func (ix *Index) SearchLonger(q []float64, eps float64) ([]series.Match, error) {
	l := len(q)
	if l < ix.cfg.L {
		return nil, fmt.Errorf("core: query length %d below indexed length %d (use SearchPrefix)", l, ix.cfg.L)
	}
	if ix.ext.Mode() == series.NormPerSubsequence {
		return nil, fmt.Errorf("core: longer queries are unsupported under per-subsequence normalization")
	}
	if l == ix.cfg.L {
		return ix.Search(q, eps), nil
	}
	if l > ix.ext.Len() {
		return nil, nil
	}

	prefix := q[:ix.cfg.L]
	ver := series.NewVerifier(ix.ext, q, eps)
	last := ix.ext.Len() - l
	var out []series.Match
	if ix.root == nil {
		return nil, nil
	}
	stack := []*node{ix.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := n.bounds.DistSequenceAbandon(prefix, eps); !ok {
			continue
		}
		if !n.leaf {
			stack = append(stack, n.children...)
			continue
		}
		for _, p := range n.positions {
			if int(p) > last {
				continue // the full-length window would overrun the series
			}
			if ver.Verify(int(p)) {
				out = append(out, series.Match{Start: int(p), Dist: -1})
			}
		}
	}
	series.SortMatches(out)
	return out, nil
}
