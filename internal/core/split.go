package core

import (
	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

// splitLeaf divides an overflowing leaf into two (§5.2): the two
// subsequences with the largest pairwise Chebyshev distance seed the new
// leaves, and every remaining subsequence joins the side whose MBTS
// grows the least (with R-tree-style forced assignment so both sides
// reach MinCap).
func (ix *Index) splitLeaf(n *node) (*node, *node) {
	k := len(n.positions)
	wins := make([][]float64, k)
	for i, p := range n.positions {
		wins[i] = ix.ext.ExtractCopy(int(p), ix.cfg.L)
	}

	// Farthest pair by Chebyshev distance.
	si, sj := 0, 1
	var maxD float64 = -1
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if d := series.Chebyshev(wins[i], wins[j]); d > maxD {
				maxD, si, sj = d, i, j
			}
		}
	}

	a := &node{bounds: mbts.FromSequence(wins[si]), leaf: true,
		positions: append(make([]int32, 0, k), n.positions[si])}
	b := &node{bounds: mbts.FromSequence(wins[sj]), leaf: true,
		positions: append(make([]int32, 0, k), n.positions[sj])}

	remaining := make([]int, 0, k-2)
	for i := 0; i < k; i++ {
		if i != si && i != sj {
			remaining = append(remaining, i)
		}
	}
	for idx, i := range remaining {
		left := len(remaining) - idx
		w := wins[i]
		switch {
		case ix.cfg.MinCap-len(a.positions) >= left:
			assignLeaf(a, w, n.positions[i])
		case ix.cfg.MinCap-len(b.positions) >= left:
			assignLeaf(b, w, n.positions[i])
		default:
			if pickSide(a.bounds.WidthIncreaseSequence(w), b.bounds.WidthIncreaseSequence(w),
				a.bounds, b.bounds, len(a.positions), len(b.positions)) {
				assignLeaf(a, w, n.positions[i])
			} else {
				assignLeaf(b, w, n.positions[i])
			}
		}
	}
	return a, b
}

func assignLeaf(n *node, w []float64, p int32) {
	n.bounds.ExpandToSequence(w)
	n.positions = append(n.positions, p)
}

// splitInternal divides an overflowing internal node (§5.2): seeds are
// the two children whose MBTS are farthest apart under Eq. 3; remaining
// children join the side whose merged MBTS grows the least.
func (ix *Index) splitInternal(n *node) (*node, *node) {
	k := len(n.children)
	si, sj := 0, 1
	var maxD float64 = -1
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if d := n.children[i].bounds.DistMBTS(n.children[j].bounds); d > maxD {
				maxD, si, sj = d, i, j
			}
		}
	}

	a := &node{bounds: n.children[si].bounds.Clone(),
		children: append(make([]*node, 0, k), n.children[si])}
	b := &node{bounds: n.children[sj].bounds.Clone(),
		children: append(make([]*node, 0, k), n.children[sj])}

	remaining := make([]*node, 0, k-2)
	for i, c := range n.children {
		if i != si && i != sj {
			remaining = append(remaining, c)
		}
	}
	for idx, c := range remaining {
		left := len(remaining) - idx
		switch {
		case ix.cfg.MinCap-len(a.children) >= left:
			assignInternal(a, c)
		case ix.cfg.MinCap-len(b.children) >= left:
			assignInternal(b, c)
		default:
			if pickSide(a.bounds.WidthIncreaseMBTS(c.bounds), b.bounds.WidthIncreaseMBTS(c.bounds),
				a.bounds, b.bounds, len(a.children), len(b.children)) {
				assignInternal(a, c)
			} else {
				assignInternal(b, c)
			}
		}
	}
	return a, b
}

func assignInternal(n *node, c *node) {
	n.bounds.ExpandToMBTS(c.bounds)
	n.children = append(n.children, c)
}

// pickSide reports whether side A should take the entry: least width
// increase, then tighter current MBTS, then fewer entries.
func pickSide(incA, incB float64, bA, bB *mbts.MBTS, nA, nB int) bool {
	if incA != incB {
		return incA < incB
	}
	wA, wB := bA.Width(), bB.Width()
	if wA != wB {
		return wA < wB
	}
	return nA <= nB
}
