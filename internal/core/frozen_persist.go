package core

// Frozen index persistence: the arena serializes as its backing arrays,
// so saving is a handful of sequential writes and loading is a
// sequential read straight into the final slices — no tree rebuild, no
// per-node allocation. This is the stream the sharded TSSH v2 format
// embeds per shard, and the stepping stone to memory-mapping the arena
// (the on-disk layout IS the in-memory layout, little-endian).
//
// Format (little-endian):
//
//	magic "TSFZ", version u16
//	mode u8, L u32, MinCap u32, MaxCap u32
//	size u64, height u32, seriesLen u64
//	nodeCount u32, leafStart u32
//	structure: (2·nodeCount + size) × i32   — first | count | positions
//	bounds:    (2·nodeCount·L) × f64        — upper | lower
//
// Like the pointer formats, the series itself is not embedded;
// LoadFrozen validates the arena against the supplied extractor
// (CheckInvariants) before returning it, so corrupt or hostile streams
// cannot produce an index whose traversals read out of bounds.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"twinsearch/internal/series"
)

// FrozenMagic is the stream prefix identifying a frozen single index;
// callers that accept several formats sniff it to dispatch (see
// twinsearch.OpenSaved).
const FrozenMagic = "TSFZ"

const frozenPersistVersion = 1

// maxFrozenHeight bounds the recorded tree height on load; with
// MaxCap ≥ 3 even a billion-window index stays under 20 levels, so
// anything past this is a corrupt or hostile stream, rejected before
// the node-count plausibility check multiplies by it.
const maxFrozenHeight = 64

// WriteTo serializes the frozen index. It implements io.WriterTo.
func (f *Frozen) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write([]byte(FrozenMagic)); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint16(frozenPersistVersion),
		uint8(f.ext.Mode()),
		uint32(f.cfg.L), uint32(f.cfg.MinCap), uint32(f.cfg.MaxCap),
		uint64(f.size), uint32(f.height), uint64(f.ext.Len()),
		uint32(len(f.first)), uint32(f.leafStart),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for _, arr := range [][]int32{f.first, f.count, f.positions} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return cw.n, err
		}
	}
	for _, arr := range [][]float64{f.upper, f.lower} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// LoadFrozen reconstructs a frozen index from r against ext. The
// extractor must present the same series (length) and normalization
// mode the index was built with; the arena is fully validated before
// use.
func LoadFrozen(r io.Reader, ext *series.Extractor) (*Frozen, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: load frozen: %w", err)
	}
	if string(magic) != FrozenMagic {
		return nil, fmt.Errorf("core: load frozen: bad magic %q", magic)
	}
	var (
		version              uint16
		mode                 uint8
		l, minCap, maxCap    uint32
		size                 uint64
		height               uint32
		seriesLen            uint64
		nodeCount, leafStart uint32
	)
	for _, v := range []interface{}{&version, &mode, &l, &minCap, &maxCap,
		&size, &height, &seriesLen, &nodeCount, &leafStart} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: load frozen header: %w", err)
		}
	}
	if version != frozenPersistVersion {
		return nil, fmt.Errorf("core: load frozen: unsupported version %d", version)
	}
	if series.NormMode(mode) != ext.Mode() {
		return nil, fmt.Errorf("core: load frozen: index built under %v, extractor is %v", series.NormMode(mode), ext.Mode())
	}
	if int(seriesLen) != ext.Len() {
		return nil, fmt.Errorf("core: load frozen: index built over %d points, series has %d", seriesLen, ext.Len())
	}
	cfg := Config{L: int(l), MinCap: int(minCap), MaxCap: int(maxCap)}
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("core: load frozen: %w", err)
	}
	if ext.Len() < cfg.L {
		return nil, fmt.Errorf("core: load frozen: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	maxPos := series.NumSubsequences(ext.Len(), cfg.L)
	// Plausibility gates before the arrays allocate: a hostile header
	// must not command a multi-gigabyte allocation. A legitimate tree
	// has at most size leaves and fewer internal nodes per level than
	// the level below, so (size+1)·(height+1) over-covers every valid
	// shape.
	if size > uint64(maxPos) {
		return nil, fmt.Errorf("core: load frozen: %d entries for a series with %d windows", size, maxPos)
	}
	if height > maxFrozenHeight {
		return nil, fmt.Errorf("core: load frozen: implausible height %d", height)
	}
	if uint64(nodeCount) > (size+1)*uint64(height+1) {
		return nil, fmt.Errorf("core: load frozen: implausible node count %d for %d entries", nodeCount, size)
	}
	if uint64(leafStart) > uint64(nodeCount) {
		return nil, fmt.Errorf("core: load frozen: leafStart %d exceeds node count %d", leafStart, nodeCount)
	}

	f := &Frozen{ext: ext, cfg: cfg, size: int(size), height: int(height),
		leafStart: int32(leafStart)}
	// One backing array per element type; the named slices alias into
	// it, so each sequential read lands directly in its final home. The
	// readers grow their output as bytes actually arrive, so a hostile
	// header claiming a huge arena costs only what the stream ships.
	ints, err := readInt32s(br, int(2*uint64(nodeCount)+size))
	if err != nil {
		return nil, fmt.Errorf("core: load frozen structure: %w", err)
	}
	f.first = ints[:nodeCount:nodeCount]
	f.count = ints[nodeCount : 2*nodeCount : 2*nodeCount]
	f.positions = ints[2*nodeCount:]
	bounds, err := readFloat64s(br, int(2*uint64(nodeCount)*uint64(cfg.L)))
	if err != nil {
		return nil, fmt.Errorf("core: load frozen bounds: %w", err)
	}
	f.upper = bounds[: len(bounds)/2 : len(bounds)/2]
	f.lower = bounds[len(bounds)/2:]
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: load frozen: reconstructed index is inconsistent with the supplied series: %w", err)
	}
	return f, nil
}

// readChunkBytes is the transfer granularity of the array readers: big
// enough to amortize call overhead, small enough that a truncated or
// hostile stream never commands a large up-front allocation.
const readChunkBytes = 1 << 16

// readInt32s reads n little-endian int32 values, growing the output as
// data arrives.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunkBytes/4))
	var buf [readChunkBytes]byte
	for len(out) < n {
		want := min((n-len(out))*4, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i:])))
		}
	}
	return out, nil
}

// readFloat64s reads n little-endian float64 values, growing the
// output as data arrives.
func readFloat64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunkBytes/8))
	var buf [readChunkBytes]byte
	for len(out) < n {
		want := min((n-len(out))*8, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i:])))
		}
	}
	return out, nil
}
